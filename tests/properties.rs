//! Cross-crate property-based tests (proptest): invariants that must
//! hold for arbitrary inputs, not just the synthetic presets.

use proptest::prelude::*;
use tweetmob::data::{Timestamp, Tweet, TweetDataset, UserId};
use tweetmob::geo::{destination, haversine_km, BoundingBox, GridIndex, Point};
use tweetmob::models::{FlowObservation, Gravity2Fit, MobilityModel};
use tweetmob::stats::correlation::pearson;
use tweetmob::stats::descriptive::{mean, quantile};
use tweetmob::stats::metrics::{hit_rate, sorensen_index};

fn arb_point() -> impl Strategy<Value = Point> {
    (-85.0..85.0f64, -179.0..179.0f64).prop_map(|(lat, lon)| Point::new_unchecked(lat, lon))
}

fn arb_aus_point() -> impl Strategy<Value = Point> {
    (-44.0..-10.0f64, 113.0..154.0f64).prop_map(|(lat, lon)| Point::new_unchecked(lat, lon))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn haversine_is_a_metric(a in arb_point(), b in arb_point(), c in arb_point()) {
        let ab = haversine_km(a, b);
        let ba = haversine_km(b, a);
        prop_assert!((ab - ba).abs() < 1e-9); // symmetry
        prop_assert!(ab >= 0.0); // non-negativity
        // Triangle inequality (with float slack).
        let ac = haversine_km(a, c);
        let cb = haversine_km(c, b);
        prop_assert!(ab <= ac + cb + 1e-6);
    }

    #[test]
    fn destination_inverts_distance(p in arb_point(), bearing in 0.0..360.0f64, dist in 0.0..5_000.0f64) {
        let q = destination(p, bearing, dist);
        let measured = haversine_km(p, q);
        prop_assert!((measured - dist).abs() < 1e-6 * dist.max(1.0),
            "wanted {dist}, measured {measured}");
    }

    #[test]
    fn grid_index_matches_brute_force(
        pts in prop::collection::vec(arb_aus_point(), 1..200),
        center in arb_aus_point(),
        radius in 0.0..2_000.0f64,
        cell in 0.01..5.0f64,
    ) {
        let index = GridIndex::build(pts.clone(), cell);
        let mut got = index.within_radius(center, radius);
        got.sort_unstable();
        let want: Vec<u32> = pts.iter().enumerate()
            .filter(|(_, &p)| haversine_km(center, p) <= radius)
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bounding_box_covering_contains_all(pts in prop::collection::vec(arb_point(), 1..100)) {
        let bbox = BoundingBox::covering(pts.iter().copied()).unwrap();
        for p in &pts {
            prop_assert!(bbox.contains(*p));
        }
    }

    #[test]
    fn dataset_is_sorted_and_complete(
        rows in prop::collection::vec((0u32..20, 0i64..10_000, -40.0..-20.0f64, 120.0..150.0f64), 0..300)
    ) {
        let tweets: Vec<Tweet> = rows.iter()
            .map(|&(u, t, lat, lon)| Tweet::new(
                UserId(u), Timestamp::from_secs(t), Point::new_unchecked(lat, lon)))
            .collect();
        let ds = TweetDataset::from_tweets(tweets.clone());
        prop_assert_eq!(ds.n_tweets(), tweets.len());
        // Rows sorted by (user, time).
        let mut prev: Option<(UserId, Timestamp)> = None;
        for t in ds.iter_tweets() {
            if let Some((pu, pt)) = prev {
                prop_assert!((t.user, t.time) >= (pu, pt));
            }
            prev = Some((t.user, t.time));
        }
        // Per-user views partition the rows.
        let total: usize = ds.iter_users().map(|v| v.len()).sum();
        prop_assert_eq!(total, tweets.len());
    }

    #[test]
    fn pearson_bounded_and_affine_invariant(
        pairs in prop::collection::vec((-1e6..1e6f64, -1e6..1e6f64), 3..100),
        scale in 0.001..1000.0f64,
        offset in -1e5..1e5f64,
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Ok(c) = pearson(&x, &y) {
            prop_assert!((-1.0..=1.0).contains(&c.r));
            if c.p_two_tailed.is_finite() {
                prop_assert!((0.0..=1.0).contains(&c.p_two_tailed));
            }
            let x2: Vec<f64> = x.iter().map(|v| v * scale + offset).collect();
            if let Ok(c2) = pearson(&x2, &y) {
                prop_assert!((c.r - c2.r).abs() < 1e-6, "r {} vs {}", c.r, c2.r);
            }
        }
    }

    #[test]
    fn quantile_within_sample_range(
        xs in prop::collection::vec(-1e9..1e9f64, 1..200),
        q in 0.0..=1.0f64,
    ) {
        let v = quantile(&xs, q).unwrap();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo && v <= hi);
        // Monotone in q.
        let v2 = quantile(&xs, (q + 0.1).min(1.0)).unwrap();
        prop_assert!(v2 >= v - 1e-9);
    }

    #[test]
    fn mean_between_min_and_max(xs in prop::collection::vec(-1e9..1e9f64, 1..200)) {
        let m = mean(&xs).unwrap();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6);
    }

    #[test]
    fn hit_rate_and_sorensen_bounded(
        pairs in prop::collection::vec((0.1..1e6f64, 0.1..1e6f64), 1..100),
    ) {
        let est: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let obs: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let hr = hit_rate(&est, &obs, 0.5).unwrap();
        prop_assert!((0.0..=1.0).contains(&hr));
        let ssi = sorensen_index(&est, &obs).unwrap();
        prop_assert!((0.0..=1.0).contains(&ssi));
        // Perfect estimates are perfect under both metrics.
        prop_assert_eq!(hit_rate(&obs, &obs, 0.5).unwrap(), 1.0);
        prop_assert!((sorensen_index(&obs, &obs).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gravity2_fit_recovers_generating_law(
        c in 0.001..10.0f64,
        gamma in 0.2..3.0f64,
        seed_rows in prop::collection::vec((1e3..1e6f64, 1e3..1e6f64, 5.0..3_000.0f64), 10..60),
    ) {
        let obs: Vec<FlowObservation> = seed_rows.iter().map(|&(m, n, d)| FlowObservation {
            origin_population: m,
            dest_population: n,
            distance_km: d,
            intervening_population: 0.0,
            observed_flow: c * m * n / d.powf(gamma),
        }).collect();
        if let Ok(fit) = Gravity2Fit::fit(&obs) {
            prop_assert!((fit.gamma - gamma).abs() < 1e-6, "gamma {} vs {}", fit.gamma, gamma);
            for o in &obs {
                let rel = (fit.predict(o) - o.observed_flow).abs() / o.observed_flow;
                prop_assert!(rel < 1e-6);
            }
        }
    }
}
