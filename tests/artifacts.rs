//! Artifact-layer acceptance suite (DESIGN.md §13): the fit-once /
//! predict-many split must be invisible in the numbers. A
//! [`ModelBundle`] that is saved and reloaded has to re-encode to the
//! same bytes and predict bit-identically to the in-memory fit it came
//! from — for every model, at one worker thread and at eight — and the
//! epidemic network built from a loaded artifact must match the one
//! assembled by hand from the same parts.

use proptest::prelude::*;
use std::sync::Arc;
use tweetmob::core::{Experiment, Scale};
use tweetmob::data::{BundleArea, BundleMeta, ModelBundle};
use tweetmob::epidemic::MobilityNetwork;
use tweetmob::geo::{PairGeometry, Point};
use tweetmob::models::{
    FittedModelSet, FlowObservation, InterveningPopulation, MobilityModel, ModelKind,
};
use tweetmob::par::with_threads;
use tweetmob::synth::{GeneratorConfig, TweetGenerator};

fn arb_aus_point() -> impl Strategy<Value = Point> {
    (-44.0..-10.0f64, 113.0..154.0f64).prop_map(|(lat, lon)| Point::new_unchecked(lat, lon))
}

/// A synthetic fit over arbitrary centres and populations, packaged as
/// a bundle exactly the way `Experiment::fit_with` packages one.
fn bundle_from(centers: &[Point], populations: &[f64]) -> ModelBundle {
    let geometry = PairGeometry::shared(centers);
    let intervening = InterveningPopulation::from_geometry(Arc::clone(&geometry), populations);
    let n = centers.len();
    let mut observations = Vec::with_capacity(n * (n - 1));
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = geometry.distance(i, j).max(1.0);
            observations.push(FlowObservation {
                origin_population: populations[i],
                dest_population: populations[j],
                distance_km: geometry.distance(i, j),
                intervening_population: intervening.s(i, j),
                observed_flow: (0.01 * populations[i] * populations[j] / (d * d)).max(1.0),
            });
        }
    }
    let models = FittedModelSet::fit(&observations).expect("synthetic fit");
    let areas = centers
        .iter()
        .enumerate()
        .map(|(i, &center)| BundleArea {
            name: format!("Area {i}"),
            center,
            census_population: populations[i] * 1.25,
        })
        .collect();
    ModelBundle::new(
        BundleMeta {
            label: "proptest".into(),
            population_source: "twitter".into(),
            radius_km: 50.0,
        },
        areas,
        populations.to_vec(),
        models,
        geometry,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Save → load re-encodes to the same bytes, and every prediction
    /// of every model bit-matches the freshly fitted bundle.
    #[test]
    fn save_load_is_byte_identical_and_predictions_bit_match(
        centers in prop::collection::vec(arb_aus_point(), 4..12),
        seeds in prop::collection::vec(1_000.0..1e6f64, 12),
    ) {
        let populations: Vec<f64> = centers
            .iter()
            .enumerate()
            .map(|(i, _)| seeds[i % seeds.len()])
            .collect();
        let bundle = bundle_from(&centers, &populations);

        let mut first = Vec::new();
        bundle.save(&mut first).expect("save");
        let loaded = ModelBundle::load(&first[..]).expect("load");
        let mut second = Vec::new();
        loaded.save(&mut second).expect("re-save");
        prop_assert_eq!(&first, &second, "re-encode must be canonical");

        prop_assert_eq!(loaded.meta(), bundle.meta());
        prop_assert_eq!(loaded.areas(), bundle.areas());
        prop_assert_eq!(loaded.models(), bundle.models());
        for kind in ModelKind::ALL {
            for i in 0..bundle.len() {
                for j in 0..bundle.len() {
                    if i == j {
                        continue;
                    }
                    prop_assert_eq!(
                        bundle.predict(kind, i, j).unwrap().to_bits(),
                        loaded.predict(kind, i, j).unwrap().to_bits(),
                        "{} {}->{}", kind, i, j
                    );
                }
            }
        }
    }

    /// Corrupting any single byte of the header is rejected, never a
    /// wrong-answer load.
    #[test]
    fn header_corruption_is_always_detected(
        centers in prop::collection::vec(arb_aus_point(), 4..8),
        byte in 0usize..8,
    ) {
        let populations = vec![10_000.0; centers.len()];
        let bundle = bundle_from(&centers, &populations);
        let mut bytes = Vec::new();
        bundle.save(&mut bytes).expect("save");
        bytes[byte] = bytes[byte].wrapping_add(1);
        prop_assert!(ModelBundle::load(&bytes[..]).is_err());
    }
}

/// The ISSUE acceptance gate: a full pipeline fit, saved and reloaded,
/// predicts bit-identically to the in-memory report — at one worker
/// thread and at eight — and the artifact bytes themselves are
/// identical at every thread count.
#[test]
fn pipeline_fit_save_load_predict_is_bit_identical_at_1_and_8_threads() {
    let mut cfg = GeneratorConfig::small();
    cfg.n_users = 2_000;
    let ds = TweetGenerator::new(cfg).generate();

    let mut encodings = Vec::new();
    for threads in [1usize, 8] {
        let (report, bundle) = with_threads(threads, || {
            Experiment::new(&ds).fit(Scale::National).expect("fit")
        });
        let mut bytes = Vec::new();
        bundle.save(&mut bytes).expect("save");
        let loaded = ModelBundle::load(&bytes[..]).expect("load");

        assert_eq!(loaded.models(), bundle.models());
        for i in 0..bundle.len() {
            for j in 0..bundle.len() {
                if i == j {
                    continue;
                }
                let obs = bundle.observation(i, j).unwrap();
                assert_eq!(
                    loaded.predict(ModelKind::Gravity4, i, j).unwrap().to_bits(),
                    report.gravity4.predict(&obs).to_bits()
                );
                assert_eq!(
                    loaded.predict(ModelKind::Gravity2, i, j).unwrap().to_bits(),
                    report.gravity2.predict(&obs).to_bits()
                );
                assert_eq!(
                    loaded.predict(ModelKind::Radiation, i, j).unwrap().to_bits(),
                    report.radiation.predict(&obs).to_bits()
                );
                assert_eq!(
                    loaded.predict(ModelKind::Opportunities, i, j).unwrap().to_bits(),
                    report.opportunities.predict(&obs).to_bits()
                );
            }
        }
        encodings.push(bytes);
    }
    assert_eq!(
        encodings[0], encodings[1],
        "artifact bytes must not depend on thread count"
    );
}

/// Top-k answers from a loaded artifact are deterministic and match
/// the in-memory bundle exactly.
#[test]
fn top_k_from_loaded_artifact_matches_in_memory() {
    let ds = TweetGenerator::new(GeneratorConfig::small()).generate();
    let (_, bundle) = Experiment::new(&ds).fit(Scale::National).expect("fit");
    let mut bytes = Vec::new();
    bundle.save(&mut bytes).expect("save");
    let loaded = ModelBundle::load(&bytes[..]).expect("load");
    let origin = bundle.area_index("Sydney").expect("Sydney present");
    for kind in ModelKind::ALL {
        let expect = bundle.top_k(kind, origin, 5).unwrap();
        assert_eq!(expect.len(), 5);
        assert!(expect.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(expect, loaded.top_k(kind, origin, 5).unwrap());
    }
}

/// The epidemic network built straight from a loaded artifact is
/// bit-identical to one assembled by hand from the same bundle parts.
#[test]
fn epidemic_network_from_artifact_matches_hand_assembly() {
    let ds = TweetGenerator::new(GeneratorConfig::small()).generate();
    let (_, bundle) = Experiment::new(&ds).fit(Scale::National).expect("fit");
    let mut bytes = Vec::new();
    bundle.save(&mut bytes).expect("save");
    let loaded = ModelBundle::load(&bytes[..]).expect("load");

    let from_artifact =
        MobilityNetwork::from_artifact(&loaded, ModelKind::Gravity2, 0.02).expect("network");

    let census: Vec<f64> = bundle.areas().iter().map(|a| a.census_population).collect();
    let n = census.len();
    let calc = InterveningPopulation::from_geometry(Arc::clone(bundle.geometry()), &census);
    let dense: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| if i == j { 0.0 } else { calc.s(i, j) })
                .collect()
        })
        .collect();
    let by_hand = MobilityNetwork::from_model_geometry(
        &bundle.models().gravity2,
        census,
        bundle.geometry(),
        &dense,
        0.02,
    )
    .expect("hand network");

    assert_eq!(from_artifact.n_patches(), by_hand.n_patches());
    for i in 0..n {
        for j in 0..n {
            assert_eq!(
                from_artifact.rate(i, j).to_bits(),
                by_hand.rate(i, j).to_bits(),
                "rate {i}->{j}"
            );
        }
    }
}
