//! Thread-count invariance of every parallel stage: the same inputs
//! produce byte-identical JSON whether the shared pool runs on one
//! worker or eight. This is the contract that lets `TWEETMOB_THREADS`
//! (and `--threads`) change wall-clock time without changing a single
//! published number.
//!
//! `with_threads` serialises callers on a global lock, so these tests
//! are safe under the default parallel test runner.

use tweetmob::core::{extract_trips, AreaSet, Experiment, Scale};
use tweetmob::epidemic::{MobilityNetwork, OutbreakScenario};
use tweetmob::models::{Gravity4Fit, GravityGrid};
use tweetmob::par::with_threads;
use tweetmob::synth::{GeneratorConfig, TweetGenerator};

fn config() -> GeneratorConfig {
    let mut cfg = GeneratorConfig::small();
    cfg.n_users = 3_000;
    cfg
}

/// Runs `f` at 1 and at 8 threads and asserts the serialised results
/// are byte-identical.
fn assert_thread_invariant<T: serde::Serialize>(stage: &str, f: impl Fn() -> T) {
    let serial = serde_json::to_string(&with_threads(1, &f)).expect("serialize serial result");
    let parallel = serde_json::to_string(&with_threads(8, &f)).expect("serialize parallel result");
    assert_eq!(
        serial, parallel,
        "{stage}: results differ across thread counts"
    );
}

#[test]
fn synth_generation_is_thread_invariant() {
    assert_thread_invariant("synth/generate", || {
        let ds = TweetGenerator::new(config()).generate();
        let coords: Vec<(u32, i64, u64, u64)> = ds
            .iter_tweets()
            .map(|t| {
                (
                    t.user.0,
                    t.time.as_secs(),
                    t.location.lat.to_bits(),
                    t.location.lon.to_bits(),
                )
            })
            .collect();
        coords
    });
}

#[test]
fn trip_extraction_is_thread_invariant() {
    let ds = TweetGenerator::new(config()).generate();
    let areas = AreaSet::of_scale(Scale::National);
    assert_thread_invariant("trips", || extract_trips(&ds, &areas));
}

#[test]
fn population_estimation_is_thread_invariant() {
    let ds = TweetGenerator::new(config()).generate();
    let exp = Experiment::new(&ds);
    assert_thread_invariant("population", || {
        exp.population_correlation(Scale::National)
            .expect("population correlation on the standard dataset")
    });
}

#[test]
fn gravity_grid_search_is_thread_invariant() {
    let ds = TweetGenerator::new(config()).generate();
    let exp = Experiment::new(&ds);
    let report = with_threads(1, || {
        exp.mobility(Scale::National).expect("mobility report")
    });
    let grid = GravityGrid::default();
    assert_thread_invariant("gravity-grid", || {
        Gravity4Fit::fit_grid(&report.observations, &grid).expect("grid search")
    });
}

#[test]
fn epidemic_replicates_are_thread_invariant() {
    let net = MobilityNetwork::from_flows(
        vec![100_000.0, 60_000.0, 40_000.0],
        &[(0, 1, 5.0), (1, 0, 5.0), (1, 2, 2.0), (2, 1, 2.0)],
        0.04,
    )
    .expect("network");
    let scenario = OutbreakScenario::new(net, 0.5, 0.2).seed(0, 25.0);
    assert_thread_invariant("epidemic/replicates", || {
        scenario
            .run_stochastic_replicates(90.0, 0.25, 7, 6)
            .expect("validated scenario")
    });
}

#[test]
fn whole_experiment_is_thread_invariant() {
    // The end-to-end composition: every stage above chained through
    // `Experiment::mobility`, compared as one document.
    let ds = TweetGenerator::new(config()).generate();
    let exp = Experiment::new(&ds);
    assert_thread_invariant("mobility", || {
        let report = exp.mobility(Scale::National).expect("mobility report");
        (
            report.od_total,
            format!("{:?}", report.gravity4),
            format!("{:?}", report.gravity2),
            report
                .evaluations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>(),
        )
    });
}
