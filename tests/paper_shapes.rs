//! The paper's headline qualitative claims, verified end-to-end at the
//! default experiment scale (20,000 users). Each test names the paper
//! artifact it guards. These are the acceptance tests for the
//! reproduction: if one fails, EXPERIMENTS.md is out of date.

use std::sync::OnceLock;
use tweetmob::core::{Experiment, Scale};
use tweetmob::data::{DatasetSummary, TweetDataset};
use tweetmob::geo::{haversine_km, DensityGrid, Point, AUSTRALIA_BBOX};
use tweetmob::stats::powerlaw::fit_scan_xmin;
use tweetmob::synth::{GeneratorConfig, TweetGenerator};

fn dataset() -> &'static TweetDataset {
    static DS: OnceLock<TweetDataset> = OnceLock::new();
    DS.get_or_init(|| TweetGenerator::new(GeneratorConfig::default()).generate())
}

fn experiment() -> Experiment<'static> {
    Experiment::new(dataset())
}

#[test]
fn table1_statistics_in_paper_bands() {
    let s = DatasetSummary::of(dataset());
    // Paper: 13.3 tweets/user, 35.5 h waiting, 4.76 locations/user.
    assert!(
        (10.0..18.0).contains(&s.avg_tweets_per_user),
        "tweets/user {}",
        s.avg_tweets_per_user
    );
    assert!(
        (20.0..55.0).contains(&s.avg_waiting_time_hours),
        "waiting {} h",
        s.avg_waiting_time_hours
    );
    assert!(
        (3.0..7.0).contains(&s.avg_locations_per_user),
        "locations/user {}",
        s.avg_locations_per_user
    );
    // Enthusiast tail exists and thins with the threshold, as in §II.
    assert!(s.activity.over_50 > s.activity.over_100);
    assert!(s.activity.over_100 > s.activity.over_500);
    assert!(s.activity.over_500 >= s.activity.over_1000);
    assert!(s.activity.over_1000 > 0);
}

#[test]
fn fig1_density_concentrates_on_the_coast() {
    let mut grid = DensityGrid::new(AUSTRALIA_BBOX, 0.5);
    grid.extend(dataset().iter_points());
    // The top cells must sit near known settlements (capitals or
    // regional cities), never in the interior.
    use tweetmob::synth::NATIONAL_TOP20;
    for cell in grid.top_cells(5) {
        let nearest = NATIONAL_TOP20
            .iter()
            .map(|a| haversine_km(a.center, cell.center))
            .fold(f64::INFINITY, f64::min);
        assert!(
            nearest < 150.0,
            "dense cell at {} is {:.0} km from any major city",
            cell.center,
            nearest
        );
    }
    // The single densest cell belongs to Sydney specifically.
    let top = grid.top_cells(1)[0];
    let sydney = Point::new_unchecked(-33.8688, 151.2093);
    assert!(
        haversine_km(sydney, top.center) < 60.0,
        "densest cell at {} is not Sydney",
        top.center
    );
    // And the deep interior is nearly empty: a 300 km disc around the
    // continental centre holds well under 1 % of tweets.
    let interior = Point::new_unchecked(-25.6, 134.4);
    let interior_tweets = dataset()
        .iter_points()
        .filter(|&p| haversine_km(interior, p) < 300.0)
        .count();
    assert!(
        (interior_tweets as f64) < 0.01 * dataset().n_tweets() as f64,
        "interior tweets {interior_tweets}"
    );
}

#[test]
fn fig2a_tweets_per_user_is_heavy_tailed_power_law() {
    let counts: Vec<f64> = dataset()
        .tweets_per_user()
        .iter()
        .map(|&c| c as f64)
        .collect();
    let fit = fit_scan_xmin(&counts).expect("power-law fit");
    // The generating exponent is 1.95; the MLE should land nearby.
    assert!(
        (1.6..2.4).contains(&fit.alpha),
        "fitted alpha {}",
        fit.alpha
    );
    assert!(fit.ks_distance < 0.1, "ks {}", fit.ks_distance);
    // Tail spans at least three decades of counts.
    let max = counts.iter().copied().fold(0.0f64, f64::max);
    assert!(max >= 1_000.0, "max tweets/user {max}");
}

#[test]
fn fig2b_waiting_times_span_many_decades() {
    let waits: Vec<f64> = dataset()
        .waiting_times_secs()
        .iter()
        .map(|&s| s as f64)
        .filter(|&s| s > 0.0)
        .collect();
    let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
    for &w in &waits {
        lo = lo.min(w);
        hi = hi.max(w);
    }
    let decades = (hi / lo).log10();
    // Paper: "span at least eight decades".
    assert!(decades >= 6.0, "waiting times span only {decades:.1} decades");
}

#[test]
fn fig3_population_correlation_strong_and_ordered() {
    let exp = experiment();
    let pooled = exp.pooled_population().expect("pooled correlation");
    // Paper: r = 0.816, p = 2.06e-15 over 60 samples.
    assert_eq!(pooled.pooled.n, 60);
    assert!(pooled.pooled.r > 0.75, "pooled r = {}", pooled.pooled.r);
    assert!(
        pooled.pooled.p_two_tailed < 1e-10,
        "p = {}",
        pooled.pooled.p_two_tailed
    );
    // "the correlation appears to weaken as the population size and
    // geographic scale decrease": National ≥ Metropolitan.
    let national = &pooled.per_scale[0];
    let metro = &pooled.per_scale[2];
    assert!(
        national.correlation.r > metro.correlation.r,
        "national {} vs metro {}",
        national.correlation.r,
        metro.correlation.r
    );
}

#[test]
fn fig3b_metro_correlation_degrades_at_half_km_radius() {
    let exp = experiment();
    let at_2km = exp
        .population_correlation_with_radius(Scale::Metropolitan, 2.0)
        .unwrap();
    let at_half_km = exp
        .population_correlation_with_radius(Scale::Metropolitan, 0.5)
        .unwrap();
    assert!(
        at_half_km.correlation.r < at_2km.correlation.r,
        "0.5 km r = {} should be below 2 km r = {}",
        at_half_km.correlation.r,
        at_2km.correlation.r
    );
}

#[test]
fn table2_gravity_beats_radiation() {
    let exp = experiment();
    let table = exp.scale_comparison().expect("table II");
    let mut gravity_hit_sum = 0.0;
    let mut radiation_hit_sum = 0.0;
    for row in &table {
        let g2 = row.report.evaluation("Gravity 2Param").unwrap();
        let rad = row.report.evaluation("Radiation").unwrap();
        // Pearson ordering holds at every scale (paper Table II).
        assert!(
            g2.pearson > rad.pearson,
            "{}: g2 {} vs radiation {}",
            row.scale,
            g2.pearson,
            rad.pearson
        );
        // All models stay in the paper's credible band.
        assert!(g2.pearson > 0.6, "{}: g2 r = {}", row.scale, g2.pearson);
        gravity_hit_sum += g2.hit_rate_50;
        radiation_hit_sum += rad.hit_rate_50;
    }
    assert!(
        gravity_hit_sum > radiation_hit_sum,
        "gravity mean hit {} vs radiation {}",
        gravity_hit_sum / 3.0,
        radiation_hit_sum / 3.0
    );
}

#[test]
fn table2_gravity_exponents_are_physical() {
    let exp = experiment();
    for scale in Scale::ALL {
        let report = exp.mobility(scale).unwrap();
        // Distance decay must be positive (flows fall with distance) and
        // below the implausible regime.
        assert!(
            report.gravity2.gamma > 0.2 && report.gravity2.gamma < 4.0,
            "{}: gamma {}",
            scale.name(),
            report.gravity2.gamma
        );
        // Population exponents positive: bigger places exchange more.
        assert!(report.gravity4.alpha > 0.0, "{}", scale.name());
        assert!(report.gravity4.beta > 0.0, "{}", scale.name());
    }
}
