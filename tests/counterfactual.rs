//! E11 acceptance test: the Gravity-over-Radiation gap is geographic.
//!
//! Same generator, same travel kernel, two worlds: coastal Australia vs
//! a uniform jittered-grid country with the same total population. The
//! paper's §IV explanation predicts Radiation recovers accuracy on the
//! even geography; this test pins that prediction at the state-scale
//! analogue, where the Australian deficit is largest.

use tweetmob::core::{AreaSet, Experiment, PopulationSource, Scale};
use tweetmob::geo::haversine_km;
use tweetmob::stats::concentration::gini;
use tweetmob::synth::counterfactual::uniform_country_places;
use tweetmob::synth::gazetteer::world_places;
use tweetmob::synth::{Area, GeneratorConfig, Place, TweetGenerator};

fn central_region(places: &[Place], k: usize) -> Vec<Area> {
    let total: f64 = places.iter().map(|p| p.area.population as f64).sum();
    let clat = places
        .iter()
        .map(|p| p.area.center.lat * p.area.population as f64)
        .sum::<f64>()
        / total;
    let clon = places
        .iter()
        .map(|p| p.area.center.lon * p.area.population as f64)
        .sum::<f64>()
        / total;
    let centre = tweetmob::geo::Point::new_unchecked(clat, clon);
    let mut areas: Vec<Area> = places.iter().map(|p| p.area).collect();
    areas.sort_by(|a, b| haversine_km(centre, a.center).total_cmp(&haversine_km(centre, b.center)));
    areas.truncate(k);
    areas.sort_by_key(|a| std::cmp::Reverse(a.population));
    areas
}

#[test]
fn radiation_recovers_on_even_geography() {
    let cfg = GeneratorConfig::default();
    let australia = world_places();
    let total_pop: u64 = australia.iter().map(|p| p.area.population).sum();
    let uniform = uniform_country_places(8, 6, total_pop, cfg.seed);

    // Precondition: the worlds really differ in spatial concentration.
    let apops: Vec<f64> = australia.iter().map(|p| p.area.population as f64).collect();
    let upops: Vec<f64> = uniform.iter().map(|p| p.area.population as f64).collect();
    assert!(gini(&apops).unwrap() > gini(&upops).unwrap() + 0.3);

    // Australia, state scale (the paper's worst case for Radiation).
    let aus_ds = TweetGenerator::with_places(cfg.clone(), australia).generate();
    let aus_exp = Experiment::new(&aus_ds);
    let aus = aus_exp
        .mobility_with(
            &AreaSet::of_scale(Scale::State),
            PopulationSource::Twitter,
            "aus-state".into(),
        )
        .expect("australian state mobility");

    // Uniform country, state-scale analogue.
    let uni_areas = central_region(&uniform, 20);
    let uni_ds = TweetGenerator::with_places(cfg, uniform).generate();
    let uni_exp = Experiment::new(&uni_ds);
    let uni = uni_exp
        .mobility_with(
            &AreaSet::new(uni_areas, 25.0),
            PopulationSource::Twitter,
            "uniform-state".into(),
        )
        .expect("uniform state mobility");

    let gap = |r: &tweetmob::core::MobilityReport| {
        r.evaluation("Gravity 2Param").unwrap().pearson
            - r.evaluation("Radiation").unwrap().pearson
    };
    let aus_gap = gap(&aus);
    let uni_gap = gap(&uni);
    assert!(
        uni_gap < aus_gap,
        "gap should shrink on even geography: australia {aus_gap:+.3}, uniform {uni_gap:+.3}"
    );

    // Radiation's absolute accuracy also improves on the even world.
    let aus_rad = aus.evaluation("Radiation").unwrap();
    let uni_rad = uni.evaluation("Radiation").unwrap();
    assert!(
        uni_rad.hit_rate_50 > aus_rad.hit_rate_50,
        "radiation hit rate: australia {:.3}, uniform {:.3}",
        aus_rad.hit_rate_50,
        uni_rad.hit_rate_50
    );
    assert!(
        uni_rad.pearson > aus_rad.pearson,
        "radiation pearson: australia {:.3}, uniform {:.3}",
        aus_rad.pearson,
        uni_rad.pearson
    );
}
