//! Whole-pipeline determinism: identical config ⇒ bit-identical dataset,
//! experiment results and simulations — the property that makes
//! EXPERIMENTS.md numbers reproducible on any machine and thread count.

use tweetmob::core::{Experiment, Scale};
use tweetmob::epidemic::{MobilityNetwork, OutbreakScenario};
use tweetmob::synth::{GeneratorConfig, TweetGenerator};

fn config() -> GeneratorConfig {
    let mut cfg = GeneratorConfig::small();
    cfg.n_users = 3_000;
    cfg
}

#[test]
fn generator_is_bit_identical_across_runs() {
    let a = TweetGenerator::new(config()).generate();
    let b = TweetGenerator::new(config()).generate();
    assert_eq!(a.n_tweets(), b.n_tweets());
    assert!(a.iter_tweets().zip(b.iter_tweets()).all(|(x, y)| x == y));
}

#[test]
fn experiment_results_are_reproducible() {
    let a = TweetGenerator::new(config()).generate();
    let b = TweetGenerator::new(config()).generate();
    let ea = Experiment::new(&a);
    let eb = Experiment::new(&b);
    let pa = ea.population_correlation(Scale::National).unwrap();
    let pb = eb.population_correlation(Scale::National).unwrap();
    assert_eq!(pa.correlation.r, pb.correlation.r);
    let ma = ea.mobility(Scale::National).unwrap();
    let mb = eb.mobility(Scale::National).unwrap();
    assert_eq!(ma.gravity2.gamma, mb.gravity2.gamma);
    assert_eq!(ma.od_total, mb.od_total);
}

#[test]
fn different_seed_changes_everything_downstream() {
    let a = TweetGenerator::new(config()).generate();
    let b = TweetGenerator::new(config().with_seed(424242)).generate();
    let ga = Experiment::new(&a).mobility(Scale::National).unwrap();
    let gb = Experiment::new(&b).mobility(Scale::National).unwrap();
    assert_ne!(ga.od_total, gb.od_total);
    assert_ne!(ga.gravity2.gamma, gb.gravity2.gamma);
}

#[test]
fn per_user_location_counts_are_reproducible() {
    // `distinct_locations_per_user` dedups venues through an ordered set;
    // its output must be identical across runs and across repeated calls
    // on the same dataset (no hash-iteration-order dependence).
    let a = TweetGenerator::new(config()).generate();
    let b = TweetGenerator::new(config()).generate();
    let la = a.distinct_locations_per_user(0.01);
    assert_eq!(la, b.distinct_locations_per_user(0.01));
    assert_eq!(la, a.distinct_locations_per_user(0.01));
    assert_eq!(la.len(), a.n_users());
}

#[test]
fn venue_revisit_coordinates_are_bit_identical() {
    // The generator's per-user venue memory must replay the exact same
    // coordinates run-to-run — not just the same counts. Compare the full
    // coordinate stream at the bit level.
    let a = TweetGenerator::new(config()).generate();
    let b = TweetGenerator::new(config()).generate();
    let coords = |ds: &tweetmob::data::TweetDataset| -> Vec<(u64, u64)> {
        ds.iter_tweets()
            .map(|t| (t.location.lat.to_bits(), t.location.lon.to_bits()))
            .collect()
    };
    assert_eq!(coords(&a), coords(&b));
}

#[test]
fn stochastic_epidemic_reproducible_given_seed() {
    let net = MobilityNetwork::from_flows(
        vec![100_000.0, 60_000.0, 40_000.0],
        &[(0, 1, 5.0), (1, 0, 5.0), (1, 2, 2.0), (2, 1, 2.0)],
        0.04,
    )
    .unwrap();
    let scenario = OutbreakScenario::new(net, 0.5, 0.2).seed(0, 25.0);
    let a = scenario.run_stochastic(120.0, 0.25, 7).unwrap();
    let b = scenario.run_stochastic(120.0, 0.25, 7).unwrap();
    assert_eq!(a.infected, b.infected);
    let c = scenario.run_stochastic(120.0, 0.25, 8).unwrap();
    assert_ne!(a.infected, c.infected);
}
