//! End-to-end integration: generator → I/O → experiment → models →
//! epidemic, across every crate in the workspace.

use std::sync::OnceLock;
use tweetmob::core::{AreaSet, Experiment, PopulationSource, Scale};
use tweetmob::data::{io, DatasetSummary, TweetDataset};
use tweetmob::epidemic::{MobilityNetwork, OutbreakScenario};
use tweetmob::geo::{DensityGrid, AUSTRALIA_BBOX};
use tweetmob::models::InterveningPopulation;
use tweetmob::synth::{GeneratorConfig, TweetGenerator};

fn dataset() -> &'static TweetDataset {
    static DS: OnceLock<TweetDataset> = OnceLock::new();
    DS.get_or_init(|| {
        let mut cfg = GeneratorConfig::small();
        cfg.n_users = 5_000;
        TweetGenerator::new(cfg).generate()
    })
}

#[test]
fn jsonl_roundtrip_preserves_experiment_results() {
    let ds = dataset();
    let mut buf = Vec::new();
    io::write_jsonl(ds, &mut buf).expect("serialise");
    let back = io::read_jsonl(&buf[..]).expect("deserialise");
    assert_eq!(ds.n_tweets(), back.n_tweets());
    // Population estimates must be identical after a round trip.
    let a = Experiment::new(ds)
        .population_correlation(Scale::National)
        .unwrap();
    let b = Experiment::new(&back)
        .population_correlation(Scale::National)
        .unwrap();
    for (x, y) in a.areas.iter().zip(&b.areas) {
        assert_eq!(x.twitter_users, y.twitter_users, "{}", x.name);
    }
}

#[test]
fn csv_roundtrip_preserves_dataset() {
    let ds = dataset();
    let mut buf = Vec::new();
    io::write_csv(ds, &mut buf).expect("serialise");
    let back = io::read_csv(&buf[..]).expect("deserialise");
    assert_eq!(ds.n_tweets(), back.n_tweets());
    assert_eq!(ds.n_users(), back.n_users());
    let sa = DatasetSummary::of(ds);
    let sb = DatasetSummary::of(&back);
    assert_eq!(sa.n_tweets, sb.n_tweets);
    assert!((sa.avg_waiting_time_hours - sb.avg_waiting_time_hours).abs() < 1e-9);
}

#[test]
fn density_grid_covers_all_generated_tweets() {
    let ds = dataset();
    let mut grid = DensityGrid::new(AUSTRALIA_BBOX, 0.25);
    grid.extend(ds.iter_points());
    assert_eq!(grid.total() as usize, ds.n_tweets());
    assert_eq!(grid.dropped(), 0, "generator must stay inside the bbox");
}

#[test]
fn mobility_fit_feeds_epidemic_simulation() {
    let ds = dataset();
    let exp = Experiment::new(ds);
    let report = exp.mobility(Scale::National).expect("mobility fit");

    let areas = AreaSet::of_scale(Scale::National);
    let populations = areas.census_populations();
    let n = areas.len();
    let distances: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| areas.distance_km(i, j)).collect())
        .collect();
    let centers = areas.centers();
    let calc = InterveningPopulation::build(&centers, &populations);
    let intervening: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| if i == j { 0.0 } else { calc.s(i, j) })
                .collect()
        })
        .collect();
    let net = MobilityNetwork::from_model(
        &report.gravity2,
        populations,
        &distances,
        &intervening,
        0.02,
    )
    .expect("network");
    let tl = OutbreakScenario::new(net, 0.5, 0.2)
        .seed(0, 50.0)
        .run_deterministic(200.0, 0.25)
        .expect("simulation");
    // The outbreak must leave Sydney and reach Melbourne (patch 1).
    assert!(tl.final_size(1) > 1_000.0, "melbourne {}", tl.final_size(1));
    // Arrival order respects the mobility structure: Melbourne (huge,
    // close) before Darwin (small, far — last patch index 14).
    let mel = tl.arrival_time(1, 100.0).expect("melbourne reached");
    let darwin = tl.arrival_time(14, 100.0).expect("darwin reached");
    assert!(mel < darwin, "melbourne {mel} vs darwin {darwin}");
}

#[test]
fn effective_distance_beats_geography_as_arrival_predictor() {
    use tweetmob::epidemic::{arrival_time_correlation, effective_distance_from};
    let ds = dataset();
    let exp = Experiment::new(ds);
    let report = exp.mobility(Scale::National).expect("mobility fit");
    let areas = AreaSet::of_scale(Scale::National);
    let n = areas.len();
    let populations = areas.census_populations();
    let distances: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| areas.distance_km(i, j)).collect())
        .collect();
    let centers = areas.centers();
    let calc = InterveningPopulation::build(&centers, &populations);
    let intervening: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| if i == j { 0.0 } else { calc.s(i, j) })
                .collect()
        })
        .collect();
    let net = MobilityNetwork::from_model(
        &report.gravity2,
        populations,
        &distances,
        &intervening,
        0.02,
    )
    .expect("network");
    let tl = OutbreakScenario::new(net.clone(), 0.5, 0.2)
        .seed(0, 20.0)
        .run_deterministic(365.0, 0.25)
        .expect("simulation");
    let d_eff = effective_distance_from(&net, 0);
    let d_geo: Vec<f64> = (0..n).map(|j| areas.distance_km(0, j)).collect();
    let c_eff = arrival_time_correlation(&d_eff, &tl, 0, 100.0).expect("eff");
    let c_geo = arrival_time_correlation(&d_geo, &tl, 0, 100.0).expect("geo");
    assert!(
        c_eff.correlation.r > c_geo.correlation.r + 0.1,
        "effective {:.3} should clearly beat geographic {:.3}",
        c_eff.correlation.r,
        c_geo.correlation.r
    );
    assert!(c_eff.correlation.r > 0.9, "effective r = {}", c_eff.correlation.r);
}

#[test]
fn binary_format_roundtrips_through_full_pipeline() {
    use tweetmob::data::binary;
    let ds = dataset();
    let mut buf = Vec::new();
    binary::write_binary(ds, &mut buf).expect("serialise");
    // Compact: strictly under 30 bytes/tweet including the header.
    assert!(buf.len() < 30 * ds.n_tweets());
    let back = binary::read_binary(&buf[..]).expect("deserialise");
    let a = Experiment::new(ds).mobility(Scale::National).unwrap();
    let b = Experiment::new(&back).mobility(Scale::National).unwrap();
    assert_eq!(a.od_total, b.od_total);
    assert_eq!(a.gravity2.gamma, b.gravity2.gamma);
}

#[test]
fn census_and_twitter_population_sources_agree_on_ordering() {
    let ds = dataset();
    let exp = Experiment::new(ds);
    let tw = exp
        .mobility_with(
            &AreaSet::of_scale(Scale::National),
            PopulationSource::Twitter,
            "tw".into(),
        )
        .unwrap();
    let cs = exp
        .mobility_with(
            &AreaSet::of_scale(Scale::National),
            PopulationSource::Census,
            "cs".into(),
        )
        .unwrap();
    // Both population sources must support a decent gravity fit — the
    // paper's census-swap proposal rests on this.
    let tw_g2 = tw.evaluation("Gravity 2Param").unwrap().pearson;
    let cs_g2 = cs.evaluation("Gravity 2Param").unwrap().pearson;
    assert!(tw_g2 > 0.5, "twitter-fed r = {tw_g2}");
    assert!(cs_g2 > 0.5, "census-fed r = {cs_g2}");
}

#[test]
fn filter_bbox_is_identity_on_generated_data() {
    let ds = dataset();
    let filtered = ds.filter_bbox(&AUSTRALIA_BBOX);
    assert_eq!(filtered.n_tweets(), ds.n_tweets());
    assert_eq!(filtered.n_users(), ds.n_users());
}
