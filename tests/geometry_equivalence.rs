//! Equivalence suite for the geometry cache (DESIGN.md §11): the cached
//! fitting path (`PairGeometry` + columnar `FitColumns` kernel) must
//! produce **byte-identical** model fits to the pre-cache scalar path,
//! on every paper scale, at one worker thread and at eight.
//!
//! This is the contract that makes `--no-geometry-cache` a pure A/B
//! switch: the cache changes wall-clock time and the `cache/pairgeo/*`
//! metrics, and nothing else. `with_threads` serialises callers on a
//! global lock, so these tests are safe under the parallel test runner.

use tweetmob::core::{Experiment, Scale};
use tweetmob::models::{Gravity4Fit, GravityGrid};
use tweetmob::par::with_threads;
use tweetmob::synth::{GeneratorConfig, TweetGenerator};

fn config() -> GeneratorConfig {
    let mut cfg = GeneratorConfig::small();
    cfg.n_users = 2_000;
    cfg
}

/// One mobility run serialised to its canonical JSON document.
fn report_json(ds: &tweetmob::data::TweetDataset, scale: Scale, cache: bool) -> String {
    let mut exp = Experiment::new(ds);
    exp.set_geometry_cache(cache);
    let report = exp.mobility(scale).expect("mobility report");
    serde_json::to_string(&report).expect("report serializes")
}

#[test]
fn cached_and_direct_fits_are_bit_identical_on_every_scale() {
    let ds = TweetGenerator::new(config()).generate();
    for scale in Scale::ALL {
        // Cached at 1 thread is the baseline; the direct path and the
        // 8-thread runs of both must reproduce it byte for byte.
        let baseline = with_threads(1, || report_json(&ds, scale, true));
        for threads in [1usize, 8] {
            for cache in [true, false] {
                let run = with_threads(threads, || report_json(&ds, scale, cache));
                assert_eq!(
                    baseline,
                    run,
                    "{} scale: cache={cache} at {threads} thread(s) diverged",
                    scale.name()
                );
            }
        }
    }
}

#[test]
fn columnar_grid_search_matches_the_reference_fitter() {
    let ds = TweetGenerator::new(config()).generate();
    let exp = Experiment::new(&ds);
    let report = with_threads(1, || {
        exp.mobility(Scale::National).expect("mobility report")
    });
    let grid = GravityGrid::default();
    let baseline = serde_json::to_string(&with_threads(1, || {
        Gravity4Fit::fit_grid_reference(&report.observations, &grid).expect("reference fit")
    }))
    .expect("fit serializes");
    for threads in [1usize, 8] {
        let columnar = serde_json::to_string(&with_threads(threads, || {
            Gravity4Fit::fit_grid(&report.observations, &grid).expect("columnar fit")
        }))
        .expect("fit serializes");
        assert_eq!(
            baseline, columnar,
            "columnar grid search diverged from the reference at {threads} thread(s)"
        );
        let reference = serde_json::to_string(&with_threads(threads, || {
            Gravity4Fit::fit_grid_reference(&report.observations, &grid).expect("reference fit")
        }))
        .expect("fit serializes");
        assert_eq!(
            baseline, reference,
            "reference fitter is not thread-count invariant at {threads} thread(s)"
        );
    }
}
