// lint: allow(crate-header) — a GlobalAlloc impl is necessarily unsafe; this is the one workspace crate that cannot forbid unsafe_code, and it is kept to the four trait methods below.
//! # tweetmob-alloc
//!
//! A counting wrapper around the system allocator, feeding the
//! perf-regression harness's per-span memory gauges.
//!
//! The binary that wants allocation accounting installs it (behind its
//! own feature gate, so release binaries pay nothing by default):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: tweetmob_alloc::CountingAlloc = tweetmob_alloc::CountingAlloc;
//! ```
//!
//! Every allocation/deallocation updates four process-wide relaxed
//! atomics: total allocation count, total bytes ever allocated, live
//! bytes, and the high-water mark of live bytes. [`snapshot`] reads
//! them; `tweetmob-obs` (with its `alloc` feature on) snapshots at span
//! open and close and publishes `alloc/<span>/{allocations,peak_bytes}`
//! gauges. When no [`CountingAlloc`] is installed the statics stay
//! zero and [`is_counting`] reports `false`, so the gauges never
//! appear.
//!
//! Counts are execution-shape data, not results: allocation totals
//! vary with thread count and allocator behaviour, which is why the
//! metrics redaction zeroes every `alloc/` gauge.

#![deny(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static CURRENT_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// A point-in-time reading of the allocation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Total allocations since process start.
    pub allocations: u64,
    /// Total bytes ever allocated (never decremented).
    pub allocated_bytes: u64,
    /// Bytes currently live.
    pub current_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
}

/// Reads the current counters. All-zero unless a [`CountingAlloc`] is
/// installed as the global allocator.
#[must_use]
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        allocated_bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
        current_bytes: CURRENT_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
    }
}

/// Whether a [`CountingAlloc`] is live in this process. Detected by the
/// counters moving — any Rust program allocates long before user code
/// asks this question.
#[must_use]
pub fn is_counting() -> bool {
    ALLOCATIONS.load(Ordering::Relaxed) > 0
}

fn on_alloc(bytes: usize) {
    let bytes = bytes as u64;
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    ALLOCATED_BYTES.fetch_add(bytes, Ordering::Relaxed);
    let live = CURRENT_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(bytes: usize) {
    CURRENT_BYTES.fetch_sub(bytes as u64, Ordering::Relaxed);
}

/// The counting allocator: [`System`] plus four relaxed atomic updates
/// per call. Install with `#[global_allocator]`.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

// SAFETY: every method delegates to `System`, which upholds the
// GlobalAlloc contract; the counter updates touch only atomics and
// never allocate, so no reentrancy is possible.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            // Count a realloc as one allocation of the new size and a
            // free of the old, keeping live-byte accounting exact.
            on_alloc(new_size);
            on_dealloc(layout.size());
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install CountingAlloc, so the counters
    // only move when driven by hand.
    #[test]
    fn counters_track_alloc_dealloc_and_peak() {
        let before = snapshot();
        on_alloc(100);
        on_alloc(50);
        on_dealloc(100);
        on_alloc(25);
        let after = snapshot();
        assert_eq!(after.allocations, before.allocations + 3);
        assert_eq!(after.allocated_bytes, before.allocated_bytes + 175);
        assert_eq!(after.current_bytes, before.current_bytes + 75);
        assert!(after.peak_bytes >= before.current_bytes + 150);
        assert!(is_counting());
    }
}
