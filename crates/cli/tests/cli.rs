//! End-to-end tests of the `tweetmob` binary: real process spawns over
//! temp files, covering every subcommand and the error paths a user hits
//! first.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tweetmob"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tweetmob-cli-test-{}-{name}", std::process::id()));
    p
}

fn run(args: &[&str]) -> Output {
    bin().args(args).output().expect("spawn tweetmob")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn help_prints_usage_and_succeeds() {
    for args in [&["help"][..], &["--help"][..], &[][..]] {
        let out = run(args);
        assert!(out.status.success(), "{args:?}");
        assert!(stdout(&out).contains("USAGE"));
        assert!(stdout(&out).contains("generate"));
    }
}

#[test]
fn unknown_command_fails_with_hint() {
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
    assert!(stderr(&out).contains("help"));
}

#[test]
fn generate_summary_population_mobility_pipeline() {
    let path = tmp("pipeline.jsonl");
    let path_str = path.to_str().unwrap();

    // generate
    let out = run(&["generate", path_str, "--users", "1500", "--seed", "11"]);
    assert!(out.status.success(), "generate: {}", stderr(&out));
    assert!(stdout(&out).contains("1500 users"));

    // summary
    let out = run(&["summary", path_str]);
    assert!(out.status.success(), "summary: {}", stderr(&out));
    assert!(stdout(&out).contains("No. unique users   : 1500"));

    // population (national default)
    let out = run(&["population", path_str]);
    assert!(out.status.success(), "population: {}", stderr(&out));
    assert!(stdout(&out).contains("Sydney"));
    assert!(stdout(&out).contains("r(log)"));

    // mobility with extensions
    let out = run(&["mobility", path_str, "--scale", "national", "--extended"]);
    assert!(out.status.success(), "mobility: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("Gravity 2Param"));
    assert!(text.contains("Radiation"));
    assert!(text.contains("Gravity IPF"));

    std::fs::remove_file(&path).ok();
}

#[test]
fn binary_format_roundtrips_via_cli() {
    let path = tmp("roundtrip.twb");
    let path_str = path.to_str().unwrap();
    let out = run(&["generate", path_str, "--users", "400", "--seed", "5"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = run(&["summary", path_str]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("No. unique users   : 400"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn csv_format_roundtrips_via_cli() {
    let path = tmp("roundtrip.csv");
    let path_str = path.to_str().unwrap();
    let out = run(&["generate", path_str, "--users", "300", "--seed", "6"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let head = std::fs::read_to_string(&path).unwrap();
    assert!(head.starts_with("user,time_secs,lat,lon"));
    let out = run(&["summary", path_str]);
    assert!(out.status.success(), "{}", stderr(&out));
    std::fs::remove_file(&path).ok();
}

#[test]
fn epidemic_command_runs_with_restriction() {
    let path = tmp("epi.jsonl");
    let path_str = path.to_str().unwrap();
    assert!(
        run(&["generate", path_str, "--users", "3000", "--seed", "8"])
            .status
            .success()
    );
    let out = run(&[
        "epidemic",
        path_str,
        "--beta",
        "0.5",
        "--gamma",
        "0.2",
        "--days",
        "120",
        "--restrict",
        "30:0.1",
        "--seed-city",
        "Melbourne",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("Melbourne"));
    assert!(text.contains("arrival(day)"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn export_writes_machine_readable_results() {
    let data = tmp("export.jsonl");
    let out_json = tmp("export-results.json");
    assert!(run(&[
        "generate",
        data.to_str().unwrap(),
        "--users",
        "4000",
        "--seed",
        "13"
    ])
    .status
    .success());
    let out = run(&["export", data.to_str().unwrap(), out_json.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = std::fs::read_to_string(&out_json).unwrap();
    let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(doc["n_users"], 4000);
    assert_eq!(doc["scales"].as_array().unwrap().len(), 3);
    assert_eq!(doc["scales"][0]["scale"], "National");
    assert!(doc["scales"][0]["mobility"]["gravity2"]["gamma"].is_number());
    assert!(doc["pooled_population_correlation"]["r"].as_f64().unwrap() > 0.5);
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&out_json).ok();
}

#[test]
fn metrics_out_writes_stage_spans_and_counters() {
    let data = tmp("metrics.jsonl");
    let metrics = tmp("metrics-out.json");
    assert!(run(&[
        "generate",
        data.to_str().unwrap(),
        "--users",
        "1200",
        "--seed",
        "3"
    ])
    .status
    .success());
    let out = run(&[
        "mobility",
        data.to_str().unwrap(),
        "--scale",
        "national",
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--trace",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("wrote pipeline metrics"), "{err}");
    assert!(
        err.contains("load"),
        "trace should list the load span: {err}"
    );
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    for span in [
        "load",
        "load/read_jsonl",
        "trips",
        "population",
        "odmatrix",
        "fit/gravity4",
        "fit/gravity2",
        "fit/radiation",
        "fit/opportunities",
        "evaluate",
    ] {
        assert!(
            doc["timing"]["spans"].get(span).is_some(),
            "missing span {span}"
        );
    }
    assert!(doc["counters"]["data/tweets_read"].as_u64().unwrap() > 0);
    assert!(doc["counters"]["trips/extracted"].as_u64().unwrap() > 0);
    assert!(doc["gauges"]["odmatrix/nonzero_pairs"].as_i64().unwrap() > 0);
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&metrics).ok();
}

/// Zeroes every `*_ns` field (span durations and latency histograms) so
/// two runs can be compared on everything else.
fn redact_durations(v: &mut serde_json::Value) {
    match v {
        serde_json::Value::Object(map) => {
            for (k, val) in map.iter_mut() {
                if k.ends_with("_ns") {
                    *val = serde_json::json!(0);
                } else {
                    redact_durations(val);
                }
            }
        }
        serde_json::Value::Array(a) => a.iter_mut().for_each(redact_durations),
        _ => {}
    }
}

#[test]
fn metrics_identical_across_same_seed_runs_modulo_durations() {
    let data = tmp("det.jsonl");
    assert!(run(&[
        "generate",
        data.to_str().unwrap(),
        "--users",
        "900",
        "--seed",
        "21"
    ])
    .status
    .success());
    let mut docs = Vec::new();
    for name in ["det-a.json", "det-b.json"] {
        let metrics = tmp(name);
        let out = run(&[
            "mobility",
            data.to_str().unwrap(),
            "--scale",
            "national",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "{}", stderr(&out));
        let mut doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        redact_durations(&mut doc);
        docs.push(doc);
        std::fs::remove_file(&metrics).ok();
    }
    assert_eq!(
        docs[0], docs[1],
        "same-seed runs must agree on everything but durations"
    );
    std::fs::remove_file(&data).ok();
}

/// Drops the `par/<stage>/*` gauges: they describe execution shape
/// (thread and chunk counts) and differ across thread counts by design.
fn redact_par_gauges(v: &mut serde_json::Value) {
    if let Some(gauges) = v.get_mut("gauges").and_then(|g| g.as_object_mut()) {
        gauges.retain(|k, _| !k.starts_with("par/"));
    }
}

/// Drops manifest fields that differ between the runs by construction:
/// the per-run output path appears in `args` and `outputs`, and
/// `threads` is the variable under test. Everything else in the
/// manifest — input fingerprints, subcommand, crate versions — must
/// still agree.
fn redact_run_identity(v: &mut serde_json::Value) {
    if let Some(m) = v.get_mut("manifest").and_then(|m| m.as_object_mut()) {
        m.retain(|k, _| !matches!(k.as_str(), "args" | "threads" | "outputs"));
    }
}

#[test]
fn results_byte_identical_across_thread_counts() {
    let data = tmp("threads.jsonl");
    assert!(run(&[
        "generate",
        data.to_str().unwrap(),
        "--users",
        "4000",
        "--seed",
        "17"
    ])
    .status
    .success());
    let mut exports = Vec::new();
    let mut metric_docs = Vec::new();
    for (name, threads) in [("threads-1", "1"), ("threads-8", "8")] {
        let out_json = tmp(&format!("{name}.json"));
        let metrics = tmp(&format!("{name}-metrics.json"));
        let out = run(&[
            "export",
            data.to_str().unwrap(),
            out_json.to_str().unwrap(),
            "--threads",
            threads,
            "--metrics-out",
            metrics.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "--threads {threads}: {}",
            stderr(&out)
        );
        exports.push(std::fs::read(&out_json).unwrap());
        let mut doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        redact_durations(&mut doc);
        redact_par_gauges(&mut doc);
        redact_run_identity(&mut doc);
        metric_docs.push(doc);
        std::fs::remove_file(&out_json).ok();
        std::fs::remove_file(&metrics).ok();
    }
    assert_eq!(
        exports[0], exports[1],
        "exported results must be byte-identical at 1 vs 8 threads"
    );
    assert_eq!(
        metric_docs[0], metric_docs[1],
        "metrics must agree modulo durations and par/ execution-shape gauges"
    );

    // The TWEETMOB_THREADS env var is an equivalent control.
    let out_json = tmp("threads-env.json");
    let out = bin()
        .args(["export", data.to_str().unwrap(), out_json.to_str().unwrap()])
        .env("TWEETMOB_THREADS", "8")
        .output()
        .expect("spawn tweetmob");
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(
        std::fs::read(&out_json).unwrap(),
        exports[0],
        "env-pinned run must match the flag-pinned runs"
    );
    std::fs::remove_file(&out_json).ok();
    std::fs::remove_file(&data).ok();
}

#[test]
fn bad_threads_value_reports_the_flag() {
    let out = run(&["summary", "/tmp/whatever.jsonl", "--threads", "zero"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("threads"));
    let out = run(&["summary", "/tmp/whatever.jsonl", "--threads", "0"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("threads"));
}

#[test]
fn failed_command_still_emits_metrics() {
    let bad = tmp("bad.jsonl");
    std::fs::write(&bad, "not json\n").unwrap();
    let metrics = tmp("bad-metrics.json");
    let out = run(&[
        "summary",
        bad.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(
        err.contains(bad.to_str().unwrap()),
        "error names the path: {err}"
    );
    assert!(
        err.contains("line 1"),
        "error names the failing record: {err}"
    );
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    assert_eq!(doc["counters"]["data/load_errors"], 1);
    // The failure document still carries the partial span tree, the
    // trace events that led up to the error, the run manifest with the
    // corrupt input stamped, and the outcome gauge.
    assert_eq!(doc["gauges"]["run/outcome"], 1);
    assert_eq!(doc["manifest"]["outcome"], "error");
    assert_eq!(doc["manifest"]["subcommand"], "summary");
    assert_eq!(
        doc["manifest"]["inputs"][0]["path"],
        serde_json::json!(bad.to_str().unwrap())
    );
    assert_eq!(doc["manifest"]["inputs"][0]["bytes"], 9);
    assert!(doc["timing"]["spans"]["load"]["calls"].as_u64().is_some());
    let events = doc["trace"]["events"].as_array().unwrap();
    assert!(
        events
            .iter()
            .any(|e| e["path"] == "load" && e["phase"] == "B"),
        "trace records the span that was open when the run died: {events:?}"
    );
    std::fs::remove_file(&bad).ok();
    std::fs::remove_file(&metrics).ok();
}

#[test]
fn successful_run_manifest_records_outcome_inputs_and_seed() {
    let data = tmp("manifest.jsonl");
    let metrics = tmp("manifest-metrics.json");
    assert!(run(&[
        "generate",
        data.to_str().unwrap(),
        "--users",
        "400",
        "--seed",
        "23",
        "--metrics-out",
        metrics.to_str().unwrap(),
    ])
    .status
    .success());
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    assert_eq!(doc["gauges"]["run/outcome"], 0);
    let manifest = &doc["manifest"];
    assert_eq!(manifest["subcommand"], "generate");
    assert_eq!(manifest["outcome"], "ok");
    assert_eq!(manifest["seed"], 23);
    assert_eq!(manifest["schema_version"], 1);
    // Normalized args: positional + sorted flags, no --metrics-out.
    let args: Vec<&str> = manifest["args"]
        .as_array()
        .unwrap()
        .iter()
        .map(|a| a.as_str().unwrap())
        .collect();
    assert_eq!(
        args,
        vec![data.to_str().unwrap(), "--seed=23", "--users=400"]
    );
    // The generated dataset is stamped as an output with its hash.
    let outputs = manifest["outputs"].as_array().unwrap();
    assert_eq!(outputs.len(), 1);
    assert_eq!(outputs[0]["path"], serde_json::json!(data.to_str().unwrap()));
    assert_eq!(
        outputs[0]["bytes"].as_u64().unwrap(),
        std::fs::metadata(&data).unwrap().len()
    );
    assert_eq!(outputs[0]["fnv1a64"].as_str().unwrap().len(), 16);
    assert!(manifest["threads"].as_u64().unwrap() >= 1);
    assert!(manifest["crates"]["tweetmob-cli"].is_string());
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&metrics).ok();
}

#[test]
fn redacted_metrics_byte_identical_across_thread_counts() {
    let data = tmp("redacted.jsonl");
    assert!(run(&[
        "generate",
        data.to_str().unwrap(),
        "--users",
        "2500",
        "--seed",
        "31"
    ])
    .status
    .success());
    let mut docs = Vec::new();
    for (name, threads) in [("red-1", "1"), ("red-8", "8")] {
        let metrics = tmp(&format!("{name}.json"));
        let out = run(&[
            "mobility",
            data.to_str().unwrap(),
            "--scale",
            "national",
            "--threads",
            threads,
            "--metrics-redacted",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "{}", stderr(&out));
        docs.push(std::fs::read(&metrics).unwrap());
        std::fs::remove_file(&metrics).ok();
    }
    // No JSON-level normalization: the redacted document — including
    // the trace events and the manifest — must already be byte-stable.
    assert_eq!(
        docs[0], docs[1],
        "redacted metrics must be byte-identical at 1 vs 8 threads"
    );
    std::fs::remove_file(&data).ok();
}

#[test]
fn trace_out_exports_chrome_and_collapsed_formats() {
    let data = tmp("traceout.jsonl");
    assert!(run(&[
        "generate",
        data.to_str().unwrap(),
        "--users",
        "600",
        "--seed",
        "12"
    ])
    .status
    .success());
    let chrome = tmp("trace.json");
    let folded = tmp("trace.folded");
    let out = run(&[
        "mobility",
        data.to_str().unwrap(),
        "--trace-out",
        chrome.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&chrome).unwrap()).unwrap();
    let events = doc["traceEvents"].as_array().unwrap();
    assert!(!events.is_empty());
    assert!(events
        .iter()
        .all(|e| e["ph"] == "X" && e["pid"] == 1 && e["name"].is_string()));
    assert!(events.iter().any(|e| e["name"] == "load"));
    let out = run(&[
        "mobility",
        data.to_str().unwrap(),
        "--trace-out",
        folded.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = std::fs::read_to_string(&folded).unwrap();
    assert!(
        text.lines().any(|l| l.starts_with("load/read_jsonl ")
            || l.starts_with("load;read_jsonl ")),
        "collapsed stacks use ;-joined frames: {text}"
    );
    for line in text.lines() {
        let (_stack, weight) = line.rsplit_once(' ').expect("stack weight");
        weight.parse::<u64>().expect("numeric weight");
    }
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&chrome).ok();
    std::fs::remove_file(&folded).ok();
}

#[test]
fn fit_embeds_provenance_and_provenance_command_verifies_it() {
    let data = tmp("prov.jsonl");
    let artifact = tmp("prov.tma");
    assert!(run(&[
        "generate",
        data.to_str().unwrap(),
        "--users",
        "1200",
        "--seed",
        "19"
    ])
    .status
    .success());
    let out = run(&[
        "fit",
        data.to_str().unwrap(),
        "--artifact-out",
        artifact.to_str().unwrap(),
        "--scale",
        "national",
    ]);
    assert!(out.status.success(), "fit: {}", stderr(&out));

    // provenance prints the embedded manifest and verifies the input.
    let out = run(&["provenance", artifact.to_str().unwrap()]);
    assert!(out.status.success(), "provenance: {}", stderr(&out));
    let manifest: serde_json::Value = serde_json::from_str(&stdout(&out)).unwrap();
    assert_eq!(manifest["subcommand"], "fit");
    assert_eq!(manifest["schema_version"], 1);
    assert_eq!(
        manifest["inputs"][0]["path"],
        serde_json::json!(data.to_str().unwrap())
    );
    // Portable: no execution-shape or output fields inside an artifact.
    assert!(manifest.get("threads").is_none());
    assert!(manifest.get("outputs").is_none());
    assert!(manifest.get("outcome").is_none());
    let err = stderr(&out);
    assert!(err.contains("verified"), "{err}");

    // Tampering with the recorded input is detected.
    let mut bytes = std::fs::read(&data).unwrap();
    bytes.push(b'\n');
    std::fs::write(&data, &bytes).unwrap();
    let out = run(&["provenance", artifact.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("MISMATCH"), "{}", stderr(&out));

    // The fitted artifact loads and predicts regardless.
    let out = run(&[
        "predict",
        "--artifact-in",
        artifact.to_str().unwrap(),
        "--origin",
        "Sydney",
        "--top",
        "3",
    ]);
    assert!(out.status.success(), "predict: {}", stderr(&out));
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&artifact).ok();
}

#[test]
fn artifacts_byte_identical_across_thread_counts_with_provenance() {
    let data = tmp("prov-threads.jsonl");
    assert!(run(&[
        "generate",
        data.to_str().unwrap(),
        "--users",
        "1500",
        "--seed",
        "29"
    ])
    .status
    .success());
    let mut artifacts = Vec::new();
    for (name, threads) in [("prov-t1", "1"), ("prov-t8", "8")] {
        let artifact = tmp(&format!("{name}.tma"));
        let out = run(&[
            "fit",
            data.to_str().unwrap(),
            "--artifact-out",
            artifact.to_str().unwrap(),
            "--threads",
            threads,
        ]);
        assert!(out.status.success(), "{}", stderr(&out));
        artifacts.push(std::fs::read(&artifact).unwrap());
        std::fs::remove_file(&artifact).ok();
    }
    assert_eq!(
        artifacts[0], artifacts[1],
        "PROV-carrying artifacts must stay byte-identical across thread counts"
    );
    std::fs::remove_file(&data).ok();
}

#[test]
fn missing_file_reports_cleanly() {
    let out = run(&["summary", "/nonexistent/nowhere.jsonl"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot open"));
}

#[test]
fn bad_flag_values_report_the_flag() {
    let out = run(&["generate", "/tmp/x.jsonl", "--users", "many"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("users"));

    let path = tmp("flags.jsonl");
    let path_str = path.to_str().unwrap();
    assert!(run(&["generate", path_str, "--users", "200"])
        .status
        .success());
    let out = run(&["population", path_str, "--scale", "galactic"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown scale"));
    let out = run(&["epidemic", path_str, "--restrict", "nonsense"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("DAY:FACTOR"));
    let out = run(&["epidemic", path_str, "--seed-city", "Atlantis"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("Atlantis"));
    std::fs::remove_file(&path).ok();
}

/// Kills the serve child on drop so a failed assertion can't leak it.
struct ServeChild(std::process::Child);

impl Drop for ServeChild {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn http_get(addr: &str, target: &str) -> (u16, String) {
    use std::io::{BufRead, BufReader, Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to serve child");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8"))
}

#[test]
fn serve_answers_http_queries_in_parity_with_predict_json() {
    use std::io::BufRead;

    let data = tmp("serve.twb");
    let artifact = tmp("serve.tma");
    assert!(run(&["generate", data.to_str().unwrap(), "--users", "1500", "--seed", "13"])
        .status
        .success());
    let out = run(&[
        "fit",
        data.to_str().unwrap(),
        "--artifact-out",
        artifact.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "fit: {}", stderr(&out));

    // Bind port 0 and read the resolved address off the first line.
    let mut child = ServeChild(
        bin()
            .args([
                "serve",
                "--artifact-in",
                artifact.to_str().unwrap(),
                "--bind",
                "127.0.0.1:0",
                "--threads",
                "2",
            ])
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn serve"),
    );
    let mut first_line = String::new();
    std::io::BufReader::new(child.0.stdout.take().expect("child stdout"))
        .read_line(&mut first_line)
        .expect("listening line");
    assert!(first_line.starts_with("listening on "), "{first_line}");
    let addr = first_line
        .split_ascii_whitespace()
        .nth(2)
        .expect("address token")
        .to_string();

    // Golden parity: the HTTP body is byte-identical to what
    // `tweetmob predict --json` prints for the same query.
    let out = run(&[
        "predict",
        "--artifact-in",
        artifact.to_str().unwrap(),
        "--origin",
        "Sydney",
        "--dest",
        "Melbourne",
        "--json",
    ]);
    assert!(out.status.success(), "predict: {}", stderr(&out));
    let golden = stdout(&out);
    let (status, body) = http_get(&addr, "/predict?origin=Sydney&dest=Melbourne");
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, golden.trim_end());

    // Top-k parity too.
    let out = run(&[
        "predict",
        "--artifact-in",
        artifact.to_str().unwrap(),
        "--origin",
        "Sydney",
        "--top",
        "3",
        "--model",
        "gravity2",
        "--json",
    ]);
    assert!(out.status.success(), "predict top: {}", stderr(&out));
    let (status, body) = http_get(&addr, "/top_k?origin=Sydney&k=3&model=gravity2");
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, stdout(&out).trim_end());

    // Health, provenance and error paths over the same child.
    let (status, body) = http_get(&addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""), "{body}");
    let (status, body) = http_get(&addr, "/provenance");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"subcommand\""), "{body}");
    let (status, body) = http_get(&addr, "/predict?origin=Atlantis&dest=Sydney");
    assert_eq!(status, 404, "{body}");
    let (status, body) = http_get(&addr, "/predict?origin=Sydney&dest=Sydney");
    assert_eq!(status, 400, "{body}");

    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&artifact).ok();
}
