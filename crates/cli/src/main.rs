//! `tweetmob` — command-line interface for the population/mobility
//! estimation pipeline.
//!
//! ```text
//! tweetmob generate --users 20000 --seed 7 out.jsonl   # or .csv / .twb
//! tweetmob summary out.jsonl
//! tweetmob population out.jsonl --scale national
//! tweetmob mobility out.jsonl --scale state --extended
//! tweetmob mobility out.jsonl --scale national --metrics-out metrics.json --trace
//! tweetmob fit out.jsonl --artifact-out models.tma
//! tweetmob provenance models.tma
//! tweetmob predict --artifact-in models.tma --origin Sydney --top 5
//! tweetmob epidemic --artifact-in models.tma --beta 0.5 --gamma 0.2
//! tweetmob serve --artifact-in models.tma --bind 127.0.0.1:8787
//! ```
//!
//! Datasets are JSONL (default), CSV, the compact row-struct binary
//! `.twb`, or the mmap-style columnar `.twc` format. Writers choose by
//! file extension (or `--format`); readers detect the binary formats by
//! their leading magic and fall back to extension dispatch, so
//! `tweetmob convert --in tweets.jsonl --out tweets.twc` round-trips
//! through any pair of formats.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod args;
mod commands;

use args::Args;

const USAGE: &str = "\
tweetmob — multi-scale population and mobility estimation from tweet streams
(reproduction of Liu et al., ICDE 2015)

USAGE:
    tweetmob <command> [args]

COMMANDS:
    generate <out.{jsonl,csv,twb,twc}>  generate a synthetic Australian tweet stream
        --users N                user count                    [default 20000]
        --seed N                 generator seed                [calibrated preset]
        --format F               jsonl | csv | twb | twc       [default: by extension]
    convert                      re-encode a dataset between formats
        --in PATH                input dataset (format auto-detected) [required]
        --out PATH               output dataset                [required]
        --format F               jsonl | csv | twb | twc       [default: by extension]
    summary <dataset>            Table-I statistics of a dataset
    population <dataset>         Fig.-3 population estimation
        --scale S                national | state | metro      [default national]
        --radius KM              override the search radius ε
    mobility <dataset>           Fig.-4 / Table-II mobility models
        --scale S                national | state | metro      [default national]
        --census                 use census (not Twitter) populations
        --extended               add Exp/Tanner/IPF model ablations
        --artifact-out PATH      also save the fitted models as an artifact
    fit <dataset>                fit models and save a reusable artifact
        --artifact-out PATH      where to write the artifact   [required]
        --scale S                national | state | metro      [default national]
        --census                 use census (not Twitter) populations
    predict                      answer flow queries from fitted models
        --artifact-in PATH       load a saved artifact (no dataset, no refit)
        --fit DATASET            ... or fit inline from a dataset
        --origin AREA            origin area name              [required]
        --dest AREA              pairwise query to one destination
        --top K                  ... or rank the top-K destinations [default 5]
        --model M                gravity4|gravity2|radiation|opportunities|all
        --json                   machine-readable output
        --scale S / --census     scale and populations for --fit
    epidemic <dataset>           SIR/SEIR outbreak over fitted gravity flows
        --artifact-in PATH       use a saved artifact instead of a dataset
        --beta X                 transmission rate per day     [default 0.5]
        --gamma X                recovery rate per day         [default 0.2]
        --sigma X                incubation rate (enables SEIR)
        --seed-city NAME         outbreak origin               [default Sydney]
        --days N                 horizon in days               [default 365]
        --restrict DAY:FACTOR    travel restriction, e.g. 30:0.1
        --immune F               initial immune fraction       [default 0]
    serve                        HTTP API over a fitted artifact
        --artifact-in PATH       load a saved artifact         [required]
        --bind ADDR              listen address                [default 127.0.0.1:8787]
                             worker pool sized by --threads; endpoints:
                             /healthz /population /predict /top_k
                             /epidemic /provenance /metrics
    export <dataset> <out.json>  machine-readable results of all experiments
    provenance <artifact.tma>    print an artifact's embedded run manifest
                             and verify its recorded input hashes
    help                         this text

GLOBAL FLAGS (accepted by every command):
    --metrics-out PATH       write pipeline metrics (spans, counters,
                             histograms, run manifest, trace) as JSON
                             after the run
    --metrics-redacted       write the redacted metrics document instead
                             (durations and execution-shape fields
                             zeroed; byte-identical across same-seed runs)
    --trace                  print the span trace tree to stderr
    --trace-out PATH         export the trace-event buffer: collapsed
                             flamegraph stacks for .folded/.collapsed,
                             Chrome trace_event JSON otherwise
    --threads N              worker threads for parallel stages
                             (overrides TWEETMOB_THREADS; results are
                             identical at every thread count)
    --no-geometry-cache      assemble observations through the scalar
                             per-pair distance path instead of the shared
                             geometry cache (A/B escape hatch; results
                             are bit-identical either way)
";

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(raw) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("run `tweetmob help` for usage");
            1
        }
    };
    std::process::exit(code);
}

/// A subcommand implementation in `commands`.
type CommandFn = fn(&Args) -> Result<(), Box<dyn std::error::Error>>;

fn run(raw: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let command = raw.first().cloned().unwrap_or_else(|| "help".into());
    let rest = raw.into_iter().skip(1);
    let (handler, valued, switches): (CommandFn, &[&str], &[&str]) = match command.as_str() {
        "generate" => (commands::generate, &["users", "seed", "format"], &[]),
        "convert" => (commands::convert, &["in", "out", "format"], &[]),
        "summary" => (commands::summary, &[], &[]),
        "population" => (commands::population, &["scale", "radius"], &[]),
        "mobility" => (
            commands::mobility,
            &["scale", "artifact-out"],
            &["census", "extended"],
        ),
        "fit" => (commands::fit, &["scale", "artifact-out"], &["census"]),
        "predict" => (
            commands::predict,
            &[
                "artifact-in",
                "fit",
                "scale",
                "model",
                "origin",
                "dest",
                "top",
            ],
            &["census", "json"],
        ),
        "epidemic" => (
            commands::epidemic,
            &[
                "artifact-in",
                "beta",
                "gamma",
                "sigma",
                "seed-city",
                "days",
                "restrict",
                "immune",
            ],
            &[],
        ),
        "serve" => (commands::serve, &["artifact-in", "bind"], &[]),
        "export" => (commands::export, &[], &[]),
        "provenance" => (commands::provenance, &[], &[]),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return Ok(());
        }
        other => return Err(format!("unknown command {other:?}").into()),
    };
    // Every subcommand also accepts --metrics-out, --trace, --threads,
    // --no-geometry-cache.
    let args = Args::parse_with_observability(rest, valued, switches)?;
    if let Some(n) = args.get(args::THREADS) {
        let n: usize = n
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("--threads {n:?}: expected a positive integer"))?;
        tweetmob_par::set_threads_override(Some(n));
    }
    let result = handler(&args);
    // Metrics are emitted even after a failed command — a partial run's
    // counters, spans and manifest are exactly what is needed to debug
    // it, with `run/outcome` recording how the run ended.
    let emitted = commands::emit_observability(&args, &command, result.is_ok());
    result.and(emitted)
}
