//! A small, dependency-free flag parser.
//!
//! The CLI needs `--flag value`, `--switch` and positional arguments —
//! nothing a full parser generator is worth a dependency for. Flags may
//! appear in any order; unknown flags are errors (typos should not
//! silently become defaults).

use std::collections::HashMap;

/// Parsed command-line arguments: positionals in order, flags by name.
#[derive(Debug, Default)]
pub struct Args {
    positionals: Vec<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// The `--metrics-out <path>` flag every subcommand accepts: where to
/// write the pipeline metrics JSON after the run.
pub const METRICS_OUT: &str = "metrics-out";
/// The `--trace` switch every subcommand accepts: print the span trace
/// tree to stderr after the run.
pub const TRACE: &str = "trace";
/// The `--threads <n>` flag every subcommand accepts: pin the shared
/// worker pool's thread count (overrides `TWEETMOB_THREADS`).
pub const THREADS: &str = "threads";
/// The `--no-geometry-cache` switch every subcommand accepts: assemble
/// observations through the scalar per-pair distance path instead of the
/// shared pairwise-geometry cache (A/B escape hatch; results are
/// bit-identical either way).
pub const NO_GEO_CACHE: &str = "no-geometry-cache";
/// The `--trace-out <path>` flag every subcommand accepts: export the
/// deterministic trace-event buffer after the run — collapsed flamegraph
/// stacks when the path ends in `.folded`/`.collapsed`, Chrome
/// `trace_event` JSON otherwise.
pub const TRACE_OUT: &str = "trace-out";
/// The `--metrics-redacted` switch every subcommand accepts: write the
/// redacted metrics document (durations, sequence numbers and execution-
/// shape fields zeroed) instead of the full one, so same-seed runs are
/// byte-comparable.
pub const METRICS_REDACTED: &str = "metrics-redacted";

/// Observability flags excluded from the normalized argument list a run
/// manifest records: they route or shape the *observation* of a run, not
/// the computation, so two runs of the same experiment keep the same
/// manifest args wherever their metrics go. `--artifact-out` is also
/// excluded — the artifact cannot name its own path and stay portable.
const MANIFEST_EXCLUDED: &[&str] = &[
    METRICS_OUT,
    METRICS_REDACTED,
    TRACE,
    TRACE_OUT,
    THREADS,
    "artifact-out",
];

impl Args {
    /// Parses raw arguments with the global flags ([`METRICS_OUT`],
    /// [`TRACE`], [`THREADS`], [`NO_GEO_CACHE`]) appended to the
    /// accepted lists — every subcommand takes them.
    ///
    /// # Errors
    ///
    /// As [`Args::parse`].
    pub fn parse_with_observability(
        raw: impl IntoIterator<Item = String>,
        valued: &[&str],
        switches: &[&str],
    ) -> Result<Self, ArgError> {
        let mut valued: Vec<&str> = valued.to_vec();
        valued.push(METRICS_OUT);
        valued.push(THREADS);
        valued.push(TRACE_OUT);
        let mut switches: Vec<&str> = switches.to_vec();
        switches.push(TRACE);
        switches.push(NO_GEO_CACHE);
        switches.push(METRICS_REDACTED);
        Self::parse(raw, &valued, &switches)
    }

    /// Parses raw arguments. `valued` lists flags that take a value;
    /// `switches` lists boolean flags. Anything else starting with `--`
    /// is rejected.
    pub fn parse(
        raw: impl IntoIterator<Item = String>,
        valued: &[&str],
        switches: &[&str],
    ) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut iter = raw.into_iter();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                // Allow --flag=value as well as --flag value.
                let (name, inline) = match name.split_once('=') {
                    Some((n, v)) => (n, Some(v.to_string())),
                    None => (name, None),
                };
                if valued.contains(&name) {
                    let value = match inline {
                        Some(v) => v,
                        None => iter
                            .next()
                            .ok_or_else(|| ArgError(format!("--{name} needs a value")))?,
                    };
                    out.flags.insert(name.to_string(), value);
                } else if switches.contains(&name) {
                    if inline.is_some() {
                        return Err(ArgError(format!("--{name} takes no value")));
                    }
                    out.switches.push(name.to_string());
                } else {
                    return Err(ArgError(format!("unknown flag --{name}")));
                }
            } else {
                out.positionals.push(arg);
            }
        }
        Ok(out)
    }

    /// Positional argument `i`, if present.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Raw string value of a flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Whether a boolean switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// The normalized argument list a [`RunManifest`] records:
    /// positionals in order, then `--flag=value` pairs sorted by flag
    /// name, then switches sorted by name — with the observability
    /// routing flags excluded. Two invocations that differ only in flag
    /// order or in where they send metrics normalize identically.
    ///
    /// [`RunManifest`]: tweetmob_obs::RunManifest
    pub fn normalized(&self) -> Vec<String> {
        let mut out = self.positionals.clone();
        let mut flags: Vec<(&String, &String)> = self
            .flags
            .iter()
            .filter(|(name, _)| !MANIFEST_EXCLUDED.contains(&name.as_str()))
            .collect();
        flags.sort();
        out.extend(flags.into_iter().map(|(n, v)| format!("--{n}={v}")));
        let mut switches: Vec<&String> = self
            .switches
            .iter()
            .filter(|name| !MANIFEST_EXCLUDED.contains(&name.as_str()))
            .collect();
        switches.sort();
        switches.dedup();
        out.extend(switches.into_iter().map(|n| format!("--{n}")));
        out
    }

    /// Parsed value of a flag with a default.
    ///
    /// # Errors
    ///
    /// [`ArgError`] when the value does not parse.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| ArgError(format!("--{name} {v:?}: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str], valued: &[&str], switches: &[&str]) -> Result<Args, ArgError> {
        Args::parse(args.iter().map(|s| s.to_string()), valued, switches)
    }

    #[test]
    fn positionals_and_flags_mix() {
        let a = parse(
            &["generate", "--users", "500", "out.jsonl", "--verbose"],
            &["users"],
            &["verbose"],
        )
        .unwrap();
        assert_eq!(a.positional(0), Some("generate"));
        assert_eq!(a.positional(1), Some("out.jsonl"));
        assert_eq!(a.positional(2), None);
        assert_eq!(a.get("users"), Some("500"));
        assert!(a.has("verbose"));
        assert!(!a.has("quiet"));
    }

    #[test]
    fn equals_syntax_supported() {
        let a = parse(&["--users=42"], &["users"], &[]).unwrap();
        assert_eq!(a.get_parsed("users", 0u32).unwrap(), 42);
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&["--bogus"], &["users"], &[]).is_err());
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse(&["--users"], &["users"], &[]).is_err());
    }

    #[test]
    fn switch_with_value_rejected() {
        assert!(parse(&["--verbose=yes"], &[], &["verbose"]).is_err());
    }

    #[test]
    fn bad_parse_reports_flag() {
        let a = parse(&["--users", "many"], &["users"], &[]).unwrap();
        let err = a.get_parsed("users", 0u32).unwrap_err();
        assert!(err.0.contains("users"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse(&[], &["users"], &[]).unwrap();
        assert_eq!(a.get_parsed("users", 7u32).unwrap(), 7);
    }

    #[test]
    fn observability_flags_accepted_on_any_command() {
        let raw = [
            "out.jsonl",
            "--metrics-out",
            "m.json",
            "--trace",
            "--no-geometry-cache",
        ];
        let a = Args::parse_with_observability(raw.iter().map(|s| s.to_string()), &["users"], &[])
            .unwrap();
        assert_eq!(a.get(METRICS_OUT), Some("m.json"));
        assert!(a.has(TRACE));
        assert!(a.has(NO_GEO_CACHE));
        assert_eq!(a.positional(0), Some("out.jsonl"));
        // Plain parse without the helper still rejects them.
        assert!(parse(&["--trace"], &["users"], &[]).is_err());
        assert!(parse(&["--no-geometry-cache"], &["users"], &[]).is_err());
        assert!(parse(&["--trace-out", "t.json"], &["users"], &[]).is_err());
        assert!(parse(&["--metrics-redacted"], &["users"], &[]).is_err());
    }

    #[test]
    fn new_observability_flags_parse() {
        let raw = ["out.jsonl", "--trace-out", "t.folded", "--metrics-redacted"];
        let a = Args::parse_with_observability(raw.iter().map(|s| s.to_string()), &[], &[])
            .unwrap();
        assert_eq!(a.get(TRACE_OUT), Some("t.folded"));
        assert!(a.has(METRICS_REDACTED));
    }

    #[test]
    fn normalized_args_sort_flags_and_drop_observability_routing() {
        let raw = [
            "data.jsonl",
            "--scale",
            "national",
            "--census",
            "--metrics-out",
            "m.json",
            "--trace",
            "--trace-out",
            "t.json",
            "--threads",
            "8",
            "--metrics-redacted",
            "--artifact-out",
            "m.tma",
            "--radius",
            "25",
        ];
        let a = Args::parse_with_observability(
            raw.iter().map(|s| s.to_string()),
            &["scale", "radius", "artifact-out"],
            &["census"],
        )
        .unwrap();
        assert_eq!(
            a.normalized(),
            vec!["data.jsonl", "--radius=25", "--scale=national", "--census"]
        );
    }

    #[test]
    fn normalized_args_are_flag_order_invariant() {
        let a = parse(
            &["d.jsonl", "--scale", "state", "--census"],
            &["scale"],
            &["census"],
        )
        .unwrap();
        let b = parse(
            &["--census", "--scale", "state", "d.jsonl"],
            &["scale"],
            &["census"],
        )
        .unwrap();
        assert_eq!(a.normalized(), b.normalized());
    }
}
