//! A small, dependency-free flag parser.
//!
//! The CLI needs `--flag value`, `--switch` and positional arguments —
//! nothing a full parser generator is worth a dependency for. Flags may
//! appear in any order; unknown flags are errors (typos should not
//! silently become defaults).

use std::collections::HashMap;

/// Parsed command-line arguments: positionals in order, flags by name.
#[derive(Debug, Default)]
pub struct Args {
    positionals: Vec<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// The `--metrics-out <path>` flag every subcommand accepts: where to
/// write the pipeline metrics JSON after the run.
pub const METRICS_OUT: &str = "metrics-out";
/// The `--trace` switch every subcommand accepts: print the span trace
/// tree to stderr after the run.
pub const TRACE: &str = "trace";
/// The `--threads <n>` flag every subcommand accepts: pin the shared
/// worker pool's thread count (overrides `TWEETMOB_THREADS`).
pub const THREADS: &str = "threads";
/// The `--no-geometry-cache` switch every subcommand accepts: assemble
/// observations through the scalar per-pair distance path instead of the
/// shared pairwise-geometry cache (A/B escape hatch; results are
/// bit-identical either way).
pub const NO_GEO_CACHE: &str = "no-geometry-cache";

impl Args {
    /// Parses raw arguments with the global flags ([`METRICS_OUT`],
    /// [`TRACE`], [`THREADS`], [`NO_GEO_CACHE`]) appended to the
    /// accepted lists — every subcommand takes them.
    ///
    /// # Errors
    ///
    /// As [`Args::parse`].
    pub fn parse_with_observability(
        raw: impl IntoIterator<Item = String>,
        valued: &[&str],
        switches: &[&str],
    ) -> Result<Self, ArgError> {
        let mut valued: Vec<&str> = valued.to_vec();
        valued.push(METRICS_OUT);
        valued.push(THREADS);
        let mut switches: Vec<&str> = switches.to_vec();
        switches.push(TRACE);
        switches.push(NO_GEO_CACHE);
        Self::parse(raw, &valued, &switches)
    }

    /// Parses raw arguments. `valued` lists flags that take a value;
    /// `switches` lists boolean flags. Anything else starting with `--`
    /// is rejected.
    pub fn parse(
        raw: impl IntoIterator<Item = String>,
        valued: &[&str],
        switches: &[&str],
    ) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut iter = raw.into_iter();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                // Allow --flag=value as well as --flag value.
                let (name, inline) = match name.split_once('=') {
                    Some((n, v)) => (n, Some(v.to_string())),
                    None => (name, None),
                };
                if valued.contains(&name) {
                    let value = match inline {
                        Some(v) => v,
                        None => iter
                            .next()
                            .ok_or_else(|| ArgError(format!("--{name} needs a value")))?,
                    };
                    out.flags.insert(name.to_string(), value);
                } else if switches.contains(&name) {
                    if inline.is_some() {
                        return Err(ArgError(format!("--{name} takes no value")));
                    }
                    out.switches.push(name.to_string());
                } else {
                    return Err(ArgError(format!("unknown flag --{name}")));
                }
            } else {
                out.positionals.push(arg);
            }
        }
        Ok(out)
    }

    /// Positional argument `i`, if present.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Raw string value of a flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Whether a boolean switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Parsed value of a flag with a default.
    ///
    /// # Errors
    ///
    /// [`ArgError`] when the value does not parse.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| ArgError(format!("--{name} {v:?}: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str], valued: &[&str], switches: &[&str]) -> Result<Args, ArgError> {
        Args::parse(args.iter().map(|s| s.to_string()), valued, switches)
    }

    #[test]
    fn positionals_and_flags_mix() {
        let a = parse(
            &["generate", "--users", "500", "out.jsonl", "--verbose"],
            &["users"],
            &["verbose"],
        )
        .unwrap();
        assert_eq!(a.positional(0), Some("generate"));
        assert_eq!(a.positional(1), Some("out.jsonl"));
        assert_eq!(a.positional(2), None);
        assert_eq!(a.get("users"), Some("500"));
        assert!(a.has("verbose"));
        assert!(!a.has("quiet"));
    }

    #[test]
    fn equals_syntax_supported() {
        let a = parse(&["--users=42"], &["users"], &[]).unwrap();
        assert_eq!(a.get_parsed("users", 0u32).unwrap(), 42);
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&["--bogus"], &["users"], &[]).is_err());
    }

    #[test]
    fn missing_value_rejected() {
        assert!(parse(&["--users"], &["users"], &[]).is_err());
    }

    #[test]
    fn switch_with_value_rejected() {
        assert!(parse(&["--verbose=yes"], &[], &["verbose"]).is_err());
    }

    #[test]
    fn bad_parse_reports_flag() {
        let a = parse(&["--users", "many"], &["users"], &[]).unwrap();
        let err = a.get_parsed("users", 0u32).unwrap_err();
        assert!(err.0.contains("users"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse(&[], &["users"], &[]).unwrap();
        assert_eq!(a.get_parsed("users", 7u32).unwrap(), 7);
    }

    #[test]
    fn observability_flags_accepted_on_any_command() {
        let raw = [
            "out.jsonl",
            "--metrics-out",
            "m.json",
            "--trace",
            "--no-geometry-cache",
        ];
        let a = Args::parse_with_observability(raw.iter().map(|s| s.to_string()), &["users"], &[])
            .unwrap();
        assert_eq!(a.get(METRICS_OUT), Some("m.json"));
        assert!(a.has(TRACE));
        assert!(a.has(NO_GEO_CACHE));
        assert_eq!(a.positional(0), Some("out.jsonl"));
        // Plain parse without the helper still rejects them.
        assert!(parse(&["--trace"], &["users"], &[]).is_err());
        assert!(parse(&["--no-geometry-cache"], &["users"], &[]).is_err());
    }
}
