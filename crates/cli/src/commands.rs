//! Command implementations.

use crate::args::Args;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use tweetmob_core::{deterrence_ablation, AreaSet, Experiment, PopulationSource, Scale};
use tweetmob_data::{io as dataio, DatasetSummary, TweetDataset};
use tweetmob_epidemic::{MobilityNetwork, OutbreakScenario, SeirParams};
use tweetmob_models::InterveningPopulation;
use tweetmob_synth::{GeneratorConfig, TweetGenerator};

type Result<T> = std::result::Result<T, Box<dyn std::error::Error>>;

/// `tweetmob export <dataset> <out.json>` — machine-readable results of
/// every scale's population and mobility experiment.
pub fn export(args: &Args) -> Result<()> {
    let ds = dataset_arg(args)?;
    let out_path = args.positional(1).ok_or("missing output path")?;
    let exp = experiment(args, &ds);
    let mut scales = Vec::new();
    for scale in Scale::ALL {
        let population = exp.population_correlation(scale)?;
        let mobility = exp.mobility(scale)?;
        scales.push(serde_json::json!({
            "scale": scale.name(),
            "search_radius_km": scale.search_radius_km(),
            "population": population,
            "mobility": {
                "od_total": mobility.od_total,
                "nonzero_pairs": mobility.nonzero_pairs,
                "gravity4": mobility.gravity4,
                "gravity2": mobility.gravity2,
                "radiation": mobility.radiation,
                "opportunities": mobility.opportunities,
                "evaluations": mobility.evaluations,
            },
        }));
    }
    let pooled = exp.pooled_population()?;
    let doc = serde_json::json!({
        "n_tweets": ds.n_tweets(),
        "n_users": ds.n_users(),
        "summary": DatasetSummary::of(&ds),
        "pooled_population_correlation": pooled.pooled,
        "scales": scales,
    });
    let file = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    serde_json::to_writer_pretty(BufWriter::new(file), &doc)?;
    println!("wrote experiment results to {out_path}");
    Ok(())
}

/// Loads a dataset by extension: `.csv` → CSV, `.twb` → binary,
/// anything else → JSONL. Every failure names the path and how far the
/// read got, and bumps the `data/load_errors` counter.
fn load(path: &str) -> Result<TweetDataset> {
    let _span = tweetmob_obs::span!("load");
    match read_dataset(path) {
        Ok(ds) if ds.is_empty() => {
            tweetmob_obs::counter!("data/load_errors").add(1);
            Err(format!("{path}: loaded 0 tweet records").into())
        }
        Ok(ds) => Ok(ds),
        Err(e) => {
            tweetmob_obs::counter!("data/load_errors").add(1);
            // The reader errors carry the failing line/record number;
            // prepend the path so the user knows which file died.
            Err(format!("cannot load {path}: {e}").into())
        }
    }
}

/// The raw extension-dispatched read behind [`load`].
fn read_dataset(path: &str) -> Result<TweetDataset> {
    let file = File::open(path).map_err(|e| format!("cannot open: {e}"))?;
    let reader = BufReader::new(file);
    Ok(if path.ends_with(".csv") {
        dataio::read_csv(reader)?
    } else if path.ends_with(".twb") {
        tweetmob_data::binary::read_binary(reader)?
    } else {
        dataio::read_jsonl(reader)?
    })
}

/// Writes the metrics JSON (`--metrics-out`) and prints the span trace
/// (`--trace`) after a command — including after one that failed, so a
/// partial run's counters and spans are still inspectable.
pub fn emit_observability(args: &Args) -> Result<()> {
    let registry = tweetmob_obs::global();
    if let Some(path) = args.get(crate::args::METRICS_OUT) {
        let mut json = registry.to_json();
        json.push('\n');
        std::fs::write(path, json).map_err(|e| format!("cannot write metrics to {path}: {e}"))?;
        eprintln!("wrote pipeline metrics to {path}");
    }
    if args.has(crate::args::TRACE) {
        eprint!("{}", registry.render_trace());
    }
    Ok(())
}

fn dataset_arg(args: &Args) -> Result<TweetDataset> {
    let path = args.positional(0).ok_or("missing dataset argument")?;
    load(path)
}

/// Builds the experiment runner honouring `--no-geometry-cache`.
fn experiment<'a>(args: &Args, ds: &'a TweetDataset) -> Experiment<'a> {
    let mut exp = Experiment::new(ds);
    exp.set_geometry_cache(!args.has(crate::args::NO_GEO_CACHE));
    exp
}

fn scale_arg(args: &Args) -> Result<Scale> {
    match args.get("scale").unwrap_or("national") {
        "national" => Ok(Scale::National),
        "state" => Ok(Scale::State),
        "metro" | "metropolitan" => Ok(Scale::Metropolitan),
        other => Err(format!("unknown scale {other:?} (national|state|metro)").into()),
    }
}

/// `tweetmob generate <out> [--users N] [--seed N]`
pub fn generate(args: &Args) -> Result<()> {
    let out_path = args.positional(0).ok_or("missing output path")?;
    let mut cfg = GeneratorConfig::default();
    cfg.n_users = args.get_parsed("users", cfg.n_users)?;
    cfg.seed = args.get_parsed("seed", cfg.seed)?;
    let ds = TweetGenerator::try_new(cfg)?.generate();
    let file = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    let writer = BufWriter::new(file);
    if out_path.ends_with(".csv") {
        dataio::write_csv(&ds, writer)?;
    } else if out_path.ends_with(".twb") {
        tweetmob_data::binary::write_binary(&ds, writer)?;
    } else {
        dataio::write_jsonl(&ds, writer)?;
    }
    println!(
        "wrote {} tweets from {} users to {out_path}",
        ds.n_tweets(),
        ds.n_users()
    );
    Ok(())
}

/// `tweetmob summary <dataset>`
pub fn summary(args: &Args) -> Result<()> {
    let ds = dataset_arg(args)?;
    println!("{}", DatasetSummary::of(&ds));
    Ok(())
}

/// `tweetmob population <dataset> [--scale S] [--radius KM]`
pub fn population(args: &Args) -> Result<()> {
    let ds = dataset_arg(args)?;
    let scale = scale_arg(args)?;
    let radius = args.get_parsed("radius", scale.search_radius_km())?;
    let exp = experiment(args, &ds);
    let pop = exp.population_correlation_with_radius(scale, radius)?;
    println!("{} scale, ε = {radius} km", scale.name());
    println!("{pop}");
    Ok(())
}

/// `tweetmob mobility <dataset> [--scale S] [--census] [--extended]`
pub fn mobility(args: &Args) -> Result<()> {
    let ds = dataset_arg(args)?;
    let scale = scale_arg(args)?;
    let source = if args.has("census") {
        PopulationSource::Census
    } else {
        PopulationSource::Twitter
    };
    let exp = experiment(args, &ds);
    let report = exp.mobility_with(&AreaSet::of_scale(scale), source, scale.name().to_string())?;
    print!("{report}");
    if args.has("extended") {
        let ablation = deterrence_ablation(&report);
        for e in ablation.evaluations() {
            println!("  {e}");
        }
        if let Ok((iters, _)) = &ablation.ipf {
            println!("  (IPF converged in {iters} sweeps)");
        }
    }
    Ok(())
}

/// `tweetmob epidemic <dataset> [--beta X] [--gamma X] [--sigma X]
/// [--seed-city NAME] [--days N] [--restrict DAY:FACTOR]`
pub fn epidemic(args: &Args) -> Result<()> {
    let ds = dataset_arg(args)?;
    let beta: f64 = args.get_parsed("beta", 0.5)?;
    let gamma: f64 = args.get_parsed("gamma", 0.2)?;
    let days: f64 = args.get_parsed("days", 365.0)?;
    let seed_city = args.get("seed-city").unwrap_or("Sydney");

    // Fit gravity on national flows and build the network over census
    // populations (the paper's proposed pipeline).
    let use_cache = !args.has(crate::args::NO_GEO_CACHE);
    let exp = experiment(args, &ds);
    let report = exp.mobility(Scale::National)?;
    let areas = AreaSet::of_scale(Scale::National);
    let seed_patch = areas
        .areas()
        .iter()
        .position(|a| a.name.eq_ignore_ascii_case(seed_city))
        .ok_or_else(|| format!("unknown seed city {seed_city:?}"))?;

    let populations = areas.census_populations();
    let n = areas.len();
    let centers = areas.centers();
    // The epidemic network reuses the geometry the mobility fit already
    // built; --no-geometry-cache falls back to the scalar path plus the
    // dense-rows network constructor (bit-identical output).
    let calc = if use_cache {
        InterveningPopulation::from_geometry(std::sync::Arc::clone(areas.geometry()), &populations)
    } else {
        InterveningPopulation::build_direct(&centers, &populations)
    };
    let intervening: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| if i == j { 0.0 } else { calc.s(i, j) })
                .collect()
        })
        .collect();
    let network = if use_cache {
        MobilityNetwork::from_model_geometry(
            &report.gravity2,
            populations,
            areas.geometry(),
            &intervening,
            0.02,
        )?
    } else {
        let distances: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| tweetmob_geo::haversine_km(centers[i], centers[j]))
                    .collect()
            })
            .collect();
        MobilityNetwork::from_model(
            &report.gravity2,
            populations,
            &distances,
            &intervening,
            0.02,
        )?
    };

    let mut scenario = OutbreakScenario::new(network, beta, gamma).seed(seed_patch, 20.0);
    let immune: f64 = args.get_parsed("immune", 0.0)?;
    if immune > 0.0 {
        scenario = scenario.with_initial_immunity(immune);
    }
    if let Some(sigma) = args.get("sigma") {
        let sigma: f64 = sigma.parse().map_err(|e| format!("--sigma: {e}"))?;
        scenario = scenario.with_seir(SeirParams { sigma });
    }
    if let Some(spec) = args.get("restrict") {
        let (day, factor) = spec
            .split_once(':')
            .ok_or("--restrict wants DAY:FACTOR, e.g. 30:0.1")?;
        scenario = scenario.with_travel_restriction(
            day.parse().map_err(|e| format!("--restrict day: {e}"))?,
            factor
                .parse()
                .map_err(|e| format!("--restrict factor: {e}"))?,
        );
    }
    let timeline = scenario.run_deterministic(days, 0.25)?;

    println!(
        "outbreak seeded in {seed_city} (β = {beta}, γ = {gamma}, R0 ≈ {:.1}), gravity γ = {:.2}",
        beta / gamma,
        report.gravity2.gamma
    );
    println!(
        "{:<16} {:>12} {:>14} {:>14}",
        "city", "arrival(day)", "peak infected", "final size"
    );
    let mut rows: Vec<(usize, Option<f64>)> = (0..n)
        .map(|p| (p, timeline.arrival_time(p, 100.0)))
        .collect();
    rows.sort_by(|a, b| {
        a.1.unwrap_or(f64::INFINITY)
            .total_cmp(&b.1.unwrap_or(f64::INFINITY))
    });
    for (p, arrival) in rows {
        println!(
            "{:<16} {:>12} {:>14.0} {:>14.0}",
            areas.areas()[p].name,
            arrival.map_or("never".into(), |t| format!("{t:.0}")),
            timeline.peak_infected(p),
            timeline.final_size(p)
        );
    }
    Ok(())
}
