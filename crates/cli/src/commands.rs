//! Command implementations.

use crate::args::Args;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter};
use tweetmob_core::{deterrence_ablation, AreaSet, Experiment, PopulationSource, Scale};
use tweetmob_data::{io as dataio, DatasetSummary, ModelBundle, TweetDataset};
use tweetmob_epidemic::{MobilityNetwork, OutbreakScenario, SeirParams};
use tweetmob_models::ModelKind;
use tweetmob_synth::{GeneratorConfig, TweetGenerator};

type Result<T> = std::result::Result<T, Box<dyn std::error::Error>>;

/// `tweetmob export <dataset> <out.json>` — machine-readable results of
/// every scale's population and mobility experiment.
pub fn export(args: &Args) -> Result<()> {
    let ds = dataset_arg(args)?;
    let out_path = args.positional(1).ok_or("missing output path")?;
    let exp = experiment(args, &ds);
    let mut scales = Vec::new();
    for scale in Scale::ALL {
        let population = exp.population_correlation(scale)?;
        let mobility = exp.mobility(scale)?;
        scales.push(serde_json::json!({
            "scale": scale.name(),
            "search_radius_km": scale.search_radius_km(),
            "population": population,
            "mobility": {
                "od_total": mobility.od_total,
                "nonzero_pairs": mobility.nonzero_pairs,
                "gravity4": mobility.gravity4,
                "gravity2": mobility.gravity2,
                "radiation": mobility.radiation,
                "opportunities": mobility.opportunities,
                "evaluations": mobility.evaluations,
            },
        }));
    }
    let pooled = exp.pooled_population()?;
    let doc = serde_json::json!({
        "n_tweets": ds.n_tweets(),
        "n_users": ds.n_users(),
        "summary": DatasetSummary::of(&ds),
        "pooled_population_correlation": pooled.pooled,
        "scales": scales,
    });
    let file = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    serde_json::to_writer_pretty(BufWriter::new(file), &doc)?;
    tweetmob_obs::manifest::record_output(out_path);
    println!("wrote experiment results to {out_path}");
    Ok(())
}

/// Loads a dataset: the two binary formats (`TWC0` columnar, `TWB0`
/// row-struct) are detected by their leading magic whatever the file is
/// named; text files dispatch by extension (`.csv` → CSV, anything else
/// → JSONL). Every failure names the path and how far the read got, and
/// bumps the `data/load_errors` counter.
fn load(path: &str) -> Result<TweetDataset> {
    let _span = tweetmob_obs::span!("load");
    // Recorded before the read so a corrupt input still appears in the
    // failure manifest.
    tweetmob_obs::manifest::record_input(path);
    match read_dataset(path) {
        Ok(ds) if ds.is_empty() => {
            tweetmob_obs::counter!("data/load_errors").add(1);
            Err(format!("{path}: loaded 0 tweet records").into())
        }
        Ok(ds) => Ok(ds),
        Err(e) => {
            tweetmob_obs::counter!("data/load_errors").add(1);
            // The reader errors carry the failing line/record number;
            // prepend the path so the user knows which file died.
            Err(format!("cannot load {path}: {e}").into())
        }
    }
}

/// The raw format-dispatched read behind [`load`]: sniffs the leading
/// four bytes for a binary magic first (so a `.twc` renamed to `.dat`
/// still loads), then falls back to extension dispatch for the text
/// formats.
fn read_dataset(path: &str) -> Result<TweetDataset> {
    let file = File::open(path).map_err(|e| format!("cannot open: {e}"))?;
    let mut reader = BufReader::new(file);
    // fill_buf peeks without consuming, so each branch's reader starts
    // at byte 0 and validates the full header itself.
    let head = reader.peek_fill_buf().map_err(|e| format!("cannot read: {e}"))?;
    Ok(if head.starts_with(&tweetmob_data::columnar::MAGIC) {
        tweetmob_data::columnar::read_columnar(reader)?
    } else if head.starts_with(&tweetmob_data::binary::MAGIC) {
        tweetmob_data::binary::read_binary(reader)?
    } else if path.ends_with(".csv") {
        dataio::read_csv(reader)?
    } else {
        dataio::read_jsonl(reader)?
    })
}

/// Peek adapter: `BufRead::fill_buf` without the borrow fight of
/// calling it inline on a reader we immediately hand elsewhere.
trait PeekFillBuf: BufRead {
    fn peek_fill_buf(&mut self) -> std::io::Result<Vec<u8>> {
        Ok(self.fill_buf()?.to_vec())
    }
}

impl<T: BufRead> PeekFillBuf for T {}

/// Writes a dataset in the format named by `format`, or chosen by the
/// output extension when `format` is `None`: `csv`, `twb` (row-struct
/// binary), `twc` (columnar binary), `jsonl` (the default).
fn write_dataset(ds: &TweetDataset, out_path: &str, format: Option<&str>) -> Result<()> {
    let format = match format {
        Some(f) => f,
        None if out_path.ends_with(".csv") => "csv",
        None if out_path.ends_with(".twb") => "twb",
        None if out_path.ends_with(".twc") => "twc",
        None => "jsonl",
    };
    let file = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    let writer = BufWriter::new(file);
    match format {
        "csv" => dataio::write_csv(ds, writer)?,
        "twb" | "binary" => tweetmob_data::binary::write_binary(ds, writer)?,
        "twc" | "columnar" => tweetmob_data::columnar::write_columnar(ds, writer)?,
        "jsonl" | "json" => dataio::write_jsonl(ds, writer)?,
        other => return Err(format!("unknown format {other:?} (jsonl|csv|twb|twc)").into()),
    }
    tweetmob_obs::manifest::record_output(out_path);
    Ok(())
}

/// `tweetmob convert --in <dataset> --out <dataset> [--format F]` —
/// re-encode a dataset between the text and binary formats. The input
/// format is detected like every other load (binary magic first, then
/// extension); the output format follows `--format` or the output
/// extension. Conversion is lossless: loading the output yields the
/// same dataset, which the round-trip tests assert byte-for-byte.
pub fn convert(args: &Args) -> Result<()> {
    let input = args.get("in").ok_or("missing --in PATH")?;
    let out_path = args.get("out").ok_or("missing --out PATH")?;
    let ds = load(input)?;
    write_dataset(&ds, out_path, args.get("format"))?;
    println!(
        "converted {} tweets from {} users: {input} → {out_path}",
        ds.n_tweets(),
        ds.n_users()
    );
    Ok(())
}

/// Assembles the run manifest: subcommand, normalized args, seed,
/// resolved thread count, outcome, content stamps of every recorded
/// input/output, and the (workspace-shared) crate versions.
///
/// Stamping re-reads each file at manifest time; a recorded path that
/// has since vanished or never existed (the failure case) is skipped
/// rather than failing the manifest itself.
fn build_manifest(args: &Args, subcommand: &str, outcome: &str) -> tweetmob_obs::RunManifest {
    let stamp = |paths: Vec<String>| -> Vec<tweetmob_obs::FileStamp> {
        paths
            .iter()
            .filter_map(|p| tweetmob_obs::FileStamp::of_file(p).ok())
            .collect()
    };
    // Every member pins `version.workspace`, so the CLI's own compile-
    // time version stamps the whole workspace.
    let crates = [
        "tweetmob-cli",
        "tweetmob-core",
        "tweetmob-data",
        "tweetmob-models",
        "tweetmob-obs",
    ]
    .into_iter()
    .map(|name| (name.to_string(), env!("CARGO_PKG_VERSION").to_string()))
    .collect();
    tweetmob_obs::RunManifest {
        subcommand: subcommand.to_string(),
        args: args.normalized(),
        seed: args.get("seed").and_then(|s| s.parse().ok()),
        threads: u64::try_from(tweetmob_par::resolved_threads()).unwrap_or(u64::MAX),
        outcome: outcome.to_string(),
        inputs: stamp(tweetmob_obs::manifest::recorded_inputs()),
        outputs: stamp(tweetmob_obs::manifest::recorded_outputs()),
        crates,
    }
}

/// The portable manifest a fit-style command embeds in its artifact's
/// `PROV` section: built before the artifact is written (the artifact
/// cannot stamp itself), rendered without outputs, outcome or thread
/// count so artifact bytes stay invariant across thread counts.
fn embedded_provenance(args: &Args, subcommand: &str) -> String {
    build_manifest(args, subcommand, "ok").to_embedded_json()
}

/// Writes the metrics JSON (`--metrics-out`), exports the trace buffer
/// (`--trace-out`) and prints the span trace (`--trace`) after a
/// command — including after one that failed, so a partial run's
/// counters and spans are still inspectable. Sets the `run/outcome`
/// gauge (0 ok, 1 error) and attaches the run manifest first, so both
/// land in the metrics document.
pub fn emit_observability(args: &Args, subcommand: &str, ok: bool) -> Result<()> {
    let registry = tweetmob_obs::global();
    tweetmob_obs::gauge!("run/outcome").set(i64::from(!ok));
    registry.set_manifest(build_manifest(
        args,
        subcommand,
        if ok { "ok" } else { "error" },
    ));
    let redact = args.has(crate::args::METRICS_REDACTED);
    if let Some(path) = args.get(crate::args::METRICS_OUT) {
        let mut json = if redact {
            registry.to_json_redacted()
        } else {
            registry.to_json()
        };
        json.push('\n');
        std::fs::write(path, json).map_err(|e| format!("cannot write metrics to {path}: {e}"))?;
        eprintln!("wrote pipeline metrics to {path}");
    }
    if let Some(path) = args.get(crate::args::TRACE_OUT) {
        let rendered = if path.ends_with(".folded") || path.ends_with(".collapsed") {
            registry.to_collapsed_stacks(redact)
        } else {
            registry.to_chrome_trace(redact)
        };
        std::fs::write(path, rendered)
            .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
        eprintln!("wrote trace events to {path}");
    }
    if args.has(crate::args::TRACE) {
        eprint!("{}", registry.render_trace());
    }
    Ok(())
}

/// `tweetmob provenance <artifact.tma>` — print the `PROV` manifest an
/// artifact carries and verify its recorded input hashes against the
/// files as they exist now.
pub fn provenance(args: &Args) -> Result<()> {
    let path = args.positional(0).ok_or("missing artifact argument")?;
    tweetmob_obs::manifest::record_input(path);
    let bundle = {
        let _span = tweetmob_obs::span!("artifact_in");
        ModelBundle::load_file(path)?
    };
    let Some(manifest) = bundle.provenance() else {
        return Err(format!(
            "{path}: artifact carries no PROV section (written before provenance support)"
        )
        .into());
    };
    println!("{manifest}");
    let doc: serde_json::Value = serde_json::from_str(manifest)
        .map_err(|e| format!("{path}: PROV payload is not valid JSON: {e}"))?;
    let mut mismatches = 0u32;
    for input in doc
        .get("inputs")
        .and_then(|v| v.as_array())
        .map(Vec::as_slice)
        .unwrap_or_default()
    {
        let (Some(p), Some(expected)) = (
            input.get("path").and_then(|v| v.as_str()),
            input.get("fnv1a64").and_then(|v| v.as_str()),
        ) else {
            continue;
        };
        match tweetmob_obs::manifest::fnv1a64_file(p) {
            Ok((_, hash)) => {
                let actual = format!("{hash:016x}");
                if actual == expected {
                    eprintln!("input {p}: fnv1a64 {actual} verified");
                } else {
                    eprintln!("input {p}: MISMATCH manifest {expected} != file {actual}");
                    mismatches += 1;
                }
            }
            Err(e) => eprintln!("input {p}: not verifiable here ({e})"),
        }
    }
    if mismatches > 0 {
        return Err(format!("{mismatches} input hash mismatch(es) against {path}").into());
    }
    Ok(())
}

fn dataset_arg(args: &Args) -> Result<TweetDataset> {
    let path = args.positional(0).ok_or("missing dataset argument")?;
    load(path)
}

/// Builds the experiment runner honouring `--no-geometry-cache`.
fn experiment<'a>(args: &Args, ds: &'a TweetDataset) -> Experiment<'a> {
    let mut exp = Experiment::new(ds);
    exp.set_geometry_cache(!args.has(crate::args::NO_GEO_CACHE));
    exp
}

fn scale_arg(args: &Args) -> Result<Scale> {
    match args.get("scale").unwrap_or("national") {
        "national" => Ok(Scale::National),
        "state" => Ok(Scale::State),
        "metro" | "metropolitan" => Ok(Scale::Metropolitan),
        other => Err(format!("unknown scale {other:?} (national|state|metro)").into()),
    }
}

fn source_arg(args: &Args) -> PopulationSource {
    if args.has("census") {
        PopulationSource::Census
    } else {
        PopulationSource::Twitter
    }
}

/// Fits at the requested scale and returns the report plus the
/// persistable artifact bundle.
fn fit_bundle(
    args: &Args,
    ds: &TweetDataset,
) -> Result<(tweetmob_core::MobilityReport, ModelBundle)> {
    let scale = scale_arg(args)?;
    let exp = experiment(args, ds);
    Ok(exp.fit_with(
        &AreaSet::of_scale(scale),
        source_arg(args),
        scale.name().to_string(),
    )?)
}

/// Resolves the bundle a predict-style command works from: either a
/// saved artifact (`--artifact-in PATH`, no dataset and no refit) or an
/// inline fit (`--fit DATASET`) — the two produce bit-identical
/// predictions, which the CI artifacts job asserts.
fn bundle_arg(args: &Args) -> Result<ModelBundle> {
    match (args.get("artifact-in"), args.get("fit")) {
        (Some(path), None) => {
            let _span = tweetmob_obs::span!("artifact_in");
            tweetmob_obs::manifest::record_input(path);
            Ok(ModelBundle::load_file(path)?)
        }
        (None, Some(dataset)) => {
            let ds = load(dataset)?;
            Ok(fit_bundle(args, &ds)?.1)
        }
        _ => Err("need exactly one of --artifact-in PATH or --fit DATASET".into()),
    }
}

/// `tweetmob generate <out> [--users N] [--seed N] [--format F]`
pub fn generate(args: &Args) -> Result<()> {
    let out_path = args.positional(0).ok_or("missing output path")?;
    let mut cfg = GeneratorConfig::default();
    cfg.n_users = args.get_parsed("users", cfg.n_users)?;
    cfg.seed = args.get_parsed("seed", cfg.seed)?;
    let ds = TweetGenerator::try_new(cfg)?.generate();
    write_dataset(&ds, out_path, args.get("format"))?;
    println!(
        "wrote {} tweets from {} users to {out_path}",
        ds.n_tweets(),
        ds.n_users()
    );
    Ok(())
}

/// `tweetmob summary <dataset>`
pub fn summary(args: &Args) -> Result<()> {
    let ds = dataset_arg(args)?;
    println!("{}", DatasetSummary::of(&ds));
    Ok(())
}

/// `tweetmob population <dataset> [--scale S] [--radius KM]`
pub fn population(args: &Args) -> Result<()> {
    let ds = dataset_arg(args)?;
    let scale = scale_arg(args)?;
    let radius = args.get_parsed("radius", scale.search_radius_km())?;
    let exp = experiment(args, &ds);
    let pop = exp.population_correlation_with_radius(scale, radius)?;
    println!("{} scale, ε = {radius} km", scale.name());
    println!("{pop}");
    Ok(())
}

/// `tweetmob mobility <dataset> [--scale S] [--census] [--extended]
/// [--artifact-out PATH]`
pub fn mobility(args: &Args) -> Result<()> {
    let ds = dataset_arg(args)?;
    let (report, mut bundle) = fit_bundle(args, &ds)?;
    print!("{report}");
    if args.has("extended") {
        let ablation = deterrence_ablation(&report);
        for e in ablation.evaluations() {
            println!("  {e}");
        }
        if let Ok((iters, _)) = &ablation.ipf {
            println!("  (IPF converged in {iters} sweeps)");
        }
    }
    if let Some(path) = args.get("artifact-out") {
        bundle.set_provenance(embedded_provenance(args, "mobility"));
        bundle.save_file(path)?;
        tweetmob_obs::manifest::record_output(path);
        println!("artifact written to {path}");
    }
    Ok(())
}

/// `tweetmob fit <dataset> --artifact-out PATH [--scale S] [--census]`
/// — the fit half of the fit-once / predict-many split: run the
/// mobility experiment and persist the fitted models with their
/// geometry so later `predict` / `epidemic` runs need no dataset.
pub fn fit(args: &Args) -> Result<()> {
    let out = args
        .get("artifact-out")
        .ok_or("missing --artifact-out PATH")?;
    let ds = dataset_arg(args)?;
    let (report, mut bundle) = fit_bundle(args, &ds)?;
    bundle.set_provenance(embedded_provenance(args, "fit"));
    bundle.save_file(out)?;
    tweetmob_obs::manifest::record_output(out);
    print!("{report}");
    println!(
        "artifact: {} areas, {} populations, models fitted on {} trips → {out}",
        bundle.len(),
        bundle.meta().population_source,
        report.od_total
    );
    Ok(())
}

/// `tweetmob predict (--artifact-in PATH | --fit DATASET) --origin NAME
/// [--dest NAME | --top K] [--model M|all] [--json]` — answer pairwise
/// or top-k flow queries from fitted models, without refitting when an
/// artifact is supplied.
pub fn predict(args: &Args) -> Result<()> {
    let bundle = bundle_arg(args)?;
    let model_flag = args.get("model").unwrap_or("all");
    let kinds: Vec<ModelKind> = if model_flag.eq_ignore_ascii_case("all") {
        ModelKind::ALL.to_vec()
    } else {
        // `resolve_model`'s QueryError names the valid spellings; the
        // CLI adds the `all` alias it layers on top.
        vec![ModelBundle::resolve_model(model_flag).map_err(|e| format!("{e}, or all"))?]
    };
    let origin_name = args.get("origin").ok_or("missing --origin AREA")?;
    let origin = bundle.resolve_area(origin_name)?;
    let origin_name = bundle.areas()[origin].name.clone();

    if let Some(dest_name) = args.get("dest") {
        let dest = bundle.resolve_area(dest_name)?;
        if dest == origin {
            return Err("--origin and --dest name the same area".into());
        }
        let dest_name = bundle.areas()[dest].name.clone();
        let predictions: Vec<(ModelKind, f64)> = kinds
            .iter()
            .map(|&k| Ok((k, bundle.predict(k, origin, dest)?)))
            .collect::<std::result::Result<_, tweetmob_data::QueryError>>()?;
        if args.has("json") {
            let map: serde_json::Map<String, serde_json::Value> = predictions
                .iter()
                .map(|&(k, p)| (k.key().to_string(), serde_json::json!(p)))
                .collect();
            let doc = serde_json::json!({
                "origin": origin_name,
                "dest": dest_name,
                "distance_km": bundle.geometry().distance(origin, dest),
                "predictions": map,
            });
            println!("{doc}");
        } else {
            println!(
                "{origin_name} → {dest_name} ({:.1} km)",
                bundle.geometry().distance(origin, dest)
            );
            for (k, p) in predictions {
                println!("  {:<14} {p:.3}", k.key());
            }
        }
    } else {
        let k: usize = args.get_parsed("top", 5)?;
        if args.has("json") {
            let models: serde_json::Map<String, serde_json::Value> = kinds
                .iter()
                .map(|&kind| {
                    let ranked: Vec<serde_json::Value> = bundle
                        .top_k(kind, origin, k)?
                        .into_iter()
                        .map(|(dest, flow)| {
                            serde_json::json!({
                                "dest": bundle.areas()[dest].name,
                                "flow": flow,
                            })
                        })
                        .collect();
                    Ok((kind.key().to_string(), serde_json::json!(ranked)))
                })
                .collect::<std::result::Result<_, tweetmob_data::QueryError>>()?;
            let doc = serde_json::json!({
                "origin": origin_name,
                "k": k,
                "models": models,
            });
            println!("{doc}");
        } else {
            for &kind in &kinds {
                println!("top {k} destinations from {origin_name} ({}):", kind.key());
                for (dest, flow) in bundle.top_k(kind, origin, k)? {
                    println!("  {:<16} {flow:.3}", bundle.areas()[dest].name);
                }
            }
        }
    }
    Ok(())
}

/// `tweetmob epidemic (<dataset> | --artifact-in PATH) [--beta X]
/// [--gamma X] [--sigma X] [--seed-city NAME] [--days N]
/// [--restrict DAY:FACTOR]`
pub fn epidemic(args: &Args) -> Result<()> {
    let beta: f64 = args.get_parsed("beta", 0.5)?;
    let gamma: f64 = args.get_parsed("gamma", 0.2)?;
    let days: f64 = args.get_parsed("days", 365.0)?;
    let seed_city = args.get("seed-city").unwrap_or("Sydney");

    // The outbreak runs over the gravity flows of a fitted national
    // model. With --artifact-in the fit comes straight off disk — no
    // dataset, no refit; otherwise fit gravity on national flows now.
    // Either way the network is built from the bundle over census
    // populations (the paper's proposed pipeline), bit-identically.
    let bundle = if let Some(path) = args.get("artifact-in") {
        let _span = tweetmob_obs::span!("artifact_in");
        tweetmob_obs::manifest::record_input(path);
        ModelBundle::load_file(path)?
    } else {
        let ds = dataset_arg(args)?;
        let exp = experiment(args, &ds);
        exp.fit(Scale::National)?.1
    };
    let seed_patch = bundle
        .area_index(seed_city)
        .ok_or_else(|| format!("unknown seed city {seed_city:?}"))?;
    let n = bundle.len();
    let gravity_gamma = bundle.models().gravity2.gamma;
    let network = MobilityNetwork::from_artifact(&bundle, ModelKind::Gravity2, 0.02)?;

    let mut scenario = OutbreakScenario::new(network, beta, gamma).seed(seed_patch, 20.0);
    let immune: f64 = args.get_parsed("immune", 0.0)?;
    if immune > 0.0 {
        scenario = scenario.with_initial_immunity(immune);
    }
    if let Some(sigma) = args.get("sigma") {
        let sigma: f64 = sigma.parse().map_err(|e| format!("--sigma: {e}"))?;
        scenario = scenario.with_seir(SeirParams { sigma });
    }
    if let Some(spec) = args.get("restrict") {
        let (day, factor) = spec
            .split_once(':')
            .ok_or("--restrict wants DAY:FACTOR, e.g. 30:0.1")?;
        scenario = scenario.with_travel_restriction(
            day.parse().map_err(|e| format!("--restrict day: {e}"))?,
            factor
                .parse()
                .map_err(|e| format!("--restrict factor: {e}"))?,
        );
    }
    let timeline = scenario.run_deterministic(days, 0.25)?;

    println!(
        "outbreak seeded in {seed_city} (β = {beta}, γ = {gamma}, R0 ≈ {:.1}), gravity γ = {:.2}",
        beta / gamma,
        gravity_gamma
    );
    println!(
        "{:<16} {:>12} {:>14} {:>14}",
        "city", "arrival(day)", "peak infected", "final size"
    );
    let mut rows: Vec<(usize, Option<f64>)> = (0..n)
        .map(|p| (p, timeline.arrival_time(p, 100.0)))
        .collect();
    rows.sort_by(|a, b| {
        a.1.unwrap_or(f64::INFINITY)
            .total_cmp(&b.1.unwrap_or(f64::INFINITY))
    });
    for (p, arrival) in rows {
        println!(
            "{:<16} {:>12} {:>14.0} {:>14.0}",
            bundle.areas()[p].name,
            arrival.map_or("never".into(), |t| format!("{t:.0}")),
            timeline.peak_infected(p),
            timeline.final_size(p)
        );
    }
    Ok(())
}

/// `tweetmob serve --artifact-in PATH [--bind ADDR]` — load a fitted
/// artifact once and answer flow queries over HTTP until killed. The
/// worker-pool size follows `--threads` / `TWEETMOB_THREADS` like every
/// other command; the resolved listen address is printed (and stdout
/// flushed) before serving starts, so a supervisor binding port `0` can
/// read where the kernel put us.
pub fn serve(args: &Args) -> Result<()> {
    let path = args.get("artifact-in").ok_or("missing --artifact-in PATH")?;
    let _span = tweetmob_obs::span!("artifact_in");
    tweetmob_obs::manifest::record_input(path);
    let bundle = ModelBundle::load_file(path)?;
    drop(_span);
    let bind = args.get("bind").unwrap_or("127.0.0.1:8787");
    let workers = tweetmob_par::resolved_threads();
    let areas = bundle.len();
    let state = tweetmob_serve::AppState::new(std::sync::Arc::new(bundle));
    let handle = tweetmob_serve::serve(bind, state, workers)?;
    println!(
        "listening on {} ({areas} areas, {} worker threads)",
        handle.addr(),
        handle.workers()
    );
    use std::io::Write as _;
    std::io::stdout().flush()?;
    handle.join();
    Ok(())
}
