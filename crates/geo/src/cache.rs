//! Columnar geometry cache: per-point trigonometry and a build-once
//! pairwise-distance structure shared across the model-fitting path.
//!
//! Every mobility model in the workspace consumes the same O(n²) pair
//! geometry — distances between fixed area centres, and per-origin
//! distance rankings for the intervening-population term. Before this
//! module each consumer rebuilt that geometry with scalar
//! [`haversine_km`] calls; [`PairGeometry`] builds it once (via the
//! [`TrigPoint`] kernel, which hoists the per-point trigonometry out of
//! the pair loop) and is cheap to share behind an [`Arc`].
//!
//! **Determinism contract**: [`TrigPoint::distance_km`] evaluates the
//! *same* floating-point expression as [`haversine_km`], operation for
//! operation, on precomputed `lat.to_radians()` / `lon.to_radians()` /
//! `cos(lat)` values — so every distance in the cache is bit-identical
//! to the scalar path it replaces. [`PairGeometry::build_direct`] keeps
//! the scalar path alive for A/B benchmarking (`--no-geometry-cache`)
//! and the equivalence suite asserts both agree to the bit.
//!
//! Observability (`cache/pairgeo/*`): `build_ns` (cumulative build
//! time, redacted like every `_ns` field), `hits` (distance lookups
//! served from a built cache) and `misses` (pair distances recomputed
//! by the scalar escape path).

use crate::distance::{haversine_km, EARTH_RADIUS_KM};
use crate::point::Point;
use std::fmt;
use std::sync::Arc;

/// Magic bytes opening a serialized [`PairGeometry`] ("TweetMob Pair
/// Geometry").
pub const GEOMETRY_MAGIC: [u8; 4] = *b"TMPG";

/// Schema version of the [`PairGeometry`] wire format. Bump on any
/// layout change; readers reject versions they do not know.
pub const GEOMETRY_VERSION: u32 = 1;

/// A malformed or unsupported serialized [`PairGeometry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeometryFormatError {
    /// What was wrong with the byte stream.
    pub message: String,
}

impl fmt::Display for GeometryFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad pair-geometry encoding: {}", self.message)
    }
}

impl std::error::Error for GeometryFormatError {}

/// A point with its trigonometry precomputed: radian coordinates plus
/// `sin`/`cos` of the latitude.
///
/// Pairwise distance through [`TrigPoint::distance_km`] then needs only
/// two `sin` calls and one `asin` per pair instead of haversine's four
/// degree→radian conversions and two cosines on top — while producing
/// bit-identical output (the hoisted values are exactly the ones the
/// scalar formula computes internally).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrigPoint {
    /// Latitude in radians (`lat.to_radians()`).
    pub lat_rad: f64,
    /// Longitude in radians (`lon.to_radians()`).
    pub lon_rad: f64,
    /// `sin(lat)` — not used by the haversine kernel itself, but hoisted
    /// here once for consumers that need spherical products (bearings,
    /// destination sampling).
    pub sin_lat: f64,
    /// `cos(lat)`, the factor haversine applies to the longitude term.
    pub cos_lat: f64,
}

impl TrigPoint {
    /// Precomputes the trigonometry of one point.
    #[must_use]
    pub fn new(p: Point) -> Self {
        let lat_rad = p.lat_rad();
        Self {
            lat_rad,
            lon_rad: p.lon_rad(),
            sin_lat: lat_rad.sin(),
            cos_lat: lat_rad.cos(),
        }
    }

    /// Great-circle distance to `other`, km — bit-identical to
    /// [`haversine_km`] on the originating points.
    ///
    /// This must stay the exact expression from `distance.rs` (same
    /// operations, same association) with the per-point factors
    /// substituted; any "faster" reformulation (law of cosines, one
    /// `acos`) changes low bits and breaks the cache's bit-equality
    /// contract.
    #[inline]
    #[must_use]
    pub fn distance_km(&self, other: &TrigPoint) -> f64 {
        let dlat = other.lat_rad - self.lat_rad;
        let dlon = other.lon_rad - self.lon_rad;
        let sin_dlat = (dlat / 2.0).sin();
        let sin_dlon = (dlon / 2.0).sin();
        let h = sin_dlat * sin_dlat + self.cos_lat * other.cos_lat * sin_dlon * sin_dlon;
        2.0 * EARTH_RADIUS_KM * h.clamp(0.0, 1.0).sqrt().asin()
    }
}

/// Batch pairwise-distance kernel: the upper triangle (`i < j`,
/// row-major) of the distance matrix over `points`, via [`TrigPoint`].
///
/// Output is bit-identical to calling [`haversine_km`] per pair
/// ([`pairwise_km_direct`]), at roughly a third of the transcendental
/// work — the per-point trigonometry is computed n times instead of
/// n·(n−1) times.
#[must_use]
pub fn pairwise_km(points: &[Point]) -> Vec<f64> {
    let trig: Vec<TrigPoint> = points.iter().copied().map(TrigPoint::new).collect();
    let n = points.len();
    let mut out = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for (i, a) in trig.iter().enumerate() {
        for b in &trig[i + 1..] {
            out.push(a.distance_km(b));
        }
    }
    out
}

/// Scalar reference for [`pairwise_km`]: the same upper triangle via
/// per-pair [`haversine_km`]. Kept as the pre-cache baseline for the
/// `kernels_bench` A/B and the equivalence suite.
#[must_use]
pub fn pairwise_km_direct(points: &[Point]) -> Vec<f64> {
    let n = points.len();
    let mut out = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for (i, &a) in points.iter().enumerate() {
        for &b in &points[i + 1..] {
            // lint: allow(raw-haversine) — this IS the pre-cache scalar baseline the cache is bit-compared against
            out.push(haversine_km(a, b));
        }
    }
    out
}

/// Build-once pairwise geometry over a fixed point set: the
/// upper-triangular distance matrix plus per-origin distance-sorted
/// rank lists.
///
/// Intended to be built once per area set and shared behind an [`Arc`]
/// by every consumer (gravity observations, radiation/opportunities
/// intervening-population rankings, the epidemic network builder). The
/// structure is immutable — "invalidation" is simply building a new one
/// for a new point set; nothing is ever updated in place.
///
/// Memory: `n(n−1)/2` f64 for the triangle plus `n(n−1)` (f64, usize)
/// rank entries — ~24 n² bytes. The paper's scales fix n = 20 (≈ 9 KiB);
/// epidemic networks stay in the same range, so the cache is always
/// small compared to the tweet data it serves.
#[derive(Debug, Clone)]
pub struct PairGeometry {
    n: usize,
    /// Upper triangle, row-major: pairs `(i, j)` with `i < j`.
    tri: Vec<f64>,
    /// Per origin: `(distance to other point, its index)`, ascending.
    ranked: Vec<Vec<(f64, usize)>>,
    hits: tweetmob_obs::Counter,
}

impl PairGeometry {
    /// Builds the cache with the [`TrigPoint`] batch kernel.
    #[must_use]
    pub fn build(points: &[Point]) -> Self {
        Self::from_triangle(points.len(), pairwise_km(points))
    }

    /// Builds the cache with scalar per-pair [`haversine_km`] — the
    /// pre-cache path, kept for A/B runs (`--no-geometry-cache`). Every
    /// pair distance is counted as a `cache/pairgeo/misses`.
    #[must_use]
    pub fn build_direct(points: &[Point]) -> Self {
        let tri = pairwise_km_direct(points);
        tweetmob_obs::counter!("cache/pairgeo/misses").add(tri.len() as u64);
        Self::from_triangle(points.len(), tri)
    }

    /// [`PairGeometry::build`] wrapped in an [`Arc`] for sharing.
    #[must_use]
    pub fn shared(points: &[Point]) -> Arc<Self> {
        Arc::new(Self::build(points))
    }

    fn from_triangle(n: usize, tri: Vec<f64>) -> Self {
        let built = {
            let _span = tweetmob_obs::span!("cache/pairgeo/build");
            debug_assert_eq!(tri.len(), n * n.saturating_sub(1) / 2);
            // One streaming pass over the row-major triangle appends each
            // pair to both endpoint rows. Row `i` receives its `j < i`
            // partners while earlier rows are scanned (in ascending `j`)
            // and its `j > i` partners when row `i` itself is scanned —
            // so every pre-sort row is exactly the ascending-index order
            // the per-origin scalar build produced, and the stable sort
            // below yields bit-identical rank lists (ties included).
            let mut ranked: Vec<Vec<(f64, usize)>> = (0..n)
                .map(|_| Vec::with_capacity(n.saturating_sub(1)))
                .collect();
            let mut idx = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    let d = tri[idx];
                    idx += 1;
                    ranked[i].push((d, j));
                    ranked[j].push((d, i));
                }
            }
            for row in &mut ranked {
                row.sort_by(|a, b| a.0.total_cmp(&b.0));
            }
            Self {
                n,
                tri,
                ranked,
                hits: tweetmob_obs::counter!("cache/pairgeo/hits"),
            }
        };
        // Surface cumulative build time as a gauge; `_ns` fields are
        // zeroed by redacted serialization so determinism comparisons
        // stay byte-stable.
        let build_ns = tweetmob_obs::global()
            .span_stat("cache/pairgeo/build")
            .map_or(0, |s| s.total_ns);
        tweetmob_obs::gauge!("cache/pairgeo/build_ns")
            .set(i64::try_from(build_ns).unwrap_or(i64::MAX));
        built
    }

    /// Number of points the cache covers.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the cache covers no points.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Cached distance between points `i` and `j`, km (0 on the
    /// diagonal). Symmetric by construction.
    ///
    /// # Panics
    ///
    /// If an index is out of range.
    #[inline]
    #[must_use]
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "point index out of range");
        self.hits.incr();
        if i == j {
            return 0.0;
        }
        tri_lookup(&self.tri, self.n, i, j)
    }

    /// The distance-sorted rank list of origin `i`: `(distance, index)`
    /// ascending over every other point.
    ///
    /// # Panics
    ///
    /// If `i` is out of range.
    #[inline]
    #[must_use]
    pub fn ranked(&self, i: usize) -> &[(f64, usize)] {
        &self.ranked[i]
    }

    /// The raw upper triangle (`i < j`, row-major).
    #[inline]
    #[must_use]
    pub fn upper_triangle(&self) -> &[f64] {
        &self.tri
    }

    /// Sum of all pairwise distances (each unordered pair once).
    #[must_use]
    pub fn total_distance_km(&self) -> f64 {
        self.tri.iter().sum()
    }

    /// The full symmetric distance matrix as dense rows, for consumers
    /// with a `distances[i][j]` interface (epidemic network builder).
    #[must_use]
    pub fn dense_rows(&self) -> Vec<Vec<f64>> {
        (0..self.n)
            .map(|i| (0..self.n).map(|j| self.distance(i, j)).collect())
            .collect()
    }

    /// Serializes the cache: [`GEOMETRY_MAGIC`], [`GEOMETRY_VERSION`]
    /// (u32 LE), point count (u64 LE), then every upper-triangle
    /// distance as its `f64::to_bits` in LE order.
    ///
    /// Only the triangle travels — the rank lists are a deterministic
    /// function of it and are rebuilt on load, so a round-tripped cache
    /// is indistinguishable (to the bit, rank ties included) from the
    /// freshly built one.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 4 + 8 + 8 * self.tri.len());
        out.extend_from_slice(&GEOMETRY_MAGIC);
        out.extend_from_slice(&GEOMETRY_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.n as u64).to_le_bytes());
        for &d in &self.tri {
            out.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        out
    }

    /// Deserializes a cache written by [`PairGeometry::to_bytes`],
    /// rebuilding the per-origin rank lists from the decoded triangle.
    ///
    /// # Errors
    ///
    /// [`GeometryFormatError`] on wrong magic, an unknown version, or a
    /// byte length that does not match the declared point count.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, GeometryFormatError> {
        let header_len = 4 + 4 + 8;
        if bytes.len() < header_len {
            return Err(GeometryFormatError {
                message: format!("truncated header: {} bytes", bytes.len()),
            });
        }
        if bytes[..4] != GEOMETRY_MAGIC {
            return Err(GeometryFormatError {
                message: format!("bad magic {:?}, expected {GEOMETRY_MAGIC:?}", &bytes[..4]),
            });
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != GEOMETRY_VERSION {
            return Err(GeometryFormatError {
                message: format!(
                    "unsupported version {version} (reader supports {GEOMETRY_VERSION})"
                ),
            });
        }
        let mut count_raw = [0u8; 8];
        count_raw.copy_from_slice(&bytes[8..16]);
        let declared = u64::from_le_bytes(count_raw);
        // An implausible count can't pretend to be valid: the byte
        // length must match n(n−1)/2 triangle entries exactly, and the
        // arithmetic is checked so giant counts fail cleanly.
        let n = usize::try_from(declared).ok();
        let pairs = n
            .and_then(|n| n.checked_mul(n.saturating_sub(1)))
            .map(|p| p / 2);
        let expected = pairs
            .and_then(|p| p.checked_mul(8))
            .and_then(|b| b.checked_add(header_len));
        if expected != Some(bytes.len()) {
            return Err(GeometryFormatError {
                message: format!(
                    "length mismatch: {} bytes for {declared} points",
                    bytes.len()
                ),
            });
        }
        let tri: Vec<f64> = bytes[header_len..]
            .chunks_exact(8)
            .map(|c| {
                let mut raw = [0u8; 8];
                raw.copy_from_slice(c);
                f64::from_bits(u64::from_le_bytes(raw))
            })
            .collect();
        // `n` is Some here: usize::try_from(declared) succeeded or the
        // length check above would have failed.
        Ok(Self::from_triangle(n.unwrap_or(0), tri))
    }
}

/// Upper-triangle lookup for an unordered pair (`i != j`).
#[inline]
fn tri_lookup(tri: &[f64], n: usize, i: usize, j: usize) -> f64 {
    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
    tri[lo * (2 * n - lo - 1) / 2 + (hi - lo - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(count: usize, seed: u64) -> Vec<Point> {
        let mut k = seed;
        let mut next = |lo: f64, hi: f64| {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            lo + (k >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
        };
        (0..count)
            .map(|_| Point::new_unchecked(next(-44.0, -10.0), next(113.0, 154.0)))
            .collect()
    }

    #[test]
    fn trig_distance_bit_identical_to_haversine() {
        let pts = scatter(40, 3);
        for (i, &a) in pts.iter().enumerate() {
            let ta = TrigPoint::new(a);
            for &b in &pts[i..] {
                let tb = TrigPoint::new(b);
                assert_eq!(
                    ta.distance_km(&tb).to_bits(),
                    haversine_km(a, b).to_bits(),
                    "{a:?} -> {b:?}"
                );
            }
        }
    }

    #[test]
    fn trig_distance_bit_identical_near_antipode() {
        // The clamp keeps h in [0, 1] where rounding pushes it above;
        // both paths must agree bit-for-bit there too.
        let a = Point::new_unchecked(10.0, 20.0);
        for dlat in [-1e-12, 0.0, 1e-12] {
            for dlon in [-1e-12, 0.0, 1e-12] {
                let b = Point::new_unchecked(-10.0 + dlat, -160.0 + dlon);
                let d = TrigPoint::new(a).distance_km(&TrigPoint::new(b));
                assert_eq!(d.to_bits(), haversine_km(a, b).to_bits());
                assert!(d.is_finite());
            }
        }
    }

    #[test]
    fn batch_kernel_matches_scalar_reference() {
        let pts = scatter(25, 11);
        let fast = pairwise_km(&pts);
        let slow = pairwise_km_direct(&pts);
        assert_eq!(fast.len(), 25 * 24 / 2);
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn pair_geometry_distance_is_symmetric_with_zero_diagonal() {
        let pts = scatter(12, 7);
        let geo = PairGeometry::build(&pts);
        assert_eq!(geo.len(), 12);
        assert!(!geo.is_empty());
        for i in 0..12 {
            assert_eq!(geo.distance(i, i), 0.0);
            for j in 0..12 {
                assert_eq!(geo.distance(i, j).to_bits(), geo.distance(j, i).to_bits());
                if i != j {
                    assert_eq!(
                        geo.distance(i, j).to_bits(),
                        haversine_km(pts[i], pts[j]).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn direct_build_matches_kernel_build() {
        let pts = scatter(15, 23);
        let fast = PairGeometry::build(&pts);
        let slow = PairGeometry::build_direct(&pts);
        assert_eq!(fast.upper_triangle().len(), slow.upper_triangle().len());
        for (a, b) in fast.upper_triangle().iter().zip(slow.upper_triangle()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(fast.ranked(3), slow.ranked(3));
    }

    #[test]
    fn ranked_rows_are_ascending_and_complete() {
        let pts = scatter(10, 5);
        let geo = PairGeometry::build(&pts);
        for i in 0..10 {
            let row = geo.ranked(i);
            assert_eq!(row.len(), 9);
            assert!(row.windows(2).all(|w| w[0].0 <= w[1].0));
            assert!(row
                .iter()
                .all(|&(d, j)| { j != i && d.to_bits() == geo.distance(i, j).to_bits() }));
        }
    }

    #[test]
    fn dense_rows_round_trip() {
        let pts = scatter(6, 99);
        let geo = PairGeometry::build(&pts);
        let rows = geo.dense_rows();
        assert_eq!(rows.len(), 6);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(rows[i][j].to_bits(), geo.distance(i, j).to_bits());
            }
        }
    }

    #[test]
    fn empty_and_single_point_sets() {
        let empty = PairGeometry::build(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.upper_triangle().len(), 0);
        let one = PairGeometry::build(&[Point::new_unchecked(0.0, 0.0)]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.distance(0, 0), 0.0);
        assert!(one.ranked(0).is_empty());
    }

    #[test]
    fn shared_handle_is_cheaply_clonable() {
        let geo = PairGeometry::shared(&scatter(8, 1));
        let other = Arc::clone(&geo);
        assert_eq!(geo.distance(0, 5).to_bits(), other.distance(0, 5).to_bits());
    }

    #[test]
    fn codec_round_trip_is_bit_exact() {
        let pts = scatter(14, 41);
        let geo = PairGeometry::build(&pts);
        let bytes = geo.to_bytes();
        let back = PairGeometry::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), geo.len());
        assert_eq!(back.upper_triangle().len(), geo.upper_triangle().len());
        for (a, b) in geo.upper_triangle().iter().zip(back.upper_triangle()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for i in 0..geo.len() {
            assert_eq!(geo.ranked(i), back.ranked(i));
        }
        // Re-encoding is byte-identical — the format is canonical.
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn codec_round_trips_empty_and_single_point() {
        for count in [0, 1] {
            let geo = PairGeometry::build(&scatter(count, 3));
            let back = PairGeometry::from_bytes(&geo.to_bytes()).unwrap();
            assert_eq!(back.len(), count);
            assert!(back.upper_triangle().is_empty());
        }
    }

    #[test]
    fn codec_rejects_bad_magic() {
        let mut bytes = PairGeometry::build(&scatter(4, 9)).to_bytes();
        bytes[0] = b'X';
        let err = PairGeometry::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn codec_rejects_unknown_version() {
        let mut bytes = PairGeometry::build(&scatter(4, 9)).to_bytes();
        bytes[4] = 99;
        let err = PairGeometry::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn codec_rejects_truncation_and_length_mismatch() {
        let bytes = PairGeometry::build(&scatter(5, 13)).to_bytes();
        assert!(PairGeometry::from_bytes(&bytes[..10]).is_err());
        assert!(PairGeometry::from_bytes(&bytes[..bytes.len() - 8]).is_err());
        let mut extended = bytes.clone();
        extended.extend_from_slice(&[0u8; 8]);
        assert!(PairGeometry::from_bytes(&extended).is_err());
        // Implausibly huge declared count fails cleanly, no allocation.
        let mut huge = bytes;
        huge[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = PairGeometry::from_bytes(&huge).unwrap_err();
        assert!(err.to_string().contains("length mismatch"), "{err}");
    }

    #[test]
    fn cache_metrics_are_recorded() {
        let pts = scatter(5, 77);
        let before_misses = tweetmob_obs::counter!("cache/pairgeo/misses").value();
        let geo = PairGeometry::build_direct(&pts);
        assert_eq!(
            tweetmob_obs::counter!("cache/pairgeo/misses").value(),
            before_misses + 10
        );
        let before_hits = tweetmob_obs::counter!("cache/pairgeo/hits").value();
        let _ = geo.distance(0, 1);
        let _ = geo.distance(2, 2);
        assert_eq!(
            tweetmob_obs::counter!("cache/pairgeo/hits").value(),
            before_hits + 2
        );
    }
}
