//! WGS-84 points and coordinate validation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error type for invalid geographic input.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// Latitude outside `[-90, 90]` or not finite.
    InvalidLatitude(f64),
    /// Longitude outside `[-180, 180]` or not finite.
    InvalidLongitude(f64),
    /// A bounding box whose minimum exceeds its maximum on some axis.
    EmptyBox {
        /// Offending axis name (`"lat"` or `"lon"`).
        axis: &'static str,
        /// Minimum supplied for the axis.
        min: f64,
        /// Maximum supplied for the axis.
        max: f64,
    },
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::InvalidLatitude(v) => {
                write!(f, "latitude {v} outside [-90, 90] or not finite")
            }
            GeoError::InvalidLongitude(v) => {
                write!(f, "longitude {v} outside [-180, 180] or not finite")
            }
            GeoError::EmptyBox { axis, min, max } => {
                write!(
                    f,
                    "bounding box empty on {axis} axis: min {min} > max {max}"
                )
            }
        }
    }
}

impl std::error::Error for GeoError {}

/// A WGS-84 coordinate pair in degrees.
///
/// `Point` is `Copy` and 16 bytes; tweet datasets store millions of them in
/// flat vectors, so it deliberately carries no altitude, datum or metadata.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Latitude in degrees, `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, `[-180, 180]`.
    pub lon: f64,
}

impl Point {
    /// Creates a validated point.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidLatitude`] / [`GeoError::InvalidLongitude`]
    /// when a coordinate is non-finite or out of range.
    pub fn new(lat: f64, lon: f64) -> Result<Self, GeoError> {
        if !lat.is_finite() || !(-90.0..=90.0).contains(&lat) {
            return Err(GeoError::InvalidLatitude(lat));
        }
        if !lon.is_finite() || !(-180.0..=180.0).contains(&lon) {
            return Err(GeoError::InvalidLongitude(lon));
        }
        Ok(Self { lat, lon })
    }

    /// Creates a point without range checks.
    ///
    /// Use only where coordinates are known valid (e.g. values already
    /// produced by this crate). Invalid values produce garbage distances,
    /// never memory unsafety.
    #[inline]
    pub const fn new_unchecked(lat: f64, lon: f64) -> Self {
        Self { lat, lon }
    }

    /// Latitude in radians.
    #[inline]
    pub fn lat_rad(self) -> f64 {
        self.lat.to_radians()
    }

    /// Longitude in radians.
    #[inline]
    pub fn lon_rad(self) -> f64 {
        self.lon.to_radians()
    }

    /// Component-wise midpoint in coordinate space (not the geodesic
    /// midpoint; adequate for small spans such as suburb polyglabel work).
    #[inline]
    pub fn coordinate_midpoint(self, other: Point) -> Point {
        Point::new_unchecked((self.lat + other.lat) / 2.0, (self.lon + other.lon) / 2.0)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.lat, self.lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_point_roundtrips() {
        let p = Point::new(-33.8688, 151.2093).unwrap();
        assert_eq!(p.lat, -33.8688);
        assert_eq!(p.lon, 151.2093);
    }

    #[test]
    fn poles_and_antimeridian_are_valid() {
        assert!(Point::new(90.0, 0.0).is_ok());
        assert!(Point::new(-90.0, 0.0).is_ok());
        assert!(Point::new(0.0, 180.0).is_ok());
        assert!(Point::new(0.0, -180.0).is_ok());
    }

    #[test]
    fn out_of_range_latitude_rejected() {
        assert_eq!(
            Point::new(90.0001, 0.0),
            Err(GeoError::InvalidLatitude(90.0001))
        );
        assert_eq!(
            Point::new(-91.0, 0.0),
            Err(GeoError::InvalidLatitude(-91.0))
        );
    }

    #[test]
    fn out_of_range_longitude_rejected() {
        assert_eq!(
            Point::new(0.0, 180.5),
            Err(GeoError::InvalidLongitude(180.5))
        );
    }

    #[test]
    fn non_finite_rejected() {
        assert!(Point::new(f64::NAN, 0.0).is_err());
        assert!(Point::new(0.0, f64::INFINITY).is_err());
        assert!(Point::new(f64::NEG_INFINITY, 0.0).is_err());
    }

    #[test]
    fn radians_conversion() {
        let p = Point::new(90.0, -180.0).unwrap();
        assert!((p.lat_rad() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((p.lon_rad() + std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_componentwise() {
        let a = Point::new(-30.0, 150.0).unwrap();
        let b = Point::new(-34.0, 152.0).unwrap();
        let m = a.coordinate_midpoint(b);
        assert_eq!(m.lat, -32.0);
        assert_eq!(m.lon, 151.0);
    }

    #[test]
    fn display_formats_six_decimals() {
        let p = Point::new(-33.8688, 151.2093).unwrap();
        assert_eq!(p.to_string(), "(-33.868800, 151.209300)");
    }

    #[test]
    fn serde_roundtrip() {
        let p = Point::new(-12.4634, 130.8456).unwrap();
        let json = serde_json_roundtrip(&p);
        assert_eq!(p, json);
    }

    fn serde_json_roundtrip(p: &Point) -> Point {
        // Manual mini-serialisation through serde's data model so the geo
        // crate itself does not depend on serde_json.
        use serde::de::value::{F64Deserializer, MapDeserializer};
        use serde::de::IntoDeserializer;
        use serde::Deserialize;
        let pairs: Vec<(&str, F64Deserializer<serde::de::value::Error>)> = vec![
            ("lat", p.lat.into_deserializer()),
            ("lon", p.lon.into_deserializer()),
        ];
        let de: MapDeserializer<'_, _, serde::de::value::Error> =
            MapDeserializer::new(pairs.into_iter());
        Point::deserialize(de).unwrap()
    }
}
