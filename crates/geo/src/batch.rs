//! Contiguous-array distance kernels for struct-of-arrays datasets.
//!
//! The columnar [`TweetDataset`](../../tweetmob_data) stores coordinates
//! as flat `lat[]` / `lon[]` columns; these kernels consume those columns
//! directly instead of forcing callers to materialise `Point` structs.
//! The batch form hoists the origin's trigonometry out of the loop (the
//! [`TrigPoint`] trick from the pair-geometry cache) and leaves the body
//! as straight-line arithmetic over two contiguous arrays — exactly the
//! shape the autovectorizer handles best.
//!
//! **Determinism contract** (same as [`TrigPoint::distance_km`]): every
//! batch kernel evaluates the *identical* floating-point expression as
//! its scalar reference, operation for operation — outputs are asserted
//! bit-identical in the equivalence suite, so callers may switch freely
//! between the scalar and batch paths without perturbing any downstream
//! fit.

use crate::cache::TrigPoint;
use crate::distance::{haversine_km, EARTH_RADIUS_KM};
use crate::point::Point;

/// Haversine distances from one `origin` to every `(lats[i], lons[i])`
/// coordinate pair, appended to `out` in order.
///
/// Bit-identical to `haversine_km(origin, p)` per element
/// ([`haversine_km_batch_direct`]): the origin's radian coordinates and
/// latitude cosine are the exact values the scalar formula recomputes
/// per call, hoisted once.
///
/// # Panics
///
/// If `lats` and `lons` have different lengths.
pub fn haversine_km_batch(origin: Point, lats: &[f64], lons: &[f64], out: &mut Vec<f64>) {
    assert_eq!(lats.len(), lons.len(), "coordinate columns must be parallel");
    let o = TrigPoint::new(origin);
    out.reserve(lats.len());
    for (&lat, &lon) in lats.iter().zip(lons.iter()) {
        let lat_rad = lat.to_radians();
        let dlat = lat_rad - o.lat_rad;
        let dlon = lon.to_radians() - o.lon_rad;
        let sin_dlat = (dlat / 2.0).sin();
        let sin_dlon = (dlon / 2.0).sin();
        let h = sin_dlat * sin_dlat + o.cos_lat * lat_rad.cos() * sin_dlon * sin_dlon;
        out.push(2.0 * EARTH_RADIUS_KM * h.clamp(0.0, 1.0).sqrt().asin());
    }
}

/// Scalar reference for [`haversine_km_batch`]: per-element
/// [`haversine_km`] calls over the same columns. Kept for the A/B
/// equivalence suite and benches, mirroring
/// [`pairwise_km_direct`](crate::pairwise_km_direct).
pub fn haversine_km_batch_direct(origin: Point, lats: &[f64], lons: &[f64], out: &mut Vec<f64>) {
    assert_eq!(lats.len(), lons.len(), "coordinate columns must be parallel");
    out.reserve(lats.len());
    for (&lat, &lon) in lats.iter().zip(lons.iter()) {
        // lint: allow(raw-haversine) — this IS the scalar reference the batch kernel is bit-compared against
        out.push(haversine_km(origin, Point::new_unchecked(lat, lon)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SYDNEY: Point = Point::new_unchecked(-33.8688, 151.2093);

    fn columns() -> (Vec<f64>, Vec<f64>) {
        let lats = vec![-37.8136, -33.8688, -12.4634, -42.8821, -31.9523];
        let lons = vec![144.9631, 151.2093, 130.8456, 147.3272, 115.8613];
        (lats, lons)
    }

    #[test]
    fn batch_matches_scalar_bit_for_bit() {
        let (lats, lons) = columns();
        let mut fast = Vec::new();
        let mut reference = Vec::new();
        haversine_km_batch(SYDNEY, &lats, &lons, &mut fast);
        haversine_km_batch_direct(SYDNEY, &lats, &lons, &mut reference);
        assert_eq!(fast.len(), lats.len());
        for (a, b) in fast.iter().zip(reference.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batch_appends_without_clearing() {
        let (lats, lons) = columns();
        let mut out = vec![1.0];
        haversine_km_batch(SYDNEY, &lats, &lons, &mut out);
        assert_eq!(out.len(), 1 + lats.len());
        assert_eq!(out[0], 1.0);
    }

    #[test]
    fn empty_columns_produce_nothing() {
        let mut out = Vec::new();
        haversine_km_batch(SYDNEY, &[], &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn self_distance_is_zero() {
        let mut out = Vec::new();
        haversine_km_batch(SYDNEY, &[SYDNEY.lat], &[SYDNEY.lon], &mut out);
        assert_eq!(out, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_columns_panic() {
        let mut out = Vec::new();
        haversine_km_batch(SYDNEY, &[0.0, 1.0], &[0.0], &mut out);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn bit_identical_for_any_columns(
                origin_lat in -89.9..89.9f64,
                origin_lon in -179.9..179.9f64,
                coords in prop::collection::vec((-89.9..89.9f64, -179.9..179.9f64), 0..64),
            ) {
                let origin = Point::new_unchecked(origin_lat, origin_lon);
                let lats: Vec<f64> = coords.iter().map(|c| c.0).collect();
                let lons: Vec<f64> = coords.iter().map(|c| c.1).collect();
                let mut fast = Vec::new();
                let mut reference = Vec::new();
                haversine_km_batch(origin, &lats, &lons, &mut fast);
                haversine_km_batch_direct(origin, &lats, &lons, &mut reference);
                for (a, b) in fast.iter().zip(reference.iter()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }
}
