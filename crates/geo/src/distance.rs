//! Great-circle distance, bearing, and destination computations.
//!
//! The paper measures inter-area distances of 7.5 km (Sydney suburbs) to
//! 1422 km (national scale); haversine is accurate to well under 0.5 % over
//! that whole range on the spherical model, which is far below the noise of
//! tweet geotags. For radius filtering in hot loops the equirectangular
//! approximation is ~3x cheaper and accurate to <0.2 % under 100 km at
//! Australian latitudes; the `bench` crate carries an ablation comparing
//! both (DESIGN.md §6.2).

use crate::point::Point;

/// Mean Earth radius (IUGG), kilometres.
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Great-circle distance between two points via the haversine formula, km.
///
/// Numerically stable for both antipodal and very close points (uses
/// `asin(sqrt(h))` with `h` clamped to `[0, 1]`).
#[inline]
pub fn haversine_km(a: Point, b: Point) -> f64 {
    let (lat1, lon1) = (a.lat_rad(), a.lon_rad());
    let (lat2, lon2) = (b.lat_rad(), b.lon_rad());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let sin_dlat = (dlat / 2.0).sin();
    let sin_dlon = (dlon / 2.0).sin();
    let h = sin_dlat * sin_dlat + lat1.cos() * lat2.cos() * sin_dlon * sin_dlon;
    2.0 * EARTH_RADIUS_KM * h.clamp(0.0, 1.0).sqrt().asin()
}

/// Fast equirectangular-projection distance approximation, km.
///
/// Error grows with separation and latitude difference; intended for radius
/// *pre-filtering* of nearby points (≲ 100 km), where it under/over-states
/// haversine by well under 1 %. Falls apart near the poles and across the
/// antimeridian — Australian data (lat −55…−9, lon 112…160) never hits
/// either regime.
#[inline]
pub fn equirectangular_km(a: Point, b: Point) -> f64 {
    let mean_lat = ((a.lat + b.lat) / 2.0).to_radians();
    let x = (b.lon - a.lon).to_radians() * mean_lat.cos();
    let y = (b.lat - a.lat).to_radians();
    EARTH_RADIUS_KM * (x * x + y * y).sqrt()
}

/// Initial great-circle bearing from `a` to `b`, degrees in `[0, 360)`.
pub fn bearing_deg(a: Point, b: Point) -> f64 {
    let (lat1, lon1) = (a.lat_rad(), a.lon_rad());
    let (lat2, lon2) = (b.lat_rad(), b.lon_rad());
    let dlon = lon2 - lon1;
    let y = dlon.sin() * lat2.cos();
    let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
    let deg = y.atan2(x).to_degrees();
    (deg + 360.0) % 360.0
}

/// Destination point reached travelling `distance_km` from `start` on the
/// initial bearing `bearing_deg` (degrees clockwise from north).
///
/// Used by the synthetic generator to scatter tweet locations around a home
/// centre and to displace trip endpoints.
pub fn destination(start: Point, bearing_deg: f64, distance_km: f64) -> Point {
    let delta = distance_km / EARTH_RADIUS_KM;
    let theta = bearing_deg.to_radians();
    let lat1 = start.lat_rad();
    let lon1 = start.lon_rad();
    let lat2 = (lat1.sin() * delta.cos() + lat1.cos() * delta.sin() * theta.cos()).asin();
    let lon2 = lon1
        + (theta.sin() * delta.sin() * lat1.cos()).atan2(delta.cos() - lat1.sin() * lat2.sin());
    // Normalise longitude to [-180, 180].
    let mut lon_deg = lon2.to_degrees();
    if lon_deg > 180.0 {
        lon_deg -= 360.0;
    } else if lon_deg < -180.0 {
        lon_deg += 360.0;
    }
    Point::new_unchecked(lat2.to_degrees(), lon_deg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sydney() -> Point {
        Point::new_unchecked(-33.8688, 151.2093)
    }
    fn melbourne() -> Point {
        Point::new_unchecked(-37.8136, 144.9631)
    }
    fn perth() -> Point {
        Point::new_unchecked(-31.9523, 115.8613)
    }

    #[test]
    fn haversine_known_city_pairs() {
        // Published great-circle distances (spherical model), ±10 km.
        assert!((haversine_km(sydney(), melbourne()) - 713.0).abs() < 10.0);
        assert!((haversine_km(sydney(), perth()) - 3290.0).abs() < 20.0);
    }

    #[test]
    fn haversine_zero_for_identical_points() {
        assert_eq!(haversine_km(sydney(), sydney()), 0.0);
    }

    #[test]
    fn haversine_symmetric() {
        let d1 = haversine_km(sydney(), perth());
        let d2 = haversine_km(perth(), sydney());
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn haversine_antipodal_is_half_circumference() {
        let a = Point::new_unchecked(0.0, 0.0);
        let b = Point::new_unchecked(0.0, 180.0);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((haversine_km(a, b) - half).abs() < 1e-6);
    }

    #[test]
    fn haversine_near_antipodal_never_nan() {
        // Regression: without the [0, 1] clamp on h, rounding at points
        // a hair short of the exact antipode can push h above 1 and
        // sqrt().asin() returns NaN. Perturb the antipode by ±1e-12°
        // on each axis and require a finite distance at (or just under)
        // half the circumference.
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        for (lat, lon) in [(0.0, 0.0), (10.0, 20.0), (-33.8688, 151.2093)] {
            let a = Point::new_unchecked(lat, lon);
            let anti_lon = if lon > 0.0 { lon - 180.0 } else { lon + 180.0 };
            for dlat in [-1e-12, 0.0, 1e-12] {
                for dlon in [-1e-12, 0.0, 1e-12] {
                    let b = Point::new_unchecked(-lat + dlat, anti_lon + dlon);
                    let d = haversine_km(a, b);
                    assert!(d.is_finite(), "NaN at antipode of ({lat}, {lon})");
                    assert!((d - half).abs() < 1e-3, "d {d} vs half {half}");
                }
            }
        }
    }

    #[test]
    fn haversine_one_degree_latitude_is_about_111km() {
        let a = Point::new_unchecked(-30.0, 150.0);
        let b = Point::new_unchecked(-31.0, 150.0);
        let d = haversine_km(a, b);
        assert!((d - 111.195).abs() < 0.01, "got {d}");
    }

    #[test]
    fn equirectangular_close_to_haversine_for_short_range() {
        let a = sydney();
        // ~20 km east of Sydney.
        let b = Point::new_unchecked(-33.8688, 151.4253);
        let h = haversine_km(a, b);
        let e = equirectangular_km(a, b);
        assert!((h - e).abs() / h < 0.002, "h={h} e={e}");
    }

    #[test]
    fn equirectangular_within_one_percent_at_100km() {
        let a = sydney();
        let b = destination(a, 37.0, 100.0);
        let h = haversine_km(a, b);
        let e = equirectangular_km(a, b);
        assert!((h - e).abs() / h < 0.01, "h={h} e={e}");
    }

    #[test]
    fn bearing_cardinal_directions() {
        let origin = Point::new_unchecked(0.0, 0.0);
        assert!((bearing_deg(origin, Point::new_unchecked(1.0, 0.0)) - 0.0).abs() < 1e-9);
        assert!((bearing_deg(origin, Point::new_unchecked(0.0, 1.0)) - 90.0).abs() < 1e-9);
        assert!((bearing_deg(origin, Point::new_unchecked(-1.0, 0.0)) - 180.0).abs() < 1e-9);
        assert!((bearing_deg(origin, Point::new_unchecked(0.0, -1.0)) - 270.0).abs() < 1e-9);
    }

    #[test]
    fn destination_roundtrip_distance() {
        let start = sydney();
        for bearing in [0.0, 45.0, 123.0, 270.0] {
            for dist in [0.5, 10.0, 250.0, 2000.0] {
                let end = destination(start, bearing, dist);
                let measured = haversine_km(start, end);
                assert!(
                    (measured - dist).abs() < 1e-6 * dist.max(1.0),
                    "bearing {bearing} dist {dist} measured {measured}"
                );
            }
        }
    }

    #[test]
    fn destination_longitude_stays_normalised() {
        // Start near the antimeridian and push across it.
        let start = Point::new_unchecked(-10.0, 179.5);
        let end = destination(start, 90.0, 200.0);
        assert!(end.lon >= -180.0 && end.lon <= 180.0, "lon {}", end.lon);
        assert!(end.lon < 0.0, "should have wrapped, lon {}", end.lon);
    }

    #[test]
    fn destination_zero_distance_is_identity() {
        let start = sydney();
        let end = destination(start, 77.0, 0.0);
        assert!((end.lat - start.lat).abs() < 1e-12);
        assert!((end.lon - start.lon).abs() < 1e-12);
    }
}
