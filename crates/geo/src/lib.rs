//! # tweetmob-geo
//!
//! Geodesy and spatial-indexing substrate for the `tweetmob` workspace.
//!
//! The paper ("Multi-scale Population and Mobility Estimation with
//! Geo-tagged Tweets", Liu et al.) works with raw WGS-84 coordinates of
//! geo-tagged tweets and needs three geometric capabilities, all provided
//! here:
//!
//! * **great-circle distances** between tweet locations and area centres
//!   ([`haversine_km`], with a fast [`equirectangular_km`] approximation
//!   for hot loops over nearby points);
//! * **radius extraction** — "number of Tweets / users within a search
//!   radius ε of an area centre" — served by the uniform [`GridIndex`]
//!   which answers radius, k-nearest-neighbour and bounding-box queries
//!   over millions of points;
//! * **density rasterisation** for the paper's Figure 1 tweet-density map
//!   ([`DensityGrid`]);
//! * a **columnar geometry cache** for the model-fitting path —
//!   [`TrigPoint`] hoists per-point trigonometry out of pair loops and
//!   [`PairGeometry`] holds the build-once pairwise distance matrix and
//!   per-origin distance rankings, bit-identical to [`haversine_km`].
//!   The cache serializes to a versioned byte format
//!   ([`PairGeometry::to_bytes`] / [`PairGeometry::from_bytes`]) so it
//!   persists across processes inside model-artifact bundles, with
//!   f64 bit-exact round-trips.
//!
//! All distances are in kilometres, all angles in degrees unless a function
//! name says otherwise. Latitude is constrained to `[-90, 90]` and
//! longitude to `[-180, 180]`; [`Point::new`] validates, [`Point::new_unchecked`]
//! skips validation for trusted hot paths.
//!
//! ## Example
//!
//! ```
//! use tweetmob_geo::{Point, GridIndex, haversine_km};
//!
//! let sydney = Point::new(-33.8688, 151.2093).unwrap();
//! let melbourne = Point::new(-37.8136, 144.9631).unwrap();
//! let d = haversine_km(sydney, melbourne);
//! assert!((d - 713.0).abs() < 10.0); // ~713 km apart
//!
//! let index = GridIndex::build(vec![sydney, melbourne], 1.0);
//! let near_sydney = index.within_radius(sydney, 50.0);
//! assert_eq!(near_sydney.len(), 1);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
// `!(x > 0.0)` guards are deliberate: they also reject NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

mod batch;
mod bbox;
mod cache;
mod density;
mod distance;
mod grid;
mod point;
mod polygon;

pub use batch::{haversine_km_batch, haversine_km_batch_direct};
pub use bbox::{BoundingBox, AUSTRALIA_BBOX};
pub use cache::{
    pairwise_km, pairwise_km_direct, GeometryFormatError, PairGeometry, TrigPoint, GEOMETRY_MAGIC,
    GEOMETRY_VERSION,
};
pub use density::{DensityCell, DensityGrid};
pub use distance::{bearing_deg, destination, equirectangular_km, haversine_km, EARTH_RADIUS_KM};
pub use grid::{GridIndex, Neighbor};
pub use point::{GeoError, Point};
pub use polygon::Polygon;
