//! Uniform spatial grid index over point sets.
//!
//! The paper's extraction step repeatedly asks "which tweets fall within ε
//! of this area centre" for ε ∈ {0.5, 2, 25, 50} km over millions of
//! points. A uniform lat/lon grid with a CSR (compressed bucket) layout
//! answers that in time proportional to the candidate cells touched, with
//! one contiguous allocation — no per-cell `Vec`s, no hashing in the query
//! loop (Rust perf-book: flat storage beats pointer-chasing for scans).

use crate::bbox::BoundingBox;
use crate::distance::haversine_km;
use crate::point::Point;

/// Kilometres per degree of latitude on the spherical model.
const KM_PER_DEG_LAT: f64 = 111.194_926_644_558_74; // 2π·R/360

/// A point returned by a k-NN query, with its index and distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the point in the slice the index was built over.
    pub index: u32,
    /// Great-circle distance to the query centre, km.
    pub distance_km: f64,
}

/// A uniform grid index over an immutable point set.
///
/// Build once, query many times. Point identity is the index into the
/// original `Vec<Point>` passed to [`GridIndex::build`], so callers can
/// keep parallel attribute arrays (user ids, timestamps) and join on index.
#[derive(Debug, Clone)]
pub struct GridIndex {
    points: Vec<Point>,
    bbox: BoundingBox,
    cell_deg: f64,
    nx: usize,
    ny: usize,
    /// CSR offsets: bucket `c` holds `order[starts[c]..starts[c+1]]`.
    starts: Vec<u32>,
    /// Point indices grouped by cell.
    order: Vec<u32>,
}

impl GridIndex {
    /// Builds the index straight from parallel coordinate columns — the
    /// natural entry point for struct-of-arrays datasets, which no
    /// longer keep a `Vec<Point>` around. Identical to zipping the
    /// columns into points and calling [`GridIndex::build`].
    ///
    /// # Panics
    ///
    /// If the columns have different lengths.
    pub fn from_columns(lats: &[f64], lons: &[f64], cell_deg: f64) -> Self {
        assert_eq!(lats.len(), lons.len(), "coordinate columns must be parallel");
        let points = lats
            .iter()
            .zip(lons.iter())
            .map(|(&lat, &lon)| Point::new_unchecked(lat, lon))
            .collect();
        Self::build(points, cell_deg)
    }

    /// Builds an index over `points` with square cells of `cell_deg`
    /// degrees (clamped to a minimum of 1e-6°).
    ///
    /// The total cell count is capped at `4 · points.len()` (minimum 1):
    /// a pathologically small `cell_deg` over a continental bounding box
    /// would otherwise demand ~10¹⁵ cells and abort on allocation, and
    /// more cells than points buys no query selectivity anyway. When the
    /// cap binds, `cell_deg` is widened adaptively (doubling) until the
    /// grid fits; query results are unaffected (cell size never changes
    /// which points a radius query returns, only how many buckets it
    /// scans).
    ///
    /// An empty point set yields a valid index whose queries return
    /// nothing.
    pub fn build(points: Vec<Point>, cell_deg: f64) -> Self {
        let mut cell_deg = cell_deg.max(1e-6);
        let bbox = BoundingBox::covering(points.iter().copied()).unwrap_or(BoundingBox {
            min_lat: 0.0,
            max_lat: 0.0,
            min_lon: 0.0,
            max_lon: 0.0,
        });
        let max_cells = points.len().saturating_mul(4).max(1);
        let (nx, ny) = loop {
            // Sized in f64 first: the usize conversion of an unbounded
            // span ÷ cell ratio could overflow long before the cap check.
            let fx = (bbox.lon_span() / cell_deg).floor() + 1.0;
            let fy = (bbox.lat_span() / cell_deg).floor() + 1.0;
            if fx * fy <= max_cells as f64 {
                break ((fx.floor() as usize).max(1), (fy.floor() as usize).max(1));
            }
            cell_deg *= 2.0;
        };
        let ncells = nx * ny;

        // Counting sort of point indices into cell buckets.
        let mut counts = vec![0u32; ncells + 1];
        let cell_of = |p: Point| -> usize {
            let cx = (((p.lon - bbox.min_lon) / cell_deg).floor() as usize).min(nx - 1);
            let cy = (((p.lat - bbox.min_lat) / cell_deg).floor() as usize).min(ny - 1);
            cy * nx + cx
        };
        for &p in &points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 1..=ncells {
            counts[i] += counts[i - 1];
        }
        let starts = counts.clone();
        let mut cursor = counts;
        let mut order = vec![0u32; points.len()];
        for (i, &p) in points.iter().enumerate() {
            let c = cell_of(p);
            order[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }

        Self {
            points,
            bbox,
            cell_deg,
            nx,
            ny,
            starts,
            order,
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed points, in original order.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The covering bounding box of the indexed points.
    #[inline]
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Grid cell size in degrees.
    #[inline]
    pub fn cell_deg(&self) -> f64 {
        self.cell_deg
    }

    /// Cell-coordinate window overlapping a centre + radius query.
    fn cell_window(&self, center: Point, radius_km: f64) -> (usize, usize, usize, usize) {
        let dlat = radius_km / KM_PER_DEG_LAT;
        // Widest the query circle gets in longitude is at its most poleward
        // latitude; use it so high-latitude queries do not miss cells.
        let worst_lat = if center.lat >= 0.0 {
            (center.lat + dlat).min(89.9)
        } else {
            (center.lat - dlat).max(-89.9)
        };
        let dlon = radius_km / (KM_PER_DEG_LAT * worst_lat.to_radians().cos().max(1e-9));
        let clampx = |lon: f64| -> usize {
            (((lon - self.bbox.min_lon) / self.cell_deg).floor().max(0.0) as usize).min(self.nx - 1)
        };
        let clampy = |lat: f64| -> usize {
            (((lat - self.bbox.min_lat) / self.cell_deg).floor().max(0.0) as usize).min(self.ny - 1)
        };
        (
            clampx(center.lon - dlon),
            clampx(center.lon + dlon),
            clampy(center.lat - dlat),
            clampy(center.lat + dlat),
        )
    }

    /// Calls `f(point_index, distance_km)` for every point within
    /// `radius_km` of `center` (edge inclusive). Visit order is
    /// unspecified.
    pub fn for_each_within_radius<F: FnMut(u32, f64)>(
        &self,
        center: Point,
        radius_km: f64,
        mut f: F,
    ) {
        if self.points.is_empty() || radius_km < 0.0 {
            return;
        }
        let (x0, x1, y0, y1) = self.cell_window(center, radius_km);
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                let c = cy * self.nx + cx;
                let lo = self.starts[c] as usize;
                let hi = self.starts[c + 1] as usize;
                for &idx in &self.order[lo..hi] {
                    // lint: allow(raw-haversine) — sparse cell-window candidates, not a column scan
                    let d = haversine_km(center, self.points[idx as usize]);
                    if d <= radius_km {
                        f(idx, d);
                    }
                }
            }
        }
    }

    /// Indices of all points within `radius_km` of `center`.
    pub fn within_radius(&self, center: Point, radius_km: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_within_radius(center, radius_km, |i, _| out.push(i));
        out
    }

    /// Number of points within `radius_km` of `center`.
    pub fn count_within_radius(&self, center: Point, radius_km: f64) -> usize {
        let mut n = 0usize;
        self.for_each_within_radius(center, radius_km, |_, _| n += 1);
        n
    }

    /// The `k` nearest points to `center`, sorted by ascending distance
    /// (ties broken by index). Returns fewer than `k` when the index is
    /// smaller than `k`.
    ///
    /// Implemented as an expanding-ring search: start from a radius that
    /// covers the query cell and double until at least `k` hits are found
    /// or the whole grid is covered.
    pub fn k_nearest(&self, center: Point, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.points.is_empty() {
            return Vec::new();
        }
        let max_radius = {
            // A radius guaranteed to cover the whole bbox from any centre.
            let diag_deg = (self.bbox.lat_span().powi(2) + self.bbox.lon_span().powi(2)).sqrt();
            (diag_deg + 1.0) * KM_PER_DEG_LAT + haversine_km(center, self.bbox.center())
        };
        let mut radius = (self.cell_deg * KM_PER_DEG_LAT).max(1.0);
        loop {
            let mut hits: Vec<Neighbor> = Vec::new();
            self.for_each_within_radius(center, radius, |index, distance_km| {
                hits.push(Neighbor { index, distance_km })
            });
            if hits.len() >= k || radius >= max_radius {
                hits.sort_by(|a, b| {
                    a.distance_km
                        .total_cmp(&b.distance_km)
                        .then(a.index.cmp(&b.index))
                });
                hits.truncate(k);
                return hits;
            }
            radius *= 2.0;
        }
    }

    /// Indices of all points inside `query` (edges inclusive).
    pub fn in_bbox(&self, query: &BoundingBox) -> Vec<u32> {
        let mut out = Vec::new();
        if self.points.is_empty() {
            return out;
        }
        let Some(overlap) = self.bbox.intersection(query) else {
            return out;
        };
        let x0 = (((overlap.min_lon - self.bbox.min_lon) / self.cell_deg).floor() as usize)
            .min(self.nx - 1);
        let x1 = (((overlap.max_lon - self.bbox.min_lon) / self.cell_deg).floor() as usize)
            .min(self.nx - 1);
        let y0 = (((overlap.min_lat - self.bbox.min_lat) / self.cell_deg).floor() as usize)
            .min(self.ny - 1);
        let y1 = (((overlap.max_lat - self.bbox.min_lat) / self.cell_deg).floor() as usize)
            .min(self.ny - 1);
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                let c = cy * self.nx + cx;
                let lo = self.starts[c] as usize;
                let hi = self.starts[c + 1] as usize;
                for &idx in &self.order[lo..hi] {
                    if query.contains(self.points[idx as usize]) {
                        out.push(idx);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::destination;

    fn brute_within(points: &[Point], center: Point, radius: f64) -> Vec<u32> {
        let mut v: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(_, &p)| haversine_km(center, p) <= radius)
            .map(|(i, _)| i as u32)
            .collect();
        v.sort_unstable();
        v
    }

    fn grid_cities() -> Vec<Point> {
        vec![
            Point::new_unchecked(-33.8688, 151.2093), // Sydney
            Point::new_unchecked(-37.8136, 144.9631), // Melbourne
            Point::new_unchecked(-27.4698, 153.0251), // Brisbane
            Point::new_unchecked(-31.9523, 115.8613), // Perth
            Point::new_unchecked(-34.9285, 138.6007), // Adelaide
            Point::new_unchecked(-42.8821, 147.3272), // Hobart
            Point::new_unchecked(-12.4634, 130.8456), // Darwin
            Point::new_unchecked(-35.2809, 149.1300), // Canberra
        ]
    }

    #[test]
    fn radius_query_matches_brute_force_on_cities() {
        let pts = grid_cities();
        let idx = GridIndex::build(pts.clone(), 1.0);
        let sydney = pts[0];
        for r in [10.0, 100.0, 300.0, 1000.0, 5000.0] {
            let mut got = idx.within_radius(sydney, r);
            got.sort_unstable();
            assert_eq!(got, brute_within(&pts, sydney, r), "radius {r}");
        }
    }

    #[test]
    fn radius_query_matches_brute_force_random_points() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let pts: Vec<Point> = (0..2000)
            .map(|_| {
                Point::new_unchecked(
                    rng.random_range(-44.0..-10.0),
                    rng.random_range(113.0..154.0),
                )
            })
            .collect();
        let idx = GridIndex::build(pts.clone(), 0.5);
        for q in 0..20 {
            let center = pts[q * 97 % pts.len()];
            for r in [1.0, 25.0, 50.0, 400.0] {
                let mut got = idx.within_radius(center, r);
                got.sort_unstable();
                assert_eq!(got, brute_within(&pts, center, r), "q {q} r {r}");
            }
        }
    }

    #[test]
    fn count_matches_listing() {
        let pts = grid_cities();
        let idx = GridIndex::build(pts, 2.0);
        let c = Point::new_unchecked(-34.0, 148.0);
        assert_eq!(
            idx.count_within_radius(c, 500.0),
            idx.within_radius(c, 500.0).len()
        );
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = GridIndex::build(Vec::new(), 1.0);
        assert!(idx.is_empty());
        assert!(idx
            .within_radius(Point::new_unchecked(0.0, 0.0), 1e6)
            .is_empty());
        assert!(idx.k_nearest(Point::new_unchecked(0.0, 0.0), 3).is_empty());
        assert!(idx.in_bbox(&AUS).is_empty());
    }

    const AUS: BoundingBox = crate::bbox::AUSTRALIA_BBOX;

    #[test]
    fn negative_radius_returns_nothing() {
        let idx = GridIndex::build(grid_cities(), 1.0);
        assert_eq!(
            idx.count_within_radius(Point::new_unchecked(-33.0, 151.0), -1.0),
            0
        );
    }

    #[test]
    fn zero_radius_hits_exact_point_only() {
        let pts = grid_cities();
        let idx = GridIndex::build(pts.clone(), 1.0);
        let hits = idx.within_radius(pts[3], 0.0);
        assert_eq!(hits, vec![3]);
    }

    #[test]
    fn k_nearest_orders_by_distance() {
        let pts = grid_cities();
        let idx = GridIndex::build(pts.clone(), 1.0);
        let sydney = pts[0];
        let nn = idx.k_nearest(sydney, 3);
        assert_eq!(nn.len(), 3);
        // Sydney itself, then Canberra (~247 km), then Melbourne (~713 km).
        assert_eq!(nn[0].index, 0);
        assert!(nn[0].distance_km < 1e-9);
        assert_eq!(nn[1].index, 7);
        assert_eq!(nn[2].index, 1);
        assert!(nn[1].distance_km < nn[2].distance_km);
    }

    #[test]
    fn k_nearest_with_k_larger_than_set() {
        let pts = grid_cities();
        let idx = GridIndex::build(pts.clone(), 1.0);
        let nn = idx.k_nearest(pts[0], 100);
        assert_eq!(nn.len(), pts.len());
        for w in nn.windows(2) {
            assert!(w[0].distance_km <= w[1].distance_km);
        }
    }

    #[test]
    fn k_nearest_far_query_center_still_finds_all() {
        // Query centre far outside the indexed bbox exercises the
        // expanding-ring cap.
        let pts = grid_cities();
        let idx = GridIndex::build(pts.clone(), 1.0);
        let far = Point::new_unchecked(40.0, -100.0); // North America
        let nn = idx.k_nearest(far, 2);
        assert_eq!(nn.len(), 2);
    }

    #[test]
    fn bbox_query_matches_filter() {
        let pts = grid_cities();
        let idx = GridIndex::build(pts.clone(), 1.0);
        let q = BoundingBox::new(-36.0, -27.0, 138.0, 152.0).unwrap();
        let mut got = idx.in_bbox(&q);
        got.sort_unstable();
        let want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, &p)| q.contains(p))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn bbox_query_disjoint_is_empty() {
        let idx = GridIndex::build(grid_cities(), 1.0);
        let q = BoundingBox::new(10.0, 20.0, 0.0, 10.0).unwrap();
        assert!(idx.in_bbox(&q).is_empty());
    }

    #[test]
    fn single_point_index_works() {
        let p = Point::new_unchecked(-33.0, 151.0);
        let idx = GridIndex::build(vec![p], 1.0);
        assert_eq!(idx.within_radius(p, 1.0), vec![0]);
        assert_eq!(idx.k_nearest(p, 1)[0].index, 0);
    }

    #[test]
    fn duplicate_points_all_returned() {
        let p = Point::new_unchecked(-33.0, 151.0);
        let idx = GridIndex::build(vec![p; 5], 1.0);
        assert_eq!(idx.within_radius(p, 0.1).len(), 5);
    }

    #[test]
    fn radius_boundary_point_included() {
        let center = Point::new_unchecked(-33.0, 151.0);
        let edge = destination(center, 90.0, 50.0);
        let idx = GridIndex::build(vec![edge], 0.5);
        // destination/haversine round-trip is exact to ~1e-9 km, so the
        // edge point sits within an inclusive 50 km + epsilon query.
        assert_eq!(idx.count_within_radius(center, 50.0 + 1e-6), 1);
        assert_eq!(idx.count_within_radius(center, 49.999), 0);
    }

    #[test]
    fn tiny_cell_over_continental_span_is_capped_not_oom() {
        // Regression: 1e-7° cells over an Australia-spanning point set
        // used to demand ~10^17 buckets and abort on allocation. The
        // build must now widen the cells to respect the 4·n cap while
        // returning the same query results.
        let pts = grid_cities();
        let idx = GridIndex::build(pts.clone(), 1e-7);
        let nx_ny = ((idx.bbox.lon_span() / idx.cell_deg()).floor() + 1.0)
            * ((idx.bbox.lat_span() / idx.cell_deg()).floor() + 1.0);
        assert!(
            nx_ny <= (pts.len() * 4) as f64,
            "cell cap violated: {nx_ny}"
        );
        let sydney = pts[0];
        for r in [10.0, 300.0, 5000.0] {
            let mut got = idx.within_radius(sydney, r);
            got.sort_unstable();
            assert_eq!(got, brute_within(&pts, sydney, r), "radius {r}");
        }
    }

    #[test]
    fn cell_size_does_not_change_results() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let pts: Vec<Point> = (0..500)
            .map(|_| {
                Point::new_unchecked(
                    rng.random_range(-44.0..-10.0),
                    rng.random_range(113.0..154.0),
                )
            })
            .collect();
        let center = Point::new_unchecked(-30.0, 140.0);
        let reference = brute_within(&pts, center, 777.0);
        for cell in [0.1, 0.5, 2.0, 10.0, 100.0] {
            let idx = GridIndex::build(pts.clone(), cell);
            let mut got = idx.within_radius(center, 777.0);
            got.sort_unstable();
            assert_eq!(got, reference, "cell {cell}");
        }
    }
}
