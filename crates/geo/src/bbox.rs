//! Axis-aligned geographic bounding boxes.

use crate::point::{GeoError, Point};
use serde::{Deserialize, Serialize};

/// The longitude/latitude window the paper uses to filter tweets "published
/// from Australia" (Table I): lon ∈ [112.921112, 159.278717],
/// lat ∈ [−54.640301, −9.228820].
pub const AUSTRALIA_BBOX: BoundingBox = BoundingBox {
    min_lat: -54.640301,
    max_lat: -9.228820,
    min_lon: 112.921112,
    max_lon: 159.278717,
};

/// An axis-aligned box in coordinate space.
///
/// Does not model antimeridian wrap-around: `min_lon <= max_lon` is
/// required. Australian data never crosses the antimeridian.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Southern edge (degrees).
    pub min_lat: f64,
    /// Northern edge (degrees).
    pub max_lat: f64,
    /// Western edge (degrees).
    pub min_lon: f64,
    /// Eastern edge (degrees).
    pub max_lon: f64,
}

impl BoundingBox {
    /// Creates a validated box from two corner points.
    ///
    /// # Errors
    ///
    /// [`GeoError::EmptyBox`] when min exceeds max on either axis, or the
    /// coordinate errors from [`Point::new`] when a corner is invalid.
    pub fn new(min_lat: f64, max_lat: f64, min_lon: f64, max_lon: f64) -> Result<Self, GeoError> {
        Point::new(min_lat, min_lon)?;
        Point::new(max_lat, max_lon)?;
        if min_lat > max_lat {
            return Err(GeoError::EmptyBox {
                axis: "lat",
                min: min_lat,
                max: max_lat,
            });
        }
        if min_lon > max_lon {
            return Err(GeoError::EmptyBox {
                axis: "lon",
                min: min_lon,
                max: max_lon,
            });
        }
        Ok(Self {
            min_lat,
            max_lat,
            min_lon,
            max_lon,
        })
    }

    /// Whether `p` falls inside the box (edges inclusive).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.lat >= self.min_lat
            && p.lat <= self.max_lat
            && p.lon >= self.min_lon
            && p.lon <= self.max_lon
    }

    /// Latitude span in degrees.
    #[inline]
    pub fn lat_span(&self) -> f64 {
        self.max_lat - self.min_lat
    }

    /// Longitude span in degrees.
    #[inline]
    pub fn lon_span(&self) -> f64 {
        self.max_lon - self.min_lon
    }

    /// Box centre in coordinate space.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new_unchecked(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )
    }

    /// The smallest box containing both `self` and `other`.
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        BoundingBox {
            min_lat: self.min_lat.min(other.min_lat),
            max_lat: self.max_lat.max(other.max_lat),
            min_lon: self.min_lon.min(other.min_lon),
            max_lon: self.max_lon.max(other.max_lon),
        }
    }

    /// The intersection of two boxes, or `None` when they are disjoint.
    pub fn intersection(&self, other: &BoundingBox) -> Option<BoundingBox> {
        let b = BoundingBox {
            min_lat: self.min_lat.max(other.min_lat),
            max_lat: self.max_lat.min(other.max_lat),
            min_lon: self.min_lon.max(other.min_lon),
            max_lon: self.max_lon.min(other.max_lon),
        };
        (b.min_lat <= b.max_lat && b.min_lon <= b.max_lon).then_some(b)
    }

    /// Expands every edge outward by `margin_deg` degrees, clamped to the
    /// valid coordinate range.
    pub fn expanded(&self, margin_deg: f64) -> BoundingBox {
        BoundingBox {
            min_lat: (self.min_lat - margin_deg).max(-90.0),
            max_lat: (self.max_lat + margin_deg).min(90.0),
            min_lon: (self.min_lon - margin_deg).max(-180.0),
            max_lon: (self.max_lon + margin_deg).min(180.0),
        }
    }

    /// The smallest box covering every point in the iterator, or `None`
    /// when the iterator is empty.
    pub fn covering<I: IntoIterator<Item = Point>>(points: I) -> Option<BoundingBox> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut b = BoundingBox {
            min_lat: first.lat,
            max_lat: first.lat,
            min_lon: first.lon,
            max_lon: first.lon,
        };
        for p in it {
            b.min_lat = b.min_lat.min(p.lat);
            b.max_lat = b.max_lat.max(p.lat);
            b.min_lon = b.min_lon.min(p.lon);
            b.max_lon = b.max_lon.max(p.lon);
        }
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn australia_bbox_contains_capitals_not_auckland() {
        let sydney = Point::new_unchecked(-33.8688, 151.2093);
        let perth = Point::new_unchecked(-31.9523, 115.8613);
        let darwin = Point::new_unchecked(-12.4634, 130.8456);
        let hobart = Point::new_unchecked(-42.8821, 147.3272);
        let auckland = Point::new_unchecked(-36.8485, 174.7633);
        let jakarta = Point::new_unchecked(-6.2088, 106.8456);
        assert!(AUSTRALIA_BBOX.contains(sydney));
        assert!(AUSTRALIA_BBOX.contains(perth));
        assert!(AUSTRALIA_BBOX.contains(darwin));
        assert!(AUSTRALIA_BBOX.contains(hobart));
        assert!(!AUSTRALIA_BBOX.contains(auckland));
        assert!(!AUSTRALIA_BBOX.contains(jakarta));
    }

    #[test]
    fn edges_are_inclusive() {
        let b = BoundingBox::new(-10.0, 0.0, 100.0, 110.0).unwrap();
        assert!(b.contains(Point::new_unchecked(-10.0, 100.0)));
        assert!(b.contains(Point::new_unchecked(0.0, 110.0)));
        assert!(!b.contains(Point::new_unchecked(-10.0001, 100.0)));
    }

    #[test]
    fn inverted_box_rejected() {
        let err = BoundingBox::new(5.0, -5.0, 0.0, 1.0).unwrap_err();
        assert!(matches!(err, GeoError::EmptyBox { axis: "lat", .. }));
        let err = BoundingBox::new(-5.0, 5.0, 10.0, 1.0).unwrap_err();
        assert!(matches!(err, GeoError::EmptyBox { axis: "lon", .. }));
    }

    #[test]
    fn degenerate_point_box_is_valid() {
        let b = BoundingBox::new(-33.0, -33.0, 151.0, 151.0).unwrap();
        assert!(b.contains(Point::new_unchecked(-33.0, 151.0)));
        assert_eq!(b.lat_span(), 0.0);
        assert_eq!(b.lon_span(), 0.0);
    }

    #[test]
    fn union_and_intersection() {
        let a = BoundingBox::new(-40.0, -30.0, 140.0, 150.0).unwrap();
        let b = BoundingBox::new(-35.0, -25.0, 145.0, 155.0).unwrap();
        let u = a.union(&b);
        assert_eq!(u, BoundingBox::new(-40.0, -25.0, 140.0, 155.0).unwrap());
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, BoundingBox::new(-35.0, -30.0, 145.0, 150.0).unwrap());
    }

    #[test]
    fn disjoint_intersection_is_none() {
        let a = BoundingBox::new(-40.0, -30.0, 140.0, 150.0).unwrap();
        let b = BoundingBox::new(-20.0, -10.0, 140.0, 150.0).unwrap();
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn expanded_clamps_to_valid_range() {
        let b = BoundingBox::new(-89.0, 89.0, -179.0, 179.0).unwrap();
        let e = b.expanded(5.0);
        assert_eq!(e.min_lat, -90.0);
        assert_eq!(e.max_lat, 90.0);
        assert_eq!(e.min_lon, -180.0);
        assert_eq!(e.max_lon, 180.0);
    }

    #[test]
    fn covering_box_of_points() {
        let pts = vec![
            Point::new_unchecked(-33.0, 151.0),
            Point::new_unchecked(-37.0, 145.0),
            Point::new_unchecked(-31.0, 115.0),
        ];
        let b = BoundingBox::covering(pts).unwrap();
        assert_eq!(b.min_lat, -37.0);
        assert_eq!(b.max_lat, -31.0);
        assert_eq!(b.min_lon, 115.0);
        assert_eq!(b.max_lon, 151.0);
    }

    #[test]
    fn covering_empty_is_none() {
        assert!(BoundingBox::covering(std::iter::empty()).is_none());
    }

    #[test]
    fn center_of_australia_box_is_inland() {
        let c = AUSTRALIA_BBOX.center();
        assert!(c.lat < -9.0 && c.lat > -55.0);
        assert!(c.lon > 112.0 && c.lon < 160.0);
    }
}
