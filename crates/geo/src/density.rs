//! Density rasterisation for tweet-density maps (paper Figure 1).
//!
//! Figure 1 of the paper shows geo-tagged tweets binned on a grid over
//! Australia with a logarithmic colour scale spanning 10⁰…10⁵ tweets per
//! cell. [`DensityGrid`] reproduces the underlying raster: accumulate
//! counts per cell, then read them back linearly, as `log10`, or as a
//! coarse ASCII rendering for terminal reports.

use crate::bbox::BoundingBox;
use crate::point::Point;

/// One non-empty raster cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityCell {
    /// Column index (west → east).
    pub col: usize,
    /// Row index (south → north).
    pub row: usize,
    /// Cell centre.
    pub center: Point,
    /// Number of points accumulated into the cell.
    pub count: u64,
}

/// A fixed-extent counting raster.
#[derive(Debug, Clone)]
pub struct DensityGrid {
    bbox: BoundingBox,
    cell_deg: f64,
    nx: usize,
    ny: usize,
    counts: Vec<u64>,
    total: u64,
    dropped: u64,
}

impl DensityGrid {
    /// Creates an empty raster covering `bbox` with `cell_deg`-degree
    /// cells (clamped to a minimum of 1e-6°).
    pub fn new(bbox: BoundingBox, cell_deg: f64) -> Self {
        let cell_deg = cell_deg.max(1e-6);
        let nx = (bbox.lon_span() / cell_deg).floor() as usize + 1;
        let ny = (bbox.lat_span() / cell_deg).floor() as usize + 1;
        Self {
            bbox,
            cell_deg,
            nx,
            ny,
            counts: vec![0; nx * ny],
            total: 0,
            dropped: 0,
        }
    }

    /// Number of columns.
    #[inline]
    pub fn width(&self) -> usize {
        self.nx
    }

    /// Number of rows.
    #[inline]
    pub fn height(&self) -> usize {
        self.ny
    }

    /// Points accumulated inside the extent.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Points that fell outside the extent and were ignored.
    #[inline]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Adds one point; points outside the extent are counted in
    /// [`DensityGrid::dropped`] and otherwise ignored.
    #[inline]
    pub fn add(&mut self, p: Point) {
        if !self.bbox.contains(p) {
            self.dropped += 1;
            return;
        }
        let cx = (((p.lon - self.bbox.min_lon) / self.cell_deg).floor() as usize).min(self.nx - 1);
        let cy = (((p.lat - self.bbox.min_lat) / self.cell_deg).floor() as usize).min(self.ny - 1);
        self.counts[cy * self.nx + cx] += 1;
        self.total += 1;
    }

    /// Accumulates every point in the iterator.
    pub fn extend<I: IntoIterator<Item = Point>>(&mut self, points: I) {
        for p in points {
            self.add(p);
        }
    }

    /// Raw count at `(col, row)`; `None` when out of bounds.
    pub fn count(&self, col: usize, row: usize) -> Option<u64> {
        (col < self.nx && row < self.ny).then(|| self.counts[row * self.nx + col])
    }

    /// `log10(count)` at `(col, row)`, with empty cells mapped to `None`
    /// inside `Some` — i.e. `Some(None)` means "in bounds but empty".
    pub fn log10_count(&self, col: usize, row: usize) -> Option<Option<f64>> {
        self.count(col, row)
            .map(|c| (c > 0).then(|| (c as f64).log10()))
    }

    /// All non-empty cells, in row-major order (south-west first).
    pub fn nonempty_cells(&self) -> Vec<DensityCell> {
        let mut out = Vec::new();
        for row in 0..self.ny {
            for col in 0..self.nx {
                let count = self.counts[row * self.nx + col];
                if count > 0 {
                    out.push(DensityCell {
                        col,
                        row,
                        center: self.cell_center(col, row),
                        count,
                    });
                }
            }
        }
        out
    }

    /// The `n` densest cells, descending by count (ties by row-major
    /// position).
    pub fn top_cells(&self, n: usize) -> Vec<DensityCell> {
        let mut cells = self.nonempty_cells();
        cells.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then((a.row, a.col).cmp(&(b.row, b.col)))
        });
        cells.truncate(n);
        cells
    }

    /// Geographic centre of cell `(col, row)`.
    pub fn cell_center(&self, col: usize, row: usize) -> Point {
        Point::new_unchecked(
            self.bbox.min_lat + (row as f64 + 0.5) * self.cell_deg,
            self.bbox.min_lon + (col as f64 + 0.5) * self.cell_deg,
        )
    }

    /// Maximum cell count.
    pub fn max_count(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Renders the raster as ASCII art, north at the top: ` ` for empty,
    /// then `.:-=+*#%@` on a log scale up to the maximum count. Each output
    /// row covers `downsample` raster rows/cols aggregated by sum.
    pub fn render_ascii(&self, downsample: usize) -> String {
        let ds = downsample.max(1);
        let out_rows = self.ny.div_ceil(ds);
        let out_cols = self.nx.div_ceil(ds);
        let ramp: &[u8] = b".:-=+*#%@";
        // Aggregate into the coarse raster.
        let mut agg = vec![0u64; out_rows * out_cols];
        for row in 0..self.ny {
            for col in 0..self.nx {
                agg[(row / ds) * out_cols + col / ds] += self.counts[row * self.nx + col];
            }
        }
        let max = agg.iter().copied().max().unwrap_or(0).max(1) as f64;
        let log_max = max.log10().max(1e-9);
        let mut s = String::with_capacity(out_rows * (out_cols + 1));
        for row in (0..out_rows).rev() {
            for col in 0..out_cols {
                let c = agg[row * out_cols + col];
                if c == 0 {
                    s.push(' ');
                } else {
                    let level = ((c as f64).log10() / log_max * (ramp.len() - 1) as f64)
                        .round()
                        .clamp(0.0, (ramp.len() - 1) as f64)
                        as usize;
                    s.push(ramp[level] as char);
                }
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbox::AUSTRALIA_BBOX;

    fn unit_box() -> BoundingBox {
        BoundingBox::new(0.0, 10.0, 0.0, 10.0).unwrap()
    }

    #[test]
    fn counts_accumulate_in_correct_cell() {
        let mut g = DensityGrid::new(unit_box(), 1.0);
        g.add(Point::new_unchecked(0.5, 0.5));
        g.add(Point::new_unchecked(0.6, 0.4));
        g.add(Point::new_unchecked(5.5, 7.5));
        assert_eq!(g.count(0, 0), Some(2));
        assert_eq!(g.count(7, 5), Some(1));
        assert_eq!(g.total(), 3);
        assert_eq!(g.dropped(), 0);
    }

    #[test]
    fn out_of_extent_points_are_dropped() {
        let mut g = DensityGrid::new(unit_box(), 1.0);
        g.add(Point::new_unchecked(-1.0, 5.0));
        g.add(Point::new_unchecked(5.0, 11.0));
        assert_eq!(g.total(), 0);
        assert_eq!(g.dropped(), 2);
    }

    #[test]
    fn boundary_points_land_in_last_cell() {
        let mut g = DensityGrid::new(unit_box(), 1.0);
        g.add(Point::new_unchecked(10.0, 10.0)); // exact max corner
        assert_eq!(g.count(g.width() - 1, g.height() - 1), Some(1));
    }

    #[test]
    fn out_of_bounds_cell_access_is_none() {
        let g = DensityGrid::new(unit_box(), 1.0);
        assert_eq!(g.count(1000, 0), None);
        assert_eq!(g.count(0, 1000), None);
    }

    #[test]
    fn log10_distinguishes_empty_from_one() {
        let mut g = DensityGrid::new(unit_box(), 1.0);
        g.add(Point::new_unchecked(0.5, 0.5));
        assert_eq!(g.log10_count(0, 0), Some(Some(0.0))); // log10(1) = 0
        assert_eq!(g.log10_count(1, 1), Some(None)); // empty
        assert_eq!(g.log10_count(99, 99), None); // out of bounds
    }

    #[test]
    fn top_cells_sorted_descending() {
        let mut g = DensityGrid::new(unit_box(), 1.0);
        for _ in 0..5 {
            g.add(Point::new_unchecked(0.5, 0.5));
        }
        for _ in 0..3 {
            g.add(Point::new_unchecked(5.5, 5.5));
        }
        g.add(Point::new_unchecked(9.5, 9.5));
        let top = g.top_cells(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].count, 5);
        assert_eq!(top[1].count, 3);
    }

    #[test]
    fn nonempty_cells_total_matches() {
        let mut g = DensityGrid::new(unit_box(), 2.5);
        let pts: Vec<Point> = (0..50)
            .map(|i| Point::new_unchecked((i % 10) as f64, (i / 10) as f64 * 2.0))
            .collect();
        g.extend(pts);
        let sum: u64 = g.nonempty_cells().iter().map(|c| c.count).sum();
        assert_eq!(sum, g.total());
    }

    #[test]
    fn cell_center_is_inside_cell() {
        let g = DensityGrid::new(unit_box(), 1.0);
        let c = g.cell_center(3, 7);
        assert_eq!(c.lon, 3.5);
        assert_eq!(c.lat, 7.5);
    }

    #[test]
    fn ascii_render_shape_and_content() {
        let mut g = DensityGrid::new(unit_box(), 1.0);
        for _ in 0..1000 {
            g.add(Point::new_unchecked(9.5, 9.5)); // top-right, dense
        }
        g.add(Point::new_unchecked(0.5, 0.5)); // bottom-left, sparse
        let art = g.render_ascii(1);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), g.height());
        // North at top: the dense northern cell renders as the ramp max and
        // must appear on an earlier line than the sparse southern cell,
        // which renders as the ramp minimum '.'.
        let dense_line = lines.iter().position(|l| l.contains('@')).unwrap();
        let sparse_line = lines.iter().position(|l| l.contains('.')).unwrap();
        assert!(
            dense_line < sparse_line,
            "dense {dense_line} sparse {sparse_line}"
        );
    }

    #[test]
    fn ascii_downsample_shrinks_output() {
        let g = DensityGrid::new(AUSTRALIA_BBOX, 0.5);
        let fine = g.render_ascii(1);
        let coarse = g.render_ascii(4);
        assert!(coarse.lines().count() < fine.lines().count());
        assert_eq!(coarse.lines().count(), g.height().div_ceil(4));
    }

    #[test]
    fn empty_grid_renders_blank() {
        let g = DensityGrid::new(unit_box(), 1.0);
        let art = g.render_ascii(1);
        assert!(art.chars().all(|c| c == ' ' || c == '\n'));
        assert_eq!(g.max_count(), 0);
    }
}
