//! Simple polygons: point-in-polygon tests and areas.
//!
//! The paper extracts areas as discs around nominal centres and notes
//! that "the sensitivity to the edges of the areas and search radius is
//! likely to be a prominent factor" in its error (§III). Real studies
//! use administrative boundaries instead; this module provides the
//! geometry for that upgrade path — ray-casting containment and a
//! spherical-excess-free planar area approximation adequate at city
//! scale.

use crate::bbox::BoundingBox;
use crate::point::{GeoError, Point};
use serde::{Deserialize, Serialize};

/// A simple (non-self-intersecting) polygon on the sphere, stored as a
/// ring of vertices. The ring is implicitly closed — do not repeat the
/// first vertex.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point>,
    bbox: BoundingBox,
}

impl Polygon {
    /// Builds a polygon from at least three vertices.
    ///
    /// # Errors
    ///
    /// [`GeoError::EmptyBox`] (reused) when fewer than three vertices are
    /// supplied; coordinate errors when a vertex is invalid.
    pub fn new(vertices: Vec<Point>) -> Result<Self, GeoError> {
        if vertices.len() < 3 {
            return Err(GeoError::EmptyBox {
                axis: "polygon",
                min: vertices.len() as f64,
                max: 3.0,
            });
        }
        for v in &vertices {
            Point::new(v.lat, v.lon)?;
        }
        let bbox = BoundingBox::covering(vertices.iter().copied())
            // lint: allow(no-panic) — covering() is None only for an empty
            // iterator, and vertices.len() >= 3 was checked above
            .expect("non-empty vertex list");
        Ok(Self { vertices, bbox })
    }

    /// A closed axis-aligned rectangle.
    ///
    /// # Errors
    ///
    /// As [`Polygon::new`].
    pub fn rectangle(bbox: &BoundingBox) -> Result<Self, GeoError> {
        Self::new(vec![
            Point::new_unchecked(bbox.min_lat, bbox.min_lon),
            Point::new_unchecked(bbox.min_lat, bbox.max_lon),
            Point::new_unchecked(bbox.max_lat, bbox.max_lon),
            Point::new_unchecked(bbox.max_lat, bbox.min_lon),
        ])
    }

    /// The vertex ring.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// The covering bounding box (used as a cheap pre-filter).
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Whether `p` lies inside the polygon (even-odd / ray-casting rule,
    /// treating lat/lon as planar — fine away from the poles and the
    /// antimeridian, which Australian data never touches). Points exactly
    /// on an edge may land on either side; administrative data treats the
    /// probability-zero case as unspecified.
    pub fn contains(&self, p: Point) -> bool {
        if !self.bbox.contains(p) {
            return false;
        }
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            let crosses = (vi.lat > p.lat) != (vj.lat > p.lat);
            if crosses {
                let x = vj.lon + (p.lat - vj.lat) / (vi.lat - vj.lat) * (vi.lon - vj.lon);
                if p.lon < x {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Planar (equirectangular) area in km², via the shoelace formula
    /// scaled by the local metric. Accurate to well under 1 % for
    /// city-to-state-sized polygons at Australian latitudes.
    pub fn area_km2(&self) -> f64 {
        const KM_PER_DEG_LAT: f64 = 111.194_926_644_558_74;
        let mean_lat = (self.bbox.min_lat + self.bbox.max_lat) / 2.0;
        let km_per_deg_lon = KM_PER_DEG_LAT * mean_lat.to_radians().cos();
        let mut acc = 0.0;
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += a.lon * b.lat - b.lon * a.lat;
        }
        (acc / 2.0).abs() * KM_PER_DEG_LAT * km_per_deg_lon
    }

    /// Planar centroid (vertex-area weighted); adequate as a label/query
    /// anchor for convex-ish administrative shapes.
    pub fn centroid(&self) -> Point {
        let n = self.vertices.len();
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut a = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let cross = p.lon * q.lat - q.lon * p.lat;
            a += cross;
            cx += (p.lon + q.lon) * cross;
            cy += (p.lat + q.lat) * cross;
        }
        if a.abs() < 1e-15 {
            // Degenerate ring: fall back to the vertex mean.
            let lat = self.vertices.iter().map(|v| v.lat).sum::<f64>() / n as f64;
            let lon = self.vertices.iter().map(|v| v.lon).sum::<f64>() / n as f64;
            return Point::new_unchecked(lat, lon);
        }
        Point::new_unchecked(cy / (3.0 * a), cx / (3.0 * a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Polygon {
        Polygon::new(vec![
            Point::new_unchecked(-34.0, 150.0),
            Point::new_unchecked(-34.0, 151.0),
            Point::new_unchecked(-33.0, 151.0),
            Point::new_unchecked(-33.0, 150.0),
        ])
        .unwrap()
    }

    /// An L-shaped (concave) polygon.
    fn ell() -> Polygon {
        Polygon::new(vec![
            Point::new_unchecked(0.0, 0.0),
            Point::new_unchecked(0.0, 2.0),
            Point::new_unchecked(1.0, 2.0),
            Point::new_unchecked(1.0, 1.0),
            Point::new_unchecked(2.0, 1.0),
            Point::new_unchecked(2.0, 0.0),
        ])
        .unwrap()
    }

    #[test]
    fn construction_requires_three_vertices() {
        assert!(Polygon::new(vec![]).is_err());
        assert!(Polygon::new(vec![
            Point::new_unchecked(0.0, 0.0),
            Point::new_unchecked(1.0, 1.0)
        ])
        .is_err());
    }

    #[test]
    fn square_contains_interior_not_exterior() {
        let sq = square();
        assert!(sq.contains(Point::new_unchecked(-33.5, 150.5)));
        assert!(!sq.contains(Point::new_unchecked(-32.9, 150.5))); // north
        assert!(!sq.contains(Point::new_unchecked(-33.5, 151.1))); // east
        assert!(!sq.contains(Point::new_unchecked(-35.0, 150.5))); // south
        assert!(!sq.contains(Point::new_unchecked(-33.5, 149.9))); // west
    }

    #[test]
    fn concave_polygon_notch_is_outside() {
        let l = ell();
        assert!(l.contains(Point::new_unchecked(0.5, 0.5)));
        assert!(l.contains(Point::new_unchecked(0.5, 1.5)));
        assert!(l.contains(Point::new_unchecked(1.5, 0.5)));
        // The notch (upper-right of the L) is outside.
        assert!(!l.contains(Point::new_unchecked(1.5, 1.5)));
    }

    #[test]
    fn area_of_degree_square() {
        // 1° × 1° at mean lat −33.5: 111.19 × 111.19·cos(33.5°) km².
        let sq = square();
        let expect = 111.194_926 * 111.194_926 * (33.5f64.to_radians()).cos();
        let got = sq.area_km2();
        assert!(
            (got - expect).abs() / expect < 1e-3,
            "got {got}, want {expect}"
        );
    }

    #[test]
    fn ell_area_is_three_quarters_of_square() {
        let l = ell();
        let full = Polygon::rectangle(&BoundingBox::new(0.0, 2.0, 0.0, 2.0).unwrap()).unwrap();
        let ratio = l.area_km2() / full.area_km2();
        assert!((ratio - 0.75).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn centroid_of_square_is_centre() {
        let c = square().centroid();
        assert!((c.lat + 33.5).abs() < 1e-9);
        assert!((c.lon - 150.5).abs() < 1e-9);
    }

    #[test]
    fn centroid_of_ell_is_pulled_into_the_mass() {
        let c = ell().centroid();
        // By symmetry the L's centroid sits at (5/6, 5/6).
        assert!((c.lat - 5.0 / 6.0).abs() < 1e-9, "lat {}", c.lat);
        assert!((c.lon - 5.0 / 6.0).abs() < 1e-9, "lon {}", c.lon);
        assert!(ell().contains(c));
    }

    #[test]
    fn rectangle_matches_bbox_containment() {
        let b = BoundingBox::new(-40.0, -30.0, 140.0, 150.0).unwrap();
        let r = Polygon::rectangle(&b).unwrap();
        for (lat, lon) in [(-35.0, 145.0), (-39.9, 140.1), (-30.1, 149.9)] {
            assert!(r.contains(Point::new_unchecked(lat, lon)), "({lat},{lon})");
        }
        for (lat, lon) in [(-41.0, 145.0), (-35.0, 151.0)] {
            assert!(!r.contains(Point::new_unchecked(lat, lon)), "({lat},{lon})");
        }
    }

    #[test]
    fn vertex_order_does_not_change_area() {
        let cw = square();
        let ccw = Polygon::new(cw.vertices().iter().rev().copied().collect()).unwrap();
        assert!((cw.area_km2() - ccw.area_km2()).abs() < 1e-9);
        assert_eq!(
            cw.contains(Point::new_unchecked(-33.5, 150.5)),
            ccw.contains(Point::new_unchecked(-33.5, 150.5))
        );
    }
}
