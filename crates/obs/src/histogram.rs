//! Fixed-bucket histograms over `u64` samples.
//!
//! Buckets are cumulative-exclusive ("less than or equal"): a sample `v`
//! lands in the first bucket whose upper bound satisfies `v <= bound`;
//! samples above the last bound land in the overflow bucket. Bounds are
//! frozen at registration, so two runs of the same pipeline produce the
//! same bucket layout byte for byte.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The shared state behind a [`Histogram`] handle.
#[derive(Debug)]
pub(crate) struct HistogramInner {
    /// Ascending upper bounds; bucket `i` counts samples `<= bounds[i]`.
    pub(crate) bounds: Vec<u64>,
    /// One cell per bound plus a trailing overflow cell.
    pub(crate) buckets: Vec<AtomicU64>,
    /// Total samples recorded.
    pub(crate) count: AtomicU64,
    /// Sum of all recorded samples (saturating).
    pub(crate) sum: AtomicU64,
}

impl HistogramInner {
    pub(crate) fn new(bounds: &[u64]) -> Self {
        let mut sorted: Vec<u64> = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: sorted,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A cloneable handle onto one registered fixed-bucket histogram.
///
/// Cheap to clone (two `Arc`s); recording is a couple of relaxed atomic
/// adds and never locks, so handles may be cached in hot loops.
#[derive(Debug, Clone)]
pub struct Histogram {
    pub(crate) inner: Arc<HistogramInner>,
    pub(crate) enabled: Arc<AtomicBool>,
}

impl Histogram {
    /// Records one sample. A no-op while the owning registry is disabled.
    pub fn record(&self, value: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let idx = self.inner.bounds.partition_point(|&b| b < value);
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records every sample of a slice.
    pub fn record_all(&self, values: &[u64]) {
        for &v in values {
            self.record(v);
        }
    }

    /// Total samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// The frozen bucket upper bounds.
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.inner.bounds
    }

    /// Per-bucket counts: one entry per bound, then the overflow count.
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The overflow-bucket count (samples above the last bound).
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.inner
            .buckets
            .last()
            .map_or(0, |b| b.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(bounds: &[u64]) -> Histogram {
        Histogram {
            inner: Arc::new(HistogramInner::new(bounds)),
            enabled: Arc::new(AtomicBool::new(true)),
        }
    }

    #[test]
    fn samples_land_in_le_buckets() {
        let h = hist(&[1, 5, 10]);
        for v in [0, 1, 2, 5, 6, 10, 11, 1000] {
            h.record(v);
        }
        // <=1: {0,1}; <=5: {2,5}; <=10: {6,10}; overflow: {11,1000}.
        assert_eq!(h.bucket_counts(), vec![2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1035);
        assert_eq!(h.overflow(), 2);
    }

    #[test]
    fn bounds_are_sorted_and_deduped() {
        let h = hist(&[10, 1, 10, 5]);
        assert_eq!(h.bounds(), &[1, 5, 10]);
        assert_eq!(h.bucket_counts().len(), 4);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let h = hist(&[1]);
        h.enabled.store(false, Ordering::Relaxed);
        h.record(7);
        assert_eq!(h.count(), 0);
        assert_eq!(h.bucket_counts(), vec![0, 0]);
    }
}
