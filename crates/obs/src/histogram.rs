//! Fixed-bucket histograms over `u64` samples.
//!
//! Buckets are cumulative-exclusive ("less than or equal"): a sample `v`
//! lands in the first bucket whose upper bound satisfies `v <= bound`;
//! samples above the last bound land in the overflow bucket. Bounds are
//! frozen at registration, so two runs of the same pipeline produce the
//! same bucket layout byte for byte.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The shared state behind a [`Histogram`] handle.
#[derive(Debug)]
pub(crate) struct HistogramInner {
    /// Ascending upper bounds; bucket `i` counts samples `<= bounds[i]`.
    pub(crate) bounds: Vec<u64>,
    /// One cell per bound plus a trailing overflow cell.
    pub(crate) buckets: Vec<AtomicU64>,
    /// Total samples recorded.
    pub(crate) count: AtomicU64,
    /// Sum of all recorded samples (saturating).
    pub(crate) sum: AtomicU64,
}

impl HistogramInner {
    pub(crate) fn new(bounds: &[u64]) -> Self {
        let mut sorted: Vec<u64> = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: sorted,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A cloneable handle onto one registered fixed-bucket histogram.
///
/// Cheap to clone (two `Arc`s); recording is a couple of relaxed atomic
/// adds and never locks, so handles may be cached in hot loops.
#[derive(Debug, Clone)]
pub struct Histogram {
    pub(crate) inner: Arc<HistogramInner>,
    pub(crate) enabled: Arc<AtomicBool>,
}

impl Histogram {
    /// Records one sample. A no-op while the owning registry is disabled.
    pub fn record(&self, value: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let idx = self.inner.bounds.partition_point(|&b| b < value);
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records every sample of a slice.
    pub fn record_all(&self, values: &[u64]) {
        for &v in values {
            self.record(v);
        }
    }

    /// Total samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// The frozen bucket upper bounds.
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.inner.bounds
    }

    /// Per-bucket counts: one entry per bound, then the overflow count.
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The overflow-bucket count (samples above the last bound).
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.inner
            .buckets
            .last()
            .map_or(0, |b| b.load(Ordering::Relaxed))
    }

    /// Estimated value at quantile `q` in `[0, 1]` by linear
    /// interpolation within the bucket the quantile rank lands in.
    /// See [`HistogramInner::quantile`] for the exact semantics.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        self.inner.quantile(q)
    }
}

impl HistogramInner {
    /// Estimated value at quantile `q` in `[0, 1]`.
    ///
    /// The quantile rank `r = q * count` is walked through the
    /// cumulative bucket counts; within the bucket it lands in, the
    /// value is interpolated linearly between the bucket's lower edge
    /// (the previous bound, or 0 for the first bucket) and its upper
    /// bound. Consequences pinned by the unit tests:
    ///
    /// * a rank landing exactly on a cumulative-count boundary returns
    ///   exactly that bucket's upper bound;
    /// * ranks in the overflow bucket saturate at the last bound (the
    ///   histogram does not know how far above it samples went);
    /// * an empty histogram returns 0.
    ///
    /// The result is rounded to the nearest integer so it can live in
    /// the integer-only JSON document.
    pub(crate) fn quantile(&self, q: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 || self.bounds.is_empty() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Lossless for any count a histogram can practically hold.
        let rank = q * count as f64;
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            let upper = match self.bounds.get(i) {
                Some(&b) => b,
                // Overflow bucket: saturate at the last bound.
                None => return *self.bounds.last().unwrap_or(&0),
            };
            let next = cumulative + in_bucket;
            if rank <= next as f64 && in_bucket > 0 {
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
                let frac = (rank - cumulative as f64) / in_bucket as f64;
                let value = lower as f64 + frac.clamp(0.0, 1.0) * (upper - lower) as f64;
                return value.round() as u64;
            }
            cumulative = next;
        }
        *self.bounds.last().unwrap_or(&0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(bounds: &[u64]) -> Histogram {
        Histogram {
            inner: Arc::new(HistogramInner::new(bounds)),
            enabled: Arc::new(AtomicBool::new(true)),
        }
    }

    #[test]
    fn samples_land_in_le_buckets() {
        let h = hist(&[1, 5, 10]);
        for v in [0, 1, 2, 5, 6, 10, 11, 1000] {
            h.record(v);
        }
        // <=1: {0,1}; <=5: {2,5}; <=10: {6,10}; overflow: {11,1000}.
        assert_eq!(h.bucket_counts(), vec![2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1035);
        assert_eq!(h.overflow(), 2);
    }

    #[test]
    fn bounds_are_sorted_and_deduped() {
        let h = hist(&[10, 1, 10, 5]);
        assert_eq!(h.bounds(), &[1, 5, 10]);
        assert_eq!(h.bucket_counts().len(), 4);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let h = hist(&[1]);
        h.enabled.store(false, Ordering::Relaxed);
        h.record(7);
        assert_eq!(h.count(), 0);
        assert_eq!(h.bucket_counts(), vec![0, 0]);
    }

    #[test]
    fn quantile_pins_exactly_at_bucket_boundaries() {
        // 4 samples in (0, 10], 4 in (10, 20]: the p50 rank (4.0) lands
        // exactly on the first bucket's cumulative edge, so p50 is
        // exactly the first bound — no bleed into the next bucket.
        let h = hist(&[10, 20]);
        for v in [2, 4, 6, 8, 12, 14, 16, 18] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 10);
        assert_eq!(h.quantile(1.0), 20);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn quantile_interpolates_linearly_within_a_bucket() {
        // All 10 samples in the (0, 100] bucket: rank q*10 sits at
        // fraction q of the bucket, so pXX == XX exactly.
        let h = hist(&[100]);
        for _ in 0..10 {
            h.record(50);
        }
        assert_eq!(h.quantile(0.5), 50);
        assert_eq!(h.quantile(0.9), 90);
        assert_eq!(h.quantile(0.99), 99);
    }

    #[test]
    fn quantile_saturates_in_overflow_and_handles_empty() {
        let h = hist(&[10]);
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        h.record(5);
        h.record(1_000); // overflow
        // p99 rank lands in the overflow bucket: saturate at the last
        // bound rather than invent a value the histogram never saw.
        assert_eq!(h.quantile(0.99), 10);
    }

    #[test]
    fn quantile_skips_empty_leading_buckets() {
        let h = hist(&[10, 20, 30]);
        for v in [25, 25, 25, 25] {
            h.record(v);
        }
        // Everything sits in (20, 30]; p50 interpolates inside it.
        assert_eq!(h.quantile(0.5), 25);
        assert_eq!(h.quantile(1.0), 30);
    }
}
