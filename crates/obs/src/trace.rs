//! Deterministic trace events: a bounded, sequence-ordered ring buffer
//! of span begin/end events plus the exporters built over it.
//!
//! Unlike the aggregated [`crate::SpanStat`] timings, trace events
//! preserve *order*: every span open and close appends one event
//! carrying a monotonically increasing sequence number. Ordering is by
//! sequence, never by wall clock — for a deterministic pipeline the
//! event stream (paths, phases, sequence) is identical run to run and
//! across thread counts; only the `t_ns`/`dur_ns` duration fields vary,
//! and the redacted exports zero exactly those (plus the sequence
//! numbers, so a redacted document carries no covert channel for
//! execution shape).
//!
//! Two export formats:
//!
//! * **Chrome trace** ([`render_chrome_trace`]) — the `trace_event`
//!   JSON consumed by `chrome://tracing` / Perfetto: one complete
//!   (`"ph": "X"`) event per span close.
//! * **Collapsed stacks** ([`render_collapsed`]) — the
//!   `frame;frame;frame weight` lines consumed by flamegraph tooling,
//!   weighted by span *self time* (time not attributed to a child
//!   span); the redacted variant weights by call count instead.
//!
//! The buffer is bounded (default [`DEFAULT_TRACE_CAPACITY`] events):
//! when full, the oldest events are dropped and counted, so a
//! pathological span storm can never exhaust memory.

use crate::span::SpanStat;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Default ring-buffer capacity, in events. Pipeline runs produce a few
/// hundred events; the headroom is for future per-window streaming
/// stages.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Which side of a span an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// The span opened.
    Begin,
    /// The span closed; the event carries the span's duration.
    End,
}

impl TracePhase {
    /// The single-letter phase code used in exports ("B" / "E").
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
        }
    }
}

/// One recorded span transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Position in the global event order, starting at 1. Deterministic
    /// for a deterministic pipeline; zeroed by redacted exports.
    pub seq: u64,
    /// Open or close.
    pub phase: TracePhase,
    /// Full nesting-prefixed span path.
    pub path: String,
    /// Nanoseconds since the registry first recorded an event
    /// (duration data — varies run to run).
    pub t_ns: u64,
    /// Span duration for [`TracePhase::End`] events, zero for begins.
    pub dur_ns: u64,
}

/// The bounded event buffer attached to a registry's span store.
#[derive(Debug)]
pub(crate) struct TraceBuffer {
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    events: VecDeque<TraceEvent>,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        Self {
            capacity: DEFAULT_TRACE_CAPACITY,
            next_seq: 1,
            dropped: 0,
            events: VecDeque::new(),
        }
    }
}

impl TraceBuffer {
    pub(crate) fn record(&mut self, phase: TracePhase, path: &str, t_ns: u64, dur_ns: u64) {
        if self.capacity == 0 {
            self.dropped += 1;
            self.next_seq += 1;
            return;
        }
        while self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            seq: self.next_seq,
            phase,
            path: path.to_string(),
            t_ns,
            dur_ns,
        });
        self.next_seq += 1;
    }

    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.events.len() > capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    pub(crate) fn events(&self) -> Vec<TraceEvent> {
        self.events.iter().cloned().collect()
    }
}

/// Renders events as a Chrome `trace_event` document (the format
/// `chrome://tracing` and Perfetto load): one complete (`"ph": "X"`)
/// event per span close, timestamps in microseconds. Under `redact`,
/// `ts` becomes the event's sequence number and `dur` zero, so two
/// same-seed runs render byte-identically while the viewer still shows
/// the true ordering.
#[must_use]
pub fn render_chrome_trace(events: &[TraceEvent], redact: bool) -> String {
    let mut out = String::from("{\"traceEvents\": [");
    let mut first = true;
    for e in events {
        if e.phase != TracePhase::End {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let (ts_us, dur_us) = if redact {
            (e.seq, 0)
        } else {
            (e.t_ns.saturating_sub(e.dur_ns) / 1_000, e.dur_ns / 1_000)
        };
        let _ = write!(
            out,
            "\n  {{\"args\": {{\"seq\": {}}}, \"cat\": \"span\", \"dur\": {dur_us}, \
             \"name\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": 1, \"ts\": {ts_us}}}",
            if redact { 0 } else { e.seq },
            crate::registry::escape_json(&e.path),
        );
    }
    out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    out
}

/// Renders span aggregates as collapsed stacks (`a;b;c weight`, one
/// line per path in first-start order) for flamegraph tooling. The
/// weight is the span's *self time* in nanoseconds — total minus the
/// time attributed to child spans — or, under `redact`, its call count
/// (deterministic, so redacted flamegraphs compare byte-for-byte).
#[must_use]
pub fn render_collapsed(order: &[String], stats: &[(String, SpanStat)], redact: bool) -> String {
    let mut out = String::new();
    for path in order {
        let Some((_, stat)) = stats.iter().find(|(p, _)| p == path) else {
            continue;
        };
        let weight = if redact {
            stat.calls
        } else {
            stat.total_ns.saturating_sub(stat.child_ns)
        };
        let frames = path.replace('/', ";");
        let _ = writeln!(out, "{frames} {weight}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(seq: u64, phase: TracePhase, path: &str, t_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent {
            seq,
            phase,
            path: path.to_string(),
            t_ns,
            dur_ns,
        }
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let mut buf = TraceBuffer::default();
        buf.set_capacity(3);
        for i in 0..5 {
            buf.record(TracePhase::Begin, &format!("s{i}"), i, 0);
        }
        assert_eq!(buf.dropped(), 2);
        let events = buf.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].path, "s2");
        assert_eq!(events[0].seq, 3);
        assert_eq!(events[2].seq, 5);
    }

    #[test]
    fn shrinking_capacity_trims_front() {
        let mut buf = TraceBuffer::default();
        for i in 0..4 {
            buf.record(TracePhase::Begin, "s", i, 0);
        }
        buf.set_capacity(2);
        assert_eq!(buf.events().len(), 2);
        assert_eq!(buf.dropped(), 2);
        buf.set_capacity(0);
        assert!(buf.events().is_empty());
        buf.record(TracePhase::Begin, "s", 9, 0);
        assert!(buf.events().is_empty());
        assert_eq!(buf.dropped(), 5);
    }

    #[test]
    fn chrome_trace_exports_complete_events() {
        let events = vec![
            event(1, TracePhase::Begin, "load", 0, 0),
            event(2, TracePhase::End, "load", 5_000, 5_000),
        ];
        let json = render_chrome_trace(&events, false);
        assert!(json.contains("\"name\": \"load\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"dur\": 5"));
        assert!(json.contains("\"ts\": 0"));
        // Begins are folded into the complete event, not exported.
        assert_eq!(json.matches("\"name\"").count(), 1);
    }

    #[test]
    fn redacted_chrome_trace_is_duration_free_and_stable() {
        let a = vec![event(2, TracePhase::End, "fit", 7_000, 6_000)];
        let b = vec![event(2, TracePhase::End, "fit", 9_999, 8_888)];
        let ra = render_chrome_trace(&a, true);
        assert_eq!(ra, render_chrome_trace(&b, true));
        assert!(ra.contains("\"ts\": 2"), "redacted ts is the sequence");
        assert!(ra.contains("\"dur\": 0"));
        assert!(ra.contains("\"seq\": 0"));
    }

    #[test]
    fn collapsed_weights_by_self_time_or_calls() {
        let order = vec!["a".to_string(), "a/b".to_string()];
        let stats = vec![
            (
                "a".to_string(),
                SpanStat {
                    calls: 1,
                    total_ns: 100,
                    min_ns: 100,
                    max_ns: 100,
                    child_ns: 60,
                },
            ),
            (
                "a/b".to_string(),
                SpanStat {
                    calls: 2,
                    total_ns: 60,
                    min_ns: 20,
                    max_ns: 40,
                    child_ns: 0,
                },
            ),
        ];
        let full = render_collapsed(&order, &stats, false);
        assert_eq!(full, "a 40\na;b 60\n");
        let redacted = render_collapsed(&order, &stats, true);
        assert_eq!(redacted, "a 1\na;b 2\n");
    }
}
