//! Monotonic span timers with nested scopes.
//!
//! A span is opened with [`crate::MetricsRegistry::span`] (or the
//! [`crate::span!`] macro against the global registry) and closed by
//! dropping the returned guard. Nesting is tracked per thread: a span
//! opened while another is live gets the parent's path as a prefix, so
//! `span("mobility")` containing `span("fit/gravity4")` records
//! `mobility/fit/gravity4`. Timing uses `std::time::Instant` — the only
//! place in the workspace allowed to touch a clock (see the
//! `tweetmob-lint` determinism rule) — and durations never feed any
//! result-bearing field.

use crate::registry::MetricsRegistry;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

thread_local! {
    /// The stack of full span paths live on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated timing of one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Times the span completed. Deterministic for a deterministic
    /// pipeline — the only field of a span that is.
    pub calls: u64,
    /// Total nanoseconds across all calls.
    pub total_ns: u64,
    /// Fastest single call, nanoseconds.
    pub min_ns: u64,
    /// Slowest single call, nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    fn observe(&mut self, elapsed_ns: u64) {
        if self.calls == 0 {
            self.min_ns = elapsed_ns;
            self.max_ns = elapsed_ns;
        } else {
            self.min_ns = self.min_ns.min(elapsed_ns);
            self.max_ns = self.max_ns.max(elapsed_ns);
        }
        self.calls += 1;
        self.total_ns = self.total_ns.saturating_add(elapsed_ns);
    }
}

/// Upper bounds of the fixed per-span latency histogram, nanoseconds:
/// 1 µs, 10 µs, 100 µs, 1 ms, 10 ms, 100 ms, 1 s, 10 s (+ overflow).
pub const LATENCY_BOUNDS_NS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// All spans a registry has seen: first-start order for trace rendering,
/// alphabetical (`BTreeMap`) order for serialization.
#[derive(Debug, Default)]
pub(crate) struct SpanStore {
    /// Full paths in the order each was first *started* — parents before
    /// children, deterministic for a deterministic pipeline.
    pub(crate) order: Vec<String>,
    pub(crate) stats: BTreeMap<String, SpanStat>,
    /// Per-path latency histogram: one count per `LATENCY_BOUNDS_NS`
    /// entry plus a trailing overflow cell.
    pub(crate) latency: BTreeMap<String, [u64; LATENCY_BOUNDS_NS.len() + 1]>,
}

impl SpanStore {
    pub(crate) fn note_start(&mut self, path: &str) {
        if !self.stats.contains_key(path) {
            self.order.push(path.to_string());
            self.stats.insert(path.to_string(), SpanStat::default());
        }
    }

    pub(crate) fn record(&mut self, path: &str, elapsed_ns: u64) {
        self.stats
            .entry(path.to_string())
            .or_default()
            .observe(elapsed_ns);
        let buckets = self
            .latency
            .entry(path.to_string())
            .or_insert([0; LATENCY_BOUNDS_NS.len() + 1]);
        let idx = LATENCY_BOUNDS_NS.partition_point(|&b| b < elapsed_ns);
        buckets[idx] += 1;
    }
}

/// Pushes `name` onto the thread's span stack, returning the full path.
pub(crate) fn push_scope(name: &str) -> String {
    SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        stack.push(path.clone());
        path
    })
}

/// Pops the innermost scope (guard drop).
pub(crate) fn pop_scope() {
    SPAN_STACK.with(|stack| {
        stack.borrow_mut().pop();
    });
}

/// RAII guard for one live span. Dropping it records the elapsed time
/// into the owning registry; guards must be dropped on the thread that
/// opened them (nesting is thread-local).
#[must_use = "a span guard measures until dropped; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct SpanGuard<'a> {
    /// `None` for the no-op guard handed out while the registry is
    /// disabled — no clock is read and nothing is recorded.
    pub(crate) active: Option<(&'a MetricsRegistry, String, Instant)>,
}

impl SpanGuard<'_> {
    /// The full (nesting-prefixed) path, or `None` for a no-op guard.
    #[must_use]
    pub fn path(&self) -> Option<&str> {
        self.active.as_ref().map(|(_, p, _)| p.as_str())
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((registry, path, start)) = self.active.take() {
            let elapsed = start.elapsed().as_nanos();
            // u128→u64 ns saturates after ~584 years of elapsed time.
            let elapsed_ns = u64::try_from(elapsed).unwrap_or(u64::MAX);
            pop_scope();
            registry.record_span(&path, elapsed_ns);
        }
    }
}
