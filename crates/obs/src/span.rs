//! Monotonic span timers with nested scopes.
//!
//! A span is opened with [`crate::MetricsRegistry::span`] (or the
//! [`crate::span!`] macro against the global registry) and closed by
//! dropping the returned guard. Nesting is tracked per thread: a span
//! opened while another is live gets the parent's path as a prefix, so
//! `span("mobility")` containing `span("fit/gravity4")` records
//! `mobility/fit/gravity4`. Each frame also accumulates the time its
//! *children* spent, so a closed span knows both total and self time
//! (total minus child) — the weight the flamegraph export uses. Timing
//! uses `std::time::Instant` — the only place in the workspace allowed
//! to touch a clock (see the `tweetmob-lint` determinism rule) — and
//! durations never feed any result-bearing field.

use crate::registry::MetricsRegistry;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

/// One live span on this thread's stack.
struct Frame {
    /// The full nesting-prefixed path.
    path: String,
    /// Nanoseconds spent in already-closed direct children.
    child_ns: u64,
}

thread_local! {
    /// The stack of spans live on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated timing of one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Times the span completed. Deterministic for a deterministic
    /// pipeline — the only field of a span that is.
    pub calls: u64,
    /// Total nanoseconds across all calls.
    pub total_ns: u64,
    /// Fastest single call, nanoseconds.
    pub min_ns: u64,
    /// Slowest single call, nanoseconds.
    pub max_ns: u64,
    /// Nanoseconds spent inside direct child spans, across all calls.
    /// `total_ns - child_ns` is the span's *self time*.
    pub child_ns: u64,
}

impl SpanStat {
    /// The span's self time: total minus time attributed to children.
    #[must_use]
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_ns)
    }

    fn observe(&mut self, elapsed_ns: u64, child_ns: u64) {
        if self.calls == 0 {
            self.min_ns = elapsed_ns;
            self.max_ns = elapsed_ns;
        } else {
            self.min_ns = self.min_ns.min(elapsed_ns);
            self.max_ns = self.max_ns.max(elapsed_ns);
        }
        self.calls += 1;
        self.total_ns = self.total_ns.saturating_add(elapsed_ns);
        self.child_ns = self.child_ns.saturating_add(child_ns);
    }
}

/// Upper bounds of the fixed per-span latency histogram, nanoseconds:
/// 1 µs, 10 µs, 100 µs, 1 ms, 10 ms, 100 ms, 1 s, 10 s (+ overflow).
pub const LATENCY_BOUNDS_NS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Upper bounds for request-serving latency histograms, nanoseconds:
/// 50 µs, 200 µs, 1 ms, 5 ms, 20 ms, 100 ms, 500 ms, 2 s, 10 s, 30 s
/// (+ overflow). Wider at the top than [`LATENCY_BOUNDS_NS`] on
/// purpose: the first request against a cold artifact (page-faulting
/// the geometry cache, warming allocator arenas) can take seconds, and
/// a histogram whose last bound is below the cold-start cost silently
/// under-reports p99 — the quantile saturates at the last finite bound
/// (see `HistogramInner::quantile`), with only the rendered `overflow`
/// count as a signal. These bounds keep cold-start requests inside the
/// finite buckets so serve p99 stays honest.
pub const SERVE_LATENCY_BOUNDS_NS: [u64; 10] = [
    50_000,
    200_000,
    1_000_000,
    5_000_000,
    20_000_000,
    100_000_000,
    500_000_000,
    2_000_000_000,
    10_000_000_000,
    30_000_000_000,
];

/// A monotonic stopwatch for code outside `tweetmob-obs` that needs a
/// duration *sample* (e.g. per-request latency in a serving loop)
/// without holding a span open or touching `std::time::Instant`
/// directly — this crate is the one place in the workspace sanctioned
/// to read the wall clock, and the determinism lint's taint pass keys
/// on `Instant`/`elapsed` tokens at call sites.
///
/// Feed the result straight into a [`Histogram`](crate::Histogram) or
/// counter; never format it into user-visible output on a
/// determinism-audited path.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    started: Instant,
}

impl Timer {
    /// Starts the stopwatch.
    #[must_use]
    pub fn start() -> Self {
        Self { started: Instant::now() }
    }

    /// Nanoseconds since [`Timer::start`], saturating at `u64::MAX`.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// All spans a registry has seen: first-start order for trace rendering,
/// alphabetical (`BTreeMap`) order for serialization.
#[derive(Debug, Default)]
pub(crate) struct SpanStore {
    /// Full paths in the order each was first *started* — parents before
    /// children, deterministic for a deterministic pipeline.
    pub(crate) order: Vec<String>,
    pub(crate) stats: BTreeMap<String, SpanStat>,
    /// Per-path latency histogram: one count per `LATENCY_BOUNDS_NS`
    /// entry plus a trailing overflow cell.
    pub(crate) latency: BTreeMap<String, [u64; LATENCY_BOUNDS_NS.len() + 1]>,
}

impl SpanStore {
    pub(crate) fn note_start(&mut self, path: &str) {
        if !self.stats.contains_key(path) {
            self.order.push(path.to_string());
            self.stats.insert(path.to_string(), SpanStat::default());
        }
    }

    pub(crate) fn record(&mut self, path: &str, elapsed_ns: u64, child_ns: u64) {
        self.stats
            .entry(path.to_string())
            .or_default()
            .observe(elapsed_ns, child_ns);
        let buckets = self
            .latency
            .entry(path.to_string())
            .or_insert([0; LATENCY_BOUNDS_NS.len() + 1]);
        let idx = LATENCY_BOUNDS_NS.partition_point(|&b| b < elapsed_ns);
        buckets[idx] += 1;
    }
}

/// Pushes `name` onto the thread's span stack, returning the full path.
pub(crate) fn push_scope(name: &str) -> String {
    SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{}/{name}", parent.path),
            None => name.to_string(),
        };
        stack.push(Frame {
            path: path.clone(),
            child_ns: 0,
        });
        path
    })
}

/// Pops the innermost scope (guard drop), credits its elapsed time to
/// the parent frame still on the stack, and returns how long the popped
/// span's own children ran.
pub(crate) fn pop_scope(elapsed_ns: u64) -> u64 {
    SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let child_ns = stack.pop().map_or(0, |frame| frame.child_ns);
        if let Some(parent) = stack.last_mut() {
            parent.child_ns = parent.child_ns.saturating_add(elapsed_ns);
        }
        child_ns
    })
}

/// RAII guard for one live span. Dropping it records the elapsed time
/// into the owning registry; guards must be dropped on the thread that
/// opened them (nesting is thread-local).
#[must_use = "a span guard measures until dropped; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct SpanGuard<'a> {
    /// `None` for the no-op guard handed out while the registry is
    /// disabled — no clock is read and nothing is recorded.
    pub(crate) active: Option<(&'a MetricsRegistry, String, Instant)>,
    /// Allocation counts at span open, for the per-span allocator
    /// gauges. `None` when no counting allocator is installed.
    #[cfg(feature = "alloc")]
    pub(crate) alloc_at_open: Option<tweetmob_alloc::AllocSnapshot>,
}

impl SpanGuard<'_> {
    /// The full (nesting-prefixed) path, or `None` for a no-op guard.
    #[must_use]
    pub fn path(&self) -> Option<&str> {
        self.active.as_ref().map(|(_, p, _)| p.as_str())
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((registry, path, start)) = self.active.take() {
            let elapsed = start.elapsed().as_nanos();
            // u128→u64 ns saturates after ~584 years of elapsed time.
            let elapsed_ns = u64::try_from(elapsed).unwrap_or(u64::MAX);
            let child_ns = pop_scope(elapsed_ns);
            registry.record_span(&path, elapsed_ns, child_ns);
            #[cfg(feature = "alloc")]
            if let Some(open) = self.alloc_at_open.take() {
                let now = tweetmob_alloc::snapshot();
                registry
                    .gauge(&format!("alloc/{path}/allocations"))
                    .set(i64::try_from(now.allocations.saturating_sub(open.allocations)).unwrap_or(i64::MAX));
                registry
                    .gauge(&format!("alloc/{path}/peak_bytes"))
                    .set(i64::try_from(now.peak_bytes).unwrap_or(i64::MAX));
            }
        }
    }
}
