//! # tweetmob-obs
//!
//! Structured observability for the `tweetmob` pipeline: span timers
//! with nested scopes, atomic counters and gauges, fixed-bucket
//! histograms, and a [`MetricsRegistry`] that serializes everything to a
//! stable, deterministic JSON document.
//!
//! The design constraints, in order:
//!
//! 1. **Determinism of results is untouchable.** Timing never feeds a
//!    result-bearing field; the JSON document is `BTreeMap`-ordered and
//!    carries no wall-clock timestamp, so two runs of the same seeded
//!    pipeline differ only in duration fields (`*_ns` and the
//!    `timing/latency_ns` subtree). [`MetricsRegistry::to_json_redacted`]
//!    zeroes those for byte-identical comparison.
//! 2. **Near-zero cost.** Counter/gauge/histogram handles are a couple of
//!    relaxed atomics per record; span open/close locks a `Mutex` but
//!    spans wrap pipeline *stages* (load, trip extraction, each model
//!    fit), not inner loops. A disabled registry reduces every operation
//!    to one relaxed load, which is the no-op baseline the benches use to
//!    demonstrate overhead.
//! 3. **No dependencies.** Every pipeline crate links this, so it is
//!    `std`-only; JSON is emitted by hand.
//!
//! Pipeline crates record into the process-wide [`global`] registry via
//! the [`span!`] / [`counter!`] macros:
//!
//! ```
//! let _guard = tweetmob_obs::span!("fit/gravity4");
//! tweetmob_obs::counter!("trips/extracted").add(42);
//! // ... stage work ...
//! drop(_guard);
//! let json = tweetmob_obs::global().to_json();
//! assert!(json.contains("fit/gravity4"));
//! ```
//!
//! Tests and benches that need isolation construct their own
//! [`MetricsRegistry`] instead.
//!
//! Beyond aggregates, the registry keeps a bounded, sequence-ordered
//! [`TraceEvent`] ring buffer ([`mod@trace`]) exportable as Chrome
//! `trace_event` JSON or collapsed flamegraph stacks, and can carry a
//! [`RunManifest`] ([`mod@manifest`]) — the run's provenance (args,
//! seed, input/output content hashes, crate versions) — serialized into
//! the metrics document and embeddable in artifacts.
//!
//! With the `alloc` feature (and a `tweetmob_alloc::CountingAlloc`
//! installed as the global allocator by the host binary), every closed
//! span additionally publishes `alloc/<path>/{allocations,peak_bytes}`
//! gauges.
//!
//! This crate is the one place in the workspace permitted to call
//! `std::time::Instant::now` — `tweetmob-lint`'s determinism rule
//! enforces that everything else routes timing through this API.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod histogram;
pub mod manifest;
mod registry;
mod span;
pub mod trace;

pub use histogram::Histogram;
pub use manifest::{FileStamp, RunManifest, MANIFEST_SCHEMA_VERSION};
pub use registry::{Counter, Gauge, MetricsRegistry};
pub use span::{SpanGuard, SpanStat, Timer, LATENCY_BOUNDS_NS, SERVE_LATENCY_BOUNDS_NS};
pub use trace::{TraceEvent, TracePhase, DEFAULT_TRACE_CAPACITY};

use std::sync::OnceLock;

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry every pipeline crate records into. Created
/// enabled on first touch.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Opens a span on the [`global`] registry. Bind the guard to a named
/// variable (`let _guard = span!("load");`) — binding to `_` drops it
/// immediately and records nothing.
#[macro_export]
macro_rules! span {
    ($path:expr) => {
        $crate::global().span($path)
    };
}

/// The counter registered under a name on the [`global`] registry.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::global().counter($name)
    };
}

/// The gauge registered under a name on the [`global`] registry.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {
        $crate::global().gauge($name)
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn global_registry_is_shared_and_enabled() {
        assert!(super::global().is_enabled());
        let c = crate::counter!("lib-test/shared");
        c.add(2);
        assert_eq!(super::global().counter_value("lib-test/shared"), Some(2));
    }

    #[test]
    fn macros_compose_with_nesting() {
        {
            let _outer = crate::span!("lib-test/outer");
            let _inner = crate::span!("inner");
        }
        let paths = super::global().span_paths();
        assert!(paths.iter().any(|p| p == "lib-test/outer/inner"));
    }
}
