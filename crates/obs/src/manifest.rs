//! Run provenance: what ran, over which exact bytes, producing what.
//!
//! A [`RunManifest`] records the subcommand, its normalized arguments,
//! the seed and thread count, content hashes of every input file read
//! and artifact written, and the crate versions that produced them. It
//! renders two ways:
//!
//! * the **full** manifest ([`RunManifest::to_json`]) embedded in every
//!   `--metrics-out` document — includes outputs, outcome and thread
//!   count (thread count is execution shape, so the redacted rendering
//!   zeroes it);
//! * the **portable** manifest ([`RunManifest::to_embedded_json`])
//!   embedded in a TMA0 artifact's `PROV` section — only the fields
//!   that describe *what the artifact is* (schema, subcommand, args,
//!   seed, input hashes, crate versions), never where it was written or
//!   how many threads fit it, so artifact bytes stay invariant across
//!   thread counts and output paths.
//!
//! Files are stamped with FNV-1a 64 ([`fnv1a64_file`]) — a dependency-
//! free, endianness-free content hash that is stable across platforms.
//! It is an integrity check for provenance, not a cryptographic seal.
//!
//! Pipeline code reports the files it touches through the process-wide
//! [`record_input`] / [`record_output`] collectors; the CLI drains them
//! ([`recorded_inputs`], [`recorded_outputs`]) when it assembles the
//! manifest at the end of the run.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Read as _;
use std::sync::Mutex;

/// Version of the manifest JSON layout. Bump on any field change.
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;

/// A content stamp of one file: path as given, size, FNV-1a 64 hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStamp {
    /// The path exactly as the run referred to it.
    pub path: String,
    /// File size in bytes.
    pub bytes: u64,
    /// FNV-1a 64 content hash, 16 lowercase hex digits.
    pub fnv1a64: String,
}

impl FileStamp {
    /// Stamps the file at `path` by streaming its contents.
    ///
    /// # Errors
    ///
    /// Any I/O error opening or reading the file.
    pub fn of_file(path: &str) -> std::io::Result<Self> {
        let (bytes, hash) = fnv1a64_file(path)?;
        Ok(Self {
            path: path.to_string(),
            bytes,
            fnv1a64: format!("{hash:016x}"),
        })
    }

    fn render(&self, out: &mut String, indent: usize) {
        let _ = write!(
            out,
            "{:indent$}{{\"bytes\": {}, \"fnv1a64\": \"{}\", \"path\": \"{}\"}}",
            "",
            self.bytes,
            crate::registry::escape_json(&self.fnv1a64),
            crate::registry::escape_json(&self.path),
        );
    }
}

/// FNV-1a 64 offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte slice.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Streams a file through FNV-1a 64, returning `(size, hash)`.
///
/// # Errors
///
/// Any I/O error opening or reading the file.
pub fn fnv1a64_file(path: &str) -> std::io::Result<(u64, u64)> {
    let mut file = std::fs::File::open(path)?;
    let mut hash = FNV_OFFSET;
    let mut size = 0u64;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            break;
        }
        size += n as u64;
        for &b in &buf[..n] {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    Ok((size, hash))
}

/// Provenance of one pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunManifest {
    /// The subcommand that ran (e.g. `"fit"`).
    pub subcommand: String,
    /// Normalized argument list: positionals in order, then sorted
    /// `--flag=value` pairs, then sorted switches, with output-routing
    /// flags (`--metrics-out`, `--trace-out`, `--threads`, ...)
    /// excluded — those describe the observation, not the computation.
    pub args: Vec<String>,
    /// The generator seed, when the run took one.
    pub seed: Option<u64>,
    /// Resolved worker-thread count. Execution shape: zeroed under
    /// redaction and absent from the portable rendering.
    pub threads: u64,
    /// `"ok"` or `"error"`.
    pub outcome: String,
    /// Every input file the run read, stamped.
    pub inputs: Vec<FileStamp>,
    /// Every artifact the run wrote, stamped. Absent from the portable
    /// rendering (an artifact cannot contain its own hash).
    pub outputs: Vec<FileStamp>,
    /// Workspace crate versions, by crate name.
    pub crates: BTreeMap<String, String>,
}

impl RunManifest {
    /// The full manifest as a standalone JSON document. Under `redact`
    /// the thread count is zeroed (it is the one execution-shape field
    /// here; hashes and args are deterministic already).
    #[must_use]
    pub fn to_json(&self, redact: bool) -> String {
        let mut out = self.render(redact, false, 0);
        out.push('\n');
        out
    }

    /// The portable manifest for embedding in an artifact: schema,
    /// subcommand, args, seed, input stamps and crate versions only —
    /// no outputs, outcome or thread count, so the same fit produces
    /// byte-identical artifacts at every thread count and output path.
    #[must_use]
    pub fn to_embedded_json(&self) -> String {
        self.render(false, true, 0)
    }

    /// Renders at `indent` spaces of base indentation (used by the
    /// registry to splice the manifest into the metrics document).
    #[must_use]
    pub(crate) fn render(&self, redact: bool, portable: bool, indent: usize) -> String {
        let pad = indent;
        let inner = indent + 2;
        let mut out = String::from("{\n");
        // args
        let _ = write!(out, "{:inner$}\"args\": [", "");
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", crate::registry::escape_json(a));
        }
        out.push_str("],\n");
        // crates
        let _ = write!(out, "{:inner$}\"crates\": {{", "");
        for (i, (name, version)) in self.crates.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{}\": \"{}\"",
                crate::registry::escape_json(name),
                crate::registry::escape_json(version),
            );
        }
        out.push_str("},\n");
        // inputs
        let _ = write!(out, "{:inner$}\"inputs\": [", "");
        render_stamps(&mut out, &self.inputs, inner);
        out.push_str(",\n");
        if !portable {
            let _ = write!(
                out,
                "{:inner$}\"outcome\": \"{}\",\n",
                "",
                crate::registry::escape_json(&self.outcome)
            );
            let _ = write!(out, "{:inner$}\"outputs\": [", "");
            render_stamps(&mut out, &self.outputs, inner);
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "{:inner$}\"schema_version\": {},\n",
            "", MANIFEST_SCHEMA_VERSION
        );
        match self.seed {
            Some(seed) => {
                let _ = write!(out, "{:inner$}\"seed\": {seed},\n", "");
            }
            None => {
                let _ = write!(out, "{:inner$}\"seed\": null,\n", "");
            }
        }
        let _ = write!(
            out,
            "{:inner$}\"subcommand\": \"{}\"",
            "",
            crate::registry::escape_json(&self.subcommand)
        );
        if !portable {
            let shown = if redact { 0 } else { self.threads };
            let _ = write!(out, ",\n{:inner$}\"threads\": {shown}", "");
        }
        let _ = write!(out, "\n{:pad$}}}", "");
        out
    }
}

fn render_stamps(out: &mut String, stamps: &[FileStamp], inner: usize) {
    if stamps.is_empty() {
        out.push(']');
        return;
    }
    for (i, stamp) in stamps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        stamp.render(out, inner + 2);
    }
    let _ = write!(out, "\n{:inner$}]", "");
}

/// Paths reported by pipeline code, drained when the manifest is built.
static RECORDED_INPUTS: Mutex<Vec<String>> = Mutex::new(Vec::new());
static RECORDED_OUTPUTS: Mutex<Vec<String>> = Mutex::new(Vec::new());

fn push_unique(store: &Mutex<Vec<String>>, path: &str) {
    let mut paths = store.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if !paths.iter().any(|p| p == path) {
        paths.push(path.to_string());
    }
}

/// Reports that the running pipeline read the file at `path`. Duplicate
/// reports of the same path collapse to one.
pub fn record_input(path: &str) {
    push_unique(&RECORDED_INPUTS, path);
}

/// Reports that the running pipeline wrote an artifact at `path`.
pub fn record_output(path: &str) {
    push_unique(&RECORDED_OUTPUTS, path);
}

/// Every input path reported so far, in first-report order.
#[must_use]
pub fn recorded_inputs() -> Vec<String> {
    RECORDED_INPUTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Every output path reported so far, in first-report order.
#[must_use]
pub fn recorded_outputs() -> Vec<String> {
    RECORDED_OUTPUTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Clears the recorded input/output paths (test isolation).
pub fn clear_recorded() {
    RECORDED_INPUTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
    RECORDED_OUTPUTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn file_hash_matches_slice_hash() {
        let dir = std::env::temp_dir().join("tweetmob-obs-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stamp.bin");
        let payload = b"tweetmob provenance payload";
        std::fs::write(&path, payload).unwrap();
        let path = path.to_str().unwrap();
        let (size, hash) = fnv1a64_file(path).unwrap();
        assert_eq!(size, payload.len() as u64);
        assert_eq!(hash, fnv1a64(payload));
        let stamp = FileStamp::of_file(path).unwrap();
        assert_eq!(stamp.bytes, size);
        assert_eq!(stamp.fnv1a64, format!("{hash:016x}"));
    }

    fn sample() -> RunManifest {
        RunManifest {
            subcommand: "fit".into(),
            args: vec!["data.jsonl".into(), "--scale=national".into()],
            seed: Some(42),
            threads: 8,
            outcome: "ok".into(),
            inputs: vec![FileStamp {
                path: "data.jsonl".into(),
                bytes: 10,
                fnv1a64: "00000000000000aa".into(),
            }],
            outputs: vec![FileStamp {
                path: "m.tma".into(),
                bytes: 20,
                fnv1a64: "00000000000000bb".into(),
            }],
            crates: [("tweetmob-obs".to_string(), "0.1.0".to_string())].into(),
        }
    }

    #[test]
    fn full_rendering_carries_everything_redaction_zeroes_threads() {
        let m = sample();
        let full = m.to_json(false);
        for needle in [
            "\"subcommand\": \"fit\"",
            "\"seed\": 42",
            "\"threads\": 8",
            "\"outcome\": \"ok\"",
            "\"path\": \"m.tma\"",
            "\"fnv1a64\": \"00000000000000aa\"",
            "\"tweetmob-obs\": \"0.1.0\"",
        ] {
            assert!(full.contains(needle), "missing {needle} in {full}");
        }
        let redacted = m.to_json(true);
        assert!(redacted.contains("\"threads\": 0"));
        // Threads is the only field redaction touches.
        assert_eq!(full.replace("\"threads\": 8", "\"threads\": 0"), redacted);
    }

    #[test]
    fn portable_rendering_is_thread_and_output_free() {
        let m = sample();
        let portable = m.to_embedded_json();
        assert!(portable.contains("\"subcommand\": \"fit\""));
        assert!(portable.contains("\"fnv1a64\": \"00000000000000aa\""));
        assert!(!portable.contains("threads"));
        assert!(!portable.contains("outputs"));
        assert!(!portable.contains("outcome"));
        assert!(!portable.contains("m.tma"));
        // Invariant under everything the portable form excludes.
        let mut other = m;
        other.threads = 1;
        other.outputs.clear();
        other.outcome = "error".into();
        assert_eq!(portable, other.to_embedded_json());
    }

    #[test]
    fn seedless_manifest_renders_null() {
        let mut m = sample();
        m.seed = None;
        assert!(m.to_json(false).contains("\"seed\": null"));
    }

    #[test]
    fn recorders_dedupe_and_drain() {
        clear_recorded();
        record_input("a.jsonl");
        record_input("a.jsonl");
        record_input("b.jsonl");
        record_output("out.tma");
        assert_eq!(recorded_inputs(), vec!["a.jsonl", "b.jsonl"]);
        assert_eq!(recorded_outputs(), vec!["out.tma"]);
        clear_recorded();
        assert!(recorded_inputs().is_empty());
        assert!(recorded_outputs().is_empty());
    }
}
