//! The metrics registry: named counters, gauges, histograms and span
//! timings, serializable to a stable JSON document.

use crate::histogram::{Histogram, HistogramInner};
use crate::span::{SpanGuard, SpanStat, SpanStore, LATENCY_BOUNDS_NS};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// A cloneable handle onto one registered monotonic counter.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    enabled: Arc<AtomicBool>,
}

impl Counter {
    /// Adds `n`. A no-op while the owning registry is disabled.
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A cloneable handle onto one registered gauge (a settable `i64`).
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
    enabled: Arc<AtomicBool>,
}

impl Gauge {
    /// Sets the gauge. A no-op while the owning registry is disabled.
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// The current value.
    #[must_use]
    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A registry of named metrics.
///
/// Handles ([`Counter`], [`Gauge`], [`Histogram`]) are created on first
/// use of a name and shared thereafter; recording through a handle is a
/// few relaxed atomics and never locks. Span timing locks a `Mutex` per
/// span open/close — spans mark pipeline *stages*, not inner loops.
///
/// Serialization ([`MetricsRegistry::to_json`]) is deterministic: keys
/// are `BTreeMap`-ordered and no wall-clock timestamp appears anywhere.
/// The only run-to-run variation is duration data — fields suffixed
/// `_ns` and the `timing/latency_ns` subtree — which
/// [`MetricsRegistry::to_json_redacted`] zeroes for byte-comparison.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramInner>>>,
    spans: Mutex<SpanStore>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic while holding one of these locks cannot leave the maps in a
    // torn state (every mutation is a single insert or field update), so
    // recover the data instead of poisoning the whole pipeline's metrics.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl MetricsRegistry {
    /// A fresh, enabled registry.
    #[must_use]
    pub fn new() -> Self {
        let registry = Self::default();
        registry.enabled.store(true, Ordering::Relaxed);
        registry
    }

    /// A fresh registry that records nothing until enabled — the no-op
    /// baseline for overhead measurements.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Turns recording on or off. Existing handles observe the switch.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the registry is recording.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The counter registered under `name`, created at zero on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let cell = Arc::clone(
            lock(&self.counters)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        );
        Counter {
            cell,
            enabled: Arc::clone(&self.enabled),
        }
    }

    /// The gauge registered under `name`, created at zero on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let cell = Arc::clone(
            lock(&self.gauges)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicI64::new(0))),
        );
        Gauge {
            cell,
            enabled: Arc::clone(&self.enabled),
        }
    }

    /// The histogram registered under `name`. Bucket bounds freeze on
    /// first registration; later calls with different bounds get the
    /// original histogram (bounds are part of the metric's identity and
    /// must not drift mid-run).
    #[must_use]
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let inner = Arc::clone(
            lock(&self.histograms)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(HistogramInner::new(bounds))),
        );
        Histogram {
            inner,
            enabled: Arc::clone(&self.enabled),
        }
    }

    /// Opens a span named `name`, nested under any span already live on
    /// this thread. While the registry is disabled this is a no-op guard
    /// that never reads the clock.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard { active: None };
        }
        let path = crate::span::push_scope(name);
        lock(&self.spans).note_start(&path);
        SpanGuard {
            active: Some((self, path, Instant::now())),
        }
    }

    pub(crate) fn record_span(&self, path: &str, elapsed_ns: u64) {
        lock(&self.spans).record(path, elapsed_ns);
    }

    /// Current value of a counter, or `None` if never registered.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        lock(&self.counters)
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
    }

    /// Current value of a gauge, or `None` if never registered.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        lock(&self.gauges)
            .get(name)
            .map(|g| g.load(Ordering::Relaxed))
    }

    /// Aggregated timing of a span path, if it ever completed.
    #[must_use]
    pub fn span_stat(&self, path: &str) -> Option<SpanStat> {
        lock(&self.spans).stats.get(path).copied()
    }

    /// Every span path seen, in first-start order.
    #[must_use]
    pub fn span_paths(&self) -> Vec<String> {
        lock(&self.spans).order.clone()
    }

    /// Zeroes every counter and histogram, clears gauges and spans.
    /// Handles already handed out stay valid (they share the cells).
    pub fn reset(&self) {
        for cell in lock(&self.counters).values() {
            cell.store(0, Ordering::Relaxed);
        }
        for cell in lock(&self.gauges).values() {
            cell.store(0, Ordering::Relaxed);
        }
        for hist in lock(&self.histograms).values() {
            for bucket in &hist.buckets {
                bucket.store(0, Ordering::Relaxed);
            }
            hist.count.store(0, Ordering::Relaxed);
            hist.sum.store(0, Ordering::Relaxed);
        }
        *lock(&self.spans) = SpanStore::default();
    }

    /// Serializes the registry to its stable JSON document. Two runs of
    /// the same deterministic pipeline differ only in duration data:
    /// fields suffixed `_ns` and the `timing/latency_ns` subtree.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.render_json(false)
    }

    /// [`MetricsRegistry::to_json`] with every duration field zeroed —
    /// two identical runs serialize byte-identically under this mode,
    /// which is what the determinism tests and the CI smoke compare.
    #[must_use]
    pub fn to_json_redacted(&self) -> String {
        self.render_json(true)
    }

    fn render_json(&self, redact: bool) -> String {
        let mut out = String::from("{\n");
        // counters
        out.push_str("  \"counters\": {");
        let counters = lock(&self.counters);
        write_entries(&mut out, counters.iter(), 4, |out, cell| {
            let _ = write!(out, "{}", cell.load(Ordering::Relaxed));
        });
        drop(counters);
        out.push_str("},\n");
        // gauges — `_ns`-suffixed names carry durations (e.g.
        // cache/pairgeo/build_ns) and are zeroed under redaction like
        // every other duration field.
        out.push_str("  \"gauges\": {");
        let gauges = lock(&self.gauges);
        write_entries(
            &mut out,
            gauges.iter().map(|(name, cell)| {
                let shown = if redact && name.ends_with("_ns") {
                    0
                } else {
                    cell.load(Ordering::Relaxed)
                };
                (name, shown)
            }),
            4,
            |out, shown| {
                let _ = write!(out, "{shown}");
            },
        );
        drop(gauges);
        out.push_str("},\n");
        // histograms
        out.push_str("  \"histograms\": {");
        let histograms = lock(&self.histograms);
        write_entries(&mut out, histograms.iter(), 4, |out, hist| {
            let counts: Vec<u64> = hist
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect();
            let (overflow, bucket_counts) = counts
                .split_last()
                .map_or((0, &counts[..]), |(o, rest)| (*o, rest));
            let _ = write!(
                out,
                "{{\"bounds\": {}, \"buckets\": {}, \"overflow\": {}, \"count\": {}, \"sum\": {}}}",
                json_u64_array(&hist.bounds),
                json_u64_array(bucket_counts),
                overflow,
                hist.count.load(Ordering::Relaxed),
                hist.sum.load(Ordering::Relaxed),
            );
        });
        drop(histograms);
        out.push_str("},\n");
        // timing (spans + latency histograms) — the duration-bearing part.
        out.push_str("  \"timing\": {\n    \"latency_bounds_ns\": ");
        out.push_str(&json_u64_array(&LATENCY_BOUNDS_NS));
        out.push_str(",\n    \"latency_ns\": {");
        let spans = lock(&self.spans);
        write_entries(&mut out, spans.latency.iter(), 6, |out, buckets| {
            let zeroed = [0u64; LATENCY_BOUNDS_NS.len() + 1];
            let shown: &[u64] = if redact { &zeroed } else { &buckets[..] };
            out.push_str(&json_u64_array(shown));
        });
        out.push_str("},\n    \"spans\": {");
        write_entries(&mut out, spans.stats.iter(), 6, |out, stat| {
            let (total, min, max) = if redact {
                (0, 0, 0)
            } else {
                (stat.total_ns, stat.min_ns, stat.max_ns)
            };
            let _ = write!(
                out,
                "{{\"calls\": {}, \"max_ns\": {max}, \"min_ns\": {min}, \"total_ns\": {total}}}",
                stat.calls,
            );
        });
        drop(spans);
        out.push_str("}\n  }\n}\n");
        out
    }

    /// Renders the span tree as human-readable text, one line per path
    /// in first-start order, indented by nesting depth — the `--trace`
    /// output.
    #[must_use]
    pub fn render_trace(&self) -> String {
        let spans = lock(&self.spans);
        if spans.order.is_empty() {
            return String::from("(no spans recorded)\n");
        }
        let mut out = String::new();
        for path in &spans.order {
            let Some(stat) = spans.stats.get(path) else {
                continue;
            };
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let _ = write!(out, "{:indent$}{name}", "", indent = depth * 2);
            let pad = 40usize.saturating_sub(depth * 2 + name.len());
            let _ = writeln!(
                out,
                "{:pad$} {:>10}  x{}",
                "",
                format_ns(stat.total_ns),
                stat.calls,
            );
        }
        out
    }
}

/// Writes `"key": <value>` entries (already-sorted iterator) with the
/// given indent, comma-separated, closing back at `indent - 2`.
fn write_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl ExactSizeIterator<Item = (&'a String, V)>,
    indent: usize,
    mut write_value: impl FnMut(&mut String, V),
) {
    let n = entries.len();
    if n == 0 {
        return;
    }
    for (i, (key, value)) in entries.enumerate() {
        let _ = write!(out, "\n{:indent$}\"{}\": ", "", escape_json(key));
        write_value(out, value);
        if i + 1 < n {
            out.push(',');
        }
    }
    let _ = write!(out, "\n{:width$}", "", width = indent - 2);
}

fn json_u64_array(values: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

/// Escapes a metric name for use as a JSON string.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats nanoseconds as a human-friendly duration.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_cells() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        b.incr();
        assert_eq!(r.counter_value("x"), Some(4));
        assert_eq!(a.value(), 4);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = MetricsRegistry::disabled();
        let c = r.counter("x");
        c.add(10);
        let g = r.gauge("y");
        g.set(5);
        {
            let _guard = r.span("stage");
        }
        assert_eq!(r.counter_value("x"), Some(0));
        assert_eq!(r.gauge_value("y"), Some(0));
        assert!(r.span_paths().is_empty());
        // Flipping it on makes the same handles live.
        r.set_enabled(true);
        c.add(10);
        assert_eq!(c.value(), 10);
    }

    #[test]
    fn nested_spans_build_slash_paths() {
        let r = MetricsRegistry::new();
        {
            let _outer = r.span("mobility");
            {
                let _inner = r.span("fit/gravity4");
            }
            {
                let _inner = r.span("evaluate");
            }
        }
        {
            let _top = r.span("load");
        }
        assert_eq!(
            r.span_paths(),
            vec![
                "mobility",
                "mobility/fit/gravity4",
                "mobility/evaluate",
                "load"
            ]
        );
        let stat = r.span_stat("mobility/fit/gravity4").unwrap();
        assert_eq!(stat.calls, 1);
        assert!(stat.max_ns >= stat.min_ns);
    }

    #[test]
    fn span_calls_aggregate() {
        let r = MetricsRegistry::new();
        for _ in 0..3 {
            let _g = r.span("fit");
        }
        let stat = r.span_stat("fit").unwrap();
        assert_eq!(stat.calls, 3);
        assert!(stat.total_ns >= stat.max_ns);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let r = MetricsRegistry::new();
        let c = r.counter("n");
        c.add(7);
        let h = r.histogram("h", &[10]);
        h.record(3);
        {
            let _g = r.span("s");
        }
        r.reset();
        assert_eq!(r.counter_value("n"), Some(0));
        assert_eq!(h.count(), 0);
        assert!(r.span_paths().is_empty());
        c.add(2);
        assert_eq!(r.counter_value("n"), Some(2));
    }

    #[test]
    fn trace_renders_indented_tree() {
        let r = MetricsRegistry::new();
        {
            let _a = r.span("load");
            let _b = r.span("read_jsonl");
        }
        let trace = r.render_trace();
        let lines: Vec<&str> = trace.lines().collect();
        assert!(lines[0].starts_with("load"));
        assert!(lines[1].starts_with("  read_jsonl"));
        assert!(MetricsRegistry::new().render_trace().contains("no spans"));
    }

    #[test]
    fn format_ns_scales_units() {
        assert_eq!(format_ns(500), "500 ns");
        assert_eq!(format_ns(1_500), "1.5 µs");
        assert_eq!(format_ns(2_000_000), "2.00 ms");
        assert_eq!(format_ns(3_000_000_000), "3.00 s");
    }

    #[test]
    fn json_escapes_hostile_names() {
        let r = MetricsRegistry::new();
        r.counter("we\"ird\\name").incr();
        let json = r.to_json();
        assert!(json.contains("we\\\"ird\\\\name"));
    }
}
