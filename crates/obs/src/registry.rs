//! The metrics registry: named counters, gauges, histograms and span
//! timings, serializable to a stable JSON document.

use crate::histogram::{Histogram, HistogramInner};
use crate::manifest::RunManifest;
use crate::span::{SpanGuard, SpanStat, SpanStore, LATENCY_BOUNDS_NS};
use crate::trace::{TraceBuffer, TraceEvent, TracePhase};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// A cloneable handle onto one registered monotonic counter.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    enabled: Arc<AtomicBool>,
}

impl Counter {
    /// Adds `n`. A no-op while the owning registry is disabled.
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A cloneable handle onto one registered gauge (a settable `i64`).
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
    enabled: Arc<AtomicBool>,
}

impl Gauge {
    /// Sets the gauge. A no-op while the owning registry is disabled.
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// The current value.
    #[must_use]
    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A registry of named metrics.
///
/// Handles ([`Counter`], [`Gauge`], [`Histogram`]) are created on first
/// use of a name and shared thereafter; recording through a handle is a
/// few relaxed atomics and never locks. Span timing locks a `Mutex` per
/// span open/close — spans mark pipeline *stages*, not inner loops.
///
/// Serialization ([`MetricsRegistry::to_json`]) is deterministic: keys
/// are `BTreeMap`-ordered and no wall-clock timestamp appears anywhere.
/// The run-to-run variation is duration data and execution shape —
/// fields suffixed `_ns`, the `timing/latency_ns` subtree, trace-event
/// timestamps and sequence numbers, allocator (`alloc/`) and worker-pool
/// (`par/`) gauges, and the manifest thread count — all of which
/// [`MetricsRegistry::to_json_redacted`] zeroes for byte-comparison.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramInner>>>,
    spans: Mutex<SpanStore>,
    trace: Mutex<TraceBuffer>,
    manifest: Mutex<Option<RunManifest>>,
    /// The instant of the first recorded trace event; every event's
    /// `t_ns` is an offset from it, so no wall-clock value is stored.
    epoch: OnceLock<Instant>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic while holding one of these locks cannot leave the maps in a
    // torn state (every mutation is a single insert or field update), so
    // recover the data instead of poisoning the whole pipeline's metrics.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl MetricsRegistry {
    /// A fresh, enabled registry.
    #[must_use]
    pub fn new() -> Self {
        let registry = Self::default();
        registry.enabled.store(true, Ordering::Relaxed);
        registry
    }

    /// A fresh registry that records nothing until enabled — the no-op
    /// baseline for overhead measurements.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Turns recording on or off. Existing handles observe the switch.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the registry is recording.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The counter registered under `name`, created at zero on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let cell = Arc::clone(
            lock(&self.counters)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        );
        Counter {
            cell,
            enabled: Arc::clone(&self.enabled),
        }
    }

    /// The gauge registered under `name`, created at zero on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let cell = Arc::clone(
            lock(&self.gauges)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicI64::new(0))),
        );
        Gauge {
            cell,
            enabled: Arc::clone(&self.enabled),
        }
    }

    /// The histogram registered under `name`. Bucket bounds freeze on
    /// first registration; later calls with different bounds get the
    /// original histogram (bounds are part of the metric's identity and
    /// must not drift mid-run).
    #[must_use]
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let inner = Arc::clone(
            lock(&self.histograms)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(HistogramInner::new(bounds))),
        );
        Histogram {
            inner,
            enabled: Arc::clone(&self.enabled),
        }
    }

    /// Opens a span named `name`, nested under any span already live on
    /// this thread. While the registry is disabled this is a no-op guard
    /// that never reads the clock.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard {
                active: None,
                #[cfg(feature = "alloc")]
                alloc_at_open: None,
            };
        }
        let path = crate::span::push_scope(name);
        let t_ns = self.epoch_ns();
        {
            let mut spans = lock(&self.spans);
            spans.note_start(&path);
        }
        lock(&self.trace).record(TracePhase::Begin, &path, t_ns, 0);
        SpanGuard {
            active: Some((self, path, Instant::now())),
            #[cfg(feature = "alloc")]
            alloc_at_open: tweetmob_alloc::is_counting().then(tweetmob_alloc::snapshot),
        }
    }

    pub(crate) fn record_span(&self, path: &str, elapsed_ns: u64, child_ns: u64) {
        let t_ns = self.epoch_ns();
        lock(&self.spans).record(path, elapsed_ns, child_ns);
        lock(&self.trace)
            .record(TracePhase::End, path, t_ns, elapsed_ns);
    }

    /// Nanoseconds since the registry's first trace event (the epoch is
    /// initialized on first call, so the first event reads ~0).
    fn epoch_ns(&self) -> u64 {
        let elapsed = self.epoch.get_or_init(Instant::now).elapsed().as_nanos();
        u64::try_from(elapsed).unwrap_or(u64::MAX)
    }

    /// Current value of a counter, or `None` if never registered.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        lock(&self.counters)
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
    }

    /// Current value of a gauge, or `None` if never registered.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        lock(&self.gauges)
            .get(name)
            .map(|g| g.load(Ordering::Relaxed))
    }

    /// Aggregated timing of a span path, if it ever completed.
    #[must_use]
    pub fn span_stat(&self, path: &str) -> Option<SpanStat> {
        lock(&self.spans).stats.get(path).copied()
    }

    /// Every span path seen, in first-start order.
    #[must_use]
    pub fn span_paths(&self) -> Vec<String> {
        lock(&self.spans).order.clone()
    }

    /// A snapshot of the trace ring buffer, oldest event first.
    #[must_use]
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        lock(&self.trace).events()
    }

    /// How many trace events have been dropped by the bounded buffer.
    #[must_use]
    pub fn trace_dropped(&self) -> u64 {
        lock(&self.trace).dropped()
    }

    /// Resizes the trace ring buffer (default
    /// [`crate::trace::DEFAULT_TRACE_CAPACITY`] events); shrinking drops
    /// the oldest events. Capacity 0 disables event recording entirely.
    pub fn set_trace_capacity(&self, capacity: usize) {
        lock(&self.trace).set_capacity(capacity);
    }

    /// Attaches the run's provenance manifest; it serializes as the
    /// document's `manifest` section (rendered as `null` until set).
    pub fn set_manifest(&self, manifest: RunManifest) {
        *lock(&self.manifest) = Some(manifest);
    }

    /// The attached provenance manifest, if any.
    #[must_use]
    pub fn manifest(&self) -> Option<RunManifest> {
        lock(&self.manifest).clone()
    }

    /// Zeroes every counter and histogram, clears gauges, spans, trace
    /// events and the manifest. Handles already handed out stay valid
    /// (they share the cells).
    pub fn reset(&self) {
        for cell in lock(&self.counters).values() {
            cell.store(0, Ordering::Relaxed);
        }
        for cell in lock(&self.gauges).values() {
            cell.store(0, Ordering::Relaxed);
        }
        for hist in lock(&self.histograms).values() {
            for bucket in &hist.buckets {
                bucket.store(0, Ordering::Relaxed);
            }
            hist.count.store(0, Ordering::Relaxed);
            hist.sum.store(0, Ordering::Relaxed);
        }
        *lock(&self.spans) = SpanStore::default();
        *lock(&self.trace) = TraceBuffer::default();
        *lock(&self.manifest) = None;
    }

    /// Serializes the registry to its stable JSON document. Two runs of
    /// the same deterministic pipeline differ only in duration data:
    /// fields suffixed `_ns` and the `timing/latency_ns` subtree.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.render_json(false)
    }

    /// [`MetricsRegistry::to_json`] with every duration field zeroed —
    /// two identical runs serialize byte-identically under this mode,
    /// which is what the determinism tests and the CI smoke compare.
    #[must_use]
    pub fn to_json_redacted(&self) -> String {
        self.render_json(true)
    }

    fn render_json(&self, redact: bool) -> String {
        let mut out = String::from("{\n");
        // counters
        out.push_str("  \"counters\": {");
        let counters = lock(&self.counters);
        write_entries(&mut out, counters.iter(), 4, |out, cell| {
            let _ = write!(out, "{}", cell.load(Ordering::Relaxed));
        });
        drop(counters);
        out.push_str("},\n");
        // gauges — redaction zeroes everything that varies run to run or
        // with execution shape: `_ns`-suffixed durations (e.g.
        // cache/pairgeo/build_ns), allocator accounting (`alloc/`), and
        // worker-pool shape (`par/`, the documented thread-variant
        // exception of DESIGN.md §10).
        out.push_str("  \"gauges\": {");
        let gauges = lock(&self.gauges);
        write_entries(
            &mut out,
            gauges.iter().map(|(name, cell)| {
                let shape = name.ends_with("_ns")
                    || name.starts_with("alloc/")
                    || name.starts_with("par/");
                let shown = if redact && shape {
                    0
                } else {
                    cell.load(Ordering::Relaxed)
                };
                (name, shown)
            }),
            4,
            |out, shown| {
                let _ = write!(out, "{shown}");
            },
        );
        drop(gauges);
        out.push_str("},\n");
        // histograms — values of `_ns`-named histograms are duration
        // samples, so their value-derived fields redact; counts stay.
        out.push_str("  \"histograms\": {");
        let histograms = lock(&self.histograms);
        write_entries(
            &mut out,
            histograms.iter().map(|(name, hist)| (name, (name, hist))),
            4,
            |out, (name, hist)| {
            let duration_valued = redact && name.ends_with("_ns");
            let counts: Vec<u64> = hist
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect();
            let (overflow, bucket_counts) = counts
                .split_last()
                .map_or((0, &counts[..]), |(o, rest)| (*o, rest));
            let zeroed = vec![0u64; bucket_counts.len()];
            let (shown_buckets, overflow, sum, p50, p90, p99) = if duration_valued {
                (&zeroed[..], 0, 0, 0, 0, 0)
            } else {
                (
                    bucket_counts,
                    overflow,
                    hist.sum.load(Ordering::Relaxed),
                    hist.quantile(0.50),
                    hist.quantile(0.90),
                    hist.quantile(0.99),
                )
            };
                let _ = write!(
                    out,
                    "{{\"bounds\": {}, \"buckets\": {}, \"overflow\": {overflow}, \
                     \"count\": {}, \"sum\": {sum}, \"p50\": {p50}, \"p90\": {p90}, \"p99\": {p99}}}",
                    json_u64_array(&hist.bounds),
                    json_u64_array(shown_buckets),
                    hist.count.load(Ordering::Relaxed),
                );
            },
        );
        drop(histograms);
        out.push_str("},\n");
        // manifest — run provenance, when the host attached one.
        out.push_str("  \"manifest\": ");
        match lock(&self.manifest).as_ref() {
            Some(manifest) => out.push_str(&manifest.render(redact, false, 2)),
            None => out.push_str("null"),
        }
        out.push_str(",\n");
        // timing (spans + latency histograms) — the duration-bearing part.
        out.push_str("  \"timing\": {\n    \"latency_bounds_ns\": ");
        out.push_str(&json_u64_array(&LATENCY_BOUNDS_NS));
        out.push_str(",\n    \"latency_ns\": {");
        let spans = lock(&self.spans);
        write_entries(&mut out, spans.latency.iter(), 6, |out, buckets| {
            let zeroed = [0u64; LATENCY_BOUNDS_NS.len() + 1];
            let shown: &[u64] = if redact { &zeroed } else { &buckets[..] };
            out.push_str(&json_u64_array(shown));
        });
        out.push_str("},\n    \"spans\": {");
        write_entries(&mut out, spans.stats.iter(), 6, |out, stat| {
            let (total, min, max, child, own) = if redact {
                (0, 0, 0, 0, 0)
            } else {
                (
                    stat.total_ns,
                    stat.min_ns,
                    stat.max_ns,
                    stat.child_ns,
                    stat.self_ns(),
                )
            };
            let _ = write!(
                out,
                "{{\"calls\": {}, \"child_ns\": {child}, \"max_ns\": {max}, \
                 \"min_ns\": {min}, \"self_ns\": {own}, \"total_ns\": {total}}}",
                stat.calls,
            );
        });
        drop(spans);
        out.push_str("}\n  },\n");
        // trace — the bounded deterministic event log.
        let trace = lock(&self.trace);
        let _ = write!(
            out,
            "  \"trace\": {{\n    \"capacity\": {},\n    \"dropped\": {},\n    \"events\": [",
            trace.capacity(),
            trace.dropped(),
        );
        let events = trace.events();
        drop(trace);
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (seq, t_ns, dur_ns) = if redact { (0, 0, 0) } else { (e.seq, e.t_ns, e.dur_ns) };
            let _ = write!(
                out,
                "\n      {{\"dur_ns\": {dur_ns}, \"path\": \"{}\", \"phase\": \"{}\", \
                 \"seq\": {seq}, \"t_ns\": {t_ns}}}",
                escape_json(&e.path),
                e.phase.code(),
            );
        }
        if events.is_empty() {
            out.push_str("]\n  }\n}\n");
        } else {
            out.push_str("\n    ]\n  }\n}\n");
        }
        out
    }

    /// Exports the trace ring buffer as a Chrome `trace_event` JSON
    /// document (see [`crate::trace::render_chrome_trace`]).
    #[must_use]
    pub fn to_chrome_trace(&self, redact: bool) -> String {
        crate::trace::render_chrome_trace(&self.trace_events(), redact)
    }

    /// Exports span aggregates as collapsed stacks for flamegraph
    /// tooling (see [`crate::trace::render_collapsed`]).
    #[must_use]
    pub fn to_collapsed_stacks(&self, redact: bool) -> String {
        let spans = lock(&self.spans);
        let order = spans.order.clone();
        let stats: Vec<(String, SpanStat)> = spans
            .stats
            .iter()
            .map(|(path, stat)| (path.clone(), *stat))
            .collect();
        drop(spans);
        crate::trace::render_collapsed(&order, &stats, redact)
    }

    /// Renders the span tree as human-readable text, one line per path
    /// in first-start order, indented by nesting depth — the `--trace`
    /// output.
    #[must_use]
    pub fn render_trace(&self) -> String {
        let spans = lock(&self.spans);
        if spans.order.is_empty() {
            return String::from("(no spans recorded)\n");
        }
        let mut out = String::new();
        for path in &spans.order {
            let Some(stat) = spans.stats.get(path) else {
                continue;
            };
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let _ = write!(out, "{:indent$}{name}", "", indent = depth * 2);
            let pad = 40usize.saturating_sub(depth * 2 + name.len());
            let _ = writeln!(
                out,
                "{:pad$} {:>10}  x{}",
                "",
                format_ns(stat.total_ns),
                stat.calls,
            );
        }
        out
    }
}

/// Writes `"key": <value>` entries (already-sorted iterator) with the
/// given indent, comma-separated, closing back at `indent - 2`.
fn write_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl ExactSizeIterator<Item = (&'a String, V)>,
    indent: usize,
    mut write_value: impl FnMut(&mut String, V),
) {
    let n = entries.len();
    if n == 0 {
        return;
    }
    for (i, (key, value)) in entries.enumerate() {
        let _ = write!(out, "\n{:indent$}\"{}\": ", "", escape_json(key));
        write_value(out, value);
        if i + 1 < n {
            out.push(',');
        }
    }
    let _ = write!(out, "\n{:width$}", "", width = indent - 2);
}

fn json_u64_array(values: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

/// Escapes a metric name for use as a JSON string.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats nanoseconds as a human-friendly duration.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_cells() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        b.incr();
        assert_eq!(r.counter_value("x"), Some(4));
        assert_eq!(a.value(), 4);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = MetricsRegistry::disabled();
        let c = r.counter("x");
        c.add(10);
        let g = r.gauge("y");
        g.set(5);
        {
            let _guard = r.span("stage");
        }
        assert_eq!(r.counter_value("x"), Some(0));
        assert_eq!(r.gauge_value("y"), Some(0));
        assert!(r.span_paths().is_empty());
        // Flipping it on makes the same handles live.
        r.set_enabled(true);
        c.add(10);
        assert_eq!(c.value(), 10);
    }

    #[test]
    fn nested_spans_build_slash_paths() {
        let r = MetricsRegistry::new();
        {
            let _outer = r.span("mobility");
            {
                let _inner = r.span("fit/gravity4");
            }
            {
                let _inner = r.span("evaluate");
            }
        }
        {
            let _top = r.span("load");
        }
        assert_eq!(
            r.span_paths(),
            vec![
                "mobility",
                "mobility/fit/gravity4",
                "mobility/evaluate",
                "load"
            ]
        );
        let stat = r.span_stat("mobility/fit/gravity4").unwrap();
        assert_eq!(stat.calls, 1);
        assert!(stat.max_ns >= stat.min_ns);
    }

    #[test]
    fn span_calls_aggregate() {
        let r = MetricsRegistry::new();
        for _ in 0..3 {
            let _g = r.span("fit");
        }
        let stat = r.span_stat("fit").unwrap();
        assert_eq!(stat.calls, 3);
        assert!(stat.total_ns >= stat.max_ns);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let r = MetricsRegistry::new();
        let c = r.counter("n");
        c.add(7);
        let h = r.histogram("h", &[10]);
        h.record(3);
        {
            let _g = r.span("s");
        }
        r.reset();
        assert_eq!(r.counter_value("n"), Some(0));
        assert_eq!(h.count(), 0);
        assert!(r.span_paths().is_empty());
        c.add(2);
        assert_eq!(r.counter_value("n"), Some(2));
    }

    #[test]
    fn trace_renders_indented_tree() {
        let r = MetricsRegistry::new();
        {
            let _a = r.span("load");
            let _b = r.span("read_jsonl");
        }
        let trace = r.render_trace();
        let lines: Vec<&str> = trace.lines().collect();
        assert!(lines[0].starts_with("load"));
        assert!(lines[1].starts_with("  read_jsonl"));
        assert!(MetricsRegistry::new().render_trace().contains("no spans"));
    }

    #[test]
    fn format_ns_scales_units() {
        assert_eq!(format_ns(500), "500 ns");
        assert_eq!(format_ns(1_500), "1.5 µs");
        assert_eq!(format_ns(2_000_000), "2.00 ms");
        assert_eq!(format_ns(3_000_000_000), "3.00 s");
    }

    #[test]
    fn json_escapes_hostile_names() {
        let r = MetricsRegistry::new();
        r.counter("we\"ird\\name").incr();
        let json = r.to_json();
        assert!(json.contains("we\\\"ird\\\\name"));
    }

    #[test]
    fn child_time_accrues_to_the_parent_span() {
        let r = MetricsRegistry::new();
        {
            let _outer = r.span("outer");
            {
                let _inner = r.span("inner");
            }
            {
                let _inner = r.span("inner");
            }
        }
        let outer = r.span_stat("outer").unwrap();
        let inner = r.span_stat("outer/inner").unwrap();
        // The parent's child time is exactly the children's total time.
        assert_eq!(outer.child_ns, inner.total_ns);
        assert_eq!(outer.self_ns(), outer.total_ns - outer.child_ns);
        assert_eq!(inner.child_ns, 0, "leaf spans have no child time");
        assert_eq!(inner.self_ns(), inner.total_ns);
    }

    #[test]
    fn trace_events_pair_begin_and_end_in_sequence_order() {
        let r = MetricsRegistry::new();
        {
            let _a = r.span("load");
            let _b = r.span("parse");
        }
        let events = r.trace_events();
        let shape: Vec<(u64, &str, String)> = events
            .iter()
            .map(|e| (e.seq, e.phase.code(), e.path.clone()))
            .collect();
        assert_eq!(
            shape,
            vec![
                (1, "B", "load".to_string()),
                (2, "B", "load/parse".to_string()),
                (3, "E", "load/parse".to_string()),
                (4, "E", "load".to_string()),
            ]
        );
        assert_eq!(r.trace_dropped(), 0);
        // End events carry the span duration; begins do not.
        assert_eq!(events[0].dur_ns, 0);
        assert!(events[3].t_ns >= events[0].t_ns);
    }

    #[test]
    fn document_carries_trace_and_manifest_sections() {
        let r = MetricsRegistry::new();
        {
            let _s = r.span("stage");
        }
        let json = r.to_json();
        assert!(json.contains("\"trace\": {"));
        assert!(json.contains("\"phase\": \"B\""));
        assert!(json.contains("\"manifest\": null"));
        r.set_manifest(RunManifest {
            subcommand: "fit".into(),
            outcome: "ok".into(),
            ..RunManifest::default()
        });
        let json = r.to_json();
        assert!(json.contains("\"subcommand\": \"fit\""));
        assert_eq!(r.manifest().unwrap().subcommand, "fit");
    }

    #[test]
    fn redacted_document_is_identical_across_runs_with_trace() {
        let run = || {
            let r = MetricsRegistry::new();
            {
                let _a = r.span("load");
                let _b = r.span("parse");
            }
            r.set_manifest(RunManifest {
                subcommand: "summary".into(),
                threads: 3,
                outcome: "ok".into(),
                ..RunManifest::default()
            });
            r
        };
        let a = run();
        let b = run();
        assert_eq!(a.to_json_redacted(), b.to_json_redacted());
        let redacted = a.to_json_redacted();
        assert!(redacted.contains("\"seq\": 0"));
        assert!(redacted.contains("\"t_ns\": 0"));
        assert!(redacted.contains("\"threads\": 0"));
        assert!(redacted.contains("\"child_ns\": 0"));
        assert!(redacted.contains("\"self_ns\": 0"));
    }

    #[test]
    fn redaction_zeroes_alloc_and_par_gauges() {
        let r = MetricsRegistry::new();
        r.gauge("alloc/load/peak_bytes").set(4096);
        r.gauge("par/trips/threads").set(8);
        r.gauge("odmatrix/cells").set(400);
        let redacted = r.to_json_redacted();
        assert!(redacted.contains("\"alloc/load/peak_bytes\": 0"));
        assert!(redacted.contains("\"par/trips/threads\": 0"));
        assert!(redacted.contains("\"odmatrix/cells\": 400"));
    }

    #[test]
    fn duration_valued_histograms_redact_values_keep_counts() {
        let r = MetricsRegistry::new();
        let h = r.histogram("io/write_ns", &[1_000, 1_000_000]);
        h.record(500);
        h.record(2_000_000);
        let full = r.to_json();
        assert!(full.contains("\"sum\": 2000500"));
        let redacted = r.to_json_redacted();
        assert!(redacted.contains("\"count\": 2"), "counts are deterministic");
        assert!(redacted.contains("\"sum\": 0"));
        assert!(redacted.contains("\"p99\": 0"));
    }

    #[test]
    fn histogram_json_carries_interpolated_quantiles() {
        let r = MetricsRegistry::new();
        let h = r.histogram("tweets_per_user", &[10, 20]);
        for v in [2, 4, 6, 8, 12, 14, 16, 18] {
            h.record(v);
        }
        let json = r.to_json();
        assert!(json.contains("\"p50\": 10"), "boundary-pinned p50: {json}");
        assert!(json.contains("\"p90\": 18"));
        assert!(json.contains("\"p99\": 20"));
    }

    #[test]
    fn saturated_quantiles_render_with_a_visible_overflow_count() {
        let r = MetricsRegistry::new();
        // Bounds far too narrow for the tail: every quantile rank that
        // lands in the overflow bucket saturates at the last finite
        // bound, so the rendered document must carry the overflow count
        // right next to the quantiles as the under-reporting signal.
        let h = r.histogram("serve_latency_demo", &[10, 100]);
        h.record(5);
        for _ in 0..9 {
            h.record(50_000); // far beyond the last bound
        }
        assert_eq!(h.overflow(), 9);
        assert_eq!(h.quantile(0.99), 100, "p99 saturates at the last bound");
        let json = r.to_json();
        assert!(json.contains("\"overflow\": 9"), "overflow visible: {json}");
        assert!(json.contains("\"p99\": 100"), "saturated p99 rendered: {json}");
    }

    #[test]
    fn serve_latency_bounds_keep_cold_start_requests_finite() {
        let r = MetricsRegistry::new();
        let h = r.histogram("serve_cold_start", &crate::SERVE_LATENCY_BOUNDS_NS);
        // A multi-second first request against a cold artifact must land
        // in a finite bucket, not the overflow cell — otherwise serve
        // p99 silently saturates (the failure mode pinned above).
        h.record(4_000_000_000);
        assert_eq!(h.overflow(), 0);
        let p99 = h.quantile(0.99);
        assert!(
            p99 > 2_000_000_000 && p99 <= 30_000_000_000,
            "cold start interpolates inside the finite buckets, got {p99}"
        );
    }

    #[test]
    fn timer_yields_monotonic_nanosecond_samples() {
        let t = crate::Timer::start();
        let first = t.elapsed_ns();
        std::hint::black_box((0..10_000u64).sum::<u64>());
        let second = t.elapsed_ns();
        assert!(second >= first, "{second} >= {first}");
    }

    #[test]
    fn chrome_trace_and_collapsed_exports_come_from_the_registry() {
        let r = MetricsRegistry::new();
        {
            let _a = r.span("fit");
            let _b = r.span("gravity4");
        }
        let chrome = r.to_chrome_trace(false);
        assert!(chrome.contains("\"name\": \"fit/gravity4\""));
        let folded = r.to_collapsed_stacks(false);
        assert!(folded.contains("fit;gravity4 "));
        // Redacted exports are stable across identical runs.
        let again = MetricsRegistry::new();
        {
            let _a = again.span("fit");
            let _b = again.span("gravity4");
        }
        assert_eq!(r.to_chrome_trace(true), again.to_chrome_trace(true));
        assert_eq!(r.to_collapsed_stacks(true), again.to_collapsed_stacks(true));
    }

    #[test]
    fn trace_capacity_bounds_the_registry_buffer() {
        let r = MetricsRegistry::new();
        r.set_trace_capacity(2);
        for _ in 0..3 {
            let _s = r.span("s");
        }
        assert_eq!(r.trace_events().len(), 2);
        assert_eq!(r.trace_dropped(), 4, "3 begins + 3 ends, 2 kept");
    }
}
