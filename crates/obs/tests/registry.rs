//! Integration tests of the registry's serialization contract: the JSON
//! document is valid, deterministic (`BTreeMap`-ordered, no wall-clock
//! fields), and histogram/span edge cases serialize sanely.

use tweetmob_obs::{MetricsRegistry, LATENCY_BOUNDS_NS};

#[test]
fn empty_registry_serializes_to_a_valid_document() {
    let registry = MetricsRegistry::new();
    let json = registry.to_json();
    let doc: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    for section in ["counters", "gauges", "histograms", "manifest", "timing", "trace"] {
        assert!(doc.get(section).is_some(), "missing section {section}");
    }
    assert_eq!(doc["counters"], serde_json::json!({}));
    assert_eq!(doc["timing"]["spans"], serde_json::json!({}));
    assert_eq!(doc["manifest"], serde_json::json!(null));
    assert_eq!(doc["trace"]["events"], serde_json::json!([]));
    // An empty registry is trivially run-stable.
    assert_eq!(json, MetricsRegistry::new().to_json());
}

#[test]
fn full_document_parses_with_all_metric_kinds() {
    let registry = MetricsRegistry::new();
    registry.counter("tweets_read").add(120);
    registry.gauge("od_cells").set(400);
    let h = registry.histogram("tweets_per_user", &[1, 5, 10]);
    h.record(3);
    h.record(100);
    {
        let _outer = registry.span("load");
        let _inner = registry.span("parse");
    }
    let doc: serde_json::Value = serde_json::from_str(&registry.to_json()).expect("valid JSON");
    assert_eq!(doc["counters"]["tweets_read"], 120);
    assert_eq!(doc["gauges"]["od_cells"], 400);
    assert_eq!(doc["histograms"]["tweets_per_user"]["count"], 2);
    assert_eq!(doc["histograms"]["tweets_per_user"]["overflow"], 1);
    assert_eq!(doc["timing"]["spans"]["load"]["calls"], 1);
    assert_eq!(doc["timing"]["spans"]["load/parse"]["calls"], 1);
    assert!(doc["timing"]["spans"]["load"]["total_ns"]
        .as_u64()
        .is_some());
}

#[test]
fn histogram_zero_samples() {
    let registry = MetricsRegistry::new();
    let h = registry.histogram("empty", &[1, 2, 3]);
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);
    assert_eq!(h.bucket_counts(), vec![0, 0, 0, 0]);
    let doc: serde_json::Value = serde_json::from_str(&registry.to_json()).expect("valid JSON");
    assert_eq!(doc["histograms"]["empty"]["count"], 0);
    assert_eq!(
        doc["histograms"]["empty"]["buckets"],
        serde_json::json!([0, 0, 0])
    );
}

#[test]
fn histogram_single_sample_lands_once() {
    let registry = MetricsRegistry::new();
    let h = registry.histogram("one", &[10, 20]);
    h.record(15);
    assert_eq!(h.count(), 1);
    assert_eq!(h.sum(), 15);
    assert_eq!(h.bucket_counts(), vec![0, 1, 0]);
    assert_eq!(h.overflow(), 0);
}

#[test]
fn histogram_overflow_bucket_catches_the_tail() {
    let registry = MetricsRegistry::new();
    let h = registry.histogram("tail", &[1, 2]);
    h.record(2); // boundary: lands in the `<= 2` bucket, not overflow
    h.record(3);
    h.record(u64::MAX);
    assert_eq!(h.bucket_counts(), vec![0, 1, 2]);
    assert_eq!(h.overflow(), 2);
    assert_eq!(h.count(), 3);
}

/// Drives one registry through an identical instrumented "pipeline".
fn identical_run() -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    registry.counter("tweets_read").add(1000);
    registry.counter("trips/extracted").add(77);
    registry.gauge("odmatrix/nonzero_pairs").set(42);
    let h = registry.histogram("tweets_per_user", &[1, 10, 100]);
    for v in [1, 4, 9, 50, 200] {
        h.record(v);
    }
    {
        let _load = registry.span("load");
        let _read = registry.span("read_jsonl");
    }
    {
        let _mob = registry.span("mobility");
        for model in ["gravity4", "gravity2", "radiation"] {
            let _fit = registry.span(model);
        }
        let _eval = registry.span("evaluate");
    }
    registry
}

#[test]
fn nested_span_ordering_is_deterministic_across_two_runs() {
    let a = identical_run();
    let b = identical_run();
    // First-start order (the trace tree) is identical...
    assert_eq!(a.span_paths(), b.span_paths());
    assert_eq!(
        a.span_paths(),
        vec![
            "load",
            "load/read_jsonl",
            "mobility",
            "mobility/gravity4",
            "mobility/gravity2",
            "mobility/radiation",
            "mobility/evaluate",
        ]
    );
    // ...and the redacted documents are byte-identical: durations are the
    // only run-to-run variation in the full document.
    assert_eq!(a.to_json_redacted(), b.to_json_redacted());
    assert_ne!(a.to_json_redacted(), ""); // non-trivial document
    let full: serde_json::Value = serde_json::from_str(&a.to_json()).expect("valid");
    let redacted: serde_json::Value = serde_json::from_str(&a.to_json_redacted()).expect("valid");
    assert_eq!(full["counters"], redacted["counters"]);
    assert_eq!(full["histograms"], redacted["histograms"]);
    assert_eq!(
        redacted["timing"]["spans"]["load"]["total_ns"], 0,
        "redaction zeroes durations"
    );
    assert_eq!(
        full["timing"]["spans"]["load"]["calls"],
        redacted["timing"]["spans"]["load"]["calls"]
    );
}

#[test]
fn redaction_zeroes_duration_gauges_but_keeps_the_rest() {
    let registry = MetricsRegistry::new();
    registry.gauge("cache/pairgeo/build_ns").set(123_456);
    registry.gauge("odmatrix/cells").set(400);
    let full: serde_json::Value = serde_json::from_str(&registry.to_json()).expect("valid");
    let redacted: serde_json::Value =
        serde_json::from_str(&registry.to_json_redacted()).expect("valid");
    assert_eq!(full["gauges"]["cache/pairgeo/build_ns"], 123_456);
    assert_eq!(
        redacted["gauges"]["cache/pairgeo/build_ns"], 0,
        "`_ns` gauges are duration data and must redact"
    );
    assert_eq!(redacted["gauges"]["odmatrix/cells"], 400);
}

#[test]
fn latency_histogram_buckets_cover_every_span_call() {
    let registry = identical_run();
    let doc: serde_json::Value = serde_json::from_str(&registry.to_json()).expect("valid");
    let lat = doc["timing"]["latency_ns"]["load"]
        .as_array()
        .expect("array");
    assert_eq!(lat.len(), LATENCY_BOUNDS_NS.len() + 1);
    let total: u64 = lat.iter().map(|v| v.as_u64().unwrap_or(0)).sum();
    assert_eq!(total, 1, "one `load` call, one latency sample");
}

#[test]
fn trace_is_stable_modulo_durations() {
    let a = identical_run().render_trace();
    let lines: Vec<String> = a
        .lines()
        .map(|l| l.split_whitespace().next().unwrap_or("").to_string())
        .collect();
    let b = identical_run().render_trace();
    let lines_b: Vec<String> = b
        .lines()
        .map(|l| l.split_whitespace().next().unwrap_or("").to_string())
        .collect();
    assert_eq!(lines, lines_b);
    assert_eq!(lines[0], "load");
}
