//! Unit-of-measure checking for the geographic crates.
//!
//! Degrees, radians and kilometres all travel as bare `f64` in this
//! workspace; the compiler cannot tell them apart, and a mixed-unit
//! expression (the classic degrees-into-`sin` bug) silently corrupts
//! every downstream OD matrix. This pass tracks units through the naming
//! convention the workspace already uses — `_deg`/`_degrees`,
//! `_rad`/`_radians`, `_km` suffixes on parameters and bindings — plus
//! known conversion sinks (`to_radians`, `to_degrees`, `lat_rad`,
//! `lon_rad`, `haversine_km`, …), and reports:
//!
//! * **mixed-unit arithmetic** — `+`, `-` or an ordering comparison
//!   between values of different inferred units;
//! * **double conversions** — `.to_radians()` on a radians value or
//!   `.to_degrees()` on a degrees value;
//! * **trig on degrees** — `.sin()`/`.cos()`/`.tan()` directly on a
//!   degrees value (the sink expects radians);
//! * **suffix contradictions** — `let x_deg = y.to_radians();` and
//!   friends, where a binding's declared unit disagrees with its
//!   initialiser's inferred unit.
//!
//! Inference is intraprocedural and conservative: a value with no suffix
//! and no recognised producer has no unit and is never reported. The rule
//! runs only in the crates where the conventions hold (`geo`, `models`,
//! `epidemic`).

use crate::model::{Model, ParsedFile, Tok, TokKind};
use crate::{Diagnostic, Rule};
use std::collections::BTreeMap;

/// Crates whose code follows the suffix conventions this pass enforces.
pub(crate) const UNIT_CRATES: &[&str] = &["tweetmob-geo", "tweetmob-models", "tweetmob-epidemic"];

/// The units the naming convention distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Unit {
    Deg,
    Rad,
    Km,
}

impl Unit {
    fn name(self) -> &'static str {
        match self {
            Unit::Deg => "degrees",
            Unit::Rad => "radians",
            Unit::Km => "km",
        }
    }
}

/// Unit implied by an identifier's suffix, if any.
fn suffix_unit(name: &str) -> Option<Unit> {
    if name.ends_with("_deg") || name.ends_with("_degrees") {
        Some(Unit::Deg)
    } else if name.ends_with("_rad") || name.ends_with("_radians") {
        Some(Unit::Rad)
    } else if name.ends_with("_km") {
        Some(Unit::Km)
    } else {
        None
    }
}

/// Unit produced by calling a function/method of this name.
fn producer_unit(name: &str) -> Option<Unit> {
    match name {
        "to_radians" => Some(Unit::Rad),
        "to_degrees" => Some(Unit::Deg),
        _ => suffix_unit(name),
    }
}

/// Runs the unit pass over every non-test library function of the unit
/// crates.
pub(crate) fn check_units(pfs: &[ParsedFile], model: &Model, out: &mut Vec<Diagnostic>) {
    for f in &model.fns {
        if f.in_test || !f.kind.is_library() || !UNIT_CRATES.contains(&f.crate_name.as_str()) {
            continue;
        }
        let Some(body) = f.body else { continue };
        let pf = &pfs[f.file];
        let mut env: BTreeMap<String, Unit> = BTreeMap::new();
        for p in &f.params {
            if let Some(u) = suffix_unit(&p.name) {
                env.insert(p.name.clone(), u);
            }
        }
        check_body(pf, body, &mut env, out);
    }
}

fn body_toks(pf: &ParsedFile, body: (usize, usize)) -> (usize, usize) {
    let lo = pf.toks.partition_point(|t| t.start < body.0);
    let hi = pf.toks.partition_point(|t| t.start < body.1);
    (lo, hi.max(lo))
}

fn ident<'a>(pf: &'a ParsedFile, t: &Tok) -> Option<&'a str> {
    if t.kind == TokKind::Ident {
        Some(&pf.code[t.start..t.end])
    } else {
        None
    }
}

/// Unit of a single identifier under the current environment.
fn ident_unit(env: &BTreeMap<String, Unit>, name: &str) -> Option<Unit> {
    env.get(name).copied().or_else(|| suffix_unit(name))
}

#[allow(clippy::too_many_lines)]
fn check_body(
    pf: &ParsedFile,
    body: (usize, usize),
    env: &mut BTreeMap<String, Unit>,
    out: &mut Vec<Diagnostic>,
) {
    let (lo, hi) = body_toks(pf, body);
    let toks = &pf.toks[lo..hi];
    let mut k = 0;
    while k < toks.len() {
        let t = &toks[k];
        if pf.in_test(t.start) {
            k += 1;
            continue;
        }
        // `let [mut] name [: ty] = expr ;` — infer the binding's unit and
        // flag suffix contradictions.
        if ident(pf, t) == Some("let") {
            let mut n = k + 1;
            if n < toks.len() && ident(pf, &toks[n]) == Some("mut") {
                n += 1;
            }
            // An uppercase "name" is a pattern constructor (`let Some(x)`,
            // `let Ok(v)`), not a binding — skip those.
            if let Some(name) = toks
                .get(n)
                .and_then(|t| ident(pf, t))
                .filter(|n| n.starts_with(|c: char| c.is_lowercase() || c == '_'))
            {
                let name = name.to_string();
                // Find `=` at depth 0 before `;`.
                let mut e = n + 1;
                let (mut par, mut ang) = (0i64, 0i64);
                let mut eq_at = None;
                while e < toks.len() {
                    match toks[e].kind {
                        TokKind::Punct(b'(') => par += 1,
                        TokKind::Punct(b')') => par -= 1,
                        TokKind::Punct(b'<') => ang += 1,
                        TokKind::Punct(b'>') => ang -= 1,
                        TokKind::Punct(b'=') if par == 0 => {
                            // `==`, `>=`, `<=`, `!=`, `=>` are not assignment.
                            let pn = toks.get(e + 1).map(|t| t.kind);
                            let pp = if e > 0 { Some(toks[e - 1].kind) } else { None };
                            let part_of_cmp = matches!(pn, Some(TokKind::Punct(b'=')))
                                || matches!(
                                    pp,
                                    Some(TokKind::Punct(b'='))
                                        | Some(TokKind::Punct(b'<'))
                                        | Some(TokKind::Punct(b'>'))
                                        | Some(TokKind::Punct(b'!'))
                                );
                            if !part_of_cmp {
                                eq_at = Some(e);
                                break;
                            }
                        }
                        TokKind::Punct(b';') if par == 0 => break,
                        _ => {}
                    }
                    e += 1;
                }
                let _ = ang;
                if let Some(eq) = eq_at {
                    // Expression: tokens until `;` at depth 0.
                    let mut s = eq + 1;
                    let (mut par2, mut brc2, mut brk2) = (0i64, 0i64, 0i64);
                    let expr_start = s;
                    while s < toks.len() {
                        match toks[s].kind {
                            TokKind::Punct(b'(') => par2 += 1,
                            TokKind::Punct(b')') => par2 -= 1,
                            TokKind::Punct(b'{') => brc2 += 1,
                            TokKind::Punct(b'}') => brc2 -= 1,
                            TokKind::Punct(b'[') => brk2 += 1,
                            TokKind::Punct(b']') => brk2 -= 1,
                            TokKind::Punct(b';') if par2 == 0 && brc2 == 0 && brk2 == 0 => break,
                            _ => {}
                        }
                        s += 1;
                    }
                    let inferred = expr_unit(pf, env, &toks[expr_start..s]);
                    if let Some(u) = inferred {
                        if let Some(declared) = suffix_unit(&name) {
                            if declared != u {
                                out.push(Diagnostic {
                                    file: pf.label.clone(),
                                    line: pf.line_of(t.start),
                                    rule: Rule::UnitMeasure,
                                    message: format!(
                                        "binding `{name}` is suffixed {} but its initialiser \
                                         evaluates to {}: rename the binding or fix the \
                                         conversion",
                                        declared.name(),
                                        u.name()
                                    ),
                                });
                            }
                        }
                        env.insert(name, u);
                    }
                }
            }
        }
        // `X.to_radians()` / `X.to_degrees()` double conversions and
        // `X.sin()`-family trig sinks, for unit-bearing receivers.
        if t.kind == TokKind::Punct(b'.') && k > 0 {
            if let (Some(recv), Some(method)) = (
                ident(pf, &toks[k - 1]),
                toks.get(k + 1).and_then(|m| ident(pf, m)),
            ) {
                // Plain identifier receiver only (field access `a.b.sin()`
                // has an unknowable unit and stays unreported).
                let recv_is_expr_start = k < 2 || !matches!(toks[k - 2].kind, TokKind::Punct(b'.'));
                let recv_unit = ident_unit(env, recv);
                if recv_is_expr_start
                    && toks.get(k + 2).map(|t| t.kind) == Some(TokKind::Punct(b'('))
                {
                    if let Some(u) = recv_unit {
                        let line = pf.line_of(t.start);
                        match (method, u) {
                            ("to_radians", Unit::Rad) => out.push(diag(
                                pf,
                                line,
                                format!(
                                    "`{recv}.to_radians()` but `{recv}` is already radians: \
                                     double conversion scales by π/180 twice"
                                ),
                            )),
                            ("to_degrees", Unit::Deg) => out.push(diag(
                                pf,
                                line,
                                format!(
                                    "`{recv}.to_degrees()` but `{recv}` is already degrees: \
                                     double conversion scales by 180/π twice"
                                ),
                            )),
                            ("sin" | "cos" | "tan" | "sin_cos", Unit::Deg) => out.push(diag(
                                pf,
                                line,
                                format!(
                                    "`{recv}.{method}()` but `{recv}` is degrees: trig \
                                     functions take radians — convert with `.to_radians()` \
                                     first"
                                ),
                            )),
                            ("to_radians", Unit::Km) | ("to_degrees", Unit::Km) => out.push(diag(
                                pf,
                                line,
                                format!(
                                    "`{recv}.{method}()` but `{recv}` is a distance in km: \
                                     angle conversion on a length is a unit bug"
                                ),
                            )),
                            _ => {}
                        }
                    }
                }
            }
        }
        // Mixed-unit `a + b`, `a - b`, and ordering comparisons between
        // two unit-bearing identifiers.
        if let TokKind::Punct(op @ (b'+' | b'-' | b'<' | b'>')) = t.kind {
            let adjacent_punct =
                |i: usize, b: u8| toks.get(i).is_some_and(|t2| t2.kind == TokKind::Punct(b));
            // Exclude `->`, `=>`, `<=`/`>=` halves handled below, `::<`,
            // `+=`/`-=` compound assignment (still arithmetic: keep).
            let arrow = op == b'>' && k > 0 && adjacent_punct(k - 1, b'-');
            let fat_arrow = op == b'>' && k > 0 && adjacent_punct(k - 1, b'=');
            let turbofish = op == b'<' && k > 0 && adjacent_punct(k - 1, b':');
            let shift = (op == b'<' && adjacent_punct(k + 1, b'<'))
                || (op == b'>' && adjacent_punct(k + 1, b'>'))
                || (op == b'<' && k > 0 && adjacent_punct(k - 1, b'<'))
                || (op == b'>' && k > 0 && adjacent_punct(k - 1, b'>'));
            let generic_close = op == b'>' && k > 0 && adjacent_punct(k - 1, b'\'');
            if !(arrow || fat_arrow || turbofish || shift || generic_close) {
                let lhs = if k > 0 { ident(pf, &toks[k - 1]) } else { None };
                // Skip `<=`/`>=`: the rhs ident sits one further out.
                let rhs_at = if adjacent_punct(k + 1, b'=') {
                    k + 2
                } else {
                    k + 1
                };
                let rhs = toks.get(rhs_at).and_then(|t2| ident(pf, t2));
                // The rhs must be a value, not a call or a path segment.
                let rhs_is_value = !matches!(
                    toks.get(rhs_at + 1).map(|t2| t2.kind),
                    Some(TokKind::Punct(b'(')) | Some(TokKind::Punct(b':'))
                );
                // The lhs must not be a field access tail `p.x_km`— those
                // still carry their suffix; allow them. But a generic
                // bound `T: Ord>` is excluded by requiring value position.
                if let (Some(a), Some(b)) = (lhs, rhs) {
                    if rhs_is_value {
                        if let (Some(ua), Some(ub)) = (ident_unit(env, a), ident_unit(env, b)) {
                            if ua != ub {
                                out.push(diag(
                                    pf,
                                    pf.line_of(t.start),
                                    format!(
                                        "mixed units: `{a}` is {} but `{b}` is {} — convert \
                                         one side before combining",
                                        ua.name(),
                                        ub.name()
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
        k += 1;
    }
}

fn diag(pf: &ParsedFile, line: usize, message: String) -> Diagnostic {
    Diagnostic {
        file: pf.label.clone(),
        line,
        rule: Rule::UnitMeasure,
        message,
    }
}

/// Infers the unit of an expression token span: every unit-bearing
/// identifier and producer call must agree, otherwise no unit (mixed
/// arithmetic is reported at the operator site instead).
fn expr_unit(pf: &ParsedFile, env: &BTreeMap<String, Unit>, toks: &[Tok]) -> Option<Unit> {
    // A conversion call at the end of a chain settles it outright:
    // `bearing_deg.to_radians()` is radians, whatever fed it.
    for k in (0..toks.len()).rev() {
        if let Some(name) = ident(pf, &toks[k]) {
            if matches!(name, "to_radians" | "to_degrees")
                && matches!(
                    toks.get(k + 1).map(|t2| t2.kind),
                    Some(TokKind::Punct(b'('))
                )
            {
                return producer_unit(name);
            }
            // Any other trailing method (`.max(0.0)`) keeps scanning left.
        }
        if matches!(toks[k].kind, TokKind::Punct(b'+' | b'-' | b'*' | b'/')) {
            break;
        }
    }
    // Multiplication/division changes dimension (`radius_km / KM_PER_DEG`
    // is degrees, not km): without real dimensional analysis the result
    // unit is unknowable, so infer nothing.
    if toks
        .iter()
        .any(|t| matches!(t.kind, TokKind::Punct(b'*' | b'/')))
    {
        return None;
    }
    // Otherwise (sums, min/max clamps, plain copies) every unit-bearing
    // identifier and producer call must agree.
    let mut found: Option<Unit> = None;
    for (k, t) in toks.iter().enumerate() {
        if let Some(name) = ident(pf, t) {
            let next_is_call = matches!(
                toks.get(k + 1).map(|t2| t2.kind),
                Some(TokKind::Punct(b'('))
            );
            let u = if next_is_call {
                producer_unit(name)
            } else {
                ident_unit(env, name)
            };
            if let Some(u) = u {
                match found {
                    Some(f) if f != u => return None,
                    _ => found = Some(u),
                }
            }
        }
    }
    found
}
