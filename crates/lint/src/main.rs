//! `tweetmob-lint` — runs the workspace invariant linter.
//!
//! ```text
//! cargo run -p tweetmob-lint            # lint the enclosing workspace
//! cargo run -p tweetmob-lint -- <root>  # lint an explicit workspace root
//! ```
//!
//! Exits 0 when the workspace is clean, 1 with `file:line: [rule] message`
//! diagnostics otherwise, and 2 on I/O errors. See the crate docs of
//! `tweetmob_lint` (or `DESIGN.md` §"Static analysis & invariants") for
//! the rules and the `// lint: allow(<rule>) — <reason>` escape hatch.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => workspace_root(),
    };
    match tweetmob_lint::lint_workspace(&root) {
        Ok(diags) => {
            print!("{}", tweetmob_lint::render_report(&diags));
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("tweetmob-lint: cannot lint {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

/// The workspace root: the nearest ancestor of the current directory with
/// a `Cargo.toml` declaring `[workspace]`, falling back to this crate's
/// compile-time location (`crates/lint/../..`).
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = Some(cwd.as_path());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return d.to_path_buf();
            }
        }
        dir = d.parent();
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map_or_else(|| PathBuf::from("."), std::path::Path::to_path_buf)
}
