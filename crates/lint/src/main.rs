//! `tweetmob-lint` — runs the workspace invariant linter.
//!
//! ```text
//! cargo run -p tweetmob-lint                  # lint the enclosing workspace
//! cargo run -p tweetmob-lint -- <root>        # lint an explicit workspace root
//! cargo run -p tweetmob-lint -- --gen-api     # (re)write API.lock
//! cargo run -p tweetmob-lint -- --check-api   # fail on public-surface drift
//! cargo run -p tweetmob-lint -- --index-panics  # indexing joins panic-path
//! ```
//!
//! Exits 0 when the workspace is clean, 1 with `file:line: [rule] message`
//! diagnostics (or an API diff) otherwise, and 2 on I/O errors. See the
//! crate docs of `tweetmob_lint` (or `DESIGN.md` §12) for the rules and
//! the `// lint: allow(<rule>) — <reason>` escape hatch.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Name of the committed public-surface snapshot at the workspace root.
const API_LOCK: &str = "API.lock";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut gen_api = false;
    let mut check_api = false;
    let mut opts = tweetmob_lint::LintOptions::default();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--gen-api" => gen_api = true,
            "--check-api" => check_api = true,
            "--index-panics" => opts.index_panics = true,
            other if other.starts_with("--") => {
                eprintln!("tweetmob-lint: unknown flag {other}");
                return ExitCode::from(2);
            }
            path => root = Some(PathBuf::from(path)),
        }
    }
    let root = root.unwrap_or_else(workspace_root);

    let files = match tweetmob_lint::load_workspace(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("tweetmob-lint: cannot lint {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if gen_api || check_api {
        return run_api_mode(&root, &files, gen_api);
    }

    let diags = tweetmob_lint::lint_files(&files, &opts);
    print!("{}", tweetmob_lint::render_report(&diags));
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `--gen-api` writes the snapshot; `--check-api` diffs the workspace's
/// current public surface against the committed `API.lock`.
fn run_api_mode(root: &Path, files: &[tweetmob_lint::SourceFile], gen: bool) -> ExitCode {
    let current = tweetmob_lint::api_snapshot(files);
    let lock_path = root.join(API_LOCK);
    if gen {
        if let Err(e) = std::fs::write(&lock_path, &current) {
            eprintln!("tweetmob-lint: cannot write {}: {e}", lock_path.display());
            return ExitCode::from(2);
        }
        println!("tweetmob-lint: wrote {}", lock_path.display());
        return ExitCode::SUCCESS;
    }
    let committed = match std::fs::read_to_string(&lock_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!(
                "tweetmob-lint: cannot read {} (generate it with --gen-api): {e}",
                lock_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let diff = tweetmob_lint::diff_api(&committed, &current);
    if diff.is_empty() {
        println!("tweetmob-lint: public API matches {API_LOCK}");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "tweetmob-lint: public API drifted from {API_LOCK} ({} line(s)); \
             review the change and re-run with --gen-api to accept:",
            diff.len()
        );
        for line in &diff {
            eprintln!("  {line}");
        }
        ExitCode::FAILURE
    }
}

/// The workspace root: the nearest ancestor of the current directory with
/// a `Cargo.toml` declaring `[workspace]`, falling back to this crate's
/// compile-time location (`crates/lint/../..`).
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = Some(cwd.as_path());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return d.to_path_buf();
            }
        }
        dir = d.parent();
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map_or_else(|| PathBuf::from("."), std::path::Path::to_path_buf)
}
