//! Workspace item model: a dependency-free lexer and brace-aware item
//! parser that turns stripped source text into crates → modules →
//! functions (with signatures, parameters, bodies and attribute context)
//! plus the public items needed for the `API.lock` snapshot.
//!
//! The parser is deliberately *recognising*, not *validating*: it walks a
//! token stream, matches the handful of item shapes the workspace uses
//! (`fn`, `impl`, `mod`, `struct`, `enum`, `trait`, `const`, `static`,
//! `type`, `use`, `macro_rules!`), and skips anything it does not
//! understand by advancing one token. It never panics and never rejects a
//! file — on confusion it simply models less, which for every downstream
//! rule is the conservative direction (fewer entry points, fewer edges,
//! fewer findings). Soundness caveats are catalogued in DESIGN.md §12.

use crate::{FileKind, SourceFile};

// ---------------------------------------------------------------------------
// Lexer.
// ---------------------------------------------------------------------------

/// One lexical token over stripped code. Strings, comments and char
/// literals have already been blanked, so only identifiers, numbers and
/// punctuation remain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Tok {
    /// Byte offset of the first byte in the stripped (and raw) source.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// Token class.
    pub kind: TokKind,
}

/// Token classes the parser distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (possibly with suffix, e.g. `1_000u64`, `2.5`).
    Num,
    /// A single punctuation byte.
    Punct(u8),
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes stripped code into a token stream. Byte offsets index both the
/// stripped and the raw source (the stripper is byte-preserving).
pub(crate) fn lex(code: &str) -> Vec<Tok> {
    let bytes = code.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
        } else if is_ident_start(b) {
            let start = i;
            while i < bytes.len() && is_ident_continue(bytes[i]) {
                i += 1;
            }
            toks.push(Tok {
                start,
                end: i,
                kind: TokKind::Ident,
            });
        } else if b.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && is_ident_continue(bytes[i]) {
                i += 1;
            }
            // A fractional part: `.` followed by a digit (so `0..9` and
            // `2.max(..)` stay out).
            if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                i += 1;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
            }
            toks.push(Tok {
                start,
                end: i,
                kind: TokKind::Num,
            });
        } else {
            toks.push(Tok {
                start: i,
                end: i + 1,
                kind: TokKind::Punct(b),
            });
            i += 1;
        }
    }
    toks
}

// ---------------------------------------------------------------------------
// Item model.
// ---------------------------------------------------------------------------

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`_` when the pattern is not a simple identifier).
    pub name: String,
    /// Declared type, whitespace-normalised. The taint pass seeds its
    /// environment from this (an `Instant` or `HashMap` parameter is
    /// nondeterministic from the first use); unit inference keys off
    /// `name` suffixes alone.
    pub ty: String,
}

/// One `fn` item anywhere in the workspace.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Index into the parsed-file list.
    pub file: usize,
    /// Package name of the owning crate.
    pub crate_name: String,
    /// How the owning file participates in its crate.
    pub kind: FileKind,
    /// Module path inside the crate (file modules + inline `mod`s).
    pub module: Vec<String>,
    /// Enclosing `impl` self type or `trait` name, if any.
    pub self_ty: Option<String>,
    /// Function name.
    pub name: String,
    /// Declared `pub` (exactly `pub`, not `pub(crate)`/`pub(super)`), or a
    /// method of a `pub trait` declaration.
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    #[allow(dead_code)]
    pub line: usize,
    /// Whitespace-normalised signature text (qualifiers through return
    /// type, excluding the body and `where` clause).
    pub sig: String,
    /// Parameters, `self` excluded.
    pub params: Vec<Param>,
    /// Whether the function takes `self`.
    pub has_self: bool,
    /// Return type text, if declared.
    #[allow(dead_code)]
    pub ret: Option<String>,
    /// Byte span of the body including braces, `None` for bodiless sigs.
    pub body: Option<(usize, usize)>,
    /// Inside `#[cfg(test)]` / `#[test]` context.
    pub in_test: bool,
}

impl FnInfo {
    /// `Type::name` or plain `name`, used in panic-chain reports.
    #[must_use]
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A non-`fn` public item recorded for the API snapshot.
#[derive(Debug, Clone)]
pub struct PubItem {
    /// Package name of the owning crate.
    pub crate_name: String,
    /// Item kind keyword (`struct`, `enum`, `variant`, `field`, `trait`,
    /// `const`, `static`, `type`, `reexport`).
    pub kind: &'static str,
    /// Module-qualified name.
    pub path: String,
    /// Whitespace-normalised declaration text.
    pub sig: String,
}

/// The parsed workspace: every function plus the public item surface.
#[derive(Debug, Default)]
pub struct Model {
    /// All functions, in file order.
    pub fns: Vec<FnInfo>,
    /// All public non-`fn` items, in file order.
    pub items: Vec<PubItem>,
}

/// A source file with its derived text layers and token stream, shared by
/// every semantic pass.
pub(crate) struct ParsedFile {
    pub label: String,
    pub crate_name: String,
    pub kind: FileKind,
    pub raw: String,
    /// Stripped code (comments/strings blanked, byte-preserving).
    pub code: String,
    /// Comment content (non-doc comments only), same geometry as `code`.
    pub comments: String,
    pub toks: Vec<Tok>,
    /// Byte ranges of `#[test]` / `#[cfg(test)]` items.
    pub tests: Vec<(usize, usize)>,
}

impl ParsedFile {
    pub fn in_test(&self, off: usize) -> bool {
        self.tests.iter().any(|&(s, e)| off >= s && off < e)
    }

    pub fn line_of(&self, off: usize) -> usize {
        crate::line_of(&self.code, off)
    }
}

/// Module path implied by a file's location under `src/`:
/// `src/lib.rs`/`src/main.rs` → `[]`, `src/point.rs` → `["point"]`,
/// `src/a/mod.rs` → `["a"]`, `src/a/b.rs` → `["a", "b"]`.
fn file_module_path(label: &str) -> Vec<String> {
    let norm = label.replace('\\', "/");
    let Some(pos) = norm.rfind("/src/").map(|p| p + 5).or_else(|| {
        norm.strip_prefix("src/")
            .map(|_| 4)
            .filter(|_| norm.starts_with("src/"))
    }) else {
        return Vec::new();
    };
    let rel = &norm[pos..];
    let mut parts: Vec<String> = rel.split('/').map(str::to_string).collect();
    let Some(last) = parts.pop() else {
        return Vec::new();
    };
    let stem = last.strip_suffix(".rs").unwrap_or(&last);
    if !(stem == "lib" || stem == "main" || stem == "mod") {
        parts.push(stem.to_string());
    }
    if parts.first().map(String::as_str) == Some("bin") {
        parts.clear();
    }
    parts
}

/// Parses every file and assembles the workspace model.
pub(crate) fn parse_workspace(files: &[SourceFile]) -> (Vec<ParsedFile>, Model) {
    let mut pfs = Vec::with_capacity(files.len());
    let mut model = Model::default();
    for (idx, sf) in files.iter().enumerate() {
        let stripped = crate::strip_non_code(&sf.source);
        let tests = crate::find_test_regions(&stripped);
        let toks = lex(&stripped.code);
        let pf = ParsedFile {
            label: sf.label.clone(),
            crate_name: sf.crate_name.clone(),
            kind: sf.kind,
            raw: sf.source.clone(),
            code: stripped.code,
            comments: stripped.comments,
            toks,
            tests,
        };
        let ctx = Ctx {
            module: file_module_path(&sf.label),
            self_ty: None,
            in_pub_trait: false,
            in_test: false,
        };
        let mut p = Parser {
            pf: &pf,
            file: idx,
            out: &mut model,
        };
        let end = pf.toks.len();
        let mut i = 0;
        p.parse_items(&mut i, end, &ctx, 0);
        pfs.push(pf);
    }
    (pfs, model)
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct Ctx {
    module: Vec<String>,
    self_ty: Option<String>,
    in_pub_trait: bool,
    in_test: bool,
}

/// Recursion guard: items nest shallowly in practice; anything deeper is
/// degenerate input and is skipped rather than risking a stack overflow.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    pf: &'a ParsedFile,
    file: usize,
    out: &'a mut Model,
}

impl Parser<'_> {
    fn text(&self, i: usize) -> &str {
        match self.pf.toks.get(i) {
            Some(t) => &self.pf.code[t.start..t.end],
            None => "",
        }
    }

    fn punct(&self, i: usize) -> Option<u8> {
        match self.pf.toks.get(i) {
            Some(Tok {
                kind: TokKind::Punct(b),
                ..
            }) => Some(*b),
            _ => None,
        }
    }

    fn is_ident(&self, i: usize, word: &str) -> bool {
        matches!(
            self.pf.toks.get(i),
            Some(Tok {
                kind: TokKind::Ident,
                ..
            })
        ) && self.text(i) == word
    }

    fn offset(&self, i: usize) -> usize {
        self.pf.toks.get(i).map_or(self.pf.code.len(), |t| t.start)
    }

    /// Skips a balanced `open`…`close` pair starting at `i` (which must
    /// point at `open`); returns the index one past the closing token.
    fn skip_balanced(&self, mut i: usize, open: u8, close: u8) -> usize {
        let mut depth = 0usize;
        while i < self.pf.toks.len() {
            match self.punct(i) {
                Some(b) if b == open => depth += 1,
                Some(b) if b == close => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        i
    }

    /// Skips a generics list starting at `<`; `->` arrows inside bound
    /// lists (`F: Fn() -> T`) do not close the angle depth.
    fn skip_angles(&self, mut i: usize) -> usize {
        let mut depth = 0usize;
        while i < self.pf.toks.len() {
            match self.punct(i) {
                Some(b'<') => depth += 1,
                Some(b'>') => {
                    let arrow = i > 0
                        && self.punct(i - 1) == Some(b'-')
                        && self.pf.toks[i - 1].end == self.pf.toks[i].start;
                    if !arrow {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            return i + 1;
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
        i
    }

    /// Skips tokens until a `;` at zero bracket depth; returns the index
    /// one past it (or the end).
    fn skip_to_semi(&self, mut i: usize) -> usize {
        let (mut par, mut brk, mut brc) = (0i64, 0i64, 0i64);
        while i < self.pf.toks.len() {
            match self.punct(i) {
                Some(b'(') => par += 1,
                Some(b')') => par -= 1,
                Some(b'[') => brk += 1,
                Some(b']') => brk -= 1,
                Some(b'{') => brc += 1,
                Some(b'}') => brc -= 1,
                Some(b';') if par == 0 && brk == 0 && brc == 0 => return i + 1,
                _ => {}
            }
            i += 1;
        }
        i
    }

    fn normalize(&self, start: usize, end: usize) -> String {
        normalize_ws(&self.pf.raw[start.min(self.pf.raw.len())..end.min(self.pf.raw.len())])
    }

    fn module_path(&self, ctx: &Ctx) -> String {
        ctx.module.join("::")
    }

    fn qualify(&self, ctx: &Ctx, name: &str) -> String {
        let m = self.module_path(ctx);
        if m.is_empty() {
            name.to_string()
        } else {
            format!("{m}::{name}")
        }
    }

    /// Parses the items in `toks[*i..end]`, leaving `*i` at `end`.
    #[allow(clippy::too_many_lines)]
    fn parse_items(&mut self, i: &mut usize, end: usize, ctx: &Ctx, depth: usize) {
        if depth > MAX_DEPTH {
            *i = end;
            return;
        }
        let mut vis_pub = false;
        let mut pending_test = false;
        let mut sig_start: Option<usize> = None;
        while *i < end {
            let at = *i;
            match self.pf.toks[at].kind {
                TokKind::Punct(b'#') if self.punct(at + 1) == Some(b'[') => {
                    let close = self.skip_balanced(at + 1, b'[', b']');
                    let attr_text = &self.pf.code
                        [self.offset(at + 1)..self.offset(close.saturating_sub(1).max(at + 1))];
                    if crate::attr_marks_test(attr_text) {
                        pending_test = true;
                    }
                    *i = close;
                }
                TokKind::Ident => {
                    let word = self.text(at).to_string();
                    match word.as_str() {
                        "pub" => {
                            sig_start.get_or_insert(self.pf.toks[at].start);
                            if self.punct(at + 1) == Some(b'(') {
                                // `pub(crate)` / `pub(super)`: restricted.
                                *i = self.skip_balanced(at + 1, b'(', b')');
                            } else {
                                vis_pub = true;
                                *i = at + 1;
                            }
                        }
                        "const" | "static" if !self.is_ident(at + 1, "fn") => {
                            let kind: &'static str =
                                if word == "const" { "const" } else { "static" };
                            self.parse_const(i, ctx, sig_start.take(), vis_pub, pending_test, kind);
                            vis_pub = false;
                            pending_test = false;
                        }
                        "const" | "unsafe" | "async" => {
                            sig_start.get_or_insert(self.pf.toks[at].start);
                            *i = at + 1;
                        }
                        "extern" => {
                            sig_start.get_or_insert(self.pf.toks[at].start);
                            if self.is_ident(at + 1, "crate") {
                                *i = self.skip_to_semi(at + 1);
                                (vis_pub, pending_test, sig_start) = (false, false, None);
                            } else if self.punct(at + 1) == Some(b'{') {
                                *i = self.skip_balanced(at + 1, b'{', b'}');
                                (vis_pub, pending_test, sig_start) = (false, false, None);
                            } else {
                                *i = at + 1;
                            }
                        }
                        "fn" => {
                            let start = sig_start.take().unwrap_or(self.pf.toks[at].start);
                            self.parse_fn(i, ctx, start, vis_pub, pending_test, depth);
                            vis_pub = false;
                            pending_test = false;
                        }
                        "mod" => {
                            let name = self.text(at + 1).to_string();
                            if self.punct(at + 2) == Some(b'{') {
                                let body_end = self.skip_balanced(at + 2, b'{', b'}');
                                let mut inner = ctx.clone();
                                inner.module.push(name);
                                inner.in_test = ctx.in_test || pending_test;
                                let mut j = at + 3;
                                self.parse_items(
                                    &mut j,
                                    body_end.saturating_sub(1),
                                    &inner,
                                    depth + 1,
                                );
                                *i = body_end;
                            } else {
                                *i = self.skip_to_semi(at + 1);
                            }
                            vis_pub = false;
                            pending_test = false;
                            sig_start = None;
                        }
                        "impl" => {
                            self.parse_impl(i, ctx, pending_test, depth);
                            vis_pub = false;
                            pending_test = false;
                            sig_start = None;
                        }
                        "struct" | "enum" | "union" => {
                            let start = sig_start.take().unwrap_or(self.pf.toks[at].start);
                            self.parse_type_item(i, ctx, start, vis_pub, pending_test, &word);
                            vis_pub = false;
                            pending_test = false;
                        }
                        "trait" => {
                            let start = sig_start.take().unwrap_or(self.pf.toks[at].start);
                            self.parse_trait(i, ctx, start, vis_pub, pending_test, depth);
                            vis_pub = false;
                            pending_test = false;
                        }
                        "type" => {
                            let start = sig_start.take().unwrap_or(self.pf.toks[at].start);
                            let stop = self.skip_to_semi(at);
                            if vis_pub && !ctx.in_test && !pending_test && self.pf.kind.is_library()
                            {
                                let name = self.text(at + 1).to_string();
                                let sig = self.normalize(start, self.offset(stop));
                                let path = self.qualify(ctx, &name);
                                self.out.items.push(PubItem {
                                    crate_name: self.pf.crate_name.clone(),
                                    kind: "type",
                                    path,
                                    sig,
                                });
                            }
                            *i = stop;
                            vis_pub = false;
                            pending_test = false;
                        }
                        "use" => {
                            let start = sig_start.take().unwrap_or(self.pf.toks[at].start);
                            let stop = self.skip_to_semi(at);
                            if vis_pub && !ctx.in_test && !pending_test && self.pf.kind.is_library()
                            {
                                let sig = self.normalize(start, self.offset(stop));
                                self.out.items.push(PubItem {
                                    crate_name: self.pf.crate_name.clone(),
                                    kind: "reexport",
                                    path: self.module_path(ctx),
                                    sig,
                                });
                            }
                            *i = stop;
                            vis_pub = false;
                            pending_test = false;
                        }
                        "macro_rules" => {
                            let mut j = at + 1;
                            while j < end && self.punct(j) != Some(b'{') {
                                j += 1;
                            }
                            *i = self.skip_balanced(j, b'{', b'}');
                            vis_pub = false;
                            pending_test = false;
                            sig_start = None;
                        }
                        _ => {
                            *i = at + 1;
                            vis_pub = false;
                            pending_test = false;
                            sig_start = None;
                        }
                    }
                }
                TokKind::Punct(b'{') => {
                    *i = self.skip_balanced(at, b'{', b'}');
                    vis_pub = false;
                    pending_test = false;
                    sig_start = None;
                }
                _ => {
                    *i = at + 1;
                    vis_pub = false;
                    pending_test = false;
                    sig_start = None;
                }
            }
        }
        *i = end;
    }

    /// Parses `fn name<...>(params) -> Ret { body }` with `*i` at `fn`.
    fn parse_fn(
        &mut self,
        i: &mut usize,
        ctx: &Ctx,
        sig_start: usize,
        vis_pub: bool,
        pending_test: bool,
        _depth: usize,
    ) {
        let fn_at = *i;
        let name_at = fn_at + 1;
        if !matches!(
            self.pf.toks.get(name_at),
            Some(Tok {
                kind: TokKind::Ident,
                ..
            })
        ) {
            *i = fn_at + 1;
            return;
        }
        let name = self.text(name_at).to_string();
        let mut j = name_at + 1;
        if self.punct(j) == Some(b'<') {
            j = self.skip_angles(j);
        }
        if self.punct(j) != Some(b'(') {
            *i = name_at + 1;
            return;
        }
        let params_open = j;
        let params_close = self.skip_balanced(j, b'(', b')');
        let (params, has_self) = self.parse_params(params_open + 1, params_close.saturating_sub(1));
        j = params_close;

        // Return type: `-> Type` until `{`, `;`, or `where`.
        let mut ret: Option<String> = None;
        if self.punct(j) == Some(b'-') && self.punct(j + 1) == Some(b'>') {
            let ret_start = self.offset(j + 2);
            let mut k = j + 2;
            let (mut angles, mut pars) = (0i64, 0i64);
            while k < self.pf.toks.len() {
                match self.pf.toks[k].kind {
                    TokKind::Punct(b'<') => angles += 1,
                    TokKind::Punct(b'>') => {
                        let arrow = self.punct(k - 1) == Some(b'-')
                            && self.pf.toks[k - 1].end == self.pf.toks[k].start;
                        if !arrow {
                            angles -= 1;
                        }
                    }
                    TokKind::Punct(b'(') => pars += 1,
                    TokKind::Punct(b')') => pars -= 1,
                    TokKind::Punct(b'{') | TokKind::Punct(b';') if angles <= 0 && pars <= 0 => {
                        break;
                    }
                    TokKind::Ident if angles <= 0 && pars <= 0 && self.text(k) == "where" => break,
                    _ => {}
                }
                k += 1;
            }
            ret = Some(normalize_ws(
                &self.pf.raw[ret_start..self.offset(k).min(self.pf.raw.len())],
            ));
            j = k;
        }
        // `where` clause: skip to the body or semicolon.
        if self.is_ident(j, "where") {
            while j < self.pf.toks.len()
                && self.punct(j) != Some(b'{')
                && self.punct(j) != Some(b';')
            {
                j += 1;
            }
        }
        let sig_end = self.offset(j);
        let body = if self.punct(j) == Some(b'{') {
            let close = self.skip_balanced(j, b'{', b'}');
            let span = (
                self.offset(j),
                self.pf
                    .toks
                    .get(close.saturating_sub(1))
                    .map_or(self.pf.code.len(), |t| t.end),
            );
            j = close;
            Some(span)
        } else {
            j += 1; // `;`
            None
        };
        let fn_off = self.pf.toks[fn_at].start;
        self.out.fns.push(FnInfo {
            file: self.file,
            crate_name: self.pf.crate_name.clone(),
            kind: self.pf.kind,
            module: ctx.module.clone(),
            self_ty: ctx.self_ty.clone(),
            name,
            is_pub: vis_pub || ctx.in_pub_trait,
            line: self.pf.line_of(fn_off),
            sig: self.normalize(sig_start, sig_end),
            params,
            has_self,
            ret,
            body,
            in_test: ctx.in_test || pending_test || self.pf.in_test(fn_off),
        });
        *i = j;
    }

    /// Parses a parameter token range (exclusive of the parens).
    fn parse_params(&self, start: usize, end: usize) -> (Vec<Param>, bool) {
        let mut params = Vec::new();
        let mut has_self = false;
        let mut seg_start = start;
        let (mut angles, mut pars, mut brks) = (0i64, 0i64, 0i64);
        let mut k = start;
        while k <= end {
            let boundary =
                k == end || (angles <= 0 && pars == 0 && brks == 0 && self.punct(k) == Some(b','));
            if boundary {
                if seg_start < k {
                    self.parse_one_param(seg_start, k, &mut params, &mut has_self);
                }
                seg_start = k + 1;
                if k == end {
                    break;
                }
            } else {
                match self.punct(k) {
                    Some(b'<') => angles += 1,
                    Some(b'>') => {
                        let arrow = k > 0
                            && self.punct(k - 1) == Some(b'-')
                            && self.pf.toks[k - 1].end == self.pf.toks[k].start;
                        if !arrow {
                            angles -= 1;
                        }
                    }
                    Some(b'(') => pars += 1,
                    Some(b')') => pars -= 1,
                    Some(b'[') => brks += 1,
                    Some(b']') => brks -= 1,
                    _ => {}
                }
            }
            k += 1;
        }
        (params, has_self)
    }

    fn parse_one_param(
        &self,
        start: usize,
        end: usize,
        params: &mut Vec<Param>,
        has_self: &mut bool,
    ) {
        // `self`, `&self`, `&mut self`, `mut self` in the leading tokens.
        for k in start..end.min(start + 4) {
            if self.is_ident(k, "self") {
                *has_self = true;
                return;
            }
        }
        // Simple `name: Type`; anything else (destructuring patterns)
        // records as `_`.
        let mut k = start;
        if self.is_ident(k, "mut") {
            k += 1;
        }
        let (name, ty_from) = if matches!(
            self.pf.toks.get(k),
            Some(Tok {
                kind: TokKind::Ident,
                ..
            })
        ) && self.punct(k + 1) == Some(b':')
        {
            (self.text(k).to_string(), k + 2)
        } else {
            ("_".to_string(), start)
        };
        let ty = normalize_ws(
            &self.pf.raw[self.offset(ty_from)..self.offset(end).min(self.pf.raw.len())],
        );
        params.push(Param { name, ty });
    }

    /// Parses `impl<...> [Trait for] Type { items }` with `*i` at `impl`.
    fn parse_impl(&mut self, i: &mut usize, ctx: &Ctx, pending_test: bool, depth: usize) {
        let mut j = *i + 1;
        if self.punct(j) == Some(b'<') {
            j = self.skip_angles(j);
        }
        // Scan the header up to `{`, noting a top-level `for`.
        let header_start = j;
        let mut for_at: Option<usize> = None;
        let mut angles = 0i64;
        while j < self.pf.toks.len() {
            match self.pf.toks[j].kind {
                TokKind::Punct(b'<') => angles += 1,
                TokKind::Punct(b'>') => {
                    let arrow = j > 0
                        && self.punct(j - 1) == Some(b'-')
                        && self.pf.toks[j - 1].end == self.pf.toks[j].start;
                    if !arrow {
                        angles -= 1;
                    }
                }
                TokKind::Punct(b'{') if angles <= 0 => break,
                TokKind::Punct(b';') if angles <= 0 => {
                    *i = j + 1;
                    return;
                }
                TokKind::Ident if angles <= 0 && self.text(j) == "for" => for_at = Some(j),
                TokKind::Ident if angles <= 0 && self.text(j) == "where" => break,
                _ => {}
            }
            j += 1;
        }
        // The self type is the last path segment of the tokens after
        // `for` (trait impls) or after the generics (inherent impls).
        let ty_start = for_at.map_or(header_start, |f| f + 1);
        let mut self_ty = None;
        let mut k = ty_start;
        while k < j {
            if let Some(Tok {
                kind: TokKind::Ident,
                ..
            }) = self.pf.toks.get(k)
            {
                let w = self.text(k);
                if w != "dyn" && w != "mut" {
                    self_ty = Some(w.to_string());
                }
            }
            if self.punct(k) == Some(b'<') {
                k = self.skip_angles(k);
                continue;
            }
            k += 1;
        }
        // Resume at `{` (skip any `where` clause).
        while j < self.pf.toks.len() && self.punct(j) != Some(b'{') {
            if self.punct(j) == Some(b';') {
                *i = j + 1;
                return;
            }
            j += 1;
        }
        let body_end = self.skip_balanced(j, b'{', b'}');
        let mut inner = ctx.clone();
        inner.self_ty = self_ty;
        inner.in_pub_trait = false;
        inner.in_test = ctx.in_test || pending_test;
        let mut b = j + 1;
        self.parse_items(&mut b, body_end.saturating_sub(1), &inner, depth + 1);
        *i = body_end;
    }

    /// Parses `struct`/`enum`/`union` declarations with `*i` at the
    /// keyword, recording the item, public fields and enum variants.
    fn parse_type_item(
        &mut self,
        i: &mut usize,
        ctx: &Ctx,
        sig_start: usize,
        vis_pub: bool,
        pending_test: bool,
        word: &str,
    ) {
        let kw_at = *i;
        let name = self.text(kw_at + 1).to_string();
        let mut j = kw_at + 2;
        if self.punct(j) == Some(b'<') {
            j = self.skip_angles(j);
        }
        let head_end = self.offset(j);
        let record = vis_pub
            && !ctx.in_test
            && !pending_test
            && self.pf.kind.is_library()
            && !self.pf.in_test(self.pf.toks[kw_at].start);
        let kind: &'static str = match word {
            "enum" => "enum",
            "union" => "union",
            _ => "struct",
        };
        let path = self.qualify(ctx, &name);
        if record {
            self.out.items.push(PubItem {
                crate_name: self.pf.crate_name.clone(),
                kind,
                path: path.clone(),
                sig: self.normalize(sig_start, head_end),
            });
        }
        // Skip any `where` clause before the body.
        while j < self.pf.toks.len()
            && !matches!(self.punct(j), Some(b'{') | Some(b'(') | Some(b';'))
        {
            j += 1;
        }
        match self.punct(j) {
            Some(b';') => *i = j + 1,
            Some(b'(') => {
                // Tuple struct: the whole parenthesised list is API.
                let close = self.skip_balanced(j, b'(', b')');
                if record {
                    let sig = self.normalize(self.offset(j), self.offset(close));
                    self.out.items.push(PubItem {
                        crate_name: self.pf.crate_name.clone(),
                        kind: "fields",
                        path: path.clone(),
                        sig,
                    });
                }
                *i = self.skip_to_semi(close.saturating_sub(1));
            }
            Some(b'{') => {
                let close = self.skip_balanced(j, b'{', b'}');
                if record {
                    if word == "enum" {
                        self.record_variants(j + 1, close.saturating_sub(1), &path);
                    } else {
                        self.record_fields(j + 1, close.saturating_sub(1), &path);
                    }
                }
                *i = close;
            }
            _ => *i = j,
        }
    }

    /// Records `pub name: Type` fields of a pub struct body.
    fn record_fields(&mut self, start: usize, end: usize, path: &str) {
        let mut k = start;
        let (mut angles, mut pars) = (0i64, 0i64);
        let mut field_pub = false;
        while k < end {
            match self.pf.toks[k].kind {
                TokKind::Punct(b'#') if self.punct(k + 1) == Some(b'[') => {
                    k = self.skip_balanced(k + 1, b'[', b']');
                    continue;
                }
                TokKind::Punct(b'<') => angles += 1,
                TokKind::Punct(b'>') => angles -= 1,
                TokKind::Punct(b'(') => pars += 1,
                TokKind::Punct(b')') => pars -= 1,
                TokKind::Punct(b',') if angles <= 0 && pars == 0 => field_pub = false,
                TokKind::Ident if angles <= 0 && pars == 0 && self.text(k) == "pub" => {
                    if self.punct(k + 1) == Some(b'(') {
                        k = self.skip_balanced(k + 1, b'(', b')');
                        continue;
                    }
                    field_pub = true;
                }
                TokKind::Ident
                    if field_pub && angles <= 0 && pars == 0 && self.punct(k + 1) == Some(b':') =>
                {
                    let fname = self.text(k).to_string();
                    // Type: tokens until a top-level comma or the end.
                    let ty_start = k + 2;
                    let mut t = ty_start;
                    let (mut a2, mut p2) = (0i64, 0i64);
                    while t < end {
                        match self.punct(t) {
                            Some(b'<') => a2 += 1,
                            Some(b'>') => a2 -= 1,
                            Some(b'(') => p2 += 1,
                            Some(b')') => p2 -= 1,
                            Some(b',') if a2 <= 0 && p2 == 0 => break,
                            _ => {}
                        }
                        t += 1;
                    }
                    let ty = self.normalize(self.offset(ty_start), self.offset(t));
                    self.out.items.push(PubItem {
                        crate_name: self.pf.crate_name.clone(),
                        kind: "field",
                        path: format!("{path}.{fname}"),
                        sig: format!("{fname}: {ty}"),
                    });
                    field_pub = false;
                    k = t;
                    continue;
                }
                _ => {}
            }
            k += 1;
        }
    }

    /// Records the variants of a pub enum body.
    fn record_variants(&mut self, start: usize, end: usize, path: &str) {
        let mut k = start;
        while k < end {
            match self.pf.toks[k].kind {
                TokKind::Punct(b'#') if self.punct(k + 1) == Some(b'[') => {
                    k = self.skip_balanced(k + 1, b'[', b']');
                }
                TokKind::Ident => {
                    let vname = self.text(k).to_string();
                    let v_start = self.pf.toks[k].start;
                    let mut t = k + 1;
                    // Payload: tuple parens, struct braces, or `= disc`.
                    loop {
                        match self.punct(t) {
                            Some(b'(') => t = self.skip_balanced(t, b'(', b')'),
                            Some(b'{') => t = self.skip_balanced(t, b'{', b'}'),
                            Some(b'=') => t += 1,
                            Some(b',') => break,
                            _ if t >= end => break,
                            _ => t += 1,
                        }
                        if t >= end {
                            break;
                        }
                        if self.punct(t) == Some(b',') {
                            break;
                        }
                    }
                    let sig = self.normalize(v_start, self.offset(t));
                    self.out.items.push(PubItem {
                        crate_name: self.pf.crate_name.clone(),
                        kind: "variant",
                        path: format!("{path}::{vname}"),
                        sig,
                    });
                    k = t + 1;
                }
                _ => k += 1,
            }
        }
    }

    /// Parses `trait Name { ... }` with `*i` at `trait`, recording the
    /// trait and descending so its method signatures are modelled.
    fn parse_trait(
        &mut self,
        i: &mut usize,
        ctx: &Ctx,
        sig_start: usize,
        vis_pub: bool,
        pending_test: bool,
        depth: usize,
    ) {
        let kw_at = *i;
        let name = self.text(kw_at + 1).to_string();
        let mut j = kw_at + 2;
        if self.punct(j) == Some(b'<') {
            j = self.skip_angles(j);
        }
        let head_end = self.offset(j);
        let record = vis_pub
            && !ctx.in_test
            && !pending_test
            && self.pf.kind.is_library()
            && !self.pf.in_test(self.pf.toks[kw_at].start);
        if record {
            self.out.items.push(PubItem {
                crate_name: self.pf.crate_name.clone(),
                kind: "trait",
                path: self.qualify(ctx, &name),
                sig: self.normalize(sig_start, head_end),
            });
        }
        // Supertraits / where clause: advance to the body.
        while j < self.pf.toks.len() && self.punct(j) != Some(b'{') {
            if self.punct(j) == Some(b';') {
                *i = j + 1;
                return;
            }
            j += 1;
        }
        let body_end = self.skip_balanced(j, b'{', b'}');
        let mut inner = ctx.clone();
        inner.self_ty = Some(name);
        inner.in_pub_trait = record;
        inner.in_test = ctx.in_test || pending_test;
        let mut b = j + 1;
        self.parse_items(&mut b, body_end.saturating_sub(1), &inner, depth + 1);
        *i = body_end;
    }

    /// Parses `const NAME: Ty = value;` / `static NAME: Ty = value;` with
    /// `*i` at the keyword. The value is not part of the snapshot.
    fn parse_const(
        &mut self,
        i: &mut usize,
        ctx: &Ctx,
        sig_start: Option<usize>,
        vis_pub: bool,
        pending_test: bool,
        kind: &'static str,
    ) {
        let kw_at = *i;
        let start = sig_start.unwrap_or(self.pf.toks[kw_at].start);
        let stop = self.skip_to_semi(kw_at);
        if vis_pub
            && !ctx.in_test
            && !pending_test
            && self.pf.kind.is_library()
            && !self.pf.in_test(self.pf.toks[kw_at].start)
        {
            let name = self.text(kw_at + 1).to_string();
            // Snapshot up to the `=` (the declared type, not the value).
            let mut eq = kw_at;
            while eq < stop && self.punct(eq) != Some(b'=') {
                eq += 1;
            }
            let sig = self.normalize(start, self.offset(eq));
            self.out.items.push(PubItem {
                crate_name: self.pf.crate_name.clone(),
                kind,
                path: self.qualify(ctx, &name),
                sig,
            });
        }
        *i = stop;
    }
}

/// Collapses all whitespace runs to single spaces and trims.
pub(crate) fn normalize_ws(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for c in s.chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
            }
            last_space = true;
        } else {
            out.push(c);
            last_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}
