//! Determinism taint: wall-clock and scheduling-dependent values must not
//! reach serialized output.
//!
//! The workspace's bit-reproducibility contract says every result-bearing
//! byte is a pure function of the input and the seed. Timing
//! (`Instant::now`, `.elapsed()`), thread identity (`thread::current()`),
//! and iteration order of unordered containers (`HashMap`/`HashSet`) all
//! vary run to run, so a value *derived* from them may not flow into
//! JSON or bench output. The one sanctioned path is `tweetmob-obs`, whose
//! renderer isolates timing in `_ns`-suffixed fields that the comparison
//! tooling redacts — that crate is exempt from sink reporting here (a
//! documented soundness hole, kept narrow by the obs crate's own tests).
//!
//! The pass is intraprocedural: within each function body it collects
//! bindings initialised from a nondeterministic source, propagates the
//! taint through later `let` bindings that mention a tainted name, and
//! reports any tainted identifier appearing in the argument list of a
//! serialization sink (functions whose name mentions `json`/`serialize`
//! or one of the trace-event exporters, and the formatting macros). Taint does not cross function boundaries —
//! a tainted value returned from a helper re-enters untracked. That
//! under-approximation is the price of a dep-free engine; the textual
//! `determinism` rule still bans the sources outright in result crates,
//! so cross-function laundering cannot start there in the first place.

use crate::model::{Model, ParsedFile, Tok, TokKind};
use crate::{Diagnostic, Rule};
use std::collections::BTreeMap;

/// How a binding became tainted, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    Clock,
    ThreadId,
    UnorderedIter,
}

impl Source {
    fn describe(self) -> &'static str {
        match self {
            Source::Clock => "a wall-clock reading (`Instant`/`elapsed`)",
            Source::ThreadId => "a thread identity",
            Source::UnorderedIter => "iteration over an unordered container",
        }
    }
}

/// Sink macros: formatting output that could reach a report or bench log.
const SINK_MACROS: &[&str] = &[
    "print", "println", "eprint", "eprintln", "write", "writeln", "format",
];

/// Sink functions, matched by name substring: JSON/serialization
/// surfaces plus the trace-event exporters. The exporters turn the
/// event log into Chrome-trace JSON or collapsed flamegraph stacks, so
/// a timing value smuggled into their arguments would land in exported
/// bytes exactly like one smuggled into a `to_json` call. The exporters
/// *inside* `tweetmob-obs` stay exempt with the rest of that crate —
/// the event log's `t_ns`/`dur_ns` payloads are the sanctioned,
/// redactable timing path.
const SINK_FN_SUBSTRINGS: &[&str] = &["json", "serialize", "chrome_trace", "collapsed_stacks"];

/// Runs the taint pass over every non-test function with a body, except in
/// `tweetmob-obs` (the sanctioned `_ns` redaction path).
pub(crate) fn check_taint(pfs: &[ParsedFile], model: &Model, out: &mut Vec<Diagnostic>) {
    for f in &model.fns {
        if f.in_test || f.crate_name == "tweetmob-obs" {
            continue;
        }
        let Some(body) = f.body else { continue };
        // Parameters of a nondeterministic type are tainted on entry: the
        // caller handed over a clock reading or an unordered container.
        let mut env: BTreeMap<String, Source> = BTreeMap::new();
        for p in &f.params {
            if p.name == "_" {
                continue;
            }
            if p.ty.contains("Instant") {
                env.insert(p.name.clone(), Source::Clock);
            } else if p.ty.contains("HashMap") || p.ty.contains("HashSet") {
                env.insert(p.name.clone(), Source::UnorderedIter);
            }
        }
        check_body(&pfs[f.file], body, env, out);
    }
}

fn body_toks(pf: &ParsedFile, body: (usize, usize)) -> &[Tok] {
    let lo = pf.toks.partition_point(|t| t.start < body.0);
    let hi = pf.toks.partition_point(|t| t.start < body.1);
    &pf.toks[lo..hi.max(lo)]
}

fn ident<'a>(pf: &'a ParsedFile, t: &Tok) -> Option<&'a str> {
    if t.kind == TokKind::Ident {
        Some(&pf.code[t.start..t.end])
    } else {
        None
    }
}

/// Scans an expression token span for a taint source, or for mention of an
/// already-tainted binding.
fn expr_taint(pf: &ParsedFile, env: &BTreeMap<String, Source>, toks: &[Tok]) -> Option<Source> {
    let mut k = 0;
    while k < toks.len() {
        if let Some(name) = ident(pf, &toks[k]) {
            let next_kind = toks.get(k + 1).map(|t| t.kind);
            let is_call = matches!(next_kind, Some(TokKind::Punct(b'(')));
            match name {
                "Instant" | "elapsed" => return Some(Source::Clock),
                "current" if is_call && k >= 2 && ident(pf, &toks[k - 2]) == Some("thread") => {
                    return Some(Source::ThreadId)
                }
                "HashMap" | "HashSet" => return Some(Source::UnorderedIter),
                _ => {
                    if let Some(&src) = env.get(name) {
                        return Some(src);
                    }
                }
            }
        }
        k += 1;
    }
    None
}

fn check_body(
    pf: &ParsedFile,
    body: (usize, usize),
    mut env: BTreeMap<String, Source>,
    out: &mut Vec<Diagnostic>,
) {
    let toks = body_toks(pf, body);
    let mut k = 0;
    while k < toks.len() {
        let t = &toks[k];
        if pf.in_test(t.start) {
            k += 1;
            continue;
        }
        // `let [mut] name ... = expr ;` — propagate taint into the binding.
        if ident(pf, t) == Some("let") {
            let mut n = k + 1;
            if n < toks.len() && ident(pf, &toks[n]) == Some("mut") {
                n += 1;
            }
            // An uppercase "name" is a pattern constructor (`let Some(x)`,
            // `let Ok(v)`), not a binding — skip those.
            if let Some(name) = toks
                .get(n)
                .and_then(|t2| ident(pf, t2))
                .filter(|n2| n2.starts_with(|c: char| c.is_lowercase() || c == '_'))
            {
                let name = name.to_string();
                // Find the end of the statement at depth 0.
                let mut e = n + 1;
                let (mut par, mut brc, mut brk) = (0i64, 0i64, 0i64);
                let stmt_start = e;
                while e < toks.len() {
                    match toks[e].kind {
                        TokKind::Punct(b'(') => par += 1,
                        TokKind::Punct(b')') => par -= 1,
                        TokKind::Punct(b'{') => brc += 1,
                        TokKind::Punct(b'}') => brc -= 1,
                        TokKind::Punct(b'[') => brk += 1,
                        TokKind::Punct(b']') => brk -= 1,
                        TokKind::Punct(b';') if par == 0 && brc == 0 && brk == 0 => break,
                        _ => {}
                    }
                    e += 1;
                }
                if let Some(src) = expr_taint(pf, &env, &toks[stmt_start..e]) {
                    env.insert(name, src);
                }
                k = n;
            }
        }
        // `for pat in tainted_expr { .. }` — the loop variable is tainted
        // when iterating something tainted by an unordered container.
        if ident(pf, t) == Some("for") {
            // pattern tokens until `in` at depth 0.
            let mut n = k + 1;
            let mut pat_names = Vec::new();
            let mut depth = 0i64;
            while n < toks.len() {
                match toks[n].kind {
                    TokKind::Punct(b'(') => depth += 1,
                    TokKind::Punct(b')') => depth -= 1,
                    TokKind::Ident if depth >= 0 => {
                        let w = &pf.code[toks[n].start..toks[n].end];
                        if w == "in" && depth == 0 {
                            break;
                        }
                        if w != "mut"
                            && w != "ref"
                            && w.starts_with(|c: char| c.is_lowercase() || c == '_')
                        {
                            pat_names.push(w.to_string());
                        }
                    }
                    _ => {}
                }
                n += 1;
            }
            // iterable tokens until `{` at depth 0. (`n` may already sit
            // at the end when this was a `for<'a>` HRTB, not a loop.)
            let iter_start = (n + 1).min(toks.len());
            let mut e = iter_start;
            let mut d2 = 0i64;
            while e < toks.len() {
                match toks[e].kind {
                    TokKind::Punct(b'(') | TokKind::Punct(b'[') => d2 += 1,
                    TokKind::Punct(b')') | TokKind::Punct(b']') => d2 -= 1,
                    TokKind::Punct(b'{') if d2 == 0 => break,
                    _ => {}
                }
                e += 1;
            }
            if let Some(src) = expr_taint(pf, &env, &toks[iter_start..e]) {
                if src == Source::UnorderedIter {
                    for nme in pat_names {
                        env.insert(nme, src);
                    }
                }
            }
        }
        // Sinks: `foo_json(..)` / `serialize_*(..)` calls and formatting
        // macros with a tainted identifier among the arguments.
        if let Some(name) = ident(pf, t) {
            let next = toks.get(k + 1).map(|t2| t2.kind);
            let lower = name.to_ascii_lowercase();
            let is_fn_sink = matches!(next, Some(TokKind::Punct(b'(')))
                && SINK_FN_SUBSTRINGS.iter().any(|s| lower.contains(s));
            let is_macro_sink =
                matches!(next, Some(TokKind::Punct(b'!'))) && SINK_MACROS.contains(&lower.as_str());
            if is_fn_sink || is_macro_sink {
                // Argument span: the balanced parens after the name (for a
                // macro, after the `!`).
                let open = if is_macro_sink { k + 2 } else { k + 1 };
                if matches!(toks.get(open).map(|t2| t2.kind), Some(TokKind::Punct(b'('))) {
                    let mut e = open + 1;
                    let mut depth = 1i64;
                    let arg_start = e;
                    while e < toks.len() && depth > 0 {
                        match toks[e].kind {
                            TokKind::Punct(b'(') => depth += 1,
                            TokKind::Punct(b')') => depth -= 1,
                            _ => {}
                        }
                        e += 1;
                    }
                    let args = &toks[arg_start..e.saturating_sub(1).max(arg_start)];
                    let tainted = args.iter().find_map(|a| {
                        ident(pf, a).and_then(|w| env.get(w).map(|&s| (w.to_string(), s)))
                    });
                    if let Some((var, src)) = tainted {
                        out.push(Diagnostic {
                            file: pf.label.clone(),
                            line: pf.line_of(t.start),
                            rule: Rule::DeterminismTaint,
                            message: format!(
                                "`{var}` is derived from {} and flows into `{name}`: \
                                 nondeterministic bytes in serialized output break \
                                 bit-reproducibility — route timing through tweetmob-obs \
                                 `_ns` fields instead",
                                src.describe()
                            ),
                        });
                    }
                }
            }
        }
        k += 1;
    }
}
