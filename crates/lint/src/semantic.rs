//! Cross-file call graph and the `panic-path` rule: walk from public
//! library entry points (and binary command handlers) and report any path
//! that reaches a panicking site in non-test library code, as the full
//! call chain rather than the bare site.
//!
//! Resolution is name-based: a call site `foo(..)` or `x.foo(..)` edges to
//! every workspace function named `foo` (method calls additionally require
//! a `self` parameter on the target). That over-approximates — two crates
//! with a method of the same name share edges — but an over-approximate
//! graph can only report a chain that names real functions, and a
//! justified (`lint: allow`) site never propagates, so the pass stays
//! quiet on a clean workspace. Under-resolution (trait-object dispatch,
//! function pointers, macros) is the documented unsound direction: a
//! chain the parser cannot see is a chain it cannot report.

use crate::model::{Model, ParsedFile, Tok, TokKind};
use crate::{Diagnostic, Rule};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One panicking site inside a function body.
#[derive(Debug, Clone)]
pub(crate) struct PanicSite {
    /// 1-based line.
    pub line: usize,
    /// Display token (`unwrap()`, `expect(..)`, `panic!`, `indexing`).
    pub what: &'static str,
}

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "mut", "ref", "move", "as", "in", "use", "pub", "mod", "impl", "struct", "enum", "trait",
    "type", "const", "static", "unsafe", "async", "await", "dyn", "where", "crate", "super",
    "true", "false",
];

/// Extracts the call sites of a function body: `(callee, is_method, line)`.
pub(crate) fn call_sites(pf: &ParsedFile, body: (usize, usize)) -> Vec<(String, bool, usize)> {
    let mut out = Vec::new();
    let toks = body_toks(pf, body);
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = &pf.code[t.start..t.end];
        if CALL_KEYWORDS.contains(&name) {
            continue;
        }
        let next = toks.get(k + 1);
        let Some(n) = next else { continue };
        // `name!(..)` is a macro, not a call-graph edge.
        if n.kind == TokKind::Punct(b'!') {
            continue;
        }
        let open_next = matches!(n.kind, TokKind::Punct(b'('));
        // Turbofish / generic call: `name::<T>(..)`.
        let turbofish = k + 4 < toks.len()
            && matches!(n.kind, TokKind::Punct(b':'))
            && matches!(toks.get(k + 2).map(|t| t.kind), Some(TokKind::Punct(b':')))
            && matches!(toks.get(k + 3).map(|t| t.kind), Some(TokKind::Punct(b'<')));
        if !open_next && !turbofish {
            continue;
        }
        let is_method = k > 0 && matches!(toks[k - 1].kind, TokKind::Punct(b'.'));
        out.push((name.to_string(), is_method, pf.line_of(t.start)));
    }
    out
}

/// Extracts panicking sites in a body: panic macros/methods, plus postfix
/// indexing when `index_panics` is set.
pub(crate) fn panic_sites(
    pf: &ParsedFile,
    body: (usize, usize),
    index_panics: bool,
) -> Vec<PanicSite> {
    let mut out = Vec::new();
    let span = &pf.code[body.0..body.1];
    const TOKENS: &[(&str, &str)] = &[
        (".unwrap()", "unwrap()"),
        (".expect(", "expect(..)"),
        ("panic!", "panic!"),
        ("unreachable!", "unreachable!"),
        ("todo!", "todo!"),
        ("unimplemented!", "unimplemented!"),
    ];
    for &(needle, what) in TOKENS {
        for off in crate::find_token(span, needle) {
            if needle == ".expect(" && span[off..].starts_with(".expect_err(") {
                continue;
            }
            let abs = body.0 + off;
            if pf.in_test(abs) {
                continue;
            }
            out.push(PanicSite {
                line: pf.line_of(abs),
                what,
            });
        }
    }
    if index_panics {
        let toks = body_toks(pf, body);
        for (k, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Punct(b'[') || k == 0 {
                continue;
            }
            // Postfix position: an expression just ended. `&[u8]`, array
            // literals `[0; 8]` and attributes `#[..]` all have a
            // non-expression token before the bracket.
            let prev = &toks[k - 1];
            let postfix = matches!(
                prev.kind,
                TokKind::Ident | TokKind::Punct(b')') | TokKind::Punct(b']')
            ) && !matches!(prev.kind, TokKind::Ident if CALL_KEYWORDS.contains(&&pf.code[prev.start..prev.end]));
            if !postfix || pf.in_test(t.start) {
                continue;
            }
            out.push(PanicSite {
                line: pf.line_of(t.start),
                what: "indexing",
            });
        }
    }
    out.sort_by_key(|s| s.line);
    out
}

fn body_toks(pf: &ParsedFile, body: (usize, usize)) -> &[Tok] {
    let lo = pf.toks.partition_point(|t| t.start < body.0);
    let hi = pf.toks.partition_point(|t| t.start < body.1);
    &pf.toks[lo..hi.max(lo)]
}

/// Runs the panic-reachability pass. `site_allowed` is consulted once per
/// site (marking annotation usage); justified sites neither report nor
/// propagate.
pub(crate) fn check_panic_paths(
    pfs: &[ParsedFile],
    model: &Model,
    index_panics: bool,
    mut site_allowed: impl FnMut(usize, usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    // Name → function ids, split plain/method for resolution.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, f) in model.fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(id);
    }
    // Edges and per-function unsuppressed panic sites.
    let mut edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); model.fns.len()];
    let mut sites: Vec<Vec<PanicSite>> = vec![Vec::new(); model.fns.len()];
    for (id, f) in model.fns.iter().enumerate() {
        let Some(body) = f.body else { continue };
        let pf = &pfs[f.file];
        if f.in_test {
            continue;
        }
        let mut seen = BTreeSet::new();
        for (callee, is_method, line) in call_sites(pf, body) {
            if let Some(cands) = by_name.get(callee.as_str()) {
                for &cid in cands {
                    if cid == id || !seen.insert(cid) {
                        continue;
                    }
                    if is_method && !model.fns[cid].has_self {
                        continue;
                    }
                    edges[id].push((cid, line));
                }
            }
        }
        // Panic sites only count in library code (binaries may panic, per
        // the no-panic rule's scope).
        if f.kind.is_library() {
            for s in panic_sites(pf, body, index_panics) {
                if !site_allowed(f.file, s.line) {
                    sites[id].push(s);
                }
            }
        }
    }

    // BFS from every entry point at once: shortest chain wins.
    let mut pred: Vec<Option<(usize, usize)>> = vec![None; model.fns.len()]; // (caller, line)
    let mut visited = vec![false; model.fns.len()];
    let mut queue = VecDeque::new();
    for (id, f) in model.fns.iter().enumerate() {
        let is_entry = !f.in_test && ((f.is_pub && f.kind.is_library()) || !f.kind.is_library());
        if is_entry && f.body.is_some() {
            visited[id] = true;
            queue.push_back(id);
        }
    }
    let mut order = Vec::new();
    while let Some(id) = queue.pop_front() {
        order.push(id);
        for &(next, line) in &edges[id] {
            if !visited[next] {
                visited[next] = true;
                pred[next] = Some((id, line));
                queue.push_back(next);
            }
        }
    }

    for id in order {
        if sites[id].is_empty() {
            continue;
        }
        let chain = chain_to(model, &pred, id);
        let f = &model.fns[id];
        let pf = &pfs[f.file];
        for s in &sites[id] {
            let route = if chain.len() == 1 {
                format!("public `{}`", chain[0])
            } else {
                format!("`{}`", chain.join("` → `"))
            };
            out.push(Diagnostic {
                file: pf.label.clone(),
                line: s.line,
                rule: Rule::PanicPath,
                message: format!(
                    "`{}` reachable from {route}: a panic here aborts every caller up the \
                     chain — return an error, or annotate the invariant that rules it out",
                    s.what
                ),
            });
        }
    }
}

fn chain_to(model: &Model, pred: &[Option<(usize, usize)>], id: usize) -> Vec<String> {
    let mut chain = vec![model.fns[id].qualified()];
    let mut cur = id;
    let mut hops = 0;
    while let Some((p, _)) = pred[cur] {
        chain.push(model.fns[p].qualified());
        cur = p;
        hops += 1;
        if hops > model.fns.len() {
            break;
        }
    }
    chain.reverse();
    chain
}
