//! # tweetmob-lint
//!
//! A hand-rolled static-analysis pass over the workspace's `.rs` sources,
//! enforcing repo invariants that `clippy` cannot express. The paper's
//! headline results (Fig. 3 Pearson r = 0.816, Table II
//! Gravity-beats-Radiation) are pure numeric claims, so the reproduction
//! lives or dies on silent numeric and determinism bugs: a NaN leaking
//! into a correlation, a `HashMap` iteration reordering synthetic trips, a
//! panicking `unwrap()` deep in a fitting loop. These rules make the
//! conventions machine-enforced:
//!
//! * **`crate-header`** — every crate root declares
//!   `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]`.
//! * **`no-panic`** — no `unwrap()` / `expect()` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` in non-test, non-binary
//!   library code. (`assert!` remains available for documented
//!   precondition checks.)
//! * **`float-ord`** — no NaN-unsafe float ordering: `partial_cmp` is
//!   rejected outright, and `sort_by` / `max_by` / `min_by` comparator
//!   closures must route through `total_cmp` (or integer `cmp`).
//! * **`determinism`** — no `thread_rng`, `from_entropy` or
//!   `SystemTime::now` anywhere in result-producing code, and no
//!   `HashMap` / `HashSet` in result-producing library crates (use
//!   `BTreeMap` / `BTreeSet`, or sort before iterating and annotate).
//! * **`lossy-cast`** — in the numeric crates (`stats`, `models`, `core`,
//!   `geo`), a float arithmetic expression cast straight to an integer
//!   type must state its rounding (`.floor()` / `.ceil()` / `.round()` /
//!   `.trunc()`) instead of relying on `as`'s silent truncation.
//! * **`par-layer`** — no raw `thread::spawn` / `thread::scope` /
//!   `crossbeam` outside `tweetmob-par`: every parallel stage dispatches
//!   on the shared worker pool so thread-count policy, gauges and the
//!   determinism contract live in one place.
//! * **`raw-haversine`** — no direct `haversine_km` calls in the
//!   model-fitting crates (`models`, `epidemic`): pairwise distances
//!   there route through the shared `PairGeometry` cache so the hot path
//!   never recomputes transcendentals and the `cache/pairgeo/*` metrics
//!   stay honest. In the batch-kernel crates (`geo`, `core`) the same
//!   rule bans per-element `haversine_km` calls inside `for`/`while`/
//!   `loop` bodies: column-shaped work there belongs on
//!   `haversine_km_batch`, which hoists the origin trigonometry out of
//!   the loop.
//!
//! On top of the per-file textual rules, four semantic rule families run
//! over a parsed workspace model (lexer → item parser → call graph; the
//! architecture and its soundness caveats are in DESIGN.md §12):
//!
//! * **`panic-path`** — walks the cross-file call graph from public
//!   library entry points and binary command handlers; any reachable
//!   panicking site in non-test library code is reported with its full
//!   call chain. Indexing sites join in under `--index-panics`.
//! * **`unit-measure`** — tracks degree/radian/km conventions through
//!   parameter and binding suffixes plus known conversions, flagging
//!   mixed-unit arithmetic, double conversions and trig-on-degrees in the
//!   geographic crates.
//! * **`determinism-taint`** — values derived from `Instant`, thread
//!   identity or unordered-container iteration may not flow into
//!   JSON/serialization sinks or formatting macros, except inside
//!   `tweetmob-obs` (the sanctioned `_ns`-redaction path).
//! * **`unused-allow`** — a `lint: allow` annotation that no longer
//!   suppresses anything (or names an unknown rule, or lacks its
//!   justification) is itself a finding, so escape hatches cannot rot.
//!
//! The workspace's public surface is additionally snapshotted into a
//! committed `API.lock` (see [`api_snapshot`] / [`diff_api`]); the binary's
//! `--check-api` mode fails on any uncommitted drift.
//!
//! Any finding can be suppressed with an explicit, justified annotation on
//! the same or the preceding line:
//!
//! ```text
//! // lint: allow(no-panic) — mutex poisoning is unrecoverable here
//! ```
//!
//! Annotations count only in real (non-doc) comments in non-test code;
//! `allow(no-panic)` and `allow(panic-path)` each silence both panic rules
//! at a site, since justifying the panic justifies every path through it.
//!
//! The engine is dependency-free (no `syn`): string literals, comments and
//! `#[cfg(test)]` regions are stripped (byte-preservingly) before any rule
//! fires, so fixtures in doc comments or test modules never trip the
//! linter.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod api_lock;
mod model;
mod semantic;
mod taint;
mod units;

pub use api_lock::diff_api;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose library output feeds paper results; `HashMap`/`HashSet`
/// are banned in their library paths (iteration order would leak into
/// figures and tables).
const RESULT_CRATES: &[&str] = &[
    "tweetmob",
    "tweetmob-geo",
    "tweetmob-stats",
    "tweetmob-data",
    "tweetmob-synth",
    "tweetmob-models",
    "tweetmob-core",
    "tweetmob-epidemic",
];

/// Crates where bare float→int `as` truncation is rejected.
const CAST_STRICT_CRATES: &[&str] = &[
    "tweetmob-stats",
    "tweetmob-models",
    "tweetmob-core",
    "tweetmob-geo",
];

/// Crates whose library code must take pairwise distances from the shared
/// `PairGeometry` cache rather than calling `haversine_km` per pair: these
/// sit on the model-fitting hot path, where a stray scalar call silently
/// reintroduces the O(n²) transcendental cost the cache exists to remove.
const GEOMETRY_CACHE_CRATES: &[&str] = &["tweetmob-models", "tweetmob-epidemic"];

/// Crates that own the columnar batch kernels. A scalar `haversine_km`
/// call inside a `for`/`while`/`loop` body here is a per-element
/// distance loop that belongs on `tweetmob_geo::haversine_km_batch`
/// (origin trig hoisted once, coordinate columns scanned contiguously);
/// one-off calls outside loops remain fine — these crates legitimately
/// measure single pairs during construction and queries.
const BATCH_KERNEL_CRATES: &[&str] = &["tweetmob-geo", "tweetmob-core"];

/// The eleven rule families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Crate root missing `#![forbid(unsafe_code)]` / `#![deny(missing_docs)]`.
    CrateHeader,
    /// Panicking call in library code.
    NoPanic,
    /// NaN-unsafe float ordering.
    FloatOrd,
    /// Nondeterminism source.
    Determinism,
    /// Bare lossy float→int cast.
    LossyCast,
    /// Raw thread spawn outside the shared `tweetmob-par` worker pool.
    ParLayer,
    /// Scalar `haversine_km` call in a crate that must use the geometry cache.
    RawHaversine,
    /// Panicking site reachable from a public entry point (call-graph walk).
    PanicPath,
    /// Degree/radian/km convention violation in the geographic crates.
    UnitMeasure,
    /// Nondeterministic value flowing into serialized output.
    DeterminismTaint,
    /// A `lint: allow` annotation that suppresses nothing.
    UnusedAllow,
}

impl Rule {
    /// The rule's annotation name, as written in `// lint: allow(<name>)`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::CrateHeader => "crate-header",
            Rule::NoPanic => "no-panic",
            Rule::FloatOrd => "float-ord",
            Rule::Determinism => "determinism",
            Rule::LossyCast => "lossy-cast",
            Rule::ParLayer => "par-layer",
            Rule::RawHaversine => "raw-haversine",
            Rule::PanicPath => "panic-path",
            Rule::UnitMeasure => "unit-measure",
            Rule::DeterminismTaint => "determinism-taint",
            Rule::UnusedAllow => "unused-allow",
        }
    }

    /// Every rule name, for validating annotations.
    pub(crate) const ALL_NAMES: &'static [&'static str] = &[
        "crate-header",
        "no-panic",
        "float-ord",
        "determinism",
        "lossy-cast",
        "par-layer",
        "raw-haversine",
        "panic-path",
        "unit-measure",
        "determinism-taint",
        "unused-allow",
    ];

    /// Annotation names accepted for this rule. The two panic rules alias
    /// each other: a justified panic site is justified on every path.
    fn accepted_names(self) -> &'static [&'static str] {
        match self {
            Rule::NoPanic | Rule::PanicPath => &["no-panic", "panic-path"],
            Rule::CrateHeader => &["crate-header"],
            Rule::FloatOrd => &["float-ord"],
            Rule::Determinism => &["determinism"],
            Rule::LossyCast => &["lossy-cast"],
            Rule::ParLayer => &["par-layer"],
            Rule::RawHaversine => &["raw-haversine"],
            Rule::UnitMeasure => &["unit-measure"],
            Rule::DeterminismTaint => &["determinism-taint"],
            Rule::UnusedAllow => &["unused-allow"],
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path of the offending file (workspace-relative when produced by
    /// [`lint_workspace`]).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation with the fix direction.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// How a source file participates in its crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/lib.rs` — crate root of a library crate.
    LibRoot,
    /// `src/main.rs` — crate root of a binary crate.
    BinRoot,
    /// Any other module of a library crate.
    Library,
    /// A module of a binary crate, or a `src/bin/*` target.
    Binary,
}

impl FileKind {
    /// Library code (crate root or module) — the scope of the panic rules.
    #[must_use]
    pub fn is_library(self) -> bool {
        matches!(self, FileKind::LibRoot | FileKind::Library)
    }

    fn is_crate_root(self) -> bool {
        matches!(self, FileKind::LibRoot | FileKind::BinRoot)
    }
}

/// One workspace source file, loaded and classified — the input unit of
/// [`lint_files`] and [`api_snapshot`].
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Display label used verbatim in diagnostics (workspace-relative path
    /// when loaded through [`load_workspace`]).
    pub label: String,
    /// Package name of the owning crate.
    pub crate_name: String,
    /// How the file participates in its crate.
    pub kind: FileKind,
    /// Full source text.
    pub source: String,
}

/// Knobs for a lint run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintOptions {
    /// Treat postfix indexing (`xs[i]`) as a panicking site in the
    /// `panic-path` walk. Off by default: the numeric kernels index
    /// heavily against invariant-checked bounds, and flooding them with
    /// findings would drown the signal — turn this on for targeted audits
    /// (`--index-panics`).
    pub index_panics: bool,
}

/// The one sort order every path shares: findings compare by
/// `(file, line, rule, message)`, so multi-rule output on a single line is
/// byte-stable across runs and entry points.
fn sort_findings(out: &mut [Diagnostic]) {
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
}

/// Runs the per-file textual rules (no suppression, no sorting).
fn textual_checks(
    label: &str,
    crate_name: &str,
    kind: FileKind,
    code: &str,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    if kind.is_crate_root() {
        check_crate_header(label, code, out);
    }
    if kind.is_library() {
        check_no_panic(label, code, in_test, out);
    }
    check_float_ord(label, code, in_test, out);
    check_determinism(label, crate_name, kind, code, in_test, out);
    if kind.is_library() && CAST_STRICT_CRATES.contains(&crate_name) {
        check_lossy_cast(label, code, in_test, out);
    }
    if crate_name != "tweetmob-par" {
        check_par_layer(label, crate_name, code, in_test, out);
    }
    if kind.is_library()
        && (GEOMETRY_CACHE_CRATES.contains(&crate_name)
            || BATCH_KERNEL_CRATES.contains(&crate_name))
    {
        check_raw_haversine(label, crate_name, code, in_test, out);
    }
}

/// Lints one source file given its crate name (the `name` in the package's
/// `Cargo.toml`) and [`FileKind`]. `label` is used verbatim in
/// diagnostics. This is the core entry point the fixture tests drive.
///
/// Only the textual rules run here: the semantic passes (`panic-path`,
/// `unit-measure`, `determinism-taint`, `unused-allow`) need the workspace
/// model and run through [`lint_files`] / [`lint_workspace`].
#[must_use]
pub fn lint_source(label: &str, crate_name: &str, kind: FileKind, source: &str) -> Vec<Diagnostic> {
    let stripped = strip_non_code(source);
    let test_regions = find_test_regions(&stripped);
    let mut out = Vec::new();
    let in_test = |off: usize| test_regions.iter().any(|&(s, e)| off >= s && off < e);
    textual_checks(label, crate_name, kind, &stripped.code, &in_test, &mut out);
    let mut sup = Suppressor::collect(source, &stripped.comments, &test_regions);
    out.retain(|d| !sup.allows(d.line, d.rule));
    sort_findings(&mut out);
    out
}

/// Lints a loaded file set: textual rules per file, then the semantic
/// passes over the parsed workspace model, then `unused-allow` over every
/// annotation the earlier passes never consulted.
#[must_use]
pub fn lint_files(files: &[SourceFile], opts: &LintOptions) -> Vec<Diagnostic> {
    let (pfs, model) = model::parse_workspace(files);
    let mut sups: Vec<Suppressor> = pfs
        .iter()
        .map(|pf| Suppressor::collect(&pf.raw, &pf.comments, &pf.tests))
        .collect();
    let label_idx: BTreeMap<&str, usize> = pfs
        .iter()
        .enumerate()
        .map(|(i, pf)| (pf.label.as_str(), i))
        .collect();

    let mut out = Vec::new();
    for (idx, pf) in pfs.iter().enumerate() {
        let mut file_out = Vec::new();
        let in_test = |off: usize| pf.in_test(off);
        textual_checks(
            &pf.label,
            &pf.crate_name,
            pf.kind,
            &pf.code,
            &in_test,
            &mut file_out,
        );
        file_out.retain(|d| !sups[idx].allows(d.line, d.rule));
        out.append(&mut file_out);
    }

    let mut sem = Vec::new();
    semantic::check_panic_paths(
        &pfs,
        &model,
        opts.index_panics,
        |file, line| sups[file].allows(line, Rule::PanicPath),
        &mut sem,
    );
    units::check_units(&pfs, &model, &mut sem);
    taint::check_taint(&pfs, &model, &mut sem);
    sem.retain(|d| {
        label_idx
            .get(d.file.as_str())
            .is_none_or(|&i| !sups[i].allows(d.line, d.rule))
    });
    out.append(&mut sem);

    for (idx, sup) in sups.iter().enumerate() {
        sup.report_unused(&pfs[idx].label, &mut out);
    }
    sort_findings(&mut out);
    out
}

/// Loads every lintable workspace source file under `root`.
///
/// # Errors
///
/// Propagates I/O failures reading the source tree.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for (path, crate_name, kind) in workspace_files(root)? {
        let source = fs::read_to_string(&path)?;
        let label = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        files.push(SourceFile {
            label,
            crate_name,
            kind,
            source,
        });
    }
    Ok(files)
}

/// Lints every workspace source file under `root` with default options,
/// returning all findings in the unified `(file, line, rule, message)`
/// order.
///
/// # Errors
///
/// Propagates I/O failures reading the source tree.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    lint_workspace_with(root, &LintOptions::default())
}

/// [`lint_workspace`] with explicit [`LintOptions`].
///
/// # Errors
///
/// Propagates I/O failures reading the source tree.
pub fn lint_workspace_with(root: &Path, opts: &LintOptions) -> io::Result<Vec<Diagnostic>> {
    let files = load_workspace(root)?;
    Ok(lint_files(&files, opts))
}

/// Renders the public-API snapshot (`API.lock` contents) of a loaded file
/// set. Deterministic: sorted, deduplicated, newline-terminated.
#[must_use]
pub fn api_snapshot(files: &[SourceFile]) -> String {
    let (_, model) = model::parse_workspace(files);
    api_lock::render_api(&model)
}

/// Enumerates the workspace's lintable `.rs` files: the root package's
/// `src/` plus every `crates/*/src/`. Integration tests, examples and
/// benches are exercised by `cargo test` itself and are out of scope.
///
/// # Errors
///
/// Rejects a `root` that is not a workspace (no `Cargo.toml`) — a typo'd
/// path must not pass as "clean" — and propagates I/O failures listing
/// directories.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(PathBuf, String, FileKind)>> {
    if !root.join("Cargo.toml").is_file() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "no Cargo.toml under {} — not a workspace root",
                root.display()
            ),
        ));
    }
    let mut packages: Vec<PathBuf> = vec![root.to_path_buf()];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(std::result::Result::ok)
            .map(|e| e.path())
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect();
        members.sort();
        packages.extend(members);
    }

    let mut out = Vec::new();
    for pkg in packages {
        let src = pkg.join("src");
        if !src.is_dir() {
            continue;
        }
        let crate_name = package_name(&pkg)?;
        let is_bin_crate = !src.join("lib.rs").is_file();
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for path in files {
            let in_bin_dir = path
                .strip_prefix(&src)
                .ok()
                .is_some_and(|rel| rel.starts_with("bin"));
            let kind = if path == src.join("lib.rs") {
                FileKind::LibRoot
            } else if path == src.join("main.rs") {
                FileKind::BinRoot
            } else if in_bin_dir || is_bin_crate {
                FileKind::Binary
            } else {
                FileKind::Library
            };
            out.push((path, crate_name.clone(), kind));
        }
    }
    Ok(out)
}

/// Reads the `name = "..."` of a package's `Cargo.toml` (first `name` key
/// in the `[package]` table).
fn package_name(pkg: &Path) -> io::Result<String> {
    let manifest = fs::read_to_string(pkg.join("Cargo.toml"))?;
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package && line.starts_with("name") {
            if let Some(v) = line.split('"').nth(1) {
                return Ok(v.to_string());
            }
        }
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidData,
        format!("no package name in {}", pkg.display()),
    ))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Source stripping: comments, strings and char literals become spaces so
// token searches and paren matching see only real code. The stripper is
// byte-preserving (a blanked multibyte char becomes that many spaces), so
// every offset into the stripped text indexes the raw source too — the
// item parser slices raw signatures through stripped offsets.
// ---------------------------------------------------------------------------

pub(crate) struct Stripped {
    /// The source with every comment/string/char-literal byte replaced by a
    /// space (newlines preserved), so offsets map 1:1 to raw bytes and
    /// line numbers.
    pub(crate) code: String,
    /// The complement, restricted to *non-doc* comment content: bytes
    /// inside `//`/`/* */` comments keep their text, everything else
    /// (code, strings, doc comments) is blanked. Annotations are read from
    /// here, so a `lint: allow` quoted in a doc example or a string
    /// literal never registers.
    pub(crate) comments: String,
}

/// Pushes `c` to `buf` blanked: the same number of bytes as `c`, all
/// spaces (newlines stay, keeping line geometry).
fn push_blank(buf: &mut String, c: char) {
    if c == '\n' {
        buf.push('\n');
    } else {
        for _ in 0..c.len_utf8() {
            buf.push(' ');
        }
    }
}

#[allow(clippy::too_many_lines)]
pub(crate) fn strip_non_code(src: &str) -> Stripped {
    #[derive(PartialEq)]
    enum St {
        Code,
        /// `doc`: `///` / `//!` content is excluded from the comments
        /// buffer (rules read doc text nowhere, and examples inside docs
        /// must not register annotations).
        LineComment {
            doc: bool,
        },
        BlockComment {
            depth: u32,
            doc: bool,
        },
        Str,
        RawStr(usize),
        CharLit,
    }
    let chars: Vec<char> = src.chars().collect();
    let mut code = String::with_capacity(src.len());
    let mut comments = String::with_capacity(src.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    let doc = matches!(chars.get(i + 2), Some('/' | '!'));
                    st = St::LineComment { doc };
                    push_blank(&mut code, '/');
                    push_blank(&mut code, '/');
                    push_blank(&mut comments, '/');
                    push_blank(&mut comments, '/');
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    let doc = matches!(chars.get(i + 2), Some('*' | '!'))
                        && chars.get(i + 3) != Some(&'/');
                    st = St::BlockComment { depth: 1, doc };
                    push_blank(&mut code, '/');
                    push_blank(&mut code, '*');
                    push_blank(&mut comments, '/');
                    push_blank(&mut comments, '*');
                    i += 2;
                    continue;
                }
                '"' => {
                    st = St::Str;
                    push_blank(&mut code, c);
                    push_blank(&mut comments, c);
                }
                'r' | 'b' if is_raw_string_start(&chars, i) => {
                    // Consume the prefix (r, br) and hashes up to the quote.
                    let mut j = i;
                    while chars.get(j) == Some(&'b') || chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    for k in i..=j {
                        let ch = chars.get(k).copied().unwrap_or(' ');
                        push_blank(&mut code, ch);
                        push_blank(&mut comments, ch);
                    }
                    st = St::RawStr(hashes);
                    i = j + 1;
                    continue;
                }
                '\'' => {
                    // Distinguish char literals from lifetimes: 'x' or '\..'.
                    push_blank(&mut code, c);
                    push_blank(&mut comments, c);
                    if next == Some('\\') || chars.get(i + 2) == Some(&'\'') {
                        st = St::CharLit;
                    }
                    // else: lifetime tick; the name stays as code.
                }
                _ => {
                    code.push(c);
                    push_blank(&mut comments, c);
                }
            },
            St::LineComment { doc } => {
                if c == '\n' {
                    st = St::Code;
                    code.push('\n');
                    comments.push('\n');
                } else {
                    push_blank(&mut code, c);
                    if doc {
                        push_blank(&mut comments, c);
                    } else {
                        comments.push(c);
                    }
                }
            }
            St::BlockComment { depth, doc } => {
                if c == '/' && next == Some('*') {
                    st = St::BlockComment {
                        depth: depth + 1,
                        doc,
                    };
                    for ch in ['/', '*'] {
                        push_blank(&mut code, ch);
                        push_blank(&mut comments, ch);
                    }
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment {
                            depth: depth - 1,
                            doc,
                        }
                    };
                    for ch in ['*', '/'] {
                        push_blank(&mut code, ch);
                        push_blank(&mut comments, ch);
                    }
                    i += 2;
                    continue;
                }
                push_blank(&mut code, c);
                if doc || c == '\n' {
                    push_blank(&mut comments, c);
                } else {
                    comments.push(c);
                }
            }
            St::Str => {
                push_blank(&mut code, c);
                push_blank(&mut comments, c);
                if c == '\\' {
                    // Skip the escaped character.
                    if let Some(n) = next {
                        push_blank(&mut code, n);
                        push_blank(&mut comments, n);
                    }
                    i += 2;
                    continue;
                }
                if c == '"' {
                    st = St::Code;
                }
            }
            St::RawStr(hashes) => {
                push_blank(&mut code, c);
                push_blank(&mut comments, c);
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..hashes {
                            push_blank(&mut code, '#');
                            push_blank(&mut comments, '#');
                        }
                        st = St::Code;
                        i += 1 + hashes;
                        continue;
                    }
                }
            }
            St::CharLit => {
                push_blank(&mut code, c);
                push_blank(&mut comments, c);
                if c == '\\' {
                    if let Some(n) = next {
                        push_blank(&mut code, n);
                        push_blank(&mut comments, n);
                    }
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    st = St::Code;
                }
            }
        }
        i += 1;
    }
    Stripped { code, comments }
}

/// Is position `i` the start of a raw (byte) string literal: `r"`, `r#"`,
/// `br"`, `br#"` — and not just an identifier containing `r`?
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

// ---------------------------------------------------------------------------
// Test-region detection: byte ranges of `#[test]` / `#[cfg(test)]` items.
// ---------------------------------------------------------------------------

pub(crate) fn find_test_regions(stripped: &Stripped) -> Vec<(usize, usize)> {
    let code = stripped.code.as_bytes();
    let mut regions = Vec::new();
    let mut depth: i64 = 0;
    let mut pending: Option<i64> = None;
    let mut open: Vec<i64> = Vec::new(); // depths at which a test region opened
    let mut region_start = 0usize;
    let mut i = 0;
    while i < code.len() {
        match code[i] {
            b'#' if code.get(i + 1) == Some(&b'[') => {
                // Read the attribute up to its matching ']'.
                let mut j = i + 2;
                let mut brackets = 1;
                while j < code.len() && brackets > 0 {
                    match code[j] {
                        b'[' => brackets += 1,
                        b']' => brackets -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                let attr = &stripped.code[i + 2..j.saturating_sub(1).max(i + 2)];
                if attr_marks_test(attr) {
                    pending = Some(depth);
                }
                i = j;
                continue;
            }
            b'{' => {
                if pending == Some(depth) {
                    if open.is_empty() {
                        region_start = i;
                    }
                    open.push(depth);
                    pending = None;
                }
                depth += 1;
            }
            b'}' => {
                depth -= 1;
                if open.last() == Some(&depth) {
                    open.pop();
                    if open.is_empty() {
                        regions.push((region_start, i + 1));
                    }
                }
            }
            b';' if pending == Some(depth) => {
                pending = None;
            }
            _ => {}
        }
        i += 1;
    }
    if let Some(&d) = open.first() {
        let _ = d;
        regions.push((region_start, code.len()));
    }
    regions
}

/// Does an attribute body mark a test item? True for `test`, `cfg(test)`,
/// `cfg(all(test, ...))` and tool test attributes; false for `cfg_attr`.
pub(crate) fn attr_marks_test(attr: &str) -> bool {
    let t = attr.trim();
    if t.starts_with("cfg_attr") {
        return false;
    }
    contains_word(t, "test")
}

/// Word-boundary substring search over identifier characters.
fn contains_word(haystack: &str, word: &str) -> bool {
    let bytes = haystack.as_bytes();
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

pub(crate) fn line_of(code: &str, offset: usize) -> usize {
    code.as_bytes()[..offset.min(code.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

// ---------------------------------------------------------------------------
// Annotation escape hatch.
// ---------------------------------------------------------------------------

/// One `// lint: allow(<rule>) — <reason>` annotation found in a file's
/// (non-doc) comments.
struct Annotation {
    /// 1-based line the annotation sits on.
    line: usize,
    /// The rule name between the parentheses, verbatim.
    rule: String,
    /// Whether a justification follows (a dash then prose).
    has_reason: bool,
    /// Inside a `#[cfg(test)]`/`#[test]` region (never consulted: rules
    /// skip test code, so such annotations are inert and exempt from
    /// `unused-allow` rather than forced out of test helpers).
    in_test: bool,
    /// Whether any finding consulted and matched this annotation.
    used: bool,
}

/// Per-file suppression state. Collects every annotation once, then every
/// rule pass consults [`Suppressor::allows`] — which marks annotations as
/// used, so the leftover set drives the `unused-allow` rule.
struct Suppressor {
    annotations: Vec<Annotation>,
    /// Per raw line (0-based): does the line hold only a `//` comment?
    /// (Contiguity test for the annotate-above form.)
    comment_line: Vec<bool>,
}

impl Suppressor {
    /// Scans the comments layer of a stripped file for annotations.
    fn collect(raw: &str, comments: &str, tests: &[(usize, usize)]) -> Self {
        let comment_line = raw
            .lines()
            .map(|l| l.trim_start().starts_with("//"))
            .collect();
        let mut annotations = Vec::new();
        let mut line_start = 0usize;
        for (line_no, text) in comments.lines().enumerate() {
            for at in find_token(text, "lint: allow(") {
                let rest = &text[at + "lint: allow(".len()..];
                let Some(close) = rest.find(')') else {
                    continue;
                };
                let rule = rest[..close].trim().to_string();
                let after = &rest[close + 1..];
                let has_reason = after
                    .find(['—', '–', '-'])
                    .is_some_and(|dash| after[dash..].chars().skip(1).any(char::is_alphanumeric));
                let off = line_start + at;
                annotations.push(Annotation {
                    line: line_no + 1,
                    rule,
                    has_reason,
                    in_test: tests.iter().any(|&(s, e)| off >= s && off < e),
                    used: false,
                });
            }
            line_start += text.len() + 1;
        }
        Suppressor {
            annotations,
            comment_line,
        }
    }

    /// True when a valid annotation for `rule` covers `line` (same line,
    /// or the contiguous `//` comment block immediately above). Marks the
    /// matching annotation used.
    fn allows(&mut self, line: usize, rule: Rule) -> bool {
        let names = rule.accepted_names();
        // Candidate lines: the finding's own, then each line of the
        // comment block above it.
        let mut candidates = vec![line];
        let mut above = line.saturating_sub(1); // 1-based line above
        while above >= 1 {
            let is_comment = self.comment_line.get(above - 1).copied().unwrap_or(false);
            if !is_comment {
                break;
            }
            candidates.push(above);
            above -= 1;
        }
        for ann in &mut self.annotations {
            // A reasonless annotation never suppresses (and stays unused,
            // so `unused-allow` points at it).
            if candidates.contains(&ann.line)
                && names.contains(&ann.rule.as_str())
                && ann.has_reason
            {
                ann.used = true;
                return true;
            }
        }
        false
    }

    /// Emits an `unused-allow` finding for every annotation in non-test
    /// code that no pass consumed.
    fn report_unused(&self, label: &str, out: &mut Vec<Diagnostic>) {
        for ann in &self.annotations {
            if ann.used || ann.in_test {
                continue;
            }
            let message = if !Rule::ALL_NAMES.contains(&ann.rule.as_str()) {
                format!(
                    "`lint: allow({})` names an unknown rule — known rules: {}",
                    ann.rule,
                    Rule::ALL_NAMES.join(", ")
                )
            } else if !ann.has_reason {
                format!(
                    "`lint: allow({})` lacks a justification: append `— <reason>` \
                     (an unexplained escape hatch suppresses nothing)",
                    ann.rule
                )
            } else {
                format!(
                    "stale `lint: allow({})`: no `{}` finding here any more — delete the \
                     annotation so the escape hatch does not outlive its reason",
                    ann.rule, ann.rule
                )
            };
            out.push(Diagnostic {
                file: label.to_string(),
                line: ann.line,
                rule: Rule::UnusedAllow,
                message,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 1: crate headers.
// ---------------------------------------------------------------------------

fn check_crate_header(label: &str, code: &str, out: &mut Vec<Diagnostic>) {
    let flat: String = code.chars().filter(|c| !c.is_whitespace()).collect();
    for (needle, attr) in [
        ("#![forbid(unsafe_code)]", "#![forbid(unsafe_code)]"),
        ("#![deny(missing_docs)]", "#![deny(missing_docs)]"),
    ] {
        if !flat.contains(needle) {
            out.push(Diagnostic {
                file: label.to_string(),
                line: 1,
                rule: Rule::CrateHeader,
                message: format!("crate root must declare `{attr}`"),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 2: no panicking calls in library code.
// ---------------------------------------------------------------------------

fn check_no_panic(
    label: &str,
    code: &str,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    const TOKENS: &[(&str, &str)] = &[
        (
            ".unwrap()",
            "use `?`, a default, or a documented `expect` with an annotation",
        ),
        (
            ".expect(",
            "return an error instead, or annotate with the invariant that holds",
        ),
        (
            "panic!",
            "return an error; panics abort entire experiment pipelines",
        ),
        (
            "unreachable!",
            "make the unreachable state unrepresentable, or annotate why it cannot occur",
        ),
        ("todo!", "finish the implementation before merging"),
        ("unimplemented!", "finish the implementation before merging"),
    ];
    for &(tok, fix) in TOKENS {
        for off in find_token(code, tok) {
            // `.expect(` must not match `.expect_err(`.
            if tok == ".expect(" && code[off..].starts_with(".expect_err(") {
                continue;
            }
            if in_test(off) {
                continue;
            }
            out.push(Diagnostic {
                file: label.to_string(),
                line: line_of(code, off),
                rule: Rule::NoPanic,
                message: format!("`{}` in library code: {fix}", tok.trim_matches('.')),
            });
        }
    }
}

/// All offsets of `token` in `code` at identifier boundaries (the char
/// before the token's first ident char must not be an ident char).
pub(crate) fn find_token(code: &str, token: &str) -> Vec<usize> {
    let mut found = Vec::new();
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let at = start + pos;
        let first = token.as_bytes()[0];
        let boundary = if is_ident_byte(first) {
            at == 0 || !is_ident_byte(bytes[at - 1])
        } else {
            true
        };
        if boundary {
            found.push(at);
        }
        start = at + token.len().max(1);
    }
    found
}

// ---------------------------------------------------------------------------
// Rule 3: NaN-safe float ordering.
// ---------------------------------------------------------------------------

fn check_float_ord(
    label: &str,
    code: &str,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    for off in find_token(code, "partial_cmp") {
        if in_test(off) {
            continue;
        }
        out.push(Diagnostic {
            file: label.to_string(),
            line: line_of(code, off),
            rule: Rule::FloatOrd,
            message: "`partial_cmp` is NaN-unsafe: use `f64::total_cmp` (NaN sorts last, \
                      deterministically)"
                .to_string(),
        });
    }
    for method in ["sort_by", "sort_unstable_by", "max_by", "min_by"] {
        let needle = format!(".{method}(");
        for off in find_token(code, &needle) {
            if in_test(off) {
                continue;
            }
            let open = off + needle.len() - 1;
            let Some(close) = matching_paren(code, open) else {
                continue;
            };
            let span = &code[open..close];
            let safe = span.contains("total_cmp")
                || span.contains(".cmp(")
                || span.contains("cmp::")
                || span.contains("Ordering");
            // Comparator closures built from `<`/`>` on floats are the
            // NaN-unsafe pattern; any raw comparison inside the span that
            // never reaches a total order is rejected.
            if !safe {
                out.push(Diagnostic {
                    file: label.to_string(),
                    line: line_of(code, off),
                    rule: Rule::FloatOrd,
                    message: format!(
                        "`{method}` comparator does not use `total_cmp`/`cmp`: NaN-unsafe \
                         and nondeterministic on poisoned input"
                    ),
                });
            }
        }
    }
}

/// Offset of the `)` matching the `(` at `open`.
fn matching_paren(code: &str, open: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Rule 4: determinism.
// ---------------------------------------------------------------------------

fn check_determinism(
    label: &str,
    crate_name: &str,
    kind: FileKind,
    code: &str,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    const TOKENS: &[(&str, &str)] = &[
        (
            "thread_rng",
            "seed an `StdRng` from the experiment config instead",
        ),
        ("from_entropy", "seed from the experiment config instead"),
        ("SystemTime::now", "thread the timestamp in as data"),
    ];
    for &(tok, fix) in TOKENS {
        for off in find_token(code, tok) {
            if in_test(off) {
                continue;
            }
            out.push(Diagnostic {
                file: label.to_string(),
                line: line_of(code, off),
                rule: Rule::Determinism,
                message: format!("`{tok}` makes results irreproducible: {fix}"),
            });
        }
    }
    // `Instant::now` is scoped, not banned outright: `tweetmob-obs` exists
    // to own the monotonic clock (span timers whose durations never feed a
    // result-bearing field). Everywhere else must route timing through it.
    if crate_name != "tweetmob-obs" {
        for off in find_token(code, "Instant::now") {
            if in_test(off) {
                continue;
            }
            out.push(Diagnostic {
                file: label.to_string(),
                line: line_of(code, off),
                rule: Rule::Determinism,
                message: "`Instant::now` outside `tweetmob-obs`: wrap the stage in \
                          `tweetmob_obs::span!` so timing stays out of results"
                    .to_string(),
            });
        }
    }
    if kind.is_library() && RESULT_CRATES.contains(&crate_name) {
        for tok in ["HashMap", "HashSet"] {
            for off in find_token(code, tok) {
                if in_test(off) {
                    continue;
                }
                out.push(Diagnostic {
                    file: label.to_string(),
                    line: line_of(code, off),
                    rule: Rule::Determinism,
                    message: format!(
                        "`{tok}` in a result-producing library path: iteration order is \
                         nondeterministic — use `BTree{}` or sort before iterating (annotate \
                         if provably order-independent)",
                        &tok[4..]
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: lossy float→int casts.
// ---------------------------------------------------------------------------

const INT_TYPES: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];

fn check_lossy_cast(
    label: &str,
    code: &str,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    for off in find_token(code, " as ") {
        if in_test(off) {
            continue;
        }
        let after = &code[off + 4..];
        let ty_len = after
            .char_indices()
            .find(|&(_, c)| !(c.is_ascii_alphanumeric() || c == '_'))
            .map_or(after.len(), |(i, _)| i);
        let ty = &after[..ty_len];
        if !INT_TYPES.contains(&ty) {
            continue;
        }
        if cast_source_is_unrounded_float(code, off) {
            out.push(Diagnostic {
                file: label.to_string(),
                line: line_of(code, off),
                rule: Rule::LossyCast,
                message: format!(
                    "float arithmetic cast straight to `{ty}`: `as` truncates toward zero \
                     silently — state the rounding with `.floor()`/`.ceil()`/`.round()`/\
                     `.trunc()` first, or annotate"
                ),
            });
        }
    }
}

/// Walks the postfix chain ending just before ` as `: if any link is an
/// explicit rounding call the cast is fine; otherwise the cast is flagged
/// when the chain shows float evidence (a float literal, or `*`//`/`
/// arithmetic inside a directly-cast parenthesized expression).
fn cast_source_is_unrounded_float(code: &str, as_off: usize) -> bool {
    const ROUNDING: &[&str] = &["floor", "ceil", "round", "trunc"];
    let bytes = code.as_bytes();
    let mut end = as_off; // exclusive end of the expression
    let mut float_evidence = false;
    loop {
        while end > 0 && (bytes[end - 1] as char).is_whitespace() {
            end -= 1;
        }
        if end == 0 {
            return false;
        }
        match bytes[end - 1] {
            b')' => {
                let Some(open) = matching_paren_rev(code, end - 1) else {
                    return false;
                };
                let span = &code[open + 1..end - 1];
                if has_float_literal(span) || span.contains('/') || span.contains('*') {
                    float_evidence = true;
                }
                // Is this parenthesis a call `name(...)`?
                let mut name_end = open;
                while name_end > 0 && (bytes[name_end - 1] as char).is_whitespace() {
                    name_end -= 1;
                }
                let mut name_start = name_end;
                while name_start > 0 && is_ident_byte(bytes[name_start - 1]) {
                    name_start -= 1;
                }
                let name = &code[name_start..name_end];
                if ROUNDING.contains(&name) {
                    return false; // explicit rounding anywhere in the chain
                }
                if name.is_empty() {
                    // A plain parenthesized expression `(...)`: the chain
                    // ends here.
                    return float_evidence;
                }
                // A call: keep walking if it is a method (`.name(`),
                // otherwise (free function) stop.
                let mut before = name_start;
                while before > 0 && (bytes[before - 1] as char).is_whitespace() {
                    before -= 1;
                }
                if before > 0 && bytes[before - 1] == b'.' {
                    end = before - 1;
                    continue;
                }
                return float_evidence;
            }
            b'0'..=b'9' => {
                // Numeric literal: scan it; a '.' makes it float.
                let mut start = end;
                while start > 0 && (is_ident_byte(bytes[start - 1]) || bytes[start - 1] == b'.') {
                    start -= 1;
                }
                let lit = &code[start..end];
                return has_float_literal(lit) || float_evidence;
            }
            _ => {
                // Identifier, index, field access: type unknown — a bare
                // name gives no evidence, whatever accumulated before it.
                return false;
            }
        }
    }
}

/// Offset of the `(` matching the `)` at `close`.
fn matching_paren_rev(code: &str, close: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    for i in (0..=close).rev() {
        match bytes[i] {
            b')' => depth += 1,
            b'(' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Does the fragment contain a float literal (`1.0`, `0.5`, `1.`)?
/// Field/method accesses (`self.nx`, `2.max`) and ranges (`0..9`) do not
/// count.
fn has_float_literal(fragment: &str) -> bool {
    let bytes = fragment.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'.' {
            continue;
        }
        let digit_before = i > 0 && bytes[i - 1].is_ascii_digit();
        if !digit_before {
            continue;
        }
        // Exclude ranges `0..` and method calls on integers `2.max(..)`.
        match bytes.get(i + 1) {
            Some(&n) if n.is_ascii_digit() => return true,
            Some(&b'.') => continue, // range
            Some(&n) if n.is_ascii_alphabetic() || n == b'_' => continue, // method/field
            _ => return true,        // `1.` at end or before an operator
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule 6: parallel execution stays on the shared pool.
// ---------------------------------------------------------------------------

/// Raw-thread tokens sanctioned per crate, narrower than a blanket
/// exemption. `tweetmob-serve` may `thread::spawn` — its accept/worker
/// pool is I/O concurrency over an immutable `Arc<ModelBundle>` (no
/// chunk order to keep deterministic, no compute to route through the
/// shared pool) — but `thread::scope` and `crossbeam` there still flag:
/// scoped borrows are the shape of data-parallel compute, which belongs
/// in `tweetmob-par`.
const PAR_SANCTIONED: &[(&str, &[&str])] = &[("tweetmob-serve", &["thread::spawn"])];

/// Rejects raw thread spawns outside `tweetmob-par`. The shared pool is
/// where thread-count resolution (`TWEETMOB_THREADS`, overrides), the
/// `par/<stage>/*` gauges and the chunk-order determinism contract live;
/// a bespoke `thread::scope` elsewhere silently opts out of all three.
/// Test code may spawn freely (e.g. to probe concurrency itself), and
/// [`PAR_SANCTIONED`] grants named crates specific tokens.
fn check_par_layer(
    label: &str,
    crate_name: &str,
    code: &str,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    const TOKENS: &[&str] = &["thread::spawn", "thread::scope", "crossbeam"];
    let sanctioned: &[&str] = PAR_SANCTIONED
        .iter()
        .find(|(name, _)| *name == crate_name)
        .map_or(&[], |(_, tokens)| tokens);
    for &tok in TOKENS {
        if sanctioned.contains(&tok) {
            continue;
        }
        for off in find_token(code, tok) {
            if in_test(off) {
                continue;
            }
            out.push(Diagnostic {
                file: label.to_string(),
                line: line_of(code, off),
                rule: Rule::ParLayer,
                message: format!(
                    "`{tok}` outside `tweetmob-par`: dispatch on \
                     `tweetmob_par::par_map_chunks`/`par_map_reduce` so thread policy, \
                     gauges and determinism stay centralised"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 7: pairwise distances come from the geometry cache.
// ---------------------------------------------------------------------------

/// Rejects direct `haversine_km` calls in the model-fitting crates, and
/// per-element `haversine_km` loops in the batch-kernel crates.
///
/// In [`GEOMETRY_CACHE_CRATES`] every call flags: `PairGeometry` builds
/// the full pairwise triangle once and shares it; a scalar call in
/// `models` or `epidemic` library code reintroduces the per-pair
/// transcendental cost on the hot path and bypasses the
/// `cache/pairgeo/hits` accounting.
///
/// In [`BATCH_KERNEL_CRATES`] only calls inside `for`/`while`/`loop`
/// bodies flag — column-shaped per-element loops belong on
/// `haversine_km_batch` — while one-off pair measurements stay legal.
/// Calls to the batch API itself (`haversine_km_batch*`) never flag.
///
/// Test code may call anything freely — the equality fixtures compare
/// the cache and the batch kernel against exactly these scalar loops.
fn check_raw_haversine(
    label: &str,
    crate_name: &str,
    code: &str,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    let cache_crate = GEOMETRY_CACHE_CRATES.contains(&crate_name);
    let loops = if cache_crate {
        Vec::new()
    } else {
        loop_body_regions(code)
    };
    let bytes = code.as_bytes();
    for off in find_token(code, "haversine_km") {
        if in_test(off) {
            continue;
        }
        if cache_crate {
            out.push(Diagnostic {
                file: label.to_string(),
                line: line_of(code, off),
                rule: Rule::RawHaversine,
                message: "`haversine_km` on the model-fitting hot path: take distances from \
                          `tweetmob_geo::PairGeometry` (build once, share the triangle) so \
                          transcendentals are not recomputed per pair"
                    .to_string(),
            });
            continue;
        }
        // Batch-kernel arm. A longer identifier (`haversine_km_batch`,
        // `haversine_km_batch_direct`) IS the sanctioned batch API.
        let end = off + "haversine_km".len();
        if bytes.get(end).is_some_and(|&b| is_ident_byte(b)) {
            continue;
        }
        if loops.iter().any(|&(s, e)| off > s && off < e) {
            out.push(Diagnostic {
                file: label.to_string(),
                line: line_of(code, off),
                rule: Rule::RawHaversine,
                message: "per-element `haversine_km` loop on a batch path: hoist it onto \
                          `tweetmob_geo::haversine_km_batch` over the coordinate columns \
                          so the origin trigonometry is computed once outside the loop"
                    .to_string(),
            });
        }
    }
}

/// Byte ranges (open brace → matching close brace) of every
/// `for`/`while`/`loop` body in stripped code, for the batch-path arm of
/// [`check_raw_haversine`]. `impl Trait for Type { … }` is excluded by
/// requiring an `in` keyword between a `for` and its opening brace (real
/// `for` loops always have one; an impl header never does), which also
/// skips higher-ranked `for<'a>` bounds. An unclosed body (truncated
/// file) extends to end of input.
fn loop_body_regions(code: &str) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    // `find_token` checks the left identifier boundary only; keywords
    // need the right side checked too (`format!` contains `for`).
    let keyword_sites = |tok: &str| -> Vec<usize> {
        find_token(code, tok)
            .into_iter()
            .filter(|&at| !bytes.get(at + tok.len()).is_some_and(|&b| is_ident_byte(b)))
            .collect()
    };
    let mut regions = Vec::new();
    for (tok, needs_in) in [("for", true), ("while", false), ("loop", false)] {
        for at in keyword_sites(tok) {
            let Some(open_rel) = code[at..].find('{') else {
                continue;
            };
            let open = at + open_rel;
            if needs_in
                && !find_token(&code[at..open], "in")
                    .iter()
                    .any(|&rel| !bytes.get(at + rel + 2).is_some_and(|&b| is_ident_byte(b)))
            {
                continue;
            }
            let mut depth = 0usize;
            let mut close = code.len();
            for (i, &b) in bytes[open..].iter().enumerate() {
                match b {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            close = open + i;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            regions.push((open, close));
        }
    }
    regions
}

// ---------------------------------------------------------------------------
// Reporting helpers used by the binary.
// ---------------------------------------------------------------------------

/// Formats findings grouped per rule with a trailing summary, matching the
/// binary's output.
#[must_use]
pub fn render_report(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diagnostics {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let mut per_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for d in diagnostics {
        *per_rule.entry(d.rule.name()).or_insert(0) += 1;
    }
    if diagnostics.is_empty() {
        out.push_str("tweetmob-lint: workspace clean\n");
    } else {
        let breakdown: Vec<String> = per_rule
            .iter()
            .map(|(rule, n)| format!("{rule}: {n}"))
            .collect();
        out.push_str(&format!(
            "tweetmob-lint: {} finding(s) ({})\n",
            diagnostics.len(),
            breakdown.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_lib(src: &str) -> Vec<Diagnostic> {
        lint_source("fixture.rs", "tweetmob-stats", FileKind::Library, src)
    }

    fn rules(diags: &[Diagnostic]) -> Vec<Rule> {
        diags.iter().map(|d| d.rule).collect()
    }

    // -- crate-header ------------------------------------------------------

    #[test]
    fn crate_header_fires_on_missing_attributes() {
        let bad = "//! Docs.\npub fn f() {}\n";
        let d = lint_source("lib.rs", "tweetmob-stats", FileKind::LibRoot, bad);
        assert_eq!(rules(&d), vec![Rule::CrateHeader, Rule::CrateHeader]);
        // Same line, same rule: the unified (file, line, rule, message)
        // order ties-breaks on message text, deterministically.
        assert!(d[0].message.contains("deny(missing_docs)"));
        assert!(d[1].message.contains("forbid(unsafe_code)"));
    }

    #[test]
    fn crate_header_passes_with_both_attributes() {
        let good = "//! Docs.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}\n";
        assert!(lint_source("lib.rs", "x", FileKind::LibRoot, good).is_empty());
    }

    #[test]
    fn crate_header_not_required_on_modules() {
        let src = "pub fn f() {}\n";
        assert!(lint_source("m.rs", "x", FileKind::Library, src).is_empty());
    }

    // -- no-panic ----------------------------------------------------------

    #[test]
    fn no_panic_fires_on_each_forbidden_call() {
        let bad = "fn f(x: Option<u8>) -> u8 {\n    let y = x.unwrap();\n    \
                   let z = x.expect(\"set\");\n    if y > z { panic!(\"no\"); }\n    \
                   match y { 0 => todo!(), 1 => unreachable!(), _ => y }\n}\n";
        let d = lint_lib(bad);
        assert_eq!(d.len(), 5, "{d:?}");
        assert!(d.iter().all(|d| d.rule == Rule::NoPanic));
        assert_eq!(d[0].line, 2);
        assert_eq!(d[1].line, 3);
        assert_eq!(d[2].line, 4);
    }

    #[test]
    fn no_panic_ignores_tests_strings_and_doc_comments() {
        let good = "/// Call `.unwrap()` if you must: panic!() is shown here.\n\
                    fn f() -> &'static str {\n    \"contains .unwrap() and panic!\"\n}\n\
                    #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                    Some(1).unwrap();\n    }\n}\n";
        assert!(lint_lib(good).is_empty());
    }

    #[test]
    fn no_panic_skips_binary_code() {
        let src = "fn main() { std::fs::read(\"x\").unwrap(); }\n";
        let d = lint_source("main.rs", "tweetmob-cli", FileKind::Binary, src);
        assert!(d.iter().all(|d| d.rule != Rule::NoPanic), "{d:?}");
    }

    #[test]
    fn no_panic_does_not_match_unwrap_or() {
        let good = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(3) }\n\
                    fn g(x: Result<u8, u8>) -> u8 { x.unwrap_or_else(|_| 4) }\n";
        assert!(lint_lib(good).is_empty());
    }

    #[test]
    fn no_panic_annotation_suppresses_with_reason() {
        let src = "fn f(m: std::sync::Mutex<u8>) -> u8 {\n    \
                   // lint: allow(no-panic) — poisoning is unrecoverable here\n    \
                   *m.lock().unwrap()\n}\n";
        assert!(lint_lib(src).is_empty());
        // Without a reason the annotation is invalid and the finding stays.
        let bare = src.replace(" — poisoning is unrecoverable here", "");
        assert_eq!(lint_lib(&bare).len(), 1);
        // An annotation for a different rule does not apply.
        let wrong = src.replace("allow(no-panic)", "allow(float-ord)");
        assert_eq!(lint_lib(&wrong).len(), 1);
    }

    // -- float-ord ---------------------------------------------------------

    #[test]
    fn float_ord_rejects_partial_cmp_and_raw_comparators() {
        let bad = "fn f(v: &mut Vec<f64>) {\n    \
                   v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        let d = lint_lib(bad);
        // partial_cmp + unwrap findings; the sort_by span itself is safe-by
        // -partial_cmp detection already reporting the real hazard.
        assert!(d.iter().any(|d| d.rule == Rule::FloatOrd), "{d:?}");
    }

    #[test]
    fn float_ord_rejects_less_than_comparator() {
        let bad = "fn best(xs: &[f64]) -> Option<&f64> {\n    \
                   xs.iter().max_by(|a, b| if a < b { std::cmp::Ordering::Less } \
                   else { std::cmp::Ordering::Greater })\n}\n";
        // `Ordering` appears in the span, so this one is treated as routed
        // through a total order; strip it to see the rejection.
        let worse = "fn f(v: &mut [f64]) { v.sort_by(|a, b| b.total_cmp(a)); }\n\
                     fn g(v: &mut [(f64, u8)]) { v.sort_by(|a, b| a.1.cmp(&b.1)); }\n";
        assert!(lint_lib(worse).is_empty());
        let naked = "fn h(xs: &[f64]) -> Option<&f64> {\n    \
                     xs.iter().max_by(|a, b| panicky(a, b))\n}\n";
        let d = lint_lib(naked);
        assert_eq!(rules(&d), vec![Rule::FloatOrd]);
        assert!(lint_lib(bad).is_empty());
    }

    #[test]
    fn float_ord_accepts_total_cmp() {
        let good = "fn f(v: &mut Vec<f64>) { v.sort_by(f64::total_cmp); }\n\
                    fn g(xs: &[f64]) -> Option<&f64> {\n    \
                    xs.iter().max_by(|a, b| a.total_cmp(b))\n}\n";
        assert!(lint_lib(good).is_empty());
    }

    #[test]
    fn float_ord_applies_to_binaries_too() {
        let bad = "fn main() { let mut v = vec![1.0]; v.sort_by(|a, b| cmpish(a, b)); }\n";
        let d = lint_source("bin/x.rs", "tweetmob-bench", FileKind::Binary, bad);
        assert_eq!(rules(&d), vec![Rule::FloatOrd]);
    }

    // -- determinism -------------------------------------------------------

    #[test]
    fn determinism_rejects_ambient_entropy_and_clocks() {
        let bad = "fn f() {\n    let mut rng = rand::thread_rng();\n    \
                   let t = std::time::SystemTime::now();\n}\n";
        let d = lint_lib(bad);
        assert_eq!(rules(&d), vec![Rule::Determinism, Rule::Determinism]);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[1].line, 3);
    }

    #[test]
    fn determinism_rejects_hash_collections_in_result_crates() {
        let bad = "use std::collections::HashMap;\n\
                   fn f() -> HashMap<u8, u8> { HashMap::new() }\n";
        let d = lint_source("m.rs", "tweetmob-core", FileKind::Library, bad);
        assert_eq!(d.len(), 3, "{d:?}"); // use + return type + constructor
        assert!(d.iter().all(|d| d.rule == Rule::Determinism));
    }

    #[test]
    fn determinism_allows_hash_collections_outside_result_crates() {
        let src = "use std::collections::HashMap;\nfn f() -> HashMap<u8, u8> { HashMap::new() }\n";
        let d = lint_source("m.rs", "tweetmob-lint", FileKind::Library, src);
        assert!(d.is_empty(), "{d:?}");
        let e = lint_source("bin/x.rs", "tweetmob-core", FileKind::Binary, src);
        assert!(e.is_empty(), "{e:?}");
    }

    #[test]
    fn determinism_scopes_instant_to_the_obs_crate() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n    let _ = t;\n}\n";
        // Allowed only inside tweetmob-obs — the crate that owns the clock.
        let ok = lint_source("span.rs", "tweetmob-obs", FileKind::Library, src);
        assert!(ok.is_empty(), "{ok:?}");
        // Forbidden in every other crate's library code...
        let d = lint_source("m.rs", "tweetmob-core", FileKind::Library, src);
        assert_eq!(rules(&d), vec![Rule::Determinism]);
        assert_eq!(d[0].line, 2);
        assert!(
            d[0].message.contains("tweetmob_obs::span!"),
            "{}",
            d[0].message
        );
        // ...and in binaries (benches must time through the registry too).
        let bad_bin = "fn main() { let _ = std::time::Instant::now(); }\n";
        let b = lint_source("bin/x.rs", "tweetmob-bench", FileKind::Binary, bad_bin);
        assert_eq!(rules(&b), vec![Rule::Determinism]);
        // Test code may use Instant freely, as with the other clock rules.
        let in_test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                       let _ = std::time::Instant::now();\n    }\n}\n";
        assert!(lint_source("m.rs", "tweetmob-core", FileKind::Library, in_test).is_empty());
    }

    #[test]
    fn determinism_accepts_btree_and_seeded_rngs() {
        let good = "use std::collections::BTreeMap;\n\
                    fn f(seed: u64) -> BTreeMap<u8, u8> { let _ = seed; BTreeMap::new() }\n";
        assert!(lint_source("m.rs", "tweetmob-core", FileKind::Library, good).is_empty());
    }

    // -- lossy-cast --------------------------------------------------------

    #[test]
    fn lossy_cast_rejects_bare_float_arithmetic_truncation() {
        let bad = "fn f(lon: f64, cell: f64) -> usize {\n    ((lon + 1.0) / cell) as usize\n}\n";
        let d = lint_lib(bad);
        assert_eq!(rules(&d), vec![Rule::LossyCast]);
        assert_eq!(d[0].line, 2);
        let literal = "fn g() -> i64 { 2.5 as i64 }\n";
        assert_eq!(rules(&lint_lib(literal)), vec![Rule::LossyCast]);
    }

    #[test]
    fn lossy_cast_accepts_explicit_rounding_and_integer_casts() {
        let good =
            "fn f(lon: f64, cell: f64) -> usize {\n    ((lon + 1.0) / cell).floor() as usize\n}\n\
                    fn g(h: f64) -> (usize, usize) { (h.floor() as usize, h.ceil() as usize) }\n\
                    fn h(n: usize) -> f64 { n as f64 }\n\
                    fn k(starts: &[u32], c: usize) -> usize { starts[c] as usize }\n\
                    fn m(i: usize) -> u32 { i as u32 }\n";
        assert!(lint_lib(good).is_empty());
    }

    #[test]
    fn lossy_cast_sees_rounding_through_a_chain() {
        let good = "fn f(x: f64) -> usize { (x / 2.0).floor().max(0.0) as usize }\n";
        assert!(lint_lib(good).is_empty(), "{:?}", lint_lib(good));
        let bad = "fn g(x: f64) -> usize { (x / 2.0).max(0.0) as usize }\n";
        assert_eq!(rules(&lint_lib(bad)), vec![Rule::LossyCast]);
    }

    #[test]
    fn lossy_cast_only_in_strict_crates() {
        let src = "fn f(x: f64) -> usize { (x / 2.0) as usize }\n";
        let d = lint_source("m.rs", "tweetmob-plot", FileKind::Library, src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn lossy_cast_annotation_suppresses() {
        let src = "fn f(x: f64) -> usize {\n    \
                   // lint: allow(lossy-cast) — x is a trusted cell index in [0, n)\n    \
                   (x / 2.0) as usize\n}\n";
        assert!(lint_lib(src).is_empty());
    }

    // -- par-layer ---------------------------------------------------------

    #[test]
    fn par_layer_rejects_raw_thread_spawns_everywhere_but_par() {
        let bad = "fn f() {\n    std::thread::spawn(|| {});\n    \
                   std::thread::scope(|s| { let _ = s; });\n    \
                   crossbeam::scope(|s| { let _ = s; }).unwrap();\n}\n";
        let d = lint_source("m.rs", "tweetmob-core", FileKind::Library, bad);
        let par: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == Rule::ParLayer).collect();
        assert_eq!(par.len(), 3, "{d:?}");
        assert_eq!(par[0].line, 2);
        assert_eq!(par[1].line, 3);
        assert_eq!(par[2].line, 4);
        // Binaries must go through the pool too.
        let b = lint_source("bin/x.rs", "tweetmob-bench", FileKind::Binary, bad);
        assert_eq!(b.iter().filter(|d| d.rule == Rule::ParLayer).count(), 3);
    }

    #[test]
    fn par_layer_exempts_the_pool_crate_and_tests() {
        let src = "fn f() { std::thread::scope(|s| { let _ = s; }); }\n";
        let ok = lint_source("lib.rs", "tweetmob-par", FileKind::Library, src);
        assert!(ok.iter().all(|d| d.rule != Rule::ParLayer), "{ok:?}");
        let in_test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                       std::thread::spawn(|| {}).join().unwrap();\n    }\n}\n";
        assert!(lint_source("m.rs", "tweetmob-core", FileKind::Library, in_test).is_empty());
    }

    #[test]
    fn par_layer_sanctions_serve_spawns_but_nothing_wider() {
        // The serving layer's accept/worker pool may `thread::spawn`...
        let spawn = "fn f() { std::thread::spawn(|| {}); }\n";
        let ok = lint_source("server.rs", "tweetmob-serve", FileKind::Library, spawn);
        assert!(ok.iter().all(|d| d.rule != Rule::ParLayer), "{ok:?}");
        // ...but scoped/crossbeam concurrency there still flags — that
        // is the shape of compute, which belongs in the shared pool.
        let scoped = "fn f() {\n    std::thread::scope(|s| { let _ = s; });\n    \
                      crossbeam::scope(|s| { let _ = s; }).unwrap();\n}\n";
        let d = lint_source("server.rs", "tweetmob-serve", FileKind::Library, scoped);
        assert_eq!(d.iter().filter(|d| d.rule == Rule::ParLayer).count(), 2, "{d:?}");
        // And the sanction is serve's alone: the same spawn elsewhere
        // keeps flagging.
        let other = lint_source("m.rs", "tweetmob-core", FileKind::Library, spawn);
        assert_eq!(other.iter().filter(|d| d.rule == Rule::ParLayer).count(), 1);
    }

    #[test]
    fn par_layer_allows_available_parallelism() {
        let src = "fn f() -> usize {\n    \
                   std::thread::available_parallelism().map_or(1, |n| n.get())\n}\n";
        let d = lint_source("m.rs", "tweetmob-core", FileKind::Library, src);
        assert!(d.iter().all(|d| d.rule != Rule::ParLayer), "{d:?}");
    }

    #[test]
    fn par_layer_annotation_suppresses() {
        let src = "fn f() {\n    \
                   // lint: allow(par-layer) — watchdog thread, not a compute stage\n    \
                   std::thread::spawn(|| {});\n}\n";
        let d = lint_source("m.rs", "tweetmob-core", FileKind::Library, src);
        assert!(d.iter().all(|d| d.rule != Rule::ParLayer), "{d:?}");
    }

    // -- raw-haversine -----------------------------------------------------

    #[test]
    fn raw_haversine_fires_in_model_fitting_crates_only() {
        let bad = "use tweetmob_geo::haversine_km;\n\
                   fn f(a: Point, b: Point) -> f64 { haversine_km(a, b) }\n";
        for crate_name in ["tweetmob-models", "tweetmob-epidemic"] {
            let d = lint_source("m.rs", crate_name, FileKind::Library, bad);
            assert_eq!(rules(&d), vec![Rule::RawHaversine, Rule::RawHaversine]);
            assert_eq!(d[0].line, 1);
            assert_eq!(d[1].line, 2);
            assert!(d[0].message.contains("PairGeometry"), "{}", d[0].message);
        }
        // The geo crate defines the function; core/synth route through the
        // cache by convention but keep the scalar path for construction.
        for crate_name in ["tweetmob-geo", "tweetmob-core", "tweetmob-synth"] {
            let d = lint_source("m.rs", crate_name, FileKind::Library, bad);
            assert!(d.iter().all(|d| d.rule != Rule::RawHaversine), "{d:?}");
        }
    }

    #[test]
    fn raw_haversine_ignores_tests_comments_and_binaries() {
        let good = "/// The cache agrees with the scalar haversine_km path.\n\
                    fn f() {}\n\
                    #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                    let _ = tweetmob_geo::haversine_km(a, b);\n    }\n}\n";
        let d = lint_source("m.rs", "tweetmob-models", FileKind::Library, good);
        assert!(d.is_empty(), "{d:?}");
        let bin = "fn main() { let _ = tweetmob_geo::haversine_km(a, b); }\n";
        let b = lint_source("bin/x.rs", "tweetmob-epidemic", FileKind::Binary, bin);
        assert!(b.iter().all(|d| d.rule != Rule::RawHaversine), "{b:?}");
    }

    #[test]
    fn raw_haversine_annotation_suppresses_with_reason() {
        let src = "fn f(a: Point, b: Point) -> f64 {\n    \
                   // lint: allow(raw-haversine) — one-off pair, no triangle to share\n    \
                   tweetmob_geo::haversine_km(a, b)\n}\n";
        let d = lint_source("m.rs", "tweetmob-models", FileKind::Library, src);
        assert!(d.is_empty(), "{d:?}");
        let bare = src.replace(" — one-off pair, no triangle to share", "");
        let d = lint_source("m.rs", "tweetmob-models", FileKind::Library, &bare);
        assert_eq!(rules(&d), vec![Rule::RawHaversine]);
    }

    #[test]
    fn raw_haversine_batch_arm_flags_loops_only() {
        let looped = "fn total(pts: &[Point], o: Point) -> f64 {\n    \
                      let mut sum = 0.0;\n    \
                      for p in pts {\n        \
                      sum += haversine_km(o, *p);\n    \
                      }\n    sum\n}\n";
        for crate_name in ["tweetmob-geo", "tweetmob-core"] {
            let d = lint_source("m.rs", crate_name, FileKind::Library, looped);
            assert_eq!(rules(&d), vec![Rule::RawHaversine], "{d:?}");
            assert_eq!(d[0].line, 4);
            assert!(
                d[0].message.contains("haversine_km_batch"),
                "{}",
                d[0].message
            );
        }
        // One-off pair measurements outside loops stay legal there...
        let pair = "fn f(a: Point, b: Point) -> f64 { haversine_km(a, b) }\n";
        let d = lint_source("m.rs", "tweetmob-geo", FileKind::Library, pair);
        assert!(d.is_empty(), "{d:?}");
        // ...and crates on neither list never see the rule.
        let d = lint_source("m.rs", "tweetmob-synth", FileKind::Library, looped);
        assert!(d.iter().all(|d| d.rule != Rule::RawHaversine), "{d:?}");
    }

    #[test]
    fn raw_haversine_batch_arm_covers_while_and_loop_bodies() {
        let src = "fn f(pts: &[Point], o: Point) -> f64 {\n    \
                   let mut s = 0.0;\n    let mut i = 0;\n    \
                   while i < pts.len() {\n        \
                   s += haversine_km(o, pts[i]);\n        i += 1;\n    }\n    \
                   loop {\n        \
                   s += haversine_km(o, pts[0]);\n        break;\n    }\n    s\n}\n";
        let d = lint_source("m.rs", "tweetmob-core", FileKind::Library, src);
        assert_eq!(rules(&d), vec![Rule::RawHaversine, Rule::RawHaversine], "{d:?}");
        assert_eq!(d[0].line, 5);
        assert_eq!(d[1].line, 9);
    }

    #[test]
    fn raw_haversine_batch_arm_exempts_the_batch_api_and_impl_blocks() {
        // Calling the batch kernel inside a loop IS the sanctioned shape.
        let batched = "fn f(chunks: &[Chunk], o: Point, out: &mut Vec<f64>) {\n    \
                       for c in chunks {\n        \
                       haversine_km_batch(o, &c.lats, &c.lons, out);\n    }\n}\n";
        let d = lint_source("m.rs", "tweetmob-geo", FileKind::Library, batched);
        assert!(d.is_empty(), "{d:?}");
        // `impl Trait for Type` is not a loop: a straight-line call in a
        // method body stays legal.
        let imp = "impl Distance for Ruler {\n    \
                   fn measure(&self, a: Point, b: Point) -> f64 {\n        \
                   haversine_km(a, b)\n    }\n}\n";
        let d = lint_source("m.rs", "tweetmob-core", FileKind::Library, imp);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn raw_haversine_batch_arm_annotation_suppresses() {
        let src = "fn reference(pts: &[Point], o: Point) -> f64 {\n    \
                   let mut sum = 0.0;\n    \
                   for p in pts {\n        \
                   // lint: allow(raw-haversine) — scalar reference the kernel is compared to\n        \
                   sum += haversine_km(o, *p);\n    }\n    sum\n}\n";
        let d = lint_source("m.rs", "tweetmob-geo", FileKind::Library, src);
        assert!(d.is_empty(), "{d:?}");
    }

    // -- scanner internals -------------------------------------------------

    #[test]
    fn stripper_blanks_strings_comments_and_char_literals() {
        let src = "let s = \"panic!()\"; // panic!()\nlet c = '\\u{1F600}'; /* .unwrap() */\n";
        let stripped = strip_non_code(src);
        assert!(!stripped.code.contains("panic"));
        assert!(!stripped.code.contains("unwrap"));
        assert_eq!(stripped.code.lines().count(), src.lines().count());
    }

    #[test]
    fn stripper_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> String { format!(r#\"panic!() \"quoted\"\"#) }\n\
                   fn g() { Some(1).unwrap(); }\n";
        let d = lint_lib(src);
        assert_eq!(rules(&d), vec![Rule::NoPanic]);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn test_regions_cover_nested_items_and_reset_after() {
        let src = "#[cfg(test)]\nmod tests {\n    fn helper() { Some(1).unwrap(); }\n}\n\
                   fn live() { Some(2).unwrap(); }\n";
        let d = lint_lib(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 5);
    }

    #[test]
    fn cfg_test_on_a_use_statement_does_not_latch() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn live() { Some(2).unwrap(); }\n";
        let d = lint_lib(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn render_report_summarises_per_rule() {
        let d = lint_lib("fn f(x: Option<u8>) { x.unwrap(); }\n");
        let report = render_report(&d);
        assert!(report.contains("fixture.rs:1: [no-panic]"));
        assert!(report.contains("1 finding(s) (no-panic: 1)"));
        assert!(render_report(&[]).contains("workspace clean"));
    }
}
