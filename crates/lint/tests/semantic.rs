//! Integration tests for the workspace semantic passes: panic-path call
//! chains, unit-of-measure inference, determinism taint, unused-allow
//! auditing, the API snapshot, and the unified finding sort order.
//!
//! These run `lint_files` on in-memory fixtures (no disk, no scratch
//! dirs), which exercises exactly the workspace path the binary uses.

use tweetmob_lint::{
    api_snapshot, diff_api, lint_files, lint_source, render_report, FileKind, LintOptions, Rule,
    SourceFile,
};

/// Crate-root header shared by fixtures so `crate-header` stays quiet.
const HEADER: &str = "//! Fixture.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n\n";

fn sf(label: &str, crate_name: &str, kind: FileKind, body: &str) -> SourceFile {
    SourceFile {
        label: label.to_string(),
        crate_name: crate_name.to_string(),
        kind,
        source: format!("{HEADER}{body}"),
    }
}

fn lint_one(crate_name: &str, body: &str) -> Vec<tweetmob_lint::Diagnostic> {
    let files = [sf(
        "crates/fix/src/lib.rs",
        crate_name,
        FileKind::LibRoot,
        body,
    )];
    lint_files(&files, &LintOptions::default())
}

// ---------------------------------------------------------------------------
// panic-path: call-graph reachability with full chains.
// ---------------------------------------------------------------------------

const PANIC_CHAIN: &str = "\
fn inner(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}

fn middle(xs: &[f64]) -> f64 {
    inner(xs)
}

/// Entry.
pub fn entry(xs: &[f64]) -> f64 {
    middle(xs)
}
";

#[test]
fn panic_path_reports_full_call_chain() {
    let diags = lint_one("tweetmob-fixture", PANIC_CHAIN);
    let pp: Vec<_> = diags.iter().filter(|d| d.rule == Rule::PanicPath).collect();
    assert_eq!(
        pp.len(),
        1,
        "one reachable site:\n{}",
        render_report(&diags)
    );
    let msg = &pp[0].message;
    // The chain runs entry → middle → inner, callers first.
    assert!(
        msg.contains("`entry` → `middle` → `inner`"),
        "chain must list every hop from the public entry point, got: {msg}"
    );
    assert!(msg.contains("unwrap()"), "site named in message: {msg}");
    // The textual no-panic rule fires on the same line as the path rule.
    assert!(
        diags
            .iter()
            .any(|d| d.rule == Rule::NoPanic && d.line == pp[0].line),
        "{}",
        render_report(&diags)
    );
}

#[test]
fn panic_path_ignores_unreachable_private_fn() {
    // No public caller reaches `inner`: the textual rule still fires, the
    // path rule stays quiet.
    let body = "\
fn inner(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}

/// Entry that never calls `inner`.
pub fn entry() -> f64 {
    0.0
}
";
    let diags = lint_one("tweetmob-fixture", body);
    assert!(
        !diags.iter().any(|d| d.rule == Rule::PanicPath),
        "{}",
        render_report(&diags)
    );
    assert!(diags.iter().any(|d| d.rule == Rule::NoPanic));
}

#[test]
fn panic_rule_aliases_suppress_each_other() {
    // One `no-panic` annotation on the site must silence BOTH rules and
    // count as used (no unused-allow), in either alias spelling.
    for alias in ["no-panic", "panic-path"] {
        let annotated = PANIC_CHAIN.replace(
            "    *xs.first().unwrap()",
            &format!(
                "    // lint: allow({alias}) — fixture: slice is non-empty by contract\n    \
                 *xs.first().unwrap()"
            ),
        );
        let diags = lint_one("tweetmob-fixture", &annotated);
        assert!(
            diags.is_empty(),
            "alias `{alias}` must clear both panic rules:\n{}",
            render_report(&diags)
        );
    }
}

#[test]
fn index_panics_is_opt_in() {
    let body = "\
/// Indexes.
pub fn pick(xs: &[f64]) -> f64 {
    xs[0]
}
";
    let files = [sf(
        "crates/fix/src/lib.rs",
        "tweetmob-fixture",
        FileKind::LibRoot,
        body,
    )];
    let quiet = lint_files(&files, &LintOptions::default());
    assert!(quiet.is_empty(), "{}", render_report(&quiet));
    let strict = lint_files(&files, &LintOptions { index_panics: true });
    assert!(
        strict
            .iter()
            .any(|d| d.rule == Rule::PanicPath && d.message.contains("indexing")),
        "{}",
        render_report(&strict)
    );
}

// ---------------------------------------------------------------------------
// unit-measure: degree/radian/km conventions in the geographic crates.
// ---------------------------------------------------------------------------

#[test]
fn unit_measure_flags_trig_on_degrees() {
    let body = "\
/// Sine of a latitude handed over in degrees.
pub fn bad(lat_deg: f64) -> f64 {
    lat_deg.sin()
}
";
    let diags = lint_one("tweetmob-geo", body);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == Rule::UnitMeasure && d.message.contains("degrees")),
        "{}",
        render_report(&diags)
    );
}

#[test]
fn unit_measure_flags_double_conversion() {
    let body = "\
/// Converts a value that is already in radians.
pub fn bad(lat_rad: f64) -> f64 {
    lat_rad.to_radians()
}
";
    let diags = lint_one("tweetmob-geo", body);
    assert!(
        diags.iter().any(|d| d.rule == Rule::UnitMeasure),
        "{}",
        render_report(&diags)
    );
}

#[test]
fn unit_measure_flags_mixed_arithmetic() {
    let body = "\
/// Adds a degree quantity to a radian quantity.
pub fn bad(a_deg: f64, b_rad: f64) -> f64 {
    a_deg + b_rad
}
";
    let diags = lint_one("tweetmob-models", body);
    assert!(
        diags.iter().any(|d| d.rule == Rule::UnitMeasure),
        "{}",
        render_report(&diags)
    );
}

#[test]
fn unit_measure_accepts_clean_code_and_other_crates() {
    let body = "\
/// Correct conversion chain, and a km quantity left alone.
pub fn good(lat_deg: f64, radius_km: f64) -> f64 {
    let lat_rad = lat_deg.to_radians();
    lat_rad.sin() * radius_km
}
";
    let diags = lint_one("tweetmob-geo", body);
    assert!(diags.is_empty(), "{}", render_report(&diags));

    // The same violation outside the unit-checked crates is not this
    // rule's business.
    let bad = "\
/// Sine of degrees, but in a crate with no unit contract.
pub fn bad(lat_deg: f64) -> f64 {
    lat_deg.sin()
}
";
    let diags = lint_one("tweetmob-fixture", bad);
    assert!(
        !diags.iter().any(|d| d.rule == Rule::UnitMeasure),
        "{}",
        render_report(&diags)
    );
}

#[test]
fn unit_measure_division_resets_the_unit() {
    // `radius_km / KM_PER_DEG` is no longer kilometres; converting the
    // quotient must not be flagged (the real geo crate does exactly this).
    let body = "\
/// Kilometres per degree of latitude.
pub const KM_PER_DEG: f64 = 111.32;

/// Radius window in degrees, then radians.
pub fn window(radius_km: f64) -> f64 {
    let dlat = radius_km / KM_PER_DEG;
    dlat.to_radians()
}
";
    let diags = lint_one("tweetmob-geo", body);
    assert!(diags.is_empty(), "{}", render_report(&diags));
}

#[test]
fn unit_measure_is_suppressible() {
    let body = "\
/// Sine of a latitude handed over in degrees.
pub fn bad(lat_deg: f64) -> f64 {
    // lint: allow(unit-measure) — fixture documents the escape hatch
    lat_deg.sin()
}
";
    let diags = lint_one("tweetmob-geo", body);
    assert!(diags.is_empty(), "{}", render_report(&diags));
}

// ---------------------------------------------------------------------------
// determinism-taint: clock/thread/unordered values must not reach output.
// ---------------------------------------------------------------------------

#[test]
fn taint_flags_elapsed_flowing_into_format_macro() {
    let body = "\
/// Prints how long a stage took.
pub fn report(start: std::time::Instant) {
    let dt = start.elapsed();
    println!(\"stage took {:?}\", dt);
}
";
    let diags = lint_one("tweetmob-fixture", body);
    let taint: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::DeterminismTaint)
        .collect();
    assert_eq!(taint.len(), 1, "{}", render_report(&diags));
    assert!(
        taint[0].message.contains("wall-clock") && taint[0].message.contains("_ns"),
        "message names the source and routes to obs: {}",
        taint[0].message
    );
}

#[test]
fn taint_flags_unordered_iteration_into_json_sink() {
    let body = "\
/// Serializes counts in whatever order the map yields them.
pub fn dump(map: &std::collections::HashMap<u32, u32>) -> String {
    let mut out = String::new();
    for v in map.values() {
        out.push_str(&to_json(v));
    }
    out
}

fn to_json(v: &u32) -> String {
    format!(\"{v}\")
}
";
    // `tweetmob-bench` is outside the result crates, so the textual
    // HashMap ban stays quiet and only the flow-sensitive rule fires.
    let diags = lint_one("tweetmob-bench", body);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == Rule::DeterminismTaint && d.message.contains("unordered")),
        "{}",
        render_report(&diags)
    );
}

#[test]
fn taint_flags_clock_values_flowing_into_trace_exporters() {
    // Both exporter spellings are sinks: a wall-clock value handed to
    // either would put nondeterministic bytes in the exported trace.
    for sink in ["to_chrome_trace", "to_collapsed_stacks"] {
        let body = format!(
            "\
/// Exports the event log, wrongly skewed by a live clock reading.
pub fn export(start: std::time::Instant, buf: &TraceLog) -> String {{
    let skew = start.elapsed().as_nanos() as u64;
    buf.{sink}(skew)
}}
"
        );
        let diags = lint_one("tweetmob-cli", &body);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::DeterminismTaint && d.message.contains("wall-clock")),
            "{sink} should be a taint sink: {}",
            render_report(&diags)
        );
    }
}

#[test]
fn taint_exempts_trace_exporters_inside_obs() {
    // The event log's own exporter is the sanctioned path: inside
    // tweetmob-obs the redaction contract (and its byte-diff tests)
    // polices timing, not the taint pass.
    let body = "\
/// Renders the event buffer, stamping each event's recorded clock.
pub fn export(log: &TraceLog, captured_at: std::time::Instant) -> String {
    let t_ns = captured_at.elapsed().as_nanos() as u64;
    log.to_chrome_trace(t_ns)
}
";
    let diags = lint_one("tweetmob-obs", body);
    assert!(
        !diags.iter().any(|d| d.rule == Rule::DeterminismTaint),
        "{}",
        render_report(&diags)
    );
}

#[test]
fn taint_exempts_obs_and_untainted_values() {
    let body = "\
/// Prints how long a stage took.
pub fn report(start: std::time::Instant) {
    let dt = start.elapsed();
    println!(\"stage took {:?}\", dt);
}
";
    // The obs crate owns the sanctioned `_ns` redaction path.
    let diags = lint_one("tweetmob-obs", body);
    assert!(
        !diags.iter().any(|d| d.rule == Rule::DeterminismTaint),
        "{}",
        render_report(&diags)
    );

    // A value with no nondeterministic ancestry may be printed anywhere.
    let clean = "\
/// Prints a pure function of the input.
pub fn report(n: u64) {
    let doubled = n * 2;
    println!(\"{doubled}\");
}
";
    let diags = lint_one("tweetmob-fixture", clean);
    assert!(diags.is_empty(), "{}", render_report(&diags));
}

// ---------------------------------------------------------------------------
// unused-allow: escape hatches must keep earning their place.
// ---------------------------------------------------------------------------

#[test]
fn stale_allow_is_a_finding() {
    let body = "\
/// Nothing here panics.
pub fn fine(xs: &[f64]) -> f64 {
    // lint: allow(no-panic) — left behind after a refactor
    xs.first().copied().unwrap_or(0.0)
}
";
    let diags = lint_one("tweetmob-fixture", body);
    let ua: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == Rule::UnusedAllow)
        .collect();
    assert_eq!(ua.len(), 1, "{}", render_report(&diags));
    assert!(
        ua[0].message.contains("stale") && ua[0].message.contains("no-panic"),
        "{}",
        ua[0].message
    );
}

#[test]
fn unknown_rule_and_missing_reason_are_findings() {
    let body = "\
/// Typo'd rule name.
pub fn f(xs: &[f64]) -> f64 {
    // lint: allow(no-panics) — off by a letter
    *xs.first().unwrap()
}

/// Annotation without a justification.
pub fn g(xs: &[f64]) -> f64 {
    // lint: allow(no-panic)
    *xs.first().unwrap()
}
";
    let diags = lint_one("tweetmob-fixture", body);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == Rule::UnusedAllow && d.message.contains("unknown rule")),
        "{}",
        render_report(&diags)
    );
    assert!(
        diags
            .iter()
            .any(|d| d.rule == Rule::UnusedAllow && d.message.contains("justification")),
        "{}",
        render_report(&diags)
    );
    // Neither malformed annotation suppresses: the unwraps still fire.
    assert_eq!(
        diags.iter().filter(|d| d.rule == Rule::NoPanic).count(),
        2,
        "{}",
        render_report(&diags)
    );
}

#[test]
fn unused_allow_skips_test_code_and_single_file_mode() {
    let body = "\
/// Fine.
pub fn fine() -> f64 {
    0.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        // lint: allow(no-panic) — tests may hedge freely
        assert_eq!(super::fine(), 0.0);
    }
}
";
    let diags = lint_one("tweetmob-fixture", body);
    assert!(diags.is_empty(), "{}", render_report(&diags));

    // `lint_source` (single-file mode, e.g. editor integration) never
    // reports unused-allow: it cannot see the whole workspace.
    let stale = format!(
        "{HEADER}/// Fine.\npub fn fine() -> f64 {{\n    \
         // lint: allow(no-panic) — stale\n    0.0\n}}\n"
    );
    let diags = lint_source("lib.rs", "tweetmob-fixture", FileKind::LibRoot, &stale);
    assert!(diags.is_empty(), "{}", render_report(&diags));
}

// ---------------------------------------------------------------------------
// API snapshot: generation and drift detection.
// ---------------------------------------------------------------------------

#[test]
fn api_snapshot_golden() {
    let body = "\
/// A public point.
pub struct P {
    /// Latitude, radians.
    pub lat_rad: f64,
    hidden: u8,
}

impl P {
    /// Public accessor.
    pub fn lat(&self) -> f64 {
        self.lat_rad
    }

    fn private_helper(&self) {}
}

/// Free function.
pub fn dist(a: &P, b: &P) -> f64 {
    (a.lat_rad - b.lat_rad).abs()
}

fn free_private() {}
";
    let files = [sf(
        "crates/fix/src/lib.rs",
        "tweetmob-fixture",
        FileKind::LibRoot,
        body,
    )];
    let snap = api_snapshot(&files);
    let lines: Vec<&str> = snap.lines().filter(|l| !l.starts_with('#')).collect();
    assert!(
        lines.contains(&"tweetmob-fixture fn P::lat pub fn lat(&self) -> f64"),
        "inherent method line, got:\n{snap}"
    );
    assert!(
        lines.contains(&"tweetmob-fixture fn dist pub fn dist(a: &P, b: &P) -> f64"),
        "free function line, got:\n{snap}"
    );
    assert!(
        lines.iter().any(|l| l.contains("struct P")),
        "struct line, got:\n{snap}"
    );
    assert!(
        lines.iter().any(|l| l.contains("field P.lat_rad")),
        "public field line, got:\n{snap}"
    );
    for private in ["hidden", "private_helper", "free_private"] {
        assert!(
            !snap.contains(private),
            "`{private}` is not public API, got:\n{snap}"
        );
    }
    // Sorted and deterministic: regenerating yields identical bytes.
    let mut sorted = lines.clone();
    sorted.sort_unstable();
    assert_eq!(lines, sorted, "snapshot lines must be sorted");
    assert_eq!(snap, api_snapshot(&files));
}

#[test]
fn api_diff_reports_drift_both_ways() {
    let old = "# header\nalpha fn a sig\nalpha fn b sig\n";
    let same = diff_api(old, "alpha fn a sig\nalpha fn b sig\n# other header\n");
    assert!(same.is_empty(), "comment lines must be ignored: {same:?}");

    let drift = diff_api(old, "# header\nalpha fn a sig\nalpha fn c sig\n");
    assert_eq!(drift, vec!["- alpha fn b sig", "+ alpha fn c sig"]);
}

// ---------------------------------------------------------------------------
// Unified sort order: single-file and workspace paths agree.
// ---------------------------------------------------------------------------

#[test]
fn multi_rule_same_line_output_is_deterministic() {
    // One line that violates float-ord AND no-panic at once.
    let body = "\
/// Sorts NaN-unsafely and panics on NaN, all on one line.
pub fn sort(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
";
    let via_files = lint_one("tweetmob-fixture", body);
    let source = format!("{HEADER}{body}");
    let via_source = lint_source(
        "crates/fix/src/lib.rs",
        "tweetmob-fixture",
        FileKind::LibRoot,
        &source,
    );

    // Both paths produce the same findings in the same order. (The
    // workspace path adds the panic-path diagnostic; drop it to compare
    // the shared textual set.)
    let textual: Vec<_> = via_files
        .iter()
        .filter(|d| d.rule != Rule::PanicPath)
        .cloned()
        .collect();
    assert_eq!(textual, via_source, "paths must agree byte-for-byte");

    // Same-line findings come out rule-ordered, and repeat runs are
    // byte-identical.
    // The shared header is four lines; the violating line is body line 3.
    let same_line: Vec<_> = via_files.iter().filter(|d| d.line == 7).collect();
    assert!(same_line.len() >= 2, "{}", render_report(&via_files));
    let mut rules: Vec<Rule> = same_line.iter().map(|d| d.rule).collect();
    let unsorted = rules.clone();
    rules.sort();
    assert_eq!(rules, unsorted, "same-line findings sorted by rule");
    assert_eq!(via_files, lint_one("tweetmob-fixture", body));
    assert_eq!(render_report(&via_files), render_report(&via_files.clone()));
}
