//! Integration tests: the linter against the real workspace (self-check)
//! and against on-disk bad-fixture crates, including the binary's exit
//! codes.

use std::fs;
use std::path::{Path, PathBuf};

use tweetmob_lint::{lint_workspace, render_report, Rule};

/// The enclosing real workspace root (`crates/lint/../..`).
fn real_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has two ancestors")
        .to_path_buf()
}

/// A scratch directory unique to this test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("tweetmob-lint-test-{}-{tag}", std::process::id()));
        // A stale dir from a crashed earlier run must not pollute results.
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        Self(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Writes a one-crate fixture workspace. The crate is named
/// `tweetmob-core` so the result-crate (determinism) and cast-strict
/// (lossy-cast) rule families both apply.
fn write_fixture(root: &Path, lib_source: &str) {
    write_named_fixture(root, "tweetmob-core", lib_source);
}

/// As [`write_fixture`] but with an explicit package name, for rules
/// scoped to particular crates (e.g. `raw-haversine`).
fn write_named_fixture(root: &Path, package: &str, lib_source: &str) {
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .expect("write workspace manifest");
    let pkg = root.join("crates/fixture");
    fs::create_dir_all(pkg.join("src")).expect("create fixture src");
    fs::write(
        pkg.join("Cargo.toml"),
        format!("[package]\nname = \"{package}\"\nversion = \"0.0.0\"\n"),
    )
    .expect("write fixture manifest");
    fs::write(pkg.join("src/lib.rs"), lib_source).expect("write fixture lib.rs");
}

const BAD_FIXTURE: &str = "\
//! Bad fixture: violates every rule family.

/// Returns the first element.
pub fn first(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}

/// Sorts floats NaN-unsafely.
pub fn sort_floats(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).expect(\"nan\"));
}

/// Counts values through a hash map.
pub fn count(map: &std::collections::HashMap<u32, u32>) -> u32 {
    map.values().sum()
}

/// Truncates a scaled value.
pub fn trunc(x: f64) -> i64 {
    (x * 3.0) as i64
}

/// Spawns a bespoke worker thread.
pub fn spawn_worker() {
    std::thread::spawn(|| {});
}
";

const GOOD_FIXTURE: &str = "\
//! Good fixture: the same shapes written within the rules.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Returns the first element, if any.
pub fn first(xs: &[f64]) -> Option<f64> {
    xs.first().copied()
}

/// Sorts floats with a total order.
pub fn sort_floats(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

/// Counts values through an ordered map.
pub fn count(map: &std::collections::BTreeMap<u32, u32>) -> u32 {
    map.values().sum()
}

/// Rounds a scaled value explicitly before converting.
pub fn trunc(x: f64) -> i64 {
    (x * 3.0).floor() as i64
}

/// Dispatches work on the shared pool instead of spawning raw threads.
pub fn spawn_worker() -> usize {
    tweetmob_par::par_map_chunks(\"fixture\", 8, 0, |r| r.len()).len()
}
";

#[test]
fn real_workspace_is_clean() {
    let diags = lint_workspace(&real_root()).expect("lint the real workspace");
    assert!(
        diags.is_empty(),
        "the workspace must self-lint clean, found:\n{}",
        render_report(&diags)
    );
}

#[test]
fn good_fixture_is_clean() {
    let scratch = Scratch::new("good");
    write_fixture(scratch.path(), GOOD_FIXTURE);
    let diags = lint_workspace(scratch.path()).expect("lint good fixture");
    assert!(diags.is_empty(), "unexpected:\n{}", render_report(&diags));
}

#[test]
fn bad_fixture_is_flagged_on_exact_lines() {
    let scratch = Scratch::new("bad");
    write_fixture(scratch.path(), BAD_FIXTURE);
    let diags = lint_workspace(scratch.path()).expect("lint bad fixture");

    let has = |line: usize, rule: Rule| {
        diags
            .iter()
            .any(|d| d.file.ends_with("lib.rs") && d.line == line && d.rule == rule)
    };
    // Missing `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]`.
    assert!(has(1, Rule::CrateHeader), "{}", render_report(&diags));
    assert_eq!(
        diags.iter().filter(|d| d.rule == Rule::CrateHeader).count(),
        2,
        "both header attributes are missing:\n{}",
        render_report(&diags)
    );
    // `.unwrap()` in library code.
    assert!(has(5, Rule::NoPanic), "{}", render_report(&diags));
    // `partial_cmp` inside a sort closure (and `.expect` riding along).
    assert!(has(10, Rule::FloatOrd), "{}", render_report(&diags));
    assert!(has(10, Rule::NoPanic), "{}", render_report(&diags));
    // `HashMap` in a result-producing crate's library path.
    assert!(has(14, Rule::Determinism), "{}", render_report(&diags));
    // Bare float→int truncation with float arithmetic in the cast span.
    assert!(has(20, Rule::LossyCast), "{}", render_report(&diags));
    // Raw thread spawn outside the shared pool.
    assert!(has(25, Rule::ParLayer), "{}", render_report(&diags));

    // No stray findings outside the six violation sites.
    let expected_lines = [1, 5, 10, 14, 20, 25];
    for d in &diags {
        assert!(expected_lines.contains(&d.line), "unexpected finding: {d}");
    }
}

#[test]
fn raw_haversine_fixture_is_flagged_and_annotatable() {
    const FIXTURE: &str = "\
//! Model crate fixture calling the scalar distance path directly.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Sums distances pair by pair instead of using the cache.
pub fn total(points: &[Point]) -> f64 {
    let mut sum = 0.0;
    for (i, a) in points.iter().enumerate() {
        for b in &points[i + 1..] {
            sum += tweetmob_geo::haversine_km(*a, *b);
        }
    }
    sum
}
";
    let scratch = Scratch::new("raw-haversine");
    write_named_fixture(scratch.path(), "tweetmob-models", FIXTURE);
    let diags = lint_workspace(scratch.path()).expect("lint raw-haversine fixture");
    assert_eq!(
        diags.len(),
        1,
        "exactly the scalar call fires:\n{}",
        render_report(&diags)
    );
    assert_eq!(diags[0].rule, Rule::RawHaversine);
    assert_eq!(diags[0].line, 10);

    // Under a batch-kernel crate the same loop flags with the
    // hoist-onto-the-batch-API message (the call sits inside `for`
    // bodies)...
    write_named_fixture(scratch.path(), "tweetmob-geo", FIXTURE);
    let geo = lint_workspace(scratch.path()).expect("lint under tweetmob-geo");
    assert_eq!(geo.len(), 1, "{}", render_report(&geo));
    assert_eq!(geo[0].rule, Rule::RawHaversine);
    assert_eq!(geo[0].line, 10);
    assert!(
        geo[0].message.contains("haversine_km_batch"),
        "{}",
        geo[0].message
    );

    // ...while a crate on neither list never sees the rule.
    write_named_fixture(scratch.path(), "tweetmob-synth", FIXTURE);
    let synth = lint_workspace(scratch.path()).expect("lint under tweetmob-synth");
    assert!(synth.is_empty(), "{}", render_report(&synth));

    // ...and the escape hatch clears the finding in the fitting crate.
    let annotated = FIXTURE.replace(
        "            sum += tweetmob_geo::haversine_km(*a, *b);",
        "            // lint: allow(raw-haversine) — fixture documents the escape hatch\n            \
         sum += tweetmob_geo::haversine_km(*a, *b);",
    );
    write_named_fixture(scratch.path(), "tweetmob-models", &annotated);
    let allowed = lint_workspace(scratch.path()).expect("lint annotated fixture");
    assert!(allowed.is_empty(), "{}", render_report(&allowed));
}

#[test]
fn annotated_bad_fixture_is_allowed() {
    let scratch = Scratch::new("annotated");
    let annotated = BAD_FIXTURE
        .replace(
            "    *xs.first().unwrap()",
            "    // lint: allow(no-panic) — fixture documents the escape hatch\n    \
             *xs.first().unwrap()",
        )
        .replace(
            "//! Bad fixture: violates every rule family.",
            "//! Annotated fixture.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]",
        );
    write_fixture(scratch.path(), &annotated);
    let diags = lint_workspace(scratch.path()).expect("lint annotated fixture");
    assert!(
        !diags
            .iter()
            .any(|d| d.rule == Rule::NoPanic && d.message.contains("unwrap")),
        "annotated unwrap must be allowed:\n{}",
        render_report(&diags)
    );
    assert!(
        !diags.iter().any(|d| d.rule == Rule::CrateHeader),
        "headers were added:\n{}",
        render_report(&diags)
    );
    // The other, un-annotated violations still fire.
    assert!(diags.iter().any(|d| d.rule == Rule::FloatOrd));
    assert!(diags.iter().any(|d| d.rule == Rule::Determinism));
    assert!(diags.iter().any(|d| d.rule == Rule::LossyCast));
}

#[test]
fn binary_reports_diagnostics_and_exit_codes() {
    let scratch = Scratch::new("bin");
    write_fixture(scratch.path(), BAD_FIXTURE);
    let bin = env!("CARGO_BIN_EXE_tweetmob-lint");

    let out = std::process::Command::new(bin)
        .arg(scratch.path())
        .output()
        .expect("run tweetmob-lint on bad fixture");
    assert_eq!(out.status.code(), Some(1), "bad fixture must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("lib.rs:5: [no-panic]"),
        "diagnostics must carry file:line: [rule], got:\n{stdout}"
    );
    assert!(
        stdout.contains("finding"),
        "summary line expected:\n{stdout}"
    );

    let clean = std::process::Command::new(bin)
        .arg(real_root())
        .output()
        .expect("run tweetmob-lint on the real workspace");
    assert_eq!(clean.status.code(), Some(0), "real workspace must exit 0");
    assert!(String::from_utf8_lossy(&clean.stdout).contains("workspace clean"));

    // A typo'd root must not pass as "clean": exit 2, not 0.
    let missing = std::process::Command::new(bin)
        .arg(scratch.path().join("no-such-workspace"))
        .output()
        .expect("run tweetmob-lint on a nonexistent root");
    assert_eq!(missing.status.code(), Some(2), "missing root must exit 2");
    assert!(
        String::from_utf8_lossy(&missing.stderr).contains("not a workspace root"),
        "stderr must explain the failure"
    );
}
