//! Minimal time handling: epoch-second timestamps.
//!
//! The workspace deliberately avoids a calendar dependency — all the
//! paper's temporal arithmetic is differences of collection-window
//! timestamps (waiting times, trip ordering), for which Unix epoch seconds
//! suffice. The paper's collection window (September 2013 – April 2014) is
//! exposed as constants for the synthetic generator.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Seconds per hour.
pub const SECS_PER_HOUR: i64 = 3_600;
/// Seconds per day.
pub const SECS_PER_DAY: i64 = 86_400;

/// A Unix timestamp in whole seconds.
///
/// Ordered, `Copy`, 8 bytes. Negative values (pre-1970) are permitted —
/// arithmetic is plain `i64`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Timestamp(i64);

impl Timestamp {
    /// Start of the paper's collection window: 2013-09-01T00:00:00Z.
    pub const COLLECTION_START: Timestamp = Timestamp(1_377_993_600);
    /// End of the paper's collection window: 2014-04-30T23:59:59Z.
    pub const COLLECTION_END: Timestamp = Timestamp(1_398_902_399);

    /// Wraps raw epoch seconds.
    #[inline]
    pub const fn from_secs(secs: i64) -> Self {
        Self(secs)
    }

    /// Raw epoch seconds.
    #[inline]
    pub const fn as_secs(self) -> i64 {
        self.0
    }

    /// Signed difference `self − earlier`, in seconds.
    #[inline]
    pub const fn seconds_since(self, earlier: Timestamp) -> i64 {
        self.0 - earlier.0
    }

    /// Signed difference `self − earlier`, in fractional hours.
    #[inline]
    pub fn hours_since(self, earlier: Timestamp) -> f64 {
        self.seconds_since(earlier) as f64 / SECS_PER_HOUR as f64
    }

    /// This timestamp shifted forward by `secs` (negative shifts back).
    #[inline]
    pub const fn plus_secs(self, secs: i64) -> Timestamp {
        Timestamp(self.0 + secs)
    }

    /// Whether the timestamp falls inside `[start, end]` inclusive.
    #[inline]
    pub fn within(self, start: Timestamp, end: Timestamp) -> bool {
        self >= start && self <= end
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collection_window_is_about_seven_months() {
        let days =
            Timestamp::COLLECTION_END.seconds_since(Timestamp::COLLECTION_START) / SECS_PER_DAY;
        assert_eq!(days, 241); // Sep(30)+Oct(31)+Nov(30)+Dec(31)+Jan(31)+Feb(28)+Mar(31)+Apr(30)-1 full days
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = Timestamp::from_secs(100);
        let b = Timestamp::from_secs(4_000);
        assert!(a < b);
        assert_eq!(b.seconds_since(a), 3_900);
        assert_eq!(a.seconds_since(b), -3_900);
        assert!((b.hours_since(a) - 3_900.0 / 3_600.0).abs() < 1e-12);
    }

    #[test]
    fn plus_secs_shifts_both_ways() {
        let t = Timestamp::from_secs(1_000);
        assert_eq!(t.plus_secs(500).as_secs(), 1_500);
        assert_eq!(t.plus_secs(-2_000).as_secs(), -1_000);
    }

    #[test]
    fn within_is_inclusive() {
        let (s, e) = (Timestamp::from_secs(10), Timestamp::from_secs(20));
        assert!(Timestamp::from_secs(10).within(s, e));
        assert!(Timestamp::from_secs(20).within(s, e));
        assert!(Timestamp::from_secs(15).within(s, e));
        assert!(!Timestamp::from_secs(9).within(s, e));
        assert!(!Timestamp::from_secs(21).within(s, e));
    }

    #[test]
    fn display_shows_seconds() {
        assert_eq!(Timestamp::from_secs(42).to_string(), "42s");
    }
}
