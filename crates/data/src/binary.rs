//! Compact binary dataset format (`.twb`).
//!
//! JSONL costs ~90 bytes per tweet; at the paper's 6.3 M tweets that is
//! ~570 MB of text. The binary format stores fixed-width little-endian
//! records — `u32` user, `i64` seconds, `f64` lat, `f64` lon — behind a
//! 16-byte header (magic, version, record count), for 28 bytes/record
//! (~176 MB full-scale) and zero parse ambiguity. Encoding uses the
//! `bytes` crate's `BufMut`/`Buf` cursors.
//!
//! Layout:
//!
//! ```text
//! offset size  field
//! 0      4     magic  b"TWB0"
//! 4      4     version (u32 LE) — currently 1
//! 8      8     record count (u64 LE)
//! 16     28·n  records: user u32 | time i64 | lat f64 | lon f64
//! ```

use crate::dataset::TweetDataset;
use crate::io::IoError;
use crate::time::Timestamp;
use crate::tweet::{Tweet, UserId};
use bytes::{Buf, BufMut};
use std::io::{Read, Write};
use tweetmob_geo::Point;

/// File magic.
pub const MAGIC: [u8; 4] = *b"TWB0";
/// Current format version.
pub const VERSION: u32 = 1;
/// Bytes per record.
pub const RECORD_BYTES: usize = 4 + 8 + 8 + 8;
/// Header bytes.
pub const HEADER_BYTES: usize = 16;

/// Writes the dataset in binary form.
///
/// # Errors
///
/// Propagates write failures.
pub fn write_binary<W: Write>(ds: &TweetDataset, mut w: W) -> Result<(), IoError> {
    let mut header = Vec::with_capacity(HEADER_BYTES);
    header.put_slice(&MAGIC);
    header.put_u32_le(VERSION);
    header.put_u64_le(ds.n_tweets() as u64);
    w.write_all(&header)?;
    // Chunked encoding keeps the buffer small regardless of dataset size.
    let mut buf = Vec::with_capacity(RECORD_BYTES * 4_096);
    for t in ds.iter_tweets() {
        buf.put_u32_le(t.user.0);
        buf.put_i64_le(t.time.as_secs());
        buf.put_f64_le(t.location.lat);
        buf.put_f64_le(t.location.lon);
        if buf.len() >= RECORD_BYTES * 4_096 {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Reads a binary dataset written by [`write_binary`].
///
/// # Errors
///
/// * [`IoError::Io`] — underlying read failure or truncated stream.
/// * [`IoError::Format`] — bad magic, unsupported version, or an
///   implausible record count (no path attached; callers that know the
///   file name add it with [`IoError::with_path`]).
/// * [`IoError::BadCoordinate`] — a record with out-of-range lat/lon.
pub fn read_binary<R: Read>(mut r: R) -> Result<TweetDataset, IoError> {
    let _span = tweetmob_obs::span!("read_binary");
    let mut header = [0u8; HEADER_BYTES];
    r.read_exact(&mut header)?;
    let mut cursor = &header[..];
    let mut magic = [0u8; 4];
    cursor.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(IoError::Format {
            path: String::new(),
            message: format!("bad magic {magic:?}, expected {MAGIC:?}"),
        });
    }
    let version = cursor.get_u32_le();
    if version != VERSION {
        return Err(IoError::Format {
            path: String::new(),
            message: format!("unsupported version {version}"),
        });
    }
    let count = cursor.get_u64_le();
    // Guard absurd counts before allocating (truncated/corrupt header).
    const MAX_RECORDS: u64 = 2_000_000_000;
    if count > MAX_RECORDS {
        return Err(IoError::Format {
            path: String::new(),
            message: format!("implausible record count {count}"),
        });
    }
    let mut tweets = Vec::with_capacity(count.min(1 << 22) as usize);
    let mut record = [0u8; RECORD_BYTES];
    for i in 0..count {
        r.read_exact(&mut record).map_err(IoError::Io)?;
        let mut c = &record[..];
        let user = c.get_u32_le();
        let secs = c.get_i64_le();
        let lat = c.get_f64_le();
        let lon = c.get_f64_le();
        let location = Point::new(lat, lon).map_err(|source| IoError::BadCoordinate {
            line: i as usize + 1,
            source,
        })?;
        tweets.push(Tweet::new(
            UserId(user),
            Timestamp::from_secs(secs),
            location,
        ));
    }
    tweetmob_obs::counter!("data/tweets_read").add(tweets.len() as u64);
    Ok(TweetDataset::from_tweets(tweets))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TweetDataset {
        TweetDataset::from_tweets(vec![
            Tweet::new(
                UserId(1),
                Timestamp::from_secs(100),
                Point::new_unchecked(-33.8688, 151.2093),
            ),
            Tweet::new(
                UserId(2),
                Timestamp::from_secs(-50), // pre-1970 allowed
                Point::new_unchecked(-37.8136, 144.9631),
            ),
            Tweet::new(
                UserId(1),
                Timestamp::from_secs(200),
                Point::new_unchecked(-12.4634, 130.8456),
            ),
        ])
    }

    #[test]
    fn roundtrip_is_exact() {
        let ds = sample();
        let mut buf = Vec::new();
        write_binary(&ds, &mut buf).unwrap();
        assert_eq!(buf.len(), HEADER_BYTES + 3 * RECORD_BYTES);
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(ds.n_tweets(), back.n_tweets());
        assert!(ds
            .iter_tweets()
            .zip(back.iter_tweets())
            .all(|(a, b)| a == b));
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let ds = TweetDataset::from_tweets(Vec::new());
        let mut buf = Vec::new();
        write_binary(&ds, &mut buf).unwrap();
        assert_eq!(buf.len(), HEADER_BYTES);
        let back = read_binary(&buf[..]).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn large_chunked_roundtrip() {
        // Exceeds the 4,096-record chunk to exercise the flush path.
        let tweets: Vec<Tweet> = (0..10_000)
            .map(|i| {
                Tweet::new(
                    UserId(i % 97),
                    Timestamp::from_secs(i as i64),
                    Point::new_unchecked(-30.0 - (i % 10) as f64, 140.0 + (i % 13) as f64),
                )
            })
            .collect();
        let ds = TweetDataset::from_tweets(tweets);
        let mut buf = Vec::new();
        write_binary(&ds, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back.n_tweets(), 10_000);
        assert!(ds
            .iter_tweets()
            .zip(back.iter_tweets())
            .all(|(a, b)| a == b));
    }

    #[test]
    fn binary_is_much_smaller_than_jsonl() {
        let tweets: Vec<Tweet> = (0..1_000)
            .map(|i| {
                Tweet::new(
                    UserId(i),
                    Timestamp::from_secs(1_377_993_600 + i as i64 * 1_000),
                    Point::new_unchecked(-33.868_812 + i as f64 * 1e-4, 151.209_312),
                )
            })
            .collect();
        let ds = TweetDataset::from_tweets(tweets);
        let mut bin = Vec::new();
        write_binary(&ds, &mut bin).unwrap();
        let mut json = Vec::new();
        crate::io::write_jsonl(&ds, &mut json).unwrap();
        assert!(
            bin.len() * 2 < json.len(),
            "binary {} vs jsonl {}",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf[0] = b'X';
        match read_binary(&buf[..]) {
            Err(IoError::Format { message, .. }) => assert!(message.contains("magic")),
            other => panic!("expected magic error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf[4] = 99;
        match read_binary(&buf[..]) {
            Err(IoError::Format { message, .. }) => assert!(message.contains("version")),
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_stream_rejected() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(matches!(read_binary(&buf[..]), Err(IoError::Io(_))));
        // Truncated header too.
        assert!(matches!(read_binary(&buf[..8]), Err(IoError::Io(_))));
    }

    #[test]
    fn corrupt_coordinates_rejected_with_record_number() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        // Overwrite the second record's latitude with 200.0.
        let off = HEADER_BYTES + RECORD_BYTES + 4 + 8;
        buf[off..off + 8].copy_from_slice(&200.0f64.to_le_bytes());
        match read_binary(&buf[..]) {
            Err(IoError::BadCoordinate { line: 2, .. }) => {}
            other => panic!("expected BadCoordinate at record 2, got {other:?}"),
        }
    }

    #[test]
    fn implausible_count_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.put_slice(&MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(u64::MAX);
        match read_binary(&buf[..]) {
            Err(IoError::Format { message, .. }) => assert!(message.contains("implausible")),
            other => panic!("expected count guard, got {other:?}"),
        }
    }
}
