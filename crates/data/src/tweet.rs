//! The tweet record and user identifier.

use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;
use tweetmob_geo::Point;

/// An anonymous user identifier.
///
/// The paper's pipeline never needs user metadata, only identity — trips
/// are pairs of consecutive tweets *by the same user*, and population is
/// *unique users* near an area. A `u32` covers the paper's 473,956 users
/// with four orders of magnitude to spare.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct UserId(pub u32);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// One geo-tagged tweet: who, when, where.
///
/// Tweet text and other metadata are irrelevant to every experiment in the
/// paper and are deliberately not modelled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tweet {
    /// Author.
    pub user: UserId,
    /// Publication time.
    pub time: Timestamp,
    /// Geotag.
    pub location: Point,
}

impl Tweet {
    /// Bundles the three fields.
    #[inline]
    pub const fn new(user: UserId, time: Timestamp, location: Point) -> Self {
        Self {
            user,
            time,
            location,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_fields() {
        let t = Tweet::new(
            UserId(7),
            Timestamp::from_secs(1_000),
            Point::new_unchecked(-33.9, 151.2),
        );
        assert_eq!(t.user, UserId(7));
        assert_eq!(t.time.as_secs(), 1_000);
        assert_eq!(t.location.lat, -33.9);
    }

    #[test]
    fn user_id_display_and_ordering() {
        assert_eq!(UserId(42).to_string(), "u42");
        assert!(UserId(1) < UserId(2));
    }

    #[test]
    fn serde_json_roundtrip() {
        let t = Tweet::new(
            UserId(9),
            Timestamp::from_secs(1_377_993_700),
            Point::new_unchecked(-12.46, 130.84),
        );
        let json = serde_json::to_string(&t).unwrap();
        let back: Tweet = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
        // Transparent newtypes keep the JSON flat.
        assert!(json.contains("\"user\":9"));
        assert!(json.contains("\"time\":1377993700"));
    }
}
