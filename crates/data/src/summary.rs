//! Dataset summary statistics — the paper's Table I.

use crate::dataset::TweetDataset;
use crate::time::SECS_PER_HOUR;
use serde::Serialize;
use std::fmt;

/// Counts of "enthusiast" users by activity threshold (paper §II: "the
/// numbers of users with more than 50, 100, 500, 1000 Tweets being 23462,
/// 10031, 766 and 180 respectively").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ActivityBuckets {
    /// Users with more than 50 tweets.
    pub over_50: usize,
    /// Users with more than 100 tweets.
    pub over_100: usize,
    /// Users with more than 500 tweets.
    pub over_500: usize,
    /// Users with more than 1000 tweets.
    pub over_1000: usize,
}

/// The row of the paper's Table I, computed from a dataset.
#[derive(Debug, Clone, Serialize)]
pub struct DatasetSummary {
    /// `[min, max]` longitude over all tweets (NaN pair when empty).
    pub lon_range: (f64, f64),
    /// `[min, max]` latitude over all tweets (NaN pair when empty).
    pub lat_range: (f64, f64),
    /// `[first, last]` tweet timestamps as epoch seconds (0 when empty).
    pub time_range_secs: (i64, i64),
    /// Total tweets.
    pub n_tweets: usize,
    /// Distinct users.
    pub n_users: usize,
    /// Mean tweets per user (paper: 13.3).
    pub avg_tweets_per_user: f64,
    /// Mean waiting time between a user's consecutive tweets, hours
    /// (paper: 35.5 h). NaN when no user has two tweets.
    pub avg_waiting_time_hours: f64,
    /// Mean distinct locations per user at 1e-3° (~100 m) grain
    /// (paper: 4.76).
    pub avg_locations_per_user: f64,
    /// Enthusiast-user counts.
    pub activity: ActivityBuckets,
}

impl DatasetSummary {
    /// Computes every Table-I statistic in one pass over the dataset.
    pub fn of(ds: &TweetDataset) -> Self {
        let (mut lon_min, mut lon_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut lat_min, mut lat_max) = (f64::INFINITY, f64::NEG_INFINITY);
        // Columnwise min/max: two flat f64 scans instead of a point walk.
        for &lon in ds.lons() {
            lon_min = lon_min.min(lon);
            lon_max = lon_max.max(lon);
        }
        for &lat in ds.lats() {
            lat_min = lat_min.min(lat);
            lat_max = lat_max.max(lat);
        }
        let (lon_range, lat_range) = if ds.is_empty() {
            ((f64::NAN, f64::NAN), (f64::NAN, f64::NAN))
        } else {
            ((lon_min, lon_max), (lat_min, lat_max))
        };
        let time_range_secs = if ds.is_empty() {
            (0, 0)
        } else {
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            for t in ds.times() {
                lo = lo.min(t.as_secs());
                hi = hi.max(t.as_secs());
            }
            (lo, hi)
        };

        let per_user = ds.tweets_per_user();
        let activity = ActivityBuckets {
            over_50: per_user.iter().filter(|&&c| c > 50).count(),
            over_100: per_user.iter().filter(|&&c| c > 100).count(),
            over_500: per_user.iter().filter(|&&c| c > 500).count(),
            over_1000: per_user.iter().filter(|&&c| c > 1000).count(),
        };
        let avg_tweets_per_user = if ds.n_users() > 0 {
            ds.n_tweets() as f64 / ds.n_users() as f64
        } else {
            f64::NAN
        };
        let waits = ds.waiting_times_secs();
        let avg_waiting_time_hours = if waits.is_empty() {
            f64::NAN
        } else {
            waits.iter().map(|&s| s as f64).sum::<f64>()
                / (waits.len() as f64 * SECS_PER_HOUR as f64)
        };
        let locs = ds.distinct_locations_per_user(1e-3);
        let avg_locations_per_user = if locs.is_empty() {
            f64::NAN
        } else {
            locs.iter().map(|&c| c as f64).sum::<f64>() / locs.len() as f64
        };

        Self {
            lon_range,
            lat_range,
            time_range_secs,
            n_tweets: ds.n_tweets(),
            n_users: ds.n_users(),
            avg_tweets_per_user,
            avg_waiting_time_hours,
            avg_locations_per_user,
            activity,
        }
    }
}

impl fmt::Display for DatasetSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Range of longitude : [{:.6}, {:.6}]",
            self.lon_range.0, self.lon_range.1
        )?;
        writeln!(
            f,
            "Range of latitude  : [{:.6}, {:.6}]",
            self.lat_range.0, self.lat_range.1
        )?;
        writeln!(
            f,
            "Collection period  : {} .. {} (epoch s)",
            self.time_range_secs.0, self.time_range_secs.1
        )?;
        writeln!(f, "No. Tweets         : {}", self.n_tweets)?;
        writeln!(f, "No. unique users   : {}", self.n_users)?;
        writeln!(f, "Avg. Tweets/user   : {:.1}", self.avg_tweets_per_user)?;
        writeln!(
            f,
            "Avg. waiting time  : {:.1} h",
            self.avg_waiting_time_hours
        )?;
        writeln!(f, "Avg. locations/user: {:.2}", self.avg_locations_per_user)?;
        write!(
            f,
            "Users with >50/>100/>500/>1000 tweets: {}/{}/{}/{}",
            self.activity.over_50,
            self.activity.over_100,
            self.activity.over_500,
            self.activity.over_1000
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;
    use crate::tweet::{Tweet, UserId};
    use tweetmob_geo::Point;

    fn t(user: u32, secs: i64, lat: f64, lon: f64) -> Tweet {
        Tweet::new(
            UserId(user),
            Timestamp::from_secs(secs),
            Point::new_unchecked(lat, lon),
        )
    }

    #[test]
    fn summary_of_small_dataset() {
        let ds = TweetDataset::from_tweets(vec![
            t(1, 0, -33.0, 151.0),
            t(1, 7_200, -34.0, 152.0), // 2 h wait
            t(2, 100, -37.0, 145.0),
        ]);
        let s = DatasetSummary::of(&ds);
        assert_eq!(s.n_tweets, 3);
        assert_eq!(s.n_users, 2);
        assert_eq!(s.lon_range, (145.0, 152.0));
        assert_eq!(s.lat_range, (-37.0, -33.0));
        assert_eq!(s.time_range_secs, (0, 7_200));
        assert!((s.avg_tweets_per_user - 1.5).abs() < 1e-12);
        assert!((s.avg_waiting_time_hours - 2.0).abs() < 1e-12);
        // User 1: two distinct locations; user 2: one → mean 1.5.
        assert!((s.avg_locations_per_user - 1.5).abs() < 1e-12);
    }

    #[test]
    fn activity_buckets_thresholds_are_strict() {
        let mut tweets = Vec::new();
        // User 1: exactly 50 tweets (NOT >50); user 2: 51; user 3: 1001.
        for i in 0..50 {
            tweets.push(t(1, i, -33.0, 151.0));
        }
        for i in 0..51 {
            tweets.push(t(2, i, -33.0, 151.0));
        }
        for i in 0..1001 {
            tweets.push(t(3, i, -33.0, 151.0));
        }
        let s = DatasetSummary::of(&TweetDataset::from_tweets(tweets));
        assert_eq!(s.activity.over_50, 2); // users 2 and 3
        assert_eq!(s.activity.over_100, 1); // user 3
        assert_eq!(s.activity.over_500, 1);
        assert_eq!(s.activity.over_1000, 1);
    }

    #[test]
    fn empty_dataset_summary_is_nan_not_panic() {
        let s = DatasetSummary::of(&TweetDataset::from_tweets(Vec::new()));
        assert_eq!(s.n_tweets, 0);
        assert!(s.avg_tweets_per_user.is_nan());
        assert!(s.avg_waiting_time_hours.is_nan());
        assert!(s.avg_locations_per_user.is_nan());
        assert!(s.lon_range.0.is_nan());
    }

    #[test]
    fn single_tweet_users_have_nan_waiting_time() {
        let ds = TweetDataset::from_tweets(vec![t(1, 0, -33.0, 151.0), t(2, 5, -34.0, 150.0)]);
        let s = DatasetSummary::of(&ds);
        assert!(s.avg_waiting_time_hours.is_nan());
    }

    #[test]
    fn display_contains_headline_numbers() {
        let ds = TweetDataset::from_tweets(vec![t(1, 0, -33.0, 151.0), t(1, 3_600, -33.0, 151.0)]);
        let text = DatasetSummary::of(&ds).to_string();
        assert!(text.contains("No. Tweets         : 2"));
        assert!(text.contains("Avg. waiting time  : 1.0 h"));
    }
}
