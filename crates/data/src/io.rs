//! Dataset serialisation: JSON Lines and CSV.
//!
//! JSONL is the interchange format (one tweet object per line — the shape
//! real tweet-collection pipelines emit); CSV is provided for spreadsheet
//! interop. Both stream through `BufRead`/`Write` so multi-gigabyte
//! datasets never need to fit into one allocation beyond the decoded rows.

use crate::dataset::TweetDataset;
use crate::time::Timestamp;
use crate::tweet::{Tweet, UserId};
use std::fmt;
use std::io::{self, BufRead, Write};
use tweetmob_geo::Point;

/// Errors from dataset I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed JSONL line.
    Json {
        /// 1-based line number.
        line: usize,
        /// Decoder message.
        message: String,
    },
    /// Malformed CSV row.
    Csv {
        /// 1-based line number (header is line 1).
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A row decoded fine but held an invalid coordinate.
    BadCoordinate {
        /// 1-based line number.
        line: usize,
        /// Validation failure.
        source: tweetmob_geo::GeoError,
    },
    /// A malformed or unsupported binary container: bad magic, unknown
    /// schema version, corrupt section layout. Shared by the `.twb`
    /// dataset format and the model-artifact bundle.
    Format {
        /// File the container came from; empty when the source was an
        /// anonymous stream.
        path: String,
        /// What was wrong with the encoding.
        message: String,
    },
}

impl IoError {
    /// Attaches a file path to a [`IoError::Format`] error that was
    /// produced from an anonymous stream; other variants pass through
    /// unchanged.
    #[must_use]
    pub fn with_path(self, path: &str) -> Self {
        match self {
            IoError::Format { message, .. } => IoError::Format {
                path: path.to_string(),
                message,
            },
            other => other,
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o failure: {e}"),
            IoError::Json { line, message } => write!(f, "line {line}: bad JSON: {message}"),
            IoError::Csv { line, message } => write!(f, "line {line}: bad CSV: {message}"),
            IoError::BadCoordinate { line, source } => {
                write!(f, "line {line}: invalid coordinate: {source}")
            }
            IoError::Format { path, message } if path.is_empty() => {
                write!(f, "bad container format: {message}")
            }
            IoError::Format { path, message } => {
                write!(f, "{path}: bad container format: {message}")
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::BadCoordinate { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes the dataset as JSON Lines (one tweet per line, `(user, time)`
/// order).
///
/// # Errors
///
/// Propagates write failures.
pub fn write_jsonl<W: Write>(ds: &TweetDataset, mut w: W) -> Result<(), IoError> {
    for t in ds.iter_tweets() {
        // Tweet's Serialize impl produces flat JSON; a line per record.
        serde_json::to_writer(&mut w, &t).map_err(|e| IoError::Json {
            line: 0,
            message: e.to_string(),
        })?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads a JSON Lines stream produced by [`write_jsonl`] (or any source
/// emitting `{"user":…,"time":…,"location":{"lat":…,"lon":…}}` objects).
/// Blank lines are skipped. Coordinates are validated.
///
/// # Errors
///
/// First malformed line aborts the read with its line number.
pub fn read_jsonl<R: BufRead>(r: R) -> Result<TweetDataset, IoError> {
    let _span = tweetmob_obs::span!("read_jsonl");
    let mut tweets = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let t: Tweet = serde_json::from_str(trimmed).map_err(|e| IoError::Json {
            line: i + 1,
            message: e.to_string(),
        })?;
        Point::new(t.location.lat, t.location.lon).map_err(|source| IoError::BadCoordinate {
            line: i + 1,
            source,
        })?;
        tweets.push(t);
    }
    tweetmob_obs::counter!("data/tweets_read").add(tweets.len() as u64);
    Ok(TweetDataset::from_tweets(tweets))
}

/// CSV header emitted by [`write_csv`].
pub const CSV_HEADER: &str = "user,time_secs,lat,lon";

/// Writes the dataset as CSV with header `user,time_secs,lat,lon`.
///
/// # Errors
///
/// Propagates write failures.
pub fn write_csv<W: Write>(ds: &TweetDataset, mut w: W) -> Result<(), IoError> {
    writeln!(w, "{CSV_HEADER}")?;
    for t in ds.iter_tweets() {
        writeln!(
            w,
            "{},{},{},{}",
            t.user.0,
            t.time.as_secs(),
            t.location.lat,
            t.location.lon
        )?;
    }
    Ok(())
}

/// Reads CSV produced by [`write_csv`]. The header row is required and
/// validated; fields never contain commas so no quoting dialect is needed.
///
/// # Errors
///
/// Bad header, wrong field count, unparseable numbers, or invalid
/// coordinates — each with a line number.
pub fn read_csv<R: BufRead>(r: R) -> Result<TweetDataset, IoError> {
    let _span = tweetmob_obs::span!("read_csv");
    let mut lines = r.lines().enumerate();
    match lines.next() {
        Some((_, Ok(h))) if h.trim() == CSV_HEADER => {}
        Some((_, Ok(h))) => {
            return Err(IoError::Csv {
                line: 1,
                message: format!("expected header {CSV_HEADER:?}, found {h:?}"),
            })
        }
        Some((_, Err(e))) => return Err(e.into()),
        None => return Ok(TweetDataset::from_tweets(Vec::new())),
    }
    let mut tweets = Vec::new();
    for (i, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let lineno = i + 1;
        let mut fields = trimmed.split(',');
        let mut next_field = |name: &str| {
            fields.next().ok_or_else(|| IoError::Csv {
                line: lineno,
                message: format!("missing field {name}"),
            })
        };
        let user: u32 = parse_field(next_field("user")?, lineno, "user")?;
        let secs: i64 = parse_field(next_field("time_secs")?, lineno, "time_secs")?;
        let lat: f64 = parse_field(next_field("lat")?, lineno, "lat")?;
        let lon: f64 = parse_field(next_field("lon")?, lineno, "lon")?;
        if fields.next().is_some() {
            return Err(IoError::Csv {
                line: lineno,
                message: "too many fields".into(),
            });
        }
        let location = Point::new(lat, lon).map_err(|source| IoError::BadCoordinate {
            line: lineno,
            source,
        })?;
        tweets.push(Tweet::new(
            UserId(user),
            Timestamp::from_secs(secs),
            location,
        ));
    }
    tweetmob_obs::counter!("data/tweets_read").add(tweets.len() as u64);
    Ok(TweetDataset::from_tweets(tweets))
}

fn parse_field<T: std::str::FromStr>(s: &str, line: usize, name: &str) -> Result<T, IoError>
where
    T::Err: fmt::Display,
{
    s.trim().parse().map_err(|e: T::Err| IoError::Csv {
        line,
        message: format!("field {name}: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TweetDataset {
        TweetDataset::from_tweets(vec![
            Tweet::new(
                UserId(1),
                Timestamp::from_secs(100),
                Point::new_unchecked(-33.9, 151.2),
            ),
            Tweet::new(
                UserId(2),
                Timestamp::from_secs(50),
                Point::new_unchecked(-37.81, 144.96),
            ),
            Tweet::new(
                UserId(1),
                Timestamp::from_secs(200),
                Point::new_unchecked(-33.8, 151.1),
            ),
        ])
    }

    fn datasets_equal(a: &TweetDataset, b: &TweetDataset) -> bool {
        a.n_tweets() == b.n_tweets() && a.iter_tweets().zip(b.iter_tweets()).all(|(x, y)| x == y)
    }

    #[test]
    fn jsonl_roundtrip() {
        let ds = sample();
        let mut buf = Vec::new();
        write_jsonl(&ds, &mut buf).unwrap();
        assert_eq!(buf.iter().filter(|&&b| b == b'\n').count(), 3);
        let back = read_jsonl(&buf[..]).unwrap();
        assert!(datasets_equal(&ds, &back));
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let text = "\n{\"user\":1,\"time\":5,\"location\":{\"lat\":-33.0,\"lon\":151.0}}\n\n";
        let ds = read_jsonl(text.as_bytes()).unwrap();
        assert_eq!(ds.n_tweets(), 1);
    }

    #[test]
    fn jsonl_reports_bad_line_number() {
        let text = "{\"user\":1,\"time\":5,\"location\":{\"lat\":-33.0,\"lon\":151.0}}\nnot json\n";
        match read_jsonl(text.as_bytes()) {
            Err(IoError::Json { line: 2, .. }) => {}
            other => panic!("expected Json error on line 2, got {other:?}"),
        }
    }

    #[test]
    fn jsonl_rejects_invalid_coordinates() {
        let text = "{\"user\":1,\"time\":5,\"location\":{\"lat\":-133.0,\"lon\":151.0}}\n";
        match read_jsonl(text.as_bytes()) {
            Err(IoError::BadCoordinate { line: 1, .. }) => {}
            other => panic!("expected BadCoordinate, got {other:?}"),
        }
    }

    #[test]
    fn csv_roundtrip() {
        let ds = sample();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("user,time_secs,lat,lon\n"));
        let back = read_csv(&buf[..]).unwrap();
        assert!(datasets_equal(&ds, &back));
    }

    #[test]
    fn csv_empty_input_gives_empty_dataset() {
        let ds = read_csv("".as_bytes()).unwrap();
        assert!(ds.is_empty());
        let ds = read_csv("user,time_secs,lat,lon\n".as_bytes()).unwrap();
        assert!(ds.is_empty());
    }

    #[test]
    fn csv_rejects_wrong_header() {
        match read_csv("a,b,c\n1,2,3\n".as_bytes()) {
            Err(IoError::Csv { line: 1, .. }) => {}
            other => panic!("expected header error, got {other:?}"),
        }
    }

    #[test]
    fn csv_rejects_bad_field_counts_and_types() {
        let base = "user,time_secs,lat,lon\n";
        match read_csv(format!("{base}1,2,3\n").as_bytes()) {
            Err(IoError::Csv { line: 2, .. }) => {}
            other => panic!("missing field: {other:?}"),
        }
        match read_csv(format!("{base}1,2,3,4,5\n").as_bytes()) {
            Err(IoError::Csv { line: 2, .. }) => {}
            other => panic!("extra field: {other:?}"),
        }
        match read_csv(format!("{base}x,2,3.0,4.0\n").as_bytes()) {
            Err(IoError::Csv { line: 2, .. }) => {}
            other => panic!("bad number: {other:?}"),
        }
    }

    #[test]
    fn csv_rejects_out_of_range_latitude() {
        let text = "user,time_secs,lat,lon\n1,2,-95.0,140.0\n";
        match read_csv(text.as_bytes()) {
            Err(IoError::BadCoordinate { line: 2, .. }) => {}
            other => panic!("expected BadCoordinate, got {other:?}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = IoError::Csv {
            line: 7,
            message: "field lat: invalid float".into(),
        };
        let text = e.to_string();
        assert!(text.contains("line 7"));
        assert!(text.contains("lat"));
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        fn arb_tweet() -> impl Strategy<Value = Tweet> {
            (
                0u32..1_000,
                -1_000_000i64..2_000_000_000,
                -89.9..89.9f64,
                -179.9..179.9f64,
            )
                .prop_map(|(u, t, lat, lon)| {
                    Tweet::new(
                        UserId(u),
                        Timestamp::from_secs(t),
                        Point::new_unchecked(lat, lon),
                    )
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn jsonl_roundtrip_any_tweets(tweets in prop::collection::vec(arb_tweet(), 0..80)) {
                let ds = TweetDataset::from_tweets(tweets);
                let mut buf = Vec::new();
                write_jsonl(&ds, &mut buf).unwrap();
                let back = read_jsonl(&buf[..]).unwrap();
                prop_assert_eq!(ds.n_tweets(), back.n_tweets());
                for (a, b) in ds.iter_tweets().zip(back.iter_tweets()) {
                    prop_assert_eq!(a.user, b.user);
                    prop_assert_eq!(a.time, b.time);
                    prop_assert!((a.location.lat - b.location.lat).abs() < 1e-12);
                    prop_assert!((a.location.lon - b.location.lon).abs() < 1e-12);
                }
            }

            #[test]
            fn csv_roundtrip_any_tweets(tweets in prop::collection::vec(arb_tweet(), 0..80)) {
                let ds = TweetDataset::from_tweets(tweets);
                let mut buf = Vec::new();
                write_csv(&ds, &mut buf).unwrap();
                let back = read_csv(&buf[..]).unwrap();
                prop_assert_eq!(ds.n_tweets(), back.n_tweets());
                for (a, b) in ds.iter_tweets().zip(back.iter_tweets()) {
                    prop_assert_eq!(a.user, b.user);
                    prop_assert_eq!(a.time, b.time);
                    // CSV prints f64 with full shortest-roundtrip precision.
                    prop_assert_eq!(a.location.lat, b.location.lat);
                    prop_assert_eq!(a.location.lon, b.location.lon);
                }
            }
        }
    }
}
