//! Columnar binary dataset format (`.twc`, magic `TWC0`).
//!
//! The row format (`.twb`, [`crate::binary`]) still decodes tweet by
//! tweet and re-sorts on every load. `TWC0` instead serialises the
//! in-memory [`TweetDataset`] layout *directly*: four contiguous value
//! columns plus the CSR user index, already sorted by `(user, time)`.
//! Loading is one bulk read, a fixed-size header validation, and a
//! straight little-endian decode of each column — no per-record branch,
//! no `Point` construction, no re-sort. At the paper's 6.3 M tweets
//! that turns load from the pipeline's slowest stage into a memory-copy.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset            size      field
//! 0                 4         magic  b"TWC0"
//! 4                 4         version (u32) — currently 1
//! 8                 8         tweet count n (u64)
//! 16                8         user count u (u64)
//! 24                4·u       unique user ids (u32, strictly ascending)
//! 24+4u             4·(u+1)   user offsets (u32 CSR: starts at 0, ends at n)
//! 24+4u+4(u+1)      8·n       timestamps (i64 seconds, non-decreasing per user)
//! …                 8·n       latitudes (f64)
//! …                 8·n       longitudes (f64)
//! ```
//!
//! The file length is fully determined by the header, so truncation and
//! padding are both detected before any column is decoded. The sort
//! invariant is *verified* on load (cheap columnwise scans via
//! [`TweetDataset::from_sorted_columns`]), never re-established — an
//! unsorted file is a format error, not a dataset to fix up.

use crate::dataset::TweetDataset;
use crate::io::IoError;
use crate::time::Timestamp;
use crate::tweet::UserId;
use bytes::{Buf, BufMut};
use std::io::{Read, Write};

/// File magic.
pub const MAGIC: [u8; 4] = *b"TWC0";
/// Current format version.
pub const VERSION: u32 = 1;
/// Fixed header bytes before the column sections.
pub const HEADER_BYTES: usize = 24;

/// Upper bound on the declared tweet count — same plausibility guard as
/// the row format, rejecting corrupt headers before any allocation.
const MAX_RECORDS: u64 = 2_000_000_000;

/// Writes the dataset in columnar form. Column order matches the
/// in-memory layout, so the writer is five `write_all` streams with no
/// per-record assembly.
///
/// # Errors
///
/// Propagates write failures.
pub fn write_columnar<W: Write>(ds: &TweetDataset, mut w: W) -> Result<(), IoError> {
    let _span = tweetmob_obs::span!("write_columnar");
    let mut header = Vec::with_capacity(HEADER_BYTES);
    header.put_slice(&MAGIC);
    header.put_u32_le(VERSION);
    header.put_u64_le(ds.n_tweets() as u64);
    header.put_u64_le(ds.n_users() as u64);
    w.write_all(&header)?;
    write_column(&mut w, ds.unique_users().iter().map(|u| u.0.to_le_bytes()))?;
    write_column(&mut w, ds.user_starts().iter().map(|s| s.to_le_bytes()))?;
    write_column(&mut w, ds.times().iter().map(|t| t.as_secs().to_le_bytes()))?;
    write_column(&mut w, ds.lats().iter().map(|v| v.to_le_bytes()))?;
    write_column(&mut w, ds.lons().iter().map(|v| v.to_le_bytes()))?;
    Ok(())
}

/// Streams one column through a bounded buffer (chunked like the row
/// writer, so multi-hundred-MB datasets never double in memory).
fn write_column<W: Write, const N: usize>(
    w: &mut W,
    values: impl Iterator<Item = [u8; N]>,
) -> Result<(), IoError> {
    const FLUSH_BYTES: usize = 1 << 16;
    let mut buf = Vec::with_capacity(FLUSH_BYTES + 8);
    for v in values {
        buf.extend_from_slice(&v);
        if buf.len() >= FLUSH_BYTES {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Reads a columnar dataset written by [`write_columnar`]: one bulk read
/// to the end of the stream, then [`decode_columnar`].
///
/// # Errors
///
/// * [`IoError::Io`] — underlying read failure.
/// * [`IoError::Format`] — anything [`decode_columnar`] rejects.
pub fn read_columnar<R: Read>(mut r: R) -> Result<TweetDataset, IoError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    decode_columnar(&bytes)
}

/// Decodes a complete in-memory `TWC0` image. This is the whole load
/// path: header validation, an exact-length check (the header fully
/// determines the file size), bulk little-endian column decodes, and
/// the sort-invariant verification in
/// [`TweetDataset::from_sorted_columns`].
///
/// # Errors
///
/// [`IoError::Format`] for bad magic, unsupported version, implausible
/// counts, a length that disagrees with the header, or columns that
/// violate the sort/range invariants. No path is attached; callers that
/// know the file name add it with [`IoError::with_path`].
pub fn decode_columnar(bytes: &[u8]) -> Result<TweetDataset, IoError> {
    let _span = tweetmob_obs::span!("read_columnar");
    let fail = |message: String| IoError::Format {
        path: String::new(),
        message,
    };
    if bytes.len() < HEADER_BYTES {
        return Err(fail(format!(
            "truncated header: {} bytes, need {HEADER_BYTES}",
            bytes.len()
        )));
    }
    let magic = &bytes[0..4];
    if magic != MAGIC {
        return Err(fail(format!("bad magic {magic:?}, expected {MAGIC:?}")));
    }
    let mut cursor = &bytes[4..HEADER_BYTES];
    let version = cursor.get_u32_le();
    if version != VERSION {
        return Err(fail(format!("unsupported version {version}")));
    }
    let n = cursor.get_u64_le();
    let u = cursor.get_u64_le();
    if n > MAX_RECORDS || u > n.max(1) {
        return Err(fail(format!("implausible counts: {n} tweets, {u} users")));
    }
    let (n, u) = (n as usize, u as usize);
    let expected = HEADER_BYTES + 4 * u + 4 * (u + 1) + 3 * 8 * n;
    if bytes.len() != expected {
        return Err(fail(format!(
            "section layout: {} bytes, header declares {expected}",
            bytes.len()
        )));
    }
    let mut at = HEADER_BYTES;
    let mut take = |len: usize| {
        let s = &bytes[at..at + len];
        at += len;
        s
    };
    let unique_users: Vec<UserId> = decode_u32s(take(4 * u)).map(UserId).collect();
    let user_starts: Vec<u32> = decode_u32s(take(4 * (u + 1))).collect();
    let times: Vec<Timestamp> = decode_i64s(take(8 * n))
        .map(Timestamp::from_secs)
        .collect();
    let lats: Vec<f64> = decode_f64s(take(8 * n)).collect();
    let lons: Vec<f64> = decode_f64s(take(8 * n)).collect();
    let ds = TweetDataset::from_sorted_columns(unique_users, user_starts, times, lats, lons)
        .map_err(fail)?;
    tweetmob_obs::counter!("data/tweets_read").add(ds.n_tweets() as u64);
    Ok(ds)
}

// `chunks_exact` guarantees each chunk is exactly the scalar width, so
// the `Buf` getters below can never under-read.
fn decode_u32s(bytes: &[u8]) -> impl Iterator<Item = u32> + '_ {
    bytes.chunks_exact(4).map(|mut c| c.get_u32_le())
}

fn decode_i64s(bytes: &[u8]) -> impl Iterator<Item = i64> + '_ {
    bytes.chunks_exact(8).map(|mut c| c.get_i64_le())
}

fn decode_f64s(bytes: &[u8]) -> impl Iterator<Item = f64> + '_ {
    bytes.chunks_exact(8).map(|mut c| c.get_f64_le())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tweet::Tweet;
    use tweetmob_geo::Point;

    fn t(user: u32, secs: i64, lat: f64, lon: f64) -> Tweet {
        Tweet::new(
            UserId(user),
            Timestamp::from_secs(secs),
            Point::new_unchecked(lat, lon),
        )
    }

    fn sample() -> TweetDataset {
        TweetDataset::from_tweets(vec![
            t(1, 100, -33.8688, 151.2093),
            t(2, -50, -37.8136, 144.9631),
            t(1, 200, -12.4634, 130.8456),
            t(7, 0, -31.9523, 115.8613),
        ])
    }

    fn encode(ds: &TweetDataset) -> Vec<u8> {
        let mut buf = Vec::new();
        write_columnar(ds, &mut buf).unwrap();
        buf
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let ds = sample();
        let buf = encode(&ds);
        assert_eq!(buf.len(), HEADER_BYTES + 4 * 3 + 4 * 4 + 3 * 8 * 4);
        let back = read_columnar(&buf[..]).unwrap();
        assert_eq!(back.users(), ds.users());
        assert_eq!(back.times(), ds.times());
        for i in 0..ds.n_tweets() {
            assert_eq!(back.lats()[i].to_bits(), ds.lats()[i].to_bits());
            assert_eq!(back.lons()[i].to_bits(), ds.lons()[i].to_bits());
        }
        assert_eq!(back.user_starts(), ds.user_starts());
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let ds = TweetDataset::from_tweets(Vec::new());
        let buf = encode(&ds);
        assert_eq!(buf.len(), HEADER_BYTES + 4); // just the [0] offset
        let back = read_columnar(&buf[..]).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn reencoding_a_decoded_file_is_byte_identical() {
        let buf = encode(&sample());
        let back = read_columnar(&buf[..]).unwrap();
        assert_eq!(encode(&back), buf);
    }

    #[test]
    fn columnar_is_smaller_than_rows_per_tweet() {
        // 24 bytes/tweet in columns vs 28 in rows, plus a small index.
        let tweets: Vec<Tweet> = (0..1_000)
            .map(|i| t(i % 97, i as i64, -30.0 - (i % 10) as f64, 140.0))
            .collect();
        let ds = TweetDataset::from_tweets(tweets);
        let mut rows = Vec::new();
        crate::binary::write_binary(&ds, &mut rows).unwrap();
        assert!(encode(&ds).len() < rows.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = encode(&sample());
        buf[0] = b'X';
        match decode_columnar(&buf) {
            Err(IoError::Format { message, .. }) => assert!(message.contains("magic")),
            other => panic!("expected magic error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = encode(&sample());
        buf[4] = 99;
        match decode_columnar(&buf) {
            Err(IoError::Format { message, .. }) => assert!(message.contains("version")),
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_rejected_before_decode() {
        let buf = encode(&sample());
        for cut in [buf.len() - 1, buf.len() - 9, HEADER_BYTES, 10, 0] {
            match decode_columnar(&buf[..cut]) {
                Err(IoError::Format { message, .. }) => assert!(
                    message.contains("truncated") || message.contains("layout"),
                    "cut {cut}: {message}"
                ),
                other => panic!("cut {cut}: expected Format error, got {other:?}"),
            }
        }
        // Trailing garbage is equally a layout error, not silently ignored.
        let mut padded = buf;
        padded.push(0);
        assert!(matches!(
            decode_columnar(&padded),
            Err(IoError::Format { .. })
        ));
    }

    #[test]
    fn implausible_count_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.put_slice(&MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(u64::MAX);
        buf.put_u64_le(1);
        match decode_columnar(&buf) {
            Err(IoError::Format { message, .. }) => assert!(message.contains("implausible")),
            other => panic!("expected count guard, got {other:?}"),
        }
    }

    #[test]
    fn unsorted_user_ids_rejected() {
        let ds = sample();
        let mut buf = encode(&ds);
        // Swap the first two unique user ids in place (section starts at 24).
        let (a, b) = (HEADER_BYTES, HEADER_BYTES + 4);
        for i in 0..4 {
            buf.swap(a + i, b + i);
        }
        match decode_columnar(&buf) {
            Err(IoError::Format { message, .. }) => {
                assert!(message.contains("unsorted"), "{message}")
            }
            other => panic!("expected unsorted rejection, got {other:?}"),
        }
    }

    #[test]
    fn unsorted_times_rejected() {
        let ds = sample();
        let mut buf = encode(&ds);
        // User 1 owns rows 0..2; make its first timestamp larger than its
        // second. Times section follows users + starts.
        let times_at = HEADER_BYTES + 4 * ds.n_users() + 4 * (ds.n_users() + 1);
        buf[times_at..times_at + 8].copy_from_slice(&9_999i64.to_le_bytes());
        match decode_columnar(&buf) {
            Err(IoError::Format { message, .. }) => {
                assert!(message.contains("timestamps"), "{message}")
            }
            other => panic!("expected time-order rejection, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_latitude_rejected() {
        let ds = sample();
        let mut buf = encode(&ds);
        let lats_at =
            HEADER_BYTES + 4 * ds.n_users() + 4 * (ds.n_users() + 1) + 8 * ds.n_tweets();
        buf[lats_at..lats_at + 8].copy_from_slice(&200.0f64.to_le_bytes());
        match decode_columnar(&buf) {
            Err(IoError::Format { message, .. }) => {
                assert!(message.contains("latitude"), "{message}")
            }
            other => panic!("expected latitude rejection, got {other:?}"),
        }
    }

    #[test]
    fn error_display_carries_the_attached_path() {
        let err = decode_columnar(b"nope").unwrap_err().with_path("x.twc");
        assert!(err.to_string().contains("x.twc"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_tweet() -> impl Strategy<Value = Tweet> {
            (
                0u32..500,
                -1_000_000i64..2_000_000_000,
                -89.9..89.9f64,
                -179.9..179.9f64,
            )
                .prop_map(|(u, s, lat, lon)| t(u, s, lat, lon))
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn columnar_roundtrip_any_tweets(
                tweets in prop::collection::vec(arb_tweet(), 0..120)
            ) {
                let ds = TweetDataset::from_tweets(tweets);
                let back = read_columnar(&encode(&ds)[..]).unwrap();
                prop_assert_eq!(ds.users(), back.users());
                prop_assert_eq!(ds.times(), back.times());
                for i in 0..ds.n_tweets() {
                    prop_assert_eq!(ds.lats()[i].to_bits(), back.lats()[i].to_bits());
                    prop_assert_eq!(ds.lons()[i].to_bits(), back.lons()[i].to_bits());
                }
                // And the re-encode is byte-identical — no information is
                // lost or renormalised anywhere in the cycle.
                prop_assert_eq!(encode(&back), encode(&ds));
            }
        }
    }
}
