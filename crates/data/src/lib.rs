//! # tweetmob-data
//!
//! Tweet records, columnar dataset storage, Table-I summary statistics and
//! serialisation for the `tweetmob` workspace.
//!
//! The paper's raw material is a stream of geo-tagged tweets — `(user,
//! timestamp, latitude, longitude)` tuples. This crate stores such streams
//! in a struct-of-arrays [`TweetDataset`] sorted by `(user, time)`, which
//! makes the two dominant access patterns cheap:
//!
//! * *per-user scans* for waiting-time and trip extraction (contiguous
//!   slices via the CSR user offsets);
//! * *whole-dataset coordinate scans* for density maps and spatial
//!   indexing (flat `lat[]` / `lon[]` columns).
//!
//! Serialisation: JSONL and CSV ([`io`]) for interchange, a compact
//! fixed-width row binary format ([`binary`]), the columnar `TWC0`
//! format ([`columnar`]) that mirrors the in-memory layout for
//! zero-parse full-scale loads, and the versioned model-artifact
//! container ([`artifact`])
//! that persists fitted models with their geometry for the
//! fit-once / predict-many workflow.
//!
//! [`DatasetSummary`] reproduces the paper's Table I (coordinate ranges,
//! tweet/user counts, average tweets per user, average waiting time,
//! average distinct locations per user) plus the §II "enthusiast" counts
//! (users with more than 50/100/500/1000 tweets).
//!
//! ## Example
//!
//! ```
//! use tweetmob_data::{Tweet, TweetDataset, Timestamp, UserId};
//! use tweetmob_geo::Point;
//!
//! let tweets = vec![
//!     Tweet::new(UserId(1), Timestamp::from_secs(100), Point::new(-33.9, 151.2).unwrap()),
//!     Tweet::new(UserId(1), Timestamp::from_secs(4000), Point::new(-33.8, 151.1).unwrap()),
//!     Tweet::new(UserId(2), Timestamp::from_secs(50), Point::new(-37.8, 145.0).unwrap()),
//! ];
//! let ds = TweetDataset::from_tweets(tweets);
//! assert_eq!(ds.n_tweets(), 3);
//! assert_eq!(ds.n_users(), 2);
//! assert_eq!(ds.user_tweets(UserId(1)).unwrap().len(), 2);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
// `!(x > 0.0)` guards are deliberate: they also reject NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod artifact;
pub mod binary;
pub mod columnar;
mod dataset;
pub mod io;
mod summary;
mod time;
mod tweet;

pub use artifact::{
    BundleArea, BundleMeta, ModelBundle, QueryError, ARTIFACT_MAGIC, ARTIFACT_VERSION,
};
pub use dataset::{TweetDataset, UserTweets};
pub use summary::{ActivityBuckets, DatasetSummary};
pub use time::{Timestamp, SECS_PER_DAY, SECS_PER_HOUR};
pub use tweet::{Tweet, UserId};
