//! Columnar tweet storage sorted by `(user, time)`.

use crate::time::Timestamp;
use crate::tweet::{Tweet, UserId};
use std::collections::BTreeSet;
use tweetmob_geo::{BoundingBox, Point};

/// A struct-of-arrays tweet dataset, sorted by `(user, time)`.
///
/// Storage is fully columnar: parallel `users`, `times`, `lats`, `lons`
/// columns rather than a `Vec<Tweet>` (or even a `Vec<Point>`), so the
/// dominant access patterns — coordinate scans for density maps and
/// spatial indexing, timestamp scans for waiting times, per-user slices
/// for trip extraction — each stream through one contiguous `f64`/`i64`
/// array. User offsets form a CSR layout so a user's tweets are one
/// contiguous, time-ordered slice; this is also exactly the on-disk
/// layout of the `TWC0` columnar format ([`crate::columnar`]), which is
/// why loading it needs no re-sort and no per-record decode.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TweetDataset {
    users: Vec<UserId>,
    times: Vec<Timestamp>,
    lats: Vec<f64>,
    lons: Vec<f64>,
    /// Distinct user ids, ascending; `user_starts[i]..user_starts[i+1]`
    /// are the row indices of `unique_users[i]`.
    unique_users: Vec<UserId>,
    user_starts: Vec<u32>,
}

/// A borrowed view of one user's time-ordered tweets.
#[derive(Debug, Clone, Copy)]
pub struct UserTweets<'a> {
    /// The user the view belongs to.
    pub user: UserId,
    /// Tweet timestamps, ascending.
    pub times: &'a [Timestamp],
    /// Tweet latitudes, parallel to `times`.
    pub lats: &'a [f64],
    /// Tweet longitudes, parallel to `times`.
    pub lons: &'a [f64],
}

impl UserTweets<'_> {
    /// Number of tweets in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the view is empty (never true for views produced by
    /// [`TweetDataset::user_tweets`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The `k`-th tweet location, assembled from the coordinate columns.
    #[inline]
    pub fn point(&self, k: usize) -> Point {
        Point::new_unchecked(self.lats[k], self.lons[k])
    }

    /// Iterates the view's locations in time order.
    pub fn iter_points(&self) -> impl Iterator<Item = Point> + '_ {
        self.lats
            .iter()
            .zip(self.lons.iter())
            .map(|(&lat, &lon)| Point::new_unchecked(lat, lon))
    }
}

impl TweetDataset {
    /// Builds a dataset from unordered tweets.
    ///
    /// Sorting is by `(user, time)` with ties kept in input order
    /// (stable sort), so two tweets with identical timestamps keep a
    /// deterministic relative order.
    pub fn from_tweets(mut tweets: Vec<Tweet>) -> Self {
        tweets.sort_by_key(|t| (t.user, t.time));
        let mut users = Vec::with_capacity(tweets.len());
        let mut times = Vec::with_capacity(tweets.len());
        let mut lats = Vec::with_capacity(tweets.len());
        let mut lons = Vec::with_capacity(tweets.len());
        let mut unique_users = Vec::new();
        let mut user_starts = Vec::new();
        for (i, t) in tweets.iter().enumerate() {
            if unique_users.last() != Some(&t.user) {
                unique_users.push(t.user);
                user_starts.push(i as u32);
            }
            users.push(t.user);
            times.push(t.time);
            lats.push(t.location.lat);
            lons.push(t.location.lon);
        }
        user_starts.push(tweets.len() as u32);
        Self {
            users,
            times,
            lats,
            lons,
            unique_users,
            user_starts,
        }
    }

    /// Builds a dataset directly from pre-sorted columns — the zero-parse
    /// constructor behind the `TWC0` columnar reader and the generator's
    /// direct-to-columns path.
    ///
    /// The caller asserts the `(user, time)` sort invariant; this
    /// constructor *verifies* it with cheap columnwise scans instead of
    /// re-sorting:
    ///
    /// * all value columns the same length, at most `u32::MAX` rows;
    /// * `user_starts` is a valid CSR over the rows: starts at 0, ends at
    ///   the row count, strictly increasing (every user owns at least one
    ///   row), one more entry than `unique_users`;
    /// * `unique_users` strictly ascending;
    /// * timestamps non-decreasing within each user's slice;
    /// * every coordinate finite and in range (same rules as
    ///   [`Point::new`]).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant.
    /// Callers with a file context wrap it into
    /// [`IoError::Format`](crate::io::IoError::Format).
    pub fn from_sorted_columns(
        unique_users: Vec<UserId>,
        user_starts: Vec<u32>,
        times: Vec<Timestamp>,
        lats: Vec<f64>,
        lons: Vec<f64>,
    ) -> Result<Self, String> {
        let n = times.len();
        if lats.len() != n || lons.len() != n {
            return Err(format!(
                "column length mismatch: {n} times, {} lats, {} lons",
                lats.len(),
                lons.len()
            ));
        }
        if n > u32::MAX as usize {
            return Err(format!("row count {n} exceeds the u32 offset space"));
        }
        if user_starts.len() != unique_users.len() + 1 {
            return Err(format!(
                "user index shape: {} users need {} offsets, found {}",
                unique_users.len(),
                unique_users.len() + 1,
                user_starts.len()
            ));
        }
        if user_starts.first() != Some(&0) {
            return Err("user offsets must start at 0".to_string());
        }
        if *user_starts.last().unwrap_or(&0) as usize != n {
            return Err(format!(
                "user offsets must end at the row count {n}, found {}",
                user_starts.last().copied().unwrap_or(0)
            ));
        }
        if user_starts.windows(2).any(|w| w[0] >= w[1]) {
            return Err("user offsets must be strictly increasing (no empty users)".to_string());
        }
        if unique_users.windows(2).any(|w| w[0] >= w[1]) {
            return Err("unsorted input: user ids must be strictly ascending".to_string());
        }
        for (i, w) in user_starts.windows(2).enumerate() {
            let slice = &times[w[0] as usize..w[1] as usize];
            if slice.windows(2).any(|t| t[0] > t[1]) {
                return Err(format!(
                    "unsorted input: timestamps of user {} are not non-decreasing",
                    unique_users[i].0
                ));
            }
        }
        // Columnwise range scans — branch-predictable passes over flat
        // f64 arrays, far cheaper than a per-record Point::new parse.
        if let Some(i) = lats
            .iter()
            .position(|&v| !v.is_finite() || !(-90.0..=90.0).contains(&v))
        {
            return Err(format!("row {i}: invalid latitude {}", lats[i]));
        }
        if let Some(i) = lons
            .iter()
            .position(|&v| !v.is_finite() || !(-180.0..=180.0).contains(&v))
        {
            return Err(format!("row {i}: invalid longitude {}", lons[i]));
        }
        // Materialise the per-row user column from the CSR index.
        let mut users = Vec::with_capacity(n);
        for (i, w) in user_starts.windows(2).enumerate() {
            users.resize(w[1] as usize, unique_users[i]);
        }
        Ok(Self {
            users,
            times,
            lats,
            lons,
            unique_users,
            user_starts,
        })
    }

    /// Total number of tweets.
    #[inline]
    pub fn n_tweets(&self) -> usize {
        self.users.len()
    }

    /// Number of distinct users.
    #[inline]
    pub fn n_users(&self) -> usize {
        self.unique_users.len()
    }

    /// Whether the dataset holds no tweets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// All tweet latitudes, in `(user, time)` order.
    #[inline]
    pub fn lats(&self) -> &[f64] {
        &self.lats
    }

    /// All tweet longitudes, in `(user, time)` order.
    #[inline]
    pub fn lons(&self) -> &[f64] {
        &self.lons
    }

    /// The `i`-th tweet location, assembled from the coordinate columns.
    #[inline]
    pub fn point(&self, i: usize) -> Point {
        Point::new_unchecked(self.lats[i], self.lons[i])
    }

    /// Iterates all tweet locations in `(user, time)` order.
    pub fn iter_points(&self) -> impl Iterator<Item = Point> + '_ {
        self.lats
            .iter()
            .zip(self.lons.iter())
            .map(|(&lat, &lon)| Point::new_unchecked(lat, lon))
    }

    /// Materialises the locations as one `Vec<Point>` (for consumers
    /// that store points themselves, e.g. spatial index builders).
    pub fn collect_points(&self) -> Vec<Point> {
        self.iter_points().collect()
    }

    /// The CSR user offsets: `user_starts()[i]..user_starts()[i+1]` are
    /// the row indices of `unique_users()[i]`. Always one entry longer
    /// than [`TweetDataset::unique_users`]; last entry equals
    /// [`TweetDataset::n_tweets`].
    #[inline]
    pub fn user_starts(&self) -> &[u32] {
        &self.user_starts
    }

    /// All tweet timestamps, in `(user, time)` order.
    #[inline]
    pub fn times(&self) -> &[Timestamp] {
        &self.times
    }

    /// The user id of each row, in `(user, time)` order.
    #[inline]
    pub fn users(&self) -> &[UserId] {
        &self.users
    }

    /// Distinct users, ascending.
    #[inline]
    pub fn unique_users(&self) -> &[UserId] {
        &self.unique_users
    }

    /// The time-ordered tweets of `user`, or `None` if unknown.
    pub fn user_tweets(&self, user: UserId) -> Option<UserTweets<'_>> {
        let i = self.unique_users.binary_search(&user).ok()?;
        Some(self.user_view(i))
    }

    /// The view of the `i`-th distinct user (index into
    /// [`TweetDataset::unique_users`]).
    ///
    /// # Panics
    ///
    /// If `i >= n_users()`.
    pub fn user_view(&self, i: usize) -> UserTweets<'_> {
        let lo = self.user_starts[i] as usize;
        let hi = self.user_starts[i + 1] as usize;
        UserTweets {
            user: self.unique_users[i],
            times: &self.times[lo..hi],
            lats: &self.lats[lo..hi],
            lons: &self.lons[lo..hi],
        }
    }

    /// Iterates over every user's tweet view, in ascending user order.
    pub fn iter_users(&self) -> impl Iterator<Item = UserTweets<'_>> + '_ {
        (0..self.n_users()).map(move |i| self.user_view(i))
    }

    /// Iterates over every tweet, in `(user, time)` order.
    pub fn iter_tweets(&self) -> impl Iterator<Item = Tweet> + '_ {
        (0..self.n_tweets()).map(move |i| Tweet {
            user: self.users[i],
            time: self.times[i],
            location: self.point(i),
        })
    }

    /// A new dataset containing only tweets inside `bbox` — the paper's
    /// Table I filter ("we use the longitude and latitude ranges to filter
    /// the Tweets of interest"). Users whose every tweet falls outside
    /// disappear entirely.
    pub fn filter_bbox(&self, bbox: &BoundingBox) -> TweetDataset {
        let tweets: Vec<Tweet> = self
            .iter_tweets()
            .filter(|t| bbox.contains(t.location))
            .collect();
        TweetDataset::from_tweets(tweets)
    }

    /// A new dataset containing only tweets with `start <= time <= end`
    /// — the slicing primitive behind the temporal-responsiveness
    /// analysis (can a single month of tweets estimate population?).
    pub fn filter_time_range(&self, start: Timestamp, end: Timestamp) -> TweetDataset {
        let tweets: Vec<Tweet> = self
            .iter_tweets()
            .filter(|t| t.time.within(start, end))
            .collect();
        TweetDataset::from_tweets(tweets)
    }

    /// Number of tweets per user, aligned with [`TweetDataset::unique_users`].
    pub fn tweets_per_user(&self) -> Vec<u32> {
        self.user_starts.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// All waiting times (seconds between consecutive tweets of the same
    /// user), pooled over users. The paper's Fig. 2(b) "DT" sample.
    pub fn waiting_times_secs(&self) -> Vec<i64> {
        let mut out = Vec::new();
        for view in self.iter_users() {
            for w in view.times.windows(2) {
                out.push(w[1].seconds_since(w[0]));
            }
        }
        out
    }

    /// Distinct locations per user, quantised to `grain_deg` degrees —
    /// Table I's "Avg.no. locations/user" counts a user tweeting from the
    /// same venue as one location, which raw float equality would miss.
    pub fn distinct_locations_per_user(&self, grain_deg: f64) -> Vec<u32> {
        let grain = grain_deg.max(1e-9);
        let mut out = Vec::with_capacity(self.n_users());
        // BTreeSet (not a hash set): summary statistics must not depend on
        // hash iteration order anywhere, and the per-user venue counts are
        // tiny, so the ordered set costs nothing.
        let mut seen: BTreeSet<(i64, i64)> = BTreeSet::new();
        for view in self.iter_users() {
            seen.clear();
            for (&lat, &lon) in view.lats.iter().zip(view.lons.iter()) {
                seen.insert(((lat / grain).round() as i64, (lon / grain).round() as i64));
            }
            out.push(seen.len() as u32);
        }
        out
    }
}

impl FromIterator<Tweet> for TweetDataset {
    fn from_iter<I: IntoIterator<Item = Tweet>>(iter: I) -> Self {
        Self::from_tweets(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(user: u32, secs: i64, lat: f64, lon: f64) -> Tweet {
        Tweet::new(
            UserId(user),
            Timestamp::from_secs(secs),
            Point::new_unchecked(lat, lon),
        )
    }

    fn sample() -> TweetDataset {
        TweetDataset::from_tweets(vec![
            t(2, 50, -37.8, 145.0),
            t(1, 4_000, -33.8, 151.1),
            t(1, 100, -33.9, 151.2),
            t(3, 10, -31.9, 115.9),
            t(1, 9_000, -33.9, 151.2),
        ])
    }

    #[test]
    fn counts() {
        let ds = sample();
        assert_eq!(ds.n_tweets(), 5);
        assert_eq!(ds.n_users(), 3);
        assert!(!ds.is_empty());
    }

    #[test]
    fn rows_sorted_by_user_then_time() {
        let ds = sample();
        let rows: Vec<(u32, i64)> = ds
            .iter_tweets()
            .map(|tw| (tw.user.0, tw.time.as_secs()))
            .collect();
        assert_eq!(
            rows,
            vec![(1, 100), (1, 4_000), (1, 9_000), (2, 50), (3, 10)]
        );
    }

    #[test]
    fn user_views_are_time_ordered_slices() {
        let ds = sample();
        let v = ds.user_tweets(UserId(1)).unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v.times[0].as_secs(), 100);
        assert_eq!(v.times[2].as_secs(), 9_000);
        assert_eq!(v.lats[0], -33.9);
        assert_eq!(v.point(0), Point::new_unchecked(-33.9, 151.2));
        assert!(ds.user_tweets(UserId(99)).is_none());
    }

    #[test]
    fn iter_users_covers_everyone_in_order() {
        let ds = sample();
        let ids: Vec<u32> = ds.iter_users().map(|v| v.user.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        let total: usize = ds.iter_users().map(|v| v.len()).sum();
        assert_eq!(total, ds.n_tweets());
    }

    #[test]
    fn coordinate_columns_are_parallel() {
        let ds = sample();
        assert_eq!(ds.lats().len(), ds.n_tweets());
        assert_eq!(ds.lons().len(), ds.n_tweets());
        for (i, p) in ds.iter_points().enumerate() {
            assert_eq!(p.lat.to_bits(), ds.lats()[i].to_bits());
            assert_eq!(p.lon.to_bits(), ds.lons()[i].to_bits());
            assert_eq!(ds.point(i), p);
        }
        assert_eq!(ds.collect_points().len(), ds.n_tweets());
    }

    #[test]
    fn user_starts_form_a_csr_index() {
        let ds = sample();
        let starts = ds.user_starts();
        assert_eq!(starts.len(), ds.n_users() + 1);
        assert_eq!(starts[0], 0);
        assert_eq!(*starts.last().unwrap() as usize, ds.n_tweets());
        assert_eq!(starts, &[0, 3, 4, 5]);
    }

    #[test]
    fn from_sorted_columns_round_trips() {
        let ds = sample();
        let back = TweetDataset::from_sorted_columns(
            ds.unique_users().to_vec(),
            ds.user_starts().to_vec(),
            ds.times().to_vec(),
            ds.lats().to_vec(),
            ds.lons().to_vec(),
        )
        .unwrap();
        assert_eq!(back.users(), ds.users());
        assert!(ds.iter_tweets().zip(back.iter_tweets()).all(|(a, b)| a == b));
    }

    #[test]
    fn from_sorted_columns_rejects_bad_shapes() {
        let ts = |secs: &[i64]| -> Vec<Timestamp> {
            secs.iter().copied().map(Timestamp::from_secs).collect()
        };
        // Unsorted users.
        let err = TweetDataset::from_sorted_columns(
            vec![UserId(2), UserId(1)],
            vec![0, 1, 2],
            ts(&[0, 0]),
            vec![0.0, 0.0],
            vec![0.0, 0.0],
        )
        .unwrap_err();
        assert!(err.contains("unsorted"), "{err}");
        // Times decreasing within a user.
        let err = TweetDataset::from_sorted_columns(
            vec![UserId(1)],
            vec![0, 2],
            ts(&[5, 1]),
            vec![0.0, 0.0],
            vec![0.0, 0.0],
        )
        .unwrap_err();
        assert!(err.contains("timestamps"), "{err}");
        // Offsets not covering the rows.
        let err = TweetDataset::from_sorted_columns(
            vec![UserId(1)],
            vec![0, 1],
            ts(&[0, 0]),
            vec![0.0, 0.0],
            vec![0.0, 0.0],
        )
        .unwrap_err();
        assert!(err.contains("end at the row count"), "{err}");
        // Out-of-range latitude.
        let err = TweetDataset::from_sorted_columns(
            vec![UserId(1)],
            vec![0, 1],
            ts(&[0]),
            vec![95.0],
            vec![0.0],
        )
        .unwrap_err();
        assert!(err.contains("latitude"), "{err}");
        // NaN longitude.
        let err = TweetDataset::from_sorted_columns(
            vec![UserId(1)],
            vec![0, 1],
            ts(&[0]),
            vec![0.0],
            vec![f64::NAN],
        )
        .unwrap_err();
        assert!(err.contains("longitude"), "{err}");
        // Column length mismatch.
        let err = TweetDataset::from_sorted_columns(
            vec![UserId(1)],
            vec![0, 1],
            ts(&[0]),
            vec![0.0, 1.0],
            vec![0.0],
        )
        .unwrap_err();
        assert!(err.contains("length mismatch"), "{err}");
    }

    #[test]
    fn from_sorted_columns_empty_is_valid() {
        let ds =
            TweetDataset::from_sorted_columns(Vec::new(), vec![0], Vec::new(), Vec::new(), Vec::new())
                .unwrap();
        assert!(ds.is_empty());
        assert_eq!(ds.n_users(), 0);
    }

    #[test]
    fn tweets_per_user_counts() {
        let ds = sample();
        assert_eq!(ds.tweets_per_user(), vec![3, 1, 1]);
    }

    #[test]
    fn waiting_times_pooled_per_user_only() {
        let ds = sample();
        let mut w = ds.waiting_times_secs();
        w.sort_unstable();
        // Only user 1 has consecutive pairs: 4000-100, 9000-4000.
        assert_eq!(w, vec![3_900, 5_000]);
    }

    #[test]
    fn filter_bbox_drops_outside_tweets_and_users() {
        let ds = sample();
        // Box around Sydney only.
        let sydney_box = BoundingBox::new(-34.5, -33.0, 150.5, 151.5).unwrap();
        let filtered = ds.filter_bbox(&sydney_box);
        assert_eq!(filtered.n_tweets(), 3);
        assert_eq!(filtered.n_users(), 1);
        assert_eq!(filtered.unique_users(), &[UserId(1)]);
    }

    #[test]
    fn distinct_locations_quantised() {
        let ds = TweetDataset::from_tweets(vec![
            t(1, 0, -33.90001, 151.20001), // same venue as next within 1e-3°
            t(1, 10, -33.90002, 151.20003),
            t(1, 20, -30.0, 140.0), // clearly different
        ]);
        assert_eq!(ds.distinct_locations_per_user(1e-3), vec![2]);
        // At much finer grain the near-duplicates separate.
        assert_eq!(ds.distinct_locations_per_user(1e-6), vec![3]);
    }

    #[test]
    fn filter_time_range_is_inclusive_and_user_aware() {
        let ds = sample();
        let sliced = ds.filter_time_range(Timestamp::from_secs(50), Timestamp::from_secs(4_000));
        // Keeps: u1@100, u1@4000, u2@50; drops u3@10 and u1@9000.
        assert_eq!(sliced.n_tweets(), 3);
        assert_eq!(sliced.n_users(), 2);
        assert!(sliced.user_tweets(UserId(3)).is_none());
        // An empty window yields an empty dataset.
        let none =
            ds.filter_time_range(Timestamp::from_secs(100_000), Timestamp::from_secs(200_000));
        assert!(none.is_empty());
    }

    #[test]
    fn empty_dataset_behaves() {
        let ds = TweetDataset::from_tweets(Vec::new());
        assert!(ds.is_empty());
        assert_eq!(ds.n_users(), 0);
        assert!(ds.waiting_times_secs().is_empty());
        assert!(ds.tweets_per_user().is_empty());
        assert_eq!(ds.iter_users().count(), 0);
    }

    #[test]
    fn duplicate_timestamps_are_kept() {
        let ds = TweetDataset::from_tweets(vec![t(1, 100, -33.0, 151.0), t(1, 100, -34.0, 152.0)]);
        assert_eq!(ds.n_tweets(), 2);
        assert_eq!(ds.waiting_times_secs(), vec![0]);
    }

    #[test]
    fn from_iterator_collects() {
        let ds: TweetDataset = vec![t(5, 1, 0.0, 0.0), t(4, 2, 1.0, 1.0)]
            .into_iter()
            .collect();
        assert_eq!(ds.n_users(), 2);
        assert_eq!(ds.unique_users(), &[UserId(4), UserId(5)]);
    }
}
