//! Model-artifact bundle: the fit-once / predict-many container.
//!
//! A [`ModelBundle`] is everything a serving process needs to answer
//! mobility queries without refitting: the four fitted model artifacts
//! ([`FittedModelSet`]), the area metadata and populations they were
//! fitted against, and the pairwise geometry cache — persisted in one
//! versioned binary container and reloaded behind an [`Arc`]-shared
//! geometry so all threads predict from the same immutable state.
//!
//! The container follows the `.twb` conventions of [`crate::binary`]
//! (magic, little-endian fixed-width fields, `bytes` cursors) with a
//! section layout for forward compatibility:
//!
//! ```text
//! offset size  field
//! 0      4     magic  b"TMA0"
//! 4      4     schema version (u32 LE) — currently 1
//! 8      4     section count (u32 LE)
//! 12     …     sections: tag [u8;4] | payload len (u64 LE) | payload
//! ```
//!
//! Sections (order not significant; unknown tags are skipped so older
//! readers survive additive extensions):
//!
//! * `META` — label, population source (u16-length strings), search
//!   radius (f64 bits);
//! * `AREA` — count, then per area: name, centre lat/lon, census
//!   population;
//! * `POPS` — the population vector the models were fitted against;
//! * `MODL` — the fitted parameters of all four models;
//! * `GEOM` — the serialized [`PairGeometry`]
//!   ([`PairGeometry::to_bytes`], itself versioned);
//! * `PROV` (optional) — run provenance: the portable
//!   `tweetmob-obs` manifest JSON (UTF-8, stored verbatim) describing
//!   the exact fit run — subcommand, normalized args, seed, input
//!   content hashes, crate versions. Written by readers that set it
//!   ([`ModelBundle::set_provenance`]); absent from older artifacts and
//!   skipped by readers that predate it.
//!
//! Every float travels as its IEEE-754 bit pattern, so a loaded bundle
//! predicts **bit-identically** to the in-memory fit it was saved from
//! — the acceptance contract of the artifact layer, asserted end to end
//! in `tests/artifacts.rs`.
//!
//! Malformed containers surface as [`IoError::Format`]; saving and
//! loading record `artifact/save`/`artifact/load` spans plus
//! `artifact/{save_ns,load_ns,bytes}` gauges.

use crate::io::IoError;
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::sync::Arc;
use tweetmob_geo::{PairGeometry, Point};
use tweetmob_models::{
    FittedModelSet, FlowObservation, Gravity2Fit, Gravity4Fit, InterveningPopulation, ModelKind,
    OpportunitiesFit, RadiationFit,
};

/// Magic bytes opening a model-artifact bundle ("TweetMob Artifact").
pub const ARTIFACT_MAGIC: [u8; 4] = *b"TMA0";
/// Schema version of the bundle container. Bump on any layout change;
/// readers reject versions they do not know.
pub const ARTIFACT_VERSION: u32 = 1;

const TAG_META: [u8; 4] = *b"META";
const TAG_AREA: [u8; 4] = *b"AREA";
const TAG_POPS: [u8; 4] = *b"POPS";
const TAG_MODL: [u8; 4] = *b"MODL";
const TAG_GEOM: [u8; 4] = *b"GEOM";
const TAG_PROV: [u8; 4] = *b"PROV";

/// Typed rejection of a malformed artifact query.
///
/// Every variant names the offending input and, for range errors, the
/// valid range, so callers (CLI messages, HTTP 400 bodies) can echo a
/// actionable diagnosis without re-deriving bundle state. Queries never
/// panic on bad input — a serving worker must survive any request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Origin area index is not in `0..len`.
    OriginOutOfRange {
        /// The rejected origin index.
        origin: usize,
        /// Number of areas in the bundle.
        len: usize,
    },
    /// Destination area index is not in `0..len`.
    DestOutOfRange {
        /// The rejected destination index.
        dest: usize,
        /// Number of areas in the bundle.
        len: usize,
    },
    /// Origin and destination are the same area — a self-pair has no
    /// flow observation under any of the fitted models.
    SelfPair {
        /// The repeated area index.
        index: usize,
    },
    /// `top_k` was asked for zero destinations.
    ZeroK,
    /// The model name does not parse as a [`ModelKind`].
    UnknownModel {
        /// The rejected model name.
        name: String,
    },
    /// No area in the bundle has this name (case-insensitive).
    UnknownArea {
        /// The rejected area name.
        name: String,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let range = |f: &mut std::fmt::Formatter<'_>, len: usize| {
            if len == 0 {
                write!(f, "the bundle covers no areas")
            } else {
                write!(f, "the bundle covers {len} areas (valid indices 0..={})", len - 1)
            }
        };
        match self {
            QueryError::OriginOutOfRange { origin, len } => {
                write!(f, "origin index {origin} is out of range: ")?;
                range(f, *len)
            }
            QueryError::DestOutOfRange { dest, len } => {
                write!(f, "destination index {dest} is out of range: ")?;
                range(f, *len)
            }
            QueryError::SelfPair { index } => write!(
                f,
                "origin and destination are both area {index}: a self-pair has no flow"
            ),
            QueryError::ZeroK => write!(f, "k must be at least 1"),
            QueryError::UnknownModel { name } => write!(
                f,
                "unknown model {name:?} (expected gravity4|gravity2|radiation|opportunities)"
            ),
            QueryError::UnknownArea { name } => {
                write!(f, "no area named {name:?} in the bundle")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Experiment provenance stored in a bundle's `META` section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BundleMeta {
    /// Experiment label (e.g. the scale name the CLI fitted at).
    pub label: String,
    /// Where the fitting populations came from ("twitter" / "census").
    pub population_source: String,
    /// Search radius ε of the area set, km.
    pub radius_km: f64,
}

/// One area's metadata inside a bundle — enough to answer name-based
/// queries and to seed downstream consumers (the epidemic network uses
/// the census population).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BundleArea {
    /// Area name, unique within the bundle (case-insensitive lookup).
    pub name: String,
    /// Area centre.
    pub center: Point,
    /// Census population of the area.
    pub census_population: f64,
}

/// The persistable fit-once / predict-many artifact: fitted models,
/// the data they were fitted against, and the shared geometry cache.
///
/// The intervening-population structure is **derived** state — it is a
/// deterministic function of the geometry and populations — so it is
/// rebuilt on construction and never serialized; a loaded bundle is
/// indistinguishable from the one that was saved.
#[derive(Debug, Clone)]
pub struct ModelBundle {
    meta: BundleMeta,
    areas: Vec<BundleArea>,
    populations: Vec<f64>,
    models: FittedModelSet,
    geometry: Arc<PairGeometry>,
    intervening: InterveningPopulation,
    provenance: Option<String>,
}

impl ModelBundle {
    /// Assembles a bundle from its parts, rebuilding the derived
    /// intervening-population rankings.
    ///
    /// # Panics
    ///
    /// If `areas`, `populations` and `geometry` do not agree in length.
    #[must_use]
    pub fn new(
        meta: BundleMeta,
        areas: Vec<BundleArea>,
        populations: Vec<f64>,
        models: FittedModelSet,
        geometry: Arc<PairGeometry>,
    ) -> Self {
        assert_eq!(
            areas.len(),
            populations.len(),
            "areas and populations must align"
        );
        assert_eq!(
            geometry.len(),
            populations.len(),
            "geometry and populations must align"
        );
        let intervening = InterveningPopulation::from_geometry(Arc::clone(&geometry), &populations);
        Self {
            meta,
            areas,
            populations,
            models,
            geometry,
            intervening,
            provenance: None,
        }
    }

    /// Attaches a run-provenance document (the portable `tweetmob-obs`
    /// manifest JSON) to be written as the bundle's `PROV` section.
    pub fn set_provenance(&mut self, manifest_json: String) {
        self.provenance = Some(manifest_json);
    }

    /// The run-provenance document stored in the bundle's `PROV`
    /// section, if the writer recorded one.
    #[must_use]
    pub fn provenance(&self) -> Option<&str> {
        self.provenance.as_deref()
    }

    /// Experiment provenance.
    #[must_use]
    pub fn meta(&self) -> &BundleMeta {
        &self.meta
    }

    /// Area metadata, in fitting order.
    #[must_use]
    pub fn areas(&self) -> &[BundleArea] {
        &self.areas
    }

    /// The population vector the models were fitted against, aligned
    /// with [`ModelBundle::areas`].
    #[must_use]
    pub fn populations(&self) -> &[f64] {
        &self.populations
    }

    /// The four fitted model artifacts.
    #[must_use]
    pub fn models(&self) -> &FittedModelSet {
        &self.models
    }

    /// The shared pairwise geometry cache (cheap to clone and hand to
    /// any number of prediction threads).
    #[must_use]
    pub fn geometry(&self) -> &Arc<PairGeometry> {
        &self.geometry
    }

    /// The derived intervening-population structure over the bundle's
    /// populations and geometry.
    #[must_use]
    pub fn intervening(&self) -> &InterveningPopulation {
        &self.intervening
    }

    /// Number of areas.
    #[must_use]
    pub fn len(&self) -> usize {
        self.areas.len()
    }

    /// Whether the bundle covers no areas.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.areas.is_empty()
    }

    /// Index of the area with this name (case-insensitive), if any.
    #[must_use]
    pub fn area_index(&self, name: &str) -> Option<usize> {
        self.areas
            .iter()
            .position(|a| a.name.eq_ignore_ascii_case(name))
    }

    /// Validates an origin–destination pair against the bundle.
    ///
    /// # Errors
    ///
    /// [`QueryError::OriginOutOfRange`], [`QueryError::DestOutOfRange`]
    /// or [`QueryError::SelfPair`].
    fn check_pair(&self, origin: usize, dest: usize) -> Result<(), QueryError> {
        if origin >= self.len() {
            return Err(QueryError::OriginOutOfRange { origin, len: self.len() });
        }
        if dest >= self.len() {
            return Err(QueryError::DestOutOfRange { dest, len: self.len() });
        }
        if origin == dest {
            return Err(QueryError::SelfPair { index: origin });
        }
        Ok(())
    }

    /// Resolves an area name (case-insensitive) to its index.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownArea`] when no area carries the name.
    pub fn resolve_area(&self, name: &str) -> Result<usize, QueryError> {
        self.area_index(name)
            .ok_or_else(|| QueryError::UnknownArea { name: name.to_owned() })
    }

    /// Parses a model name into a [`ModelKind`] with a typed error.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownModel`] when the name is not a model key.
    pub fn resolve_model(name: &str) -> Result<ModelKind, QueryError> {
        ModelKind::parse(name)
            .ok_or_else(|| QueryError::UnknownModel { name: name.to_owned() })
    }

    /// The prediction-ready observation for an origin–destination pair:
    /// populations from the bundle, distance from the geometry cache,
    /// intervening population from the derived rankings,
    /// `observed_flow` zero (prediction ignores it).
    ///
    /// # Errors
    ///
    /// [`QueryError`] when an index is out of range or `origin == dest`.
    pub fn observation(&self, origin: usize, dest: usize) -> Result<FlowObservation, QueryError> {
        self.check_pair(origin, dest)?;
        Ok(FlowObservation {
            origin_population: self.populations[origin],
            dest_population: self.populations[dest],
            distance_km: self.geometry.distance(origin, dest),
            intervening_population: self.intervening.s(origin, dest),
            observed_flow: 0.0,
        })
    }

    /// Predicted flow of one model for an origin–destination pair.
    ///
    /// # Errors
    ///
    /// As [`ModelBundle::observation`].
    pub fn predict(&self, kind: ModelKind, origin: usize, dest: usize) -> Result<f64, QueryError> {
        Ok(self.models.predict(kind, &self.observation(origin, dest)?))
    }

    /// The `k` destinations with the largest predicted flow from
    /// `origin`, as `(area index, predicted flow)` descending.
    /// Deterministic: ties break toward the smaller area index
    /// (`total_cmp`, no thread-count or load-order sensitivity).
    /// `k` larger than the number of destinations clamps.
    ///
    /// # Errors
    ///
    /// [`QueryError::OriginOutOfRange`] or [`QueryError::ZeroK`].
    pub fn top_k(
        &self,
        kind: ModelKind,
        origin: usize,
        k: usize,
    ) -> Result<Vec<(usize, f64)>, QueryError> {
        if origin >= self.len() {
            return Err(QueryError::OriginOutOfRange { origin, len: self.len() });
        }
        if k == 0 {
            return Err(QueryError::ZeroK);
        }
        let mut scored: Vec<(usize, f64)> = (0..self.len())
            .filter(|&dest| dest != origin)
            .map(|dest| {
                let obs = FlowObservation {
                    origin_population: self.populations[origin],
                    dest_population: self.populations[dest],
                    distance_km: self.geometry.distance(origin, dest),
                    intervening_population: self.intervening.s(origin, dest),
                    observed_flow: 0.0,
                };
                (dest, self.models.predict(kind, &obs))
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored.truncate(k);
        Ok(scored)
    }

    /// Serializes the bundle into the container format.
    #[must_use]
    fn encode(&self) -> Vec<u8> {
        let mut meta = Vec::new();
        put_str(&mut meta, &self.meta.label);
        put_str(&mut meta, &self.meta.population_source);
        meta.put_f64_le(self.meta.radius_km);

        let mut area = Vec::new();
        area.put_u32_le(clamp_u32(self.areas.len()));
        for a in &self.areas {
            put_str(&mut area, &a.name);
            area.put_f64_le(a.center.lat);
            area.put_f64_le(a.center.lon);
            area.put_f64_le(a.census_population);
        }

        let mut pops = Vec::new();
        pops.put_u32_le(clamp_u32(self.populations.len()));
        for &p in &self.populations {
            pops.put_f64_le(p);
        }

        let mut modl = Vec::new();
        let m = &self.models;
        for v in [
            m.gravity4.c,
            m.gravity4.alpha,
            m.gravity4.beta,
            m.gravity4.gamma,
            m.gravity4.log_r_squared,
        ] {
            modl.put_f64_le(v);
        }
        modl.put_u64_le(m.gravity4.n_used as u64);
        for v in [m.gravity2.c, m.gravity2.gamma, m.gravity2.log_r_squared] {
            modl.put_f64_le(v);
        }
        modl.put_u64_le(m.gravity2.n_used as u64);
        modl.put_f64_le(m.radiation.c);
        modl.put_u64_le(m.radiation.n_used as u64);
        modl.put_f64_le(m.opportunities.c);
        modl.put_u64_le(m.opportunities.n_used as u64);

        let geom = self.geometry.to_bytes();

        let mut sections: Vec<(&[u8; 4], &[u8])> = vec![
            (&TAG_META, &meta),
            (&TAG_AREA, &area),
            (&TAG_POPS, &pops),
            (&TAG_MODL, &modl),
            (&TAG_GEOM, &geom),
        ];
        // Raw UTF-8 bytes under the section's own u64 length framing —
        // a u16-prefixed string would truncate a long manifest.
        if let Some(prov) = &self.provenance {
            sections.push((&TAG_PROV, prov.as_bytes()));
        }
        let body: usize = sections.iter().map(|(_, p)| 4 + 8 + p.len()).sum();
        let mut out = Vec::with_capacity(12 + body);
        out.put_slice(&ARTIFACT_MAGIC);
        out.put_u32_le(ARTIFACT_VERSION);
        out.put_u32_le(clamp_u32(sections.len()));
        for (tag, payload) in sections {
            out.put_slice(tag);
            out.put_u64_le(payload.len() as u64);
            out.put_slice(payload);
        }
        out
    }

    /// Parses a container produced by [`ModelBundle::encode`].
    fn decode(bytes: &[u8]) -> Result<Self, IoError> {
        let mut r = Reader { rem: bytes };
        let magic = r.take(4, "magic")?;
        if magic != ARTIFACT_MAGIC {
            return Err(format_err(format!(
                "bad magic {magic:?}, expected {ARTIFACT_MAGIC:?}"
            )));
        }
        let version = r.u32("version")?;
        if version != ARTIFACT_VERSION {
            return Err(format_err(format!(
                "unsupported artifact version {version} (reader supports {ARTIFACT_VERSION})"
            )));
        }
        let n_sections = r.u32("section count")?;

        let mut meta: Option<BundleMeta> = None;
        let mut areas: Option<Vec<BundleArea>> = None;
        let mut populations: Option<Vec<f64>> = None;
        let mut models: Option<FittedModelSet> = None;
        let mut geometry: Option<Arc<PairGeometry>> = None;
        let mut provenance: Option<String> = None;

        for _ in 0..n_sections {
            let mut tag = [0u8; 4];
            tag.copy_from_slice(r.take(4, "section tag")?);
            let len = r.u64("section length")?;
            let len = usize::try_from(len)
                .map_err(|_| format_err(format!("implausible section length {len}")))?;
            let payload = r.take(len, "section payload")?;
            match tag {
                TAG_META => {
                    set_once(&mut meta, decode_meta(payload)?, "META")?;
                }
                TAG_AREA => {
                    set_once(&mut areas, decode_areas(payload)?, "AREA")?;
                }
                TAG_POPS => {
                    set_once(&mut populations, decode_pops(payload)?, "POPS")?;
                }
                TAG_MODL => {
                    set_once(&mut models, decode_models(payload)?, "MODL")?;
                }
                TAG_GEOM => {
                    let geo =
                        PairGeometry::from_bytes(payload).map_err(|e| format_err(e.to_string()))?;
                    set_once(&mut geometry, Arc::new(geo), "GEOM")?;
                }
                TAG_PROV => {
                    let json = String::from_utf8(payload.to_vec())
                        .map_err(|_| format_err("PROV section is not valid UTF-8".into()))?;
                    set_once(&mut provenance, json, "PROV")?;
                }
                // Unknown section: a newer writer added something this
                // reader does not understand — skip it.
                _ => {}
            }
        }
        if !r.rem.is_empty() {
            return Err(format_err(format!(
                "{} trailing bytes after final section",
                r.rem.len()
            )));
        }

        let meta = meta.ok_or_else(|| format_err("missing META section".into()))?;
        let areas = areas.ok_or_else(|| format_err("missing AREA section".into()))?;
        let populations = populations.ok_or_else(|| format_err("missing POPS section".into()))?;
        let models = models.ok_or_else(|| format_err("missing MODL section".into()))?;
        let geometry = geometry.ok_or_else(|| format_err("missing GEOM section".into()))?;

        if areas.len() != populations.len() || geometry.len() != populations.len() {
            return Err(format_err(format!(
                "section length mismatch: {} areas, {} populations, {} geometry points",
                areas.len(),
                populations.len(),
                geometry.len()
            )));
        }
        let mut bundle = Self::new(meta, areas, populations, models, geometry);
        bundle.provenance = provenance;
        Ok(bundle)
    }

    /// Writes the bundle to a stream, recording the `artifact/save`
    /// span and the `artifact/{save_ns,bytes}` gauges.
    ///
    /// # Errors
    ///
    /// [`IoError::Io`] on write failure.
    pub fn save<W: Write>(&self, mut w: W) -> Result<(), IoError> {
        let encoded = {
            let _span = tweetmob_obs::span!("artifact/save");
            self.encode()
        };
        w.write_all(&encoded)?;
        let save_ns = tweetmob_obs::global()
            .span_stat("artifact/save")
            .map_or(0, |s| s.total_ns);
        tweetmob_obs::gauge!("artifact/save_ns").set(i64::try_from(save_ns).unwrap_or(i64::MAX));
        tweetmob_obs::gauge!("artifact/bytes")
            .set(i64::try_from(encoded.len()).unwrap_or(i64::MAX));
        Ok(())
    }

    /// Reads a bundle written by [`ModelBundle::save`], recording the
    /// `artifact/load` span and the `artifact/{load_ns,bytes}` gauges.
    ///
    /// # Errors
    ///
    /// [`IoError::Io`] on read failure; [`IoError::Format`] on a
    /// malformed or version-incompatible container (no path attached —
    /// callers that know the file name add it with
    /// [`IoError::with_path`]).
    pub fn load<R: Read>(mut r: R) -> Result<Self, IoError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        let bundle = {
            let _span = tweetmob_obs::span!("artifact/load");
            Self::decode(&bytes)?
        };
        let load_ns = tweetmob_obs::global()
            .span_stat("artifact/load")
            .map_or(0, |s| s.total_ns);
        tweetmob_obs::gauge!("artifact/load_ns").set(i64::try_from(load_ns).unwrap_or(i64::MAX));
        tweetmob_obs::gauge!("artifact/bytes").set(i64::try_from(bytes.len()).unwrap_or(i64::MAX));
        Ok(bundle)
    }

    /// [`ModelBundle::save`] to a file path, which is attached to any
    /// error.
    ///
    /// # Errors
    ///
    /// As [`ModelBundle::save`].
    pub fn save_file(&self, path: &str) -> Result<(), IoError> {
        let file = std::fs::File::create(path).map_err(IoError::Io)?;
        self.save(std::io::BufWriter::new(file))
            .map_err(|e| e.with_path(path))
    }

    /// [`ModelBundle::load`] from a file path, which is attached to any
    /// error.
    ///
    /// # Errors
    ///
    /// As [`ModelBundle::load`].
    pub fn load_file(path: &str) -> Result<Self, IoError> {
        let file = std::fs::File::open(path).map_err(IoError::Io)?;
        Self::load(std::io::BufReader::new(file)).map_err(|e| e.with_path(path))
    }
}

fn format_err(message: String) -> IoError {
    IoError::Format {
        path: String::new(),
        message,
    }
}

fn set_once<T>(slot: &mut Option<T>, value: T, tag: &str) -> Result<(), IoError> {
    if slot.is_some() {
        return Err(format_err(format!("duplicate {tag} section")));
    }
    *slot = Some(value);
    Ok(())
}

/// Area/population counts fit in u32 by construction (the paper's
/// scales have ≤ 20 areas); saturate rather than truncate if a caller
/// somehow exceeds it — the load-side length cross-check then rejects
/// the container instead of silently corrupting it.
fn clamp_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    let raw = s.as_bytes();
    let len = u16::try_from(raw.len()).unwrap_or(u16::MAX);
    buf.put_u16_le(len);
    buf.put_slice(&raw[..usize::from(len)]);
}

/// Bounds-checked little-endian reader over a byte slice: malformed
/// input surfaces as [`IoError::Format`], never a panic.
struct Reader<'a> {
    rem: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], IoError> {
        if self.rem.len() < n {
            return Err(format_err(format!(
                "truncated while reading {what}: need {n} bytes, have {}",
                self.rem.len()
            )));
        }
        let (head, tail) = self.rem.split_at(n);
        self.rem = tail;
        Ok(head)
    }

    fn u16(&mut self, what: &str) -> Result<u16, IoError> {
        Ok(self.take(2, what)?.get_u16_le())
    }

    fn u32(&mut self, what: &str) -> Result<u32, IoError> {
        Ok(self.take(4, what)?.get_u32_le())
    }

    fn u64(&mut self, what: &str) -> Result<u64, IoError> {
        Ok(self.take(8, what)?.get_u64_le())
    }

    fn f64(&mut self, what: &str) -> Result<f64, IoError> {
        Ok(self.take(8, what)?.get_f64_le())
    }

    fn string(&mut self, what: &str) -> Result<String, IoError> {
        let len = usize::from(self.u16(what)?);
        let raw = self.take(len, what)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| format_err(format!("{what} is not valid UTF-8")))
    }

    fn usize_from_u64(&mut self, what: &str) -> Result<usize, IoError> {
        let raw = self.u64(what)?;
        usize::try_from(raw).map_err(|_| format_err(format!("implausible {what} {raw}")))
    }

    fn finish(self, what: &str) -> Result<(), IoError> {
        if self.rem.is_empty() {
            Ok(())
        } else {
            Err(format_err(format!(
                "{} trailing bytes in {what} section",
                self.rem.len()
            )))
        }
    }
}

fn decode_meta(payload: &[u8]) -> Result<BundleMeta, IoError> {
    let mut r = Reader { rem: payload };
    let label = r.string("meta label")?;
    let population_source = r.string("meta population source")?;
    let radius_km = r.f64("meta radius")?;
    r.finish("META")?;
    Ok(BundleMeta {
        label,
        population_source,
        radius_km,
    })
}

fn decode_areas(payload: &[u8]) -> Result<Vec<BundleArea>, IoError> {
    let mut r = Reader { rem: payload };
    let count = r.u32("area count")?;
    let mut areas = Vec::with_capacity(count.min(1 << 16) as usize);
    for _ in 0..count {
        let name = r.string("area name")?;
        let lat = r.f64("area latitude")?;
        let lon = r.f64("area longitude")?;
        let census_population = r.f64("area census population")?;
        let center = Point::new(lat, lon)
            .map_err(|e| format_err(format!("area {name:?}: invalid centre: {e}")))?;
        areas.push(BundleArea {
            name,
            center,
            census_population,
        });
    }
    r.finish("AREA")?;
    Ok(areas)
}

fn decode_pops(payload: &[u8]) -> Result<Vec<f64>, IoError> {
    let mut r = Reader { rem: payload };
    let count = r.u32("population count")?;
    let mut pops = Vec::with_capacity(count.min(1 << 16) as usize);
    for _ in 0..count {
        pops.push(r.f64("population")?);
    }
    r.finish("POPS")?;
    Ok(pops)
}

fn decode_models(payload: &[u8]) -> Result<FittedModelSet, IoError> {
    let mut r = Reader { rem: payload };
    let gravity4 = Gravity4Fit {
        c: r.f64("gravity4 c")?,
        alpha: r.f64("gravity4 alpha")?,
        beta: r.f64("gravity4 beta")?,
        gamma: r.f64("gravity4 gamma")?,
        log_r_squared: r.f64("gravity4 r²")?,
        n_used: r.usize_from_u64("gravity4 n_used")?,
    };
    let gravity2 = Gravity2Fit {
        c: r.f64("gravity2 c")?,
        gamma: r.f64("gravity2 gamma")?,
        log_r_squared: r.f64("gravity2 r²")?,
        n_used: r.usize_from_u64("gravity2 n_used")?,
    };
    let radiation = RadiationFit {
        c: r.f64("radiation c")?,
        n_used: r.usize_from_u64("radiation n_used")?,
    };
    let opportunities = OpportunitiesFit {
        c: r.f64("opportunities c")?,
        n_used: r.usize_from_u64("opportunities n_used")?,
    };
    r.finish("MODL")?;
    Ok(FittedModelSet {
        gravity4,
        gravity2,
        radiation,
        opportunities,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tweetmob_models::FittedModel;

    fn scatter(count: usize, seed: u64) -> Vec<Point> {
        let mut k = seed;
        let mut next = |lo: f64, hi: f64| {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            lo + (k >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
        };
        (0..count)
            .map(|_| Point::new_unchecked(next(-44.0, -10.0), next(113.0, 154.0)))
            .collect()
    }

    fn sample_bundle(n: usize, seed: u64) -> ModelBundle {
        let centers = scatter(n, seed);
        let geometry = PairGeometry::shared(&centers);
        let mut k = seed.wrapping_mul(31).wrapping_add(7);
        let mut next = |lo: f64, hi: f64| {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            lo + (k >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
        };
        let populations: Vec<f64> = (0..n).map(|_| next(1e3, 1e6)).collect();
        let intervening = InterveningPopulation::from_geometry(Arc::clone(&geometry), &populations);
        let mut obs = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let o = FlowObservation {
                    origin_population: populations[i],
                    dest_population: populations[j],
                    distance_km: geometry.distance(i, j),
                    intervening_population: intervening.s(i, j),
                    observed_flow: 0.01 * populations[i] * populations[j]
                        / (geometry.distance(i, j) * geometry.distance(i, j)),
                };
                obs.push(o);
            }
        }
        let models = FittedModelSet::fit(&obs).unwrap();
        let areas: Vec<BundleArea> = centers
            .iter()
            .enumerate()
            .map(|(i, &center)| BundleArea {
                name: format!("Area {i}"),
                center,
                census_population: populations[i] * 1.5,
            })
            .collect();
        ModelBundle::new(
            BundleMeta {
                label: "test".into(),
                population_source: "twitter".into(),
                radius_km: 50.0,
            },
            areas,
            populations,
            models,
            geometry,
        )
    }

    #[test]
    fn save_load_round_trip_is_byte_identical() {
        let bundle = sample_bundle(8, 17);
        let mut first = Vec::new();
        bundle.save(&mut first).unwrap();
        let loaded = ModelBundle::load(&first[..]).unwrap();
        let mut second = Vec::new();
        loaded.save(&mut second).unwrap();
        assert_eq!(first, second, "re-encoding must be canonical");
        assert_eq!(loaded.meta(), bundle.meta());
        assert_eq!(loaded.areas(), bundle.areas());
        assert_eq!(loaded.models(), bundle.models());
        assert_eq!(
            loaded
                .populations()
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>(),
            bundle
                .populations()
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn loaded_predictions_bit_match_the_original() {
        let bundle = sample_bundle(7, 3);
        let mut buf = Vec::new();
        bundle.save(&mut buf).unwrap();
        let loaded = ModelBundle::load(&buf[..]).unwrap();
        for kind in ModelKind::ALL {
            for i in 0..bundle.len() {
                for j in 0..bundle.len() {
                    if i == j {
                        continue;
                    }
                    assert_eq!(
                        bundle.predict(kind, i, j).unwrap().to_bits(),
                        loaded.predict(kind, i, j).unwrap().to_bits(),
                        "{kind} {i}->{j}"
                    );
                }
            }
        }
    }

    #[test]
    fn top_k_is_descending_and_deterministic() {
        let bundle = sample_bundle(9, 5);
        let top = bundle.top_k(ModelKind::Gravity2, 0, 4).unwrap();
        assert_eq!(top.len(), 4);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(top.iter().all(|&(j, _)| j != 0));
        // k larger than the area count is clamped.
        assert_eq!(bundle.top_k(ModelKind::Gravity2, 0, 100).unwrap().len(), 8);
        // Deterministic across repeated evaluation.
        assert_eq!(top, bundle.top_k(ModelKind::Gravity2, 0, 4).unwrap());
    }

    #[test]
    fn queries_reject_bad_input_with_typed_errors() {
        let bundle = sample_bundle(5, 17);
        assert_eq!(
            bundle.observation(5, 0),
            Err(QueryError::OriginOutOfRange { origin: 5, len: 5 })
        );
        assert_eq!(
            bundle.observation(0, 9),
            Err(QueryError::DestOutOfRange { dest: 9, len: 5 })
        );
        assert_eq!(
            bundle.observation(3, 3),
            Err(QueryError::SelfPair { index: 3 })
        );
        assert_eq!(
            bundle.predict(ModelKind::Gravity4, 0, 7),
            Err(QueryError::DestOutOfRange { dest: 7, len: 5 })
        );
        assert_eq!(
            bundle.top_k(ModelKind::Gravity2, 11, 3),
            Err(QueryError::OriginOutOfRange { origin: 11, len: 5 })
        );
        assert_eq!(bundle.top_k(ModelKind::Gravity2, 0, 0), Err(QueryError::ZeroK));
        assert_eq!(
            bundle.resolve_area("atlantis"),
            Err(QueryError::UnknownArea { name: "atlantis".into() })
        );
        assert_eq!(bundle.resolve_area("AREA 1"), Ok(1));
        assert_eq!(
            ModelBundle::resolve_model("newton"),
            Err(QueryError::UnknownModel { name: "newton".into() })
        );
        assert_eq!(ModelBundle::resolve_model("gravity2"), Ok(ModelKind::Gravity2));
        // The messages carry the valid range — serving handlers echo
        // them verbatim into 400 bodies.
        let msg = QueryError::OriginOutOfRange { origin: 5, len: 5 }.to_string();
        assert!(msg.contains("valid indices 0..=4"), "{msg}");
    }

    #[test]
    fn observation_matches_its_parts() {
        let bundle = sample_bundle(6, 29);
        let obs = bundle.observation(1, 4).unwrap();
        assert_eq!(
            obs.origin_population.to_bits(),
            bundle.populations()[1].to_bits()
        );
        assert_eq!(
            obs.distance_km.to_bits(),
            bundle.geometry().distance(1, 4).to_bits()
        );
        assert_eq!(
            obs.intervening_population.to_bits(),
            bundle.intervening().s(1, 4).to_bits()
        );
        assert_eq!(obs.observed_flow, 0.0);
        let direct = bundle.models().gravity4.predict_flow(&obs);
        assert_eq!(
            bundle.predict(ModelKind::Gravity4, 1, 4).unwrap().to_bits(),
            direct.to_bits()
        );
    }

    #[test]
    fn area_lookup_is_case_insensitive() {
        let bundle = sample_bundle(4, 11);
        assert_eq!(bundle.area_index("area 2"), Some(2));
        assert_eq!(bundle.area_index("AREA 0"), Some(0));
        assert_eq!(bundle.area_index("nowhere"), None);
    }

    #[test]
    fn corrupt_containers_are_format_errors() {
        let bundle = sample_bundle(5, 41);
        let mut buf = Vec::new();
        bundle.save(&mut buf).unwrap();

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            ModelBundle::load(&bad[..]),
            Err(IoError::Format { .. })
        ));

        let mut bad = buf.clone();
        bad[4] = 99;
        match ModelBundle::load(&bad[..]) {
            Err(IoError::Format { message, .. }) => assert!(message.contains("version")),
            other => panic!("expected version error, got {other:?}"),
        }

        let truncated = &buf[..buf.len() - 3];
        assert!(matches!(
            ModelBundle::load(truncated),
            Err(IoError::Format { .. })
        ));

        let mut trailing = buf.clone();
        trailing.extend_from_slice(b"junk");
        assert!(matches!(
            ModelBundle::load(&trailing[..]),
            Err(IoError::Format { .. })
        ));
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let bundle = sample_bundle(4, 53);
        let mut buf = Vec::new();
        bundle.save(&mut buf).unwrap();
        // Append an unknown section and bump the section count.
        let count = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
        buf[8..12].copy_from_slice(&(count + 1).to_le_bytes());
        buf.extend_from_slice(b"XTRA");
        buf.extend_from_slice(&3u64.to_le_bytes());
        buf.extend_from_slice(b"abc");
        let loaded = ModelBundle::load(&buf[..]).unwrap();
        assert_eq!(loaded.meta(), bundle.meta());
        assert_eq!(loaded.models(), bundle.models());
    }

    #[test]
    fn provenance_round_trips_byte_identically() {
        let mut bundle = sample_bundle(4, 67);
        assert_eq!(bundle.provenance(), None);
        let manifest = r#"{"schema_version": 1, "seed": 42, "subcommand": "fit"}"#;
        bundle.set_provenance(manifest.to_string());
        let mut first = Vec::new();
        bundle.save(&mut first).unwrap();
        let loaded = ModelBundle::load(&first[..]).unwrap();
        assert_eq!(loaded.provenance(), Some(manifest));
        // Canonical re-encode holds with the optional section present.
        let mut second = Vec::new();
        loaded.save(&mut second).unwrap();
        assert_eq!(first, second, "re-encoding must be canonical");
        assert_eq!(loaded.models(), bundle.models());
    }

    #[test]
    fn provenance_is_invisible_to_old_readers() {
        // An old reader sees PROV as just another unknown tag. Emulate
        // one by renaming the tag so this reader's PROV arm never fires.
        let mut bundle = sample_bundle(4, 67);
        bundle.set_provenance("{\"seed\": 1}".to_string());
        let mut buf = Vec::new();
        bundle.save(&mut buf).unwrap();
        let pos = buf
            .windows(4)
            .position(|w| w == b"PROV")
            .expect("PROV tag present");
        buf[pos..pos + 4].copy_from_slice(b"XPRV");
        let loaded = ModelBundle::load(&buf[..]).unwrap();
        assert_eq!(loaded.provenance(), None);
        assert_eq!(loaded.models(), bundle.models());
    }

    #[test]
    fn duplicate_prov_sections_are_rejected() {
        let mut bundle = sample_bundle(4, 67);
        bundle.set_provenance("{}".to_string());
        let mut buf = Vec::new();
        bundle.save(&mut buf).unwrap();
        let count = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
        buf[8..12].copy_from_slice(&(count + 1).to_le_bytes());
        buf.extend_from_slice(b"PROV");
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(b"{}");
        match ModelBundle::load(&buf[..]) {
            Err(IoError::Format { message, .. }) => {
                assert!(message.contains("duplicate PROV"), "{message}");
            }
            other => panic!("expected duplicate-section error, got {other:?}"),
        }
    }

    #[test]
    fn non_utf8_prov_is_a_format_error() {
        let bundle = sample_bundle(4, 67);
        let mut buf = Vec::new();
        bundle.save(&mut buf).unwrap();
        let count = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
        buf[8..12].copy_from_slice(&(count + 1).to_le_bytes());
        buf.extend_from_slice(b"PROV");
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&[0xff, 0xfe]);
        match ModelBundle::load(&buf[..]) {
            Err(IoError::Format { message, .. }) => {
                assert!(message.contains("UTF-8"), "{message}");
            }
            other => panic!("expected UTF-8 error, got {other:?}"),
        }
    }

    #[test]
    fn file_errors_carry_the_path() {
        let err = ModelBundle::load_file("/nonexistent/bundle.tma").unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
        let dir = std::env::temp_dir().join("tweetmob_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.tma");
        std::fs::write(&path, b"not an artifact").unwrap();
        let path = path.to_string_lossy().into_owned();
        match ModelBundle::load_file(&path) {
            Err(IoError::Format { path: p, .. }) => assert_eq!(p, path),
            other => panic!("expected Format with path, got {other:?}"),
        }
    }

    #[test]
    fn save_load_metrics_are_recorded() {
        let bundle = sample_bundle(5, 71);
        let mut buf = Vec::new();
        bundle.save(&mut buf).unwrap();
        let _ = ModelBundle::load(&buf[..]).unwrap();
        let registry = tweetmob_obs::global();
        assert!(registry.span_stat("artifact/save").is_some());
        assert!(registry.span_stat("artifact/load").is_some());
    }
}
