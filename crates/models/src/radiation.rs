//! The radiation model (paper Eq. 3) and the intervening-population term.
//!
//! Radiation (Simini et al., Nature 2012) is parameter-free up to a
//! scaling constant: `P = C · m n / ((m+s)(m+n+s))` where `s` is the
//! total population within a circle of radius `d` centred at the origin,
//! excluding the origin and destination themselves. The paper's headline
//! result is that this model *underperforms* gravity in Australia because
//! the population is coastal and discontinuous — `s` is frequently ~0
//! even for distant pairs, which radiation's smooth-dispersion assumption
//! does not anticipate.

use crate::columns::ScoreColumns;
use crate::fitted::FittedModel;
use crate::traits::{FlowObservation, ModelError};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tweetmob_geo::{PairGeometry, Point};
use tweetmob_stats::check::debug_assert_finite;

/// Efficient `s(i, j)` computation over a fixed set of areas.
///
/// Rides on a shared [`PairGeometry`] cache: the per-origin
/// distance-sorted rank lists come straight from the cache, and every
/// distance a query needs — including the destination distance in the
/// disc-count path — is a cached lookup, never a fresh haversine. A
/// population prefix sum in rank order makes each query a binary
/// search — O(n log n) build, O(log n) per pair instead of the naive
/// O(n) scan (ablated in `bench/radiation.rs`).
#[derive(Debug, Clone)]
pub struct InterveningPopulation {
    geometry: Arc<PairGeometry>,
    populations: Vec<f64>,
    /// Per origin: prefix sums of populations in the geometry's rank
    /// order (`prefix[k]` = population of the k nearest other areas).
    prefix: Vec<Vec<f64>>,
}

impl InterveningPopulation {
    /// Builds the structure from area centres and populations, building
    /// a fresh [`PairGeometry`] with the batch kernel.
    ///
    /// # Panics
    ///
    /// If the slices differ in length.
    pub fn build(centers: &[Point], populations: &[f64]) -> Self {
        assert_eq!(
            centers.len(),
            populations.len(),
            "centers and populations must align"
        );
        Self::from_geometry(PairGeometry::shared(centers), populations)
    }

    /// As [`InterveningPopulation::build`], but through the scalar
    /// per-pair distance path ([`PairGeometry::build_direct`]) — the
    /// pre-cache baseline kept for `--no-geometry-cache` A/B runs.
    ///
    /// # Panics
    ///
    /// If the slices differ in length.
    pub fn build_direct(centers: &[Point], populations: &[f64]) -> Self {
        assert_eq!(
            centers.len(),
            populations.len(),
            "centers and populations must align"
        );
        Self::from_geometry(Arc::new(PairGeometry::build_direct(centers)), populations)
    }

    /// Builds on an existing shared geometry cache, avoiding any
    /// distance recomputation.
    ///
    /// # Panics
    ///
    /// If `geometry.len() != populations.len()`.
    pub fn from_geometry(geometry: Arc<PairGeometry>, populations: &[f64]) -> Self {
        assert_eq!(
            geometry.len(),
            populations.len(),
            "centers and populations must align"
        );
        let n = geometry.len();
        let mut prefix = Vec::with_capacity(n);
        for i in 0..n {
            let mut acc = 0.0;
            let pre: Vec<f64> = geometry
                .ranked(i)
                .iter()
                .map(|&(_, j)| {
                    acc += populations[j];
                    acc
                })
                .collect();
            prefix.push(pre);
        }
        Self {
            geometry,
            populations: populations.to_vec(),
            prefix,
        }
    }

    /// The shared geometry cache this structure rides on.
    #[must_use]
    pub fn geometry(&self) -> &Arc<PairGeometry> {
        &self.geometry
    }

    /// Number of areas.
    pub fn len(&self) -> usize {
        self.populations.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.populations.is_empty()
    }

    /// `s(origin, dest)`: population within `d(origin, dest)` of the
    /// origin, excluding both endpoints. Includes areas at *exactly* the
    /// destination's distance (closed disc), destination excluded.
    ///
    /// # Panics
    ///
    /// If either index is out of range, or `origin == dest`.
    pub fn s(&self, origin: usize, dest: usize) -> f64 {
        assert!(
            origin < self.len() && dest < self.len(),
            "index out of range"
        );
        assert_ne!(origin, dest, "s(i, i) is undefined");
        let d = self.geometry.distance(origin, dest);
        self.s_at_radius(origin, dest, d)
    }

    /// `s` for an explicit radius (exposed for the naive-vs-prefix bench
    /// and the radius-sweep ablation).
    pub fn s_at_radius(&self, origin: usize, dest: usize, radius_km: f64) -> f64 {
        let row = self.geometry.ranked(origin);
        // Count areas with distance <= radius.
        let k = row.partition_point(|&(dist, _)| dist <= radius_km);
        if k == 0 {
            return 0.0;
        }
        let mut total = self.prefix[origin][k - 1];
        // Destination inside the disc must be excluded; its distance is
        // a cache lookup, not a recomputation.
        let d_dest = self.geometry.distance(origin, dest);
        if d_dest <= radius_km {
            total -= self.populations[dest];
        }
        total.max(0.0)
    }

    /// Reference O(n) implementation used by tests and the bench
    /// baseline.
    pub fn s_naive(&self, origin: usize, dest: usize) -> f64 {
        let d = self.geometry.distance(origin, dest);
        let mut total = 0.0;
        for j in 0..self.len() {
            if j == origin || j == dest {
                continue;
            }
            if self.geometry.distance(origin, j) <= d {
                total += self.populations[j];
            }
        }
        total
    }
}

/// Fitted radiation model (Eq. 3): the single scaling constant `C` is the
/// log-space least-squares intercept, i.e. the geometric mean of
/// `T / φ(m, n, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadiationFit {
    /// Scaling constant `C`.
    pub c: f64,
    /// Observations used in the fit.
    pub n_used: usize,
}

impl RadiationFit {
    /// The structural factor `φ = m n / ((m+s)(m+n+s))`.
    #[must_use]
    pub fn structural_factor(obs: &FlowObservation) -> f64 {
        let (m, n, s) = (
            obs.origin_population,
            obs.dest_population,
            obs.intervening_population,
        );
        m * n / ((m + s) * (m + n + s))
    }

    /// Fits `C` over observations with positive flow and a positive
    /// structural factor.
    ///
    /// # Errors
    ///
    /// [`ModelError::TooFewObservations`] when no observation is usable.
    pub fn fit(observations: &[FlowObservation]) -> Result<Self, ModelError> {
        let _span = tweetmob_obs::span!("fit/radiation");
        let mut acc = 0.0;
        let mut n_used = 0usize;
        for o in observations.iter().filter(|o| o.fittable()) {
            let phi = Self::structural_factor(o);
            if phi > 0.0 && phi.is_finite() {
                acc += o.observed_flow.log10() - phi.log10();
                n_used += 1;
            }
        }
        if n_used == 0 {
            return Err(ModelError::TooFewObservations { needed: 1, got: 0 });
        }
        Ok(Self {
            c: debug_assert_finite(10f64.powf(acc / n_used as f64), "radiation C"),
            n_used,
        })
    }

    /// As [`RadiationFit::fit`], through a [`ScoreColumns`] built in
    /// parallel over the shared worker pool. The reduction is serial
    /// and in observation order, so the fitted constant is bit-identical
    /// to the row-wise reference at every thread count (asserted by the
    /// paper-scale bench at 6.3M tweets).
    ///
    /// # Errors
    ///
    /// [`ModelError::TooFewObservations`] when no observation is usable.
    pub fn fit_columnar(observations: &[FlowObservation]) -> Result<Self, ModelError> {
        let _span = tweetmob_obs::span!("fit/radiation");
        let cols = ScoreColumns::build(observations, Self::structural_factor);
        let Some((acc, n_used)) = cols.intercept() else {
            return Err(ModelError::TooFewObservations { needed: 1, got: 0 });
        };
        Ok(Self {
            c: debug_assert_finite(10f64.powf(acc / n_used as f64), "radiation C"),
            n_used,
        })
    }
}

impl FittedModel for RadiationFit {
    fn model_name(&self) -> &'static str {
        "Radiation"
    }

    fn predict_flow(&self, obs: &FlowObservation) -> f64 {
        self.c * Self::structural_factor(obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MobilityModel;

    fn obs(m: f64, n: f64, d: f64, s: f64, t: f64) -> FlowObservation {
        FlowObservation {
            origin_population: m,
            dest_population: n,
            distance_km: d,
            intervening_population: s,
            observed_flow: t,
        }
    }

    /// Four areas on a line: A --- B ---- C -------- D.
    fn line_world() -> InterveningPopulation {
        let centers = vec![
            Point::new_unchecked(0.0, 100.0), // A
            Point::new_unchecked(0.0, 101.0), // B (~111 km east)
            Point::new_unchecked(0.0, 102.5), // C (~278 km east of A)
            Point::new_unchecked(0.0, 105.0), // D (~556 km east of A)
        ];
        let pops = vec![1_000.0, 2_000.0, 4_000.0, 8_000.0];
        InterveningPopulation::build(&centers, &pops)
    }

    #[test]
    fn s_counts_strictly_intervening_areas() {
        let w = line_world();
        // A→B: nothing between them.
        assert_eq!(w.s(0, 1), 0.0);
        // A→C: B (2,000) is inside the disc.
        assert_eq!(w.s(0, 2), 2_000.0);
        // A→D: B and C inside.
        assert_eq!(w.s(0, 3), 6_000.0);
        // D→A: B and C inside.
        assert_eq!(w.s(3, 0), 6_000.0);
    }

    #[test]
    fn s_is_asymmetric_in_general() {
        let w = line_world();
        // B→C: disc around B of radius d(B,C) ≈ 167 km contains A.
        assert_eq!(w.s(1, 2), 1_000.0);
        // C→B: disc around C contains nothing else (A is farther, D too).
        assert_eq!(w.s(2, 1), 0.0);
    }

    #[test]
    fn s_matches_naive_on_gazetteer_like_layout() {
        // Pseudo-random scatter of 60 areas.
        let mut k = 9u64;
        let mut next = |lo: f64, hi: f64| {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            lo + (k >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
        };
        let centers: Vec<Point> = (0..60)
            .map(|_| Point::new_unchecked(next(-44.0, -10.0), next(113.0, 154.0)))
            .collect();
        let pops: Vec<f64> = (0..60).map(|_| next(1e3, 1e6)).collect();
        let w = InterveningPopulation::build(&centers, &pops);
        for i in (0..60).step_by(7) {
            for j in (0..60).step_by(5) {
                if i == j {
                    continue;
                }
                let fast = w.s(i, j);
                let naive = w.s_naive(i, j);
                assert!(
                    (fast - naive).abs() < 1e-6 * naive.max(1.0),
                    "s({i},{j}): fast {fast} naive {naive}"
                );
            }
        }
    }

    #[test]
    fn cached_and_direct_builds_agree_bit_for_bit() {
        let mut k = 31u64;
        let mut next = |lo: f64, hi: f64| {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            lo + (k >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
        };
        let centers: Vec<Point> = (0..20)
            .map(|_| Point::new_unchecked(next(-44.0, -10.0), next(113.0, 154.0)))
            .collect();
        let pops: Vec<f64> = (0..20).map(|_| next(1e3, 1e6)).collect();
        let cached = InterveningPopulation::build(&centers, &pops);
        let direct = InterveningPopulation::build_direct(&centers, &pops);
        for i in 0..20 {
            for j in 0..20 {
                if i != j {
                    assert_eq!(cached.s(i, j).to_bits(), direct.s(i, j).to_bits());
                }
            }
        }
    }

    #[test]
    fn from_geometry_shares_the_cache() {
        let centers = vec![
            Point::new_unchecked(0.0, 100.0),
            Point::new_unchecked(0.0, 101.0),
            Point::new_unchecked(0.0, 102.5),
        ];
        let geo = tweetmob_geo::PairGeometry::shared(&centers);
        let w = InterveningPopulation::from_geometry(
            std::sync::Arc::clone(&geo),
            &[1_000.0, 2_000.0, 4_000.0],
        );
        assert!(std::sync::Arc::ptr_eq(w.geometry(), &geo));
        assert_eq!(w.s(0, 2), 2_000.0);
    }

    #[test]
    #[should_panic(expected = "s(i, i) is undefined")]
    fn s_self_pair_panics() {
        line_world().s(1, 1);
    }

    #[test]
    #[should_panic(expected = "centers and populations must align")]
    fn build_length_mismatch_panics() {
        InterveningPopulation::build(&[Point::new_unchecked(0.0, 0.0)], &[1.0, 2.0]);
    }

    #[test]
    fn structural_factor_known_value() {
        // m = n = s: φ = m² / (2m · 3m) = 1/6.
        let o = obs(100.0, 100.0, 10.0, 100.0, 1.0);
        assert!((RadiationFit::structural_factor(&o) - 1.0 / 6.0).abs() < 1e-12);
        // s = 0: φ = mn / (m(m+n)) = n/(m+n).
        let o = obs(300.0, 100.0, 10.0, 0.0, 1.0);
        assert!((RadiationFit::structural_factor(&o) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fit_recovers_scaling_constant_exactly() {
        let data: Vec<FlowObservation> = (1..40)
            .map(|i| {
                let (m, n, s) = (1e4 + 100.0 * i as f64, 5e3, 2e3 * (i % 5) as f64);
                let phi = m * n / ((m + s) * (m + n + s));
                obs(m, n, 50.0, s, 7.5 * phi)
            })
            .collect();
        let fit = RadiationFit::fit(&data).unwrap();
        assert!((fit.c - 7.5).abs() / 7.5 < 1e-9, "c = {}", fit.c);
        assert_eq!(fit.n_used, 39);
        for o in &data {
            assert!((fit.predict(o) - o.observed_flow).abs() / o.observed_flow < 1e-9);
        }
    }

    #[test]
    fn radiation_misfits_gravity_generated_flows() {
        // Flows generated by a gravity law cannot be captured by C alone:
        // prediction errors must be large for at least some pairs. This is
        // the mechanism behind the paper's Table II ordering.
        let mut k = 5u64;
        let mut next = |lo: f64, hi: f64| {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            lo + (k >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
        };
        let data: Vec<FlowObservation> = (0..100)
            .map(|_| {
                let m = next(1e3, 1e6);
                let n = next(1e3, 1e6);
                let d = next(10.0, 3_000.0);
                let s = next(0.0, 2e6);
                obs(m, n, d, s, 0.01 * m * n / (d * d))
            })
            .collect();
        let fit = RadiationFit::fit(&data).unwrap();
        let max_rel = data
            .iter()
            .map(|o| (fit.predict(o) - o.observed_flow).abs() / o.observed_flow)
            .fold(0.0f64, f64::max);
        assert!(
            max_rel > 1.0,
            "radiation fit gravity data too well: {max_rel}"
        );
    }

    #[test]
    fn fit_errors_without_usable_observations() {
        assert!(matches!(
            RadiationFit::fit(&[]),
            Err(ModelError::TooFewObservations { .. })
        ));
        let zero_flow = vec![obs(1e4, 1e4, 10.0, 0.0, 0.0)];
        assert!(RadiationFit::fit(&zero_flow).is_err());
        assert!(matches!(
            RadiationFit::fit_columnar(&[]),
            Err(ModelError::TooFewObservations { .. })
        ));
        assert!(RadiationFit::fit_columnar(&zero_flow).is_err());
    }

    #[test]
    fn columnar_fit_is_bit_identical_to_reference_at_any_thread_count() {
        let mut k = 17u64;
        let mut next = |lo: f64, hi: f64| {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            lo + (k >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
        };
        let mut data: Vec<FlowObservation> = (0..5_000)
            .map(|_| {
                obs(
                    next(1e3, 1e6),
                    next(1e3, 1e6),
                    next(5.0, 3_000.0),
                    next(0.0, 2e6),
                    next(1.0, 1e4),
                )
            })
            .collect();
        data.push(obs(1e4, 1e4, 10.0, 0.0, 0.0)); // unfittable straggler
        let reference = RadiationFit::fit(&data).unwrap();
        let one = tweetmob_par::with_threads(1, || RadiationFit::fit_columnar(&data).unwrap());
        let eight = tweetmob_par::with_threads(8, || RadiationFit::fit_columnar(&data).unwrap());
        assert_eq!(one.c.to_bits(), reference.c.to_bits());
        assert_eq!(eight.c.to_bits(), reference.c.to_bits());
        assert_eq!(one.n_used, reference.n_used);
        assert_eq!(eight.n_used, reference.n_used);
    }

    #[test]
    fn model_name() {
        let fit = RadiationFit { c: 1.0, n_used: 1 };
        assert_eq!(fit.name(), "Radiation");
    }
}
