//! # tweetmob-models
//!
//! The mobility models of the paper's §IV, with fitting and evaluation:
//!
//! * **Gravity, 4 parameters** (Eq. 1): `P ∝ C · mᵅ nᵝ / dᵞ` — fitted by
//!   least squares in log space ([`Gravity4Fit`]).
//! * **Gravity, 2 parameters** (Eq. 2): `P ∝ C · m n / dᵞ`
//!   ([`Gravity2Fit`]).
//! * **Gravity grid search** — exhaustive `(α, β, γ)` search with the
//!   scale solved in closed form, dispatched over the shared
//!   `tweetmob-par` worker pool ([`Gravity4Fit::fit_grid`] with
//!   [`GravityGrid`]). The search runs on struct-of-arrays log-feature
//!   columns ([`FitColumns`]) that hoist the `α`/`β` part of each
//!   residual across gamma runs; the pre-columnar path survives as
//!   [`Gravity4Fit::fit_grid_reference`] for A/B benchmarking.
//! * **Radiation** (Eq. 3): `P ∝ C · m n / ((m+s)(m+n+s))`, where `s` is
//!   the population within radius `d` of the origin excluding origin and
//!   destination ([`RadiationFit`], with [`InterveningPopulation`]
//!   computing `s` efficiently).
//! * **Intervening opportunities** (Stouffer 1940) as an extension model
//!   beyond the paper ([`OpportunitiesFit`]).
//! * **Deterrence-function ablations** — exponential and Tanner
//!   (`d^−γ·e^{−d/κ}`) gravity variants ([`GravityExpFit`],
//!   [`TannerFit`]).
//! * **Doubly-constrained gravity** via iterative proportional fitting
//!   ([`DoublyConstrainedFit`]) — the production variant whose predicted
//!   marginals match the observed trip productions/attractions exactly.
//!
//! Fitting and prediction are split: every fitted parameter struct is an
//! immutable, serializable artifact implementing [`FittedModel`]
//! (`model_name` / `predict_flow` / `predict_batch`), and the historical
//! [`MobilityModel`] entry point is a blanket wrapper over it, so the
//! evaluation harness ([`evaluate`]) can score any of them with the
//! paper's two Table-II metrics (log-space Pearson, HitRate@50%) plus
//! the extra metrics the paper's future work calls for. The four
//! paper-comparison fits travel together as a [`FittedModelSet`],
//! addressed by [`ModelKind`] — the unit the artifact container in
//! `tweetmob-data` persists for fit-once / predict-many serving.
//!
//! ## Example
//!
//! ```
//! use tweetmob_models::{FlowObservation, Gravity2Fit, MobilityModel};
//!
//! // Flows that exactly follow P = 0.01·mn/d²...
//! let obs: Vec<FlowObservation> = (1..20)
//!     .map(|i| {
//!         let (m, n, d) = (1e5, 5e4 + i as f64 * 1e3, 50.0 + i as f64 * 30.0);
//!         FlowObservation {
//!             origin_population: m,
//!             dest_population: n,
//!             distance_km: d,
//!             intervening_population: 0.0,
//!             observed_flow: 0.01 * m * n / (d * d),
//!         }
//!     })
//!     .collect();
//! // ...are recovered with γ = 2.
//! let fit = Gravity2Fit::fit(&obs).unwrap();
//! assert!((fit.gamma - 2.0).abs() < 1e-9);
//! assert!((fit.predict(&obs[3]) - obs[3].observed_flow).abs() < 1e-6);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
// `!(x > 0.0)` guards are deliberate: they also reject NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

mod columns;
mod deterrence;
mod evaluation;
mod fitted;
mod gravity;
mod ipf;
mod opportunities;
mod radiation;
mod traits;

pub use columns::{FitColumns, RunMoments, ScoreColumns, LANES};
pub use deterrence::{GravityExpFit, TannerFit};
pub use evaluation::{evaluate, evaluate_vectors, ModelEvaluation};
pub use fitted::{FittedModel, FittedModelSet, ModelKind};
pub use gravity::{Gravity2Fit, Gravity4Fit, GravityGrid, GridAxis};
pub use ipf::{DoublyConstrainedFit, IpfError};
pub use opportunities::OpportunitiesFit;
pub use radiation::{InterveningPopulation, RadiationFit};
pub use traits::{FlowObservation, MobilityModel, ModelError};
