//! Model scoring with the paper's Table-II metrics and extensions.

use crate::traits::{FlowObservation, MobilityModel, ModelError};
use serde::Serialize;
use std::fmt;
use tweetmob_stats::check::{debug_assert_finite, debug_assert_nonneg, debug_assert_prob};
use tweetmob_stats::correlation::{log_pearson, spearman};
use tweetmob_stats::metrics::{hit_rate, log_rmse, sorensen_index};

/// Scores of one model on one observation set.
///
/// `pearson` and `hit_rate_50` are the two Table-II metrics; the rest
/// answer the paper's future-work call for "more metrics".
#[derive(Debug, Clone, Serialize)]
#[must_use = "an evaluation is pure data; dropping it discards the model's scores"]
pub struct ModelEvaluation {
    /// Model display name.
    pub model: &'static str,
    /// Pearson correlation of log-estimated vs log-observed flow — the
    /// appropriate reading of the paper's log-log Fig. 4 scatter.
    pub pearson: f64,
    /// Two-tailed p-value of `pearson`.
    pub pearson_p: f64,
    /// HitRate@50%: share of estimates within 50 % relative error.
    pub hit_rate_50: f64,
    /// RMSE of log10 flows ("error in decades").
    pub log_rmse: f64,
    /// Spearman rank correlation of raw flows.
    pub spearman: f64,
    /// Sørensen similarity (common part of commuters).
    pub sorensen: f64,
    /// Observation pairs scored.
    pub n_pairs: usize,
    /// Scoreable observations the model failed to predict (non-positive
    /// or non-finite prediction). Silent before; models that predicted
    /// nothing for half their pairs used to look identical to models
    /// that scored everything.
    pub n_dropped_predictions: usize,
}

impl fmt::Display for ModelEvaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} r={:.3} hit@50%={:.3} logRMSE={:.3} ρ={:.3} SSI={:.3} (n={}, dropped={})",
            self.model,
            self.pearson,
            self.hit_rate_50,
            self.log_rmse,
            self.spearman,
            self.sorensen,
            self.n_pairs,
            self.n_dropped_predictions
        )
    }
}

/// Scores `model` against the observed flows.
///
/// Only observations with a positive observed flow enter the metrics
/// (pairs with zero observed flow cannot be scored by relative error or
/// log correlation; the fitted models never saw them either). Scoreable
/// observations the model fails to predict — non-positive or non-finite
/// prediction — are excluded from the metrics but **counted**: they show
/// up in [`ModelEvaluation::n_dropped_predictions`] and the
/// `evaluate/dropped_predictions` observability counter, so a model that
/// answers half its pairs no longer scores like one that answers all.
///
/// # Errors
///
/// [`ModelError::TooFewObservations`] when fewer than 3 scorable pairs
/// remain (Pearson needs 3).
pub fn evaluate<M: MobilityModel>(
    model: &M,
    observations: &[FlowObservation],
) -> Result<ModelEvaluation, ModelError> {
    let _span = tweetmob_obs::span!("evaluate");
    let mut est = Vec::with_capacity(observations.len());
    let mut obs = Vec::with_capacity(observations.len());
    for o in observations {
        if o.observed_flow > 0.0 && o.observed_flow.is_finite() {
            // Keep the raw prediction: evaluate_vectors owns the
            // drop accounting so both entry points count identically.
            est.push(model.predict(o));
            obs.push(o.observed_flow);
        }
    }
    evaluate_vectors(model.name(), &est, &obs)
}

/// Scores pre-computed prediction/observation vectors with the same
/// metric battery as [`evaluate`]. Used by models whose predictions are
/// matrix-shaped rather than a function of `(m, n, d, s)` — e.g. the
/// doubly-constrained IPF fit.
///
/// Pairs with an unusable *observation* (non-positive or non-finite)
/// are skipped silently — they can never be scored, whoever predicts.
/// Pairs with a usable observation but an unusable *estimate* are the
/// model's failure: they are skipped **and counted** in
/// [`ModelEvaluation::n_dropped_predictions`] plus the
/// `evaluate/dropped_predictions` counter.
///
/// # Errors
///
/// [`ModelError::TooFewObservations`] with fewer than 3 usable pairs;
/// [`ModelError::DegenerateFit`] when a metric is undefined (e.g.
/// constant flows).
pub fn evaluate_vectors(
    model: &'static str,
    estimated: &[f64],
    observed: &[f64],
) -> Result<ModelEvaluation, ModelError> {
    let mut est = Vec::with_capacity(estimated.len());
    let mut obs = Vec::with_capacity(observed.len());
    let mut n_dropped = 0usize;
    for (&e, &o) in estimated.iter().zip(observed) {
        if !o.is_finite() || o <= 0.0 {
            continue;
        }
        if e > 0.0 && e.is_finite() {
            est.push(e);
            obs.push(o);
        } else {
            n_dropped += 1;
        }
    }
    if n_dropped > 0 {
        tweetmob_obs::counter!("evaluate/dropped_predictions").add(n_dropped as u64);
    }
    if est.len() < 3 {
        return Err(ModelError::TooFewObservations {
            needed: 3,
            got: est.len(),
        });
    }
    let corr = log_pearson(&est, &obs)
        .map_err(|_| ModelError::DegenerateFit("log-pearson degenerate (constant flows?)"))?;
    let rho = spearman(&est, &obs).map(|c| c.r).unwrap_or(f64::NAN);
    // `pearson_p` and `spearman` keep their documented NaN sentinels;
    // everything else must come out finite and in range.
    Ok(ModelEvaluation {
        model,
        pearson: debug_assert_finite(corr.r, "evaluation pearson r"),
        pearson_p: corr.p_two_tailed,
        hit_rate_50: debug_assert_prob(
            hit_rate(&est, &obs, 0.5)
                .map_err(|_| ModelError::DegenerateFit("hit-rate undefined"))?,
            "evaluation hit rate",
        ),
        log_rmse: debug_assert_nonneg(
            log_rmse(&est, &obs).map_err(|_| ModelError::DegenerateFit("log-rmse undefined"))?,
            "evaluation log-RMSE",
        ),
        spearman: rho,
        sorensen: debug_assert_prob(
            sorensen_index(&est, &obs)
                .map_err(|_| ModelError::DegenerateFit("sorensen undefined"))?,
            "evaluation Sørensen index",
        ),
        n_pairs: est.len(),
        n_dropped_predictions: n_dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gravity::Gravity2Fit;

    fn obs(m: f64, n: f64, d: f64, t: f64) -> FlowObservation {
        FlowObservation {
            origin_population: m,
            dest_population: n,
            distance_km: d,
            intervening_population: 0.0,
            observed_flow: t,
        }
    }

    fn gravity_world(noise: impl Fn(usize) -> f64) -> Vec<FlowObservation> {
        let mut k = 3u64;
        let mut next = |lo: f64, hi: f64| {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            lo + (k >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
        };
        (0..200)
            .map(|i| {
                let m = next(1e3, 1e6);
                let n = next(1e3, 1e6);
                let d = next(10.0, 2_000.0);
                obs(m, n, d, 0.01 * m * n / (d * d) * noise(i))
            })
            .collect()
    }

    #[test]
    fn perfect_model_scores_perfectly() {
        let data = gravity_world(|_| 1.0);
        let fit = Gravity2Fit::fit(&data).unwrap();
        let e = evaluate(&fit, &data).unwrap();
        assert!(e.pearson > 0.999_999);
        assert_eq!(e.hit_rate_50, 1.0);
        assert!(e.log_rmse < 1e-6);
        assert!(e.sorensen > 0.999);
        assert_eq!(e.n_pairs, 200);
    }

    #[test]
    fn noise_degrades_scores_monotonically() {
        let noisy = gravity_world(|i| if i % 2 == 0 { 3.0 } else { 1.0 / 3.0 });
        let fit = Gravity2Fit::fit(&noisy).unwrap();
        let e = evaluate(&fit, &noisy).unwrap();
        // 3x multiplicative noise → hit rate collapses, correlation holds.
        assert!(e.hit_rate_50 < 0.3, "hit rate {}", e.hit_rate_50);
        assert!(e.pearson > 0.9, "pearson {}", e.pearson);
        assert!(e.log_rmse > 0.4, "log rmse {}", e.log_rmse);
    }

    #[test]
    fn zero_flow_pairs_are_excluded() {
        let mut data = gravity_world(|_| 1.0);
        let n_before = data.len();
        data.push(obs(1e4, 1e4, 100.0, 0.0));
        let fit = Gravity2Fit::fit(&data).unwrap();
        let e = evaluate(&fit, &data).unwrap();
        assert_eq!(e.n_pairs, n_before);
    }

    #[test]
    fn too_few_pairs_is_an_error() {
        let data = gravity_world(|_| 1.0);
        let fit = Gravity2Fit::fit(&data).unwrap();
        assert!(matches!(
            evaluate(&fit, &data[..2]),
            Err(ModelError::TooFewObservations { .. })
        ));
    }

    #[test]
    fn dropped_predictions_are_counted_not_silent() {
        // Two "models" scored on identical observations: one answers
        // every pair, the other emits unusable values for a third of
        // them. Before the fix both reported only their (different)
        // n_pairs, and the partial model's drops were invisible.
        let observed: Vec<f64> = (1..=30).map(|i| i as f64 * 10.0).collect();
        let full: Vec<f64> = observed.iter().map(|&o| o * 1.01).collect();
        let partial: Vec<f64> = observed
            .iter()
            .enumerate()
            .map(|(i, &o)| match i % 3 {
                0 => o * 1.01,
                1 if i == 1 => f64::NAN,
                1 => 0.0,
                _ => o * 0.99,
            })
            .collect();
        let before = tweetmob_obs::global()
            .counter_value("evaluate/dropped_predictions")
            .unwrap_or(0);
        let e_full = evaluate_vectors("Full", &full, &observed).unwrap();
        let e_partial = evaluate_vectors("Partial", &partial, &observed).unwrap();
        assert_eq!(e_full.n_dropped_predictions, 0);
        assert_eq!(e_full.n_pairs, 30);
        assert_eq!(e_partial.n_dropped_predictions, 10);
        assert_eq!(e_partial.n_pairs, 20);
        let after = tweetmob_obs::global()
            .counter_value("evaluate/dropped_predictions")
            .unwrap_or(0);
        assert!(after >= before + 10, "counter {before} -> {after}");
        assert!(e_partial.to_string().contains("dropped=10"));
    }

    #[test]
    fn bad_observations_are_skipped_without_blaming_the_model() {
        let observed = [10.0, f64::NAN, -5.0, 0.0, 20.0, 30.0];
        let est = [11.0, 1.0, 1.0, 1.0, 19.0, 31.0];
        let e = evaluate_vectors("Clean", &est, &observed).unwrap();
        assert_eq!(e.n_pairs, 3);
        assert_eq!(e.n_dropped_predictions, 0);
    }

    #[test]
    fn display_contains_metrics() {
        let data = gravity_world(|_| 1.0);
        let fit = Gravity2Fit::fit(&data).unwrap();
        let text = evaluate(&fit, &data).unwrap().to_string();
        assert!(text.contains("Gravity 2Param"));
        assert!(text.contains("hit@50%"));
    }
}
