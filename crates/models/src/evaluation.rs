//! Model scoring with the paper's Table-II metrics and extensions.

use crate::traits::{FlowObservation, MobilityModel, ModelError};
use serde::Serialize;
use std::fmt;
use tweetmob_stats::check::{debug_assert_finite, debug_assert_nonneg, debug_assert_prob};
use tweetmob_stats::correlation::{log_pearson, spearman};
use tweetmob_stats::metrics::{hit_rate, log_rmse, sorensen_index};

/// Scores of one model on one observation set.
///
/// `pearson` and `hit_rate_50` are the two Table-II metrics; the rest
/// answer the paper's future-work call for "more metrics".
#[derive(Debug, Clone, Serialize)]
#[must_use = "an evaluation is pure data; dropping it discards the model's scores"]
pub struct ModelEvaluation {
    /// Model display name.
    pub model: &'static str,
    /// Pearson correlation of log-estimated vs log-observed flow — the
    /// appropriate reading of the paper's log-log Fig. 4 scatter.
    pub pearson: f64,
    /// Two-tailed p-value of `pearson`.
    pub pearson_p: f64,
    /// HitRate@50%: share of estimates within 50 % relative error.
    pub hit_rate_50: f64,
    /// RMSE of log10 flows ("error in decades").
    pub log_rmse: f64,
    /// Spearman rank correlation of raw flows.
    pub spearman: f64,
    /// Sørensen similarity (common part of commuters).
    pub sorensen: f64,
    /// Observation pairs scored.
    pub n_pairs: usize,
}

impl fmt::Display for ModelEvaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} r={:.3} hit@50%={:.3} logRMSE={:.3} ρ={:.3} SSI={:.3} (n={})",
            self.model,
            self.pearson,
            self.hit_rate_50,
            self.log_rmse,
            self.spearman,
            self.sorensen,
            self.n_pairs
        )
    }
}

/// Scores `model` against the observed flows.
///
/// Only observations with a positive observed flow enter the metrics
/// (pairs with zero observed flow cannot be scored by relative error or
/// log correlation; the fitted models never saw them either).
///
/// # Errors
///
/// [`ModelError::TooFewObservations`] when fewer than 3 scorable pairs
/// remain (Pearson needs 3).
pub fn evaluate<M: MobilityModel>(
    model: &M,
    observations: &[FlowObservation],
) -> Result<ModelEvaluation, ModelError> {
    let _span = tweetmob_obs::span!("evaluate");
    let mut est = Vec::with_capacity(observations.len());
    let mut obs = Vec::with_capacity(observations.len());
    for o in observations {
        if o.observed_flow > 0.0 && o.observed_flow.is_finite() {
            let p = model.predict(o);
            if p.is_finite() && p > 0.0 {
                est.push(p);
                obs.push(o.observed_flow);
            }
        }
    }
    evaluate_vectors(model.name(), &est, &obs)
}

/// Scores pre-computed prediction/observation vectors with the same
/// metric battery as [`evaluate`]. Used by models whose predictions are
/// matrix-shaped rather than a function of `(m, n, d, s)` — e.g. the
/// doubly-constrained IPF fit. Pairs where either side is non-positive
/// or non-finite are skipped.
///
/// # Errors
///
/// [`ModelError::TooFewObservations`] with fewer than 3 usable pairs;
/// [`ModelError::DegenerateFit`] when a metric is undefined (e.g.
/// constant flows).
pub fn evaluate_vectors(
    model: &'static str,
    estimated: &[f64],
    observed: &[f64],
) -> Result<ModelEvaluation, ModelError> {
    let mut est = Vec::with_capacity(estimated.len());
    let mut obs = Vec::with_capacity(observed.len());
    for (&e, &o) in estimated.iter().zip(observed) {
        if e > 0.0 && e.is_finite() && o > 0.0 && o.is_finite() {
            est.push(e);
            obs.push(o);
        }
    }
    if est.len() < 3 {
        return Err(ModelError::TooFewObservations {
            needed: 3,
            got: est.len(),
        });
    }
    let corr = log_pearson(&est, &obs).map_err(|_| {
        ModelError::DegenerateFit("log-pearson degenerate (constant flows?)")
    })?;
    let rho = spearman(&est, &obs)
        .map(|c| c.r)
        .unwrap_or(f64::NAN);
    // `pearson_p` and `spearman` keep their documented NaN sentinels;
    // everything else must come out finite and in range.
    Ok(ModelEvaluation {
        model,
        pearson: debug_assert_finite(corr.r, "evaluation pearson r"),
        pearson_p: corr.p_two_tailed,
        hit_rate_50: debug_assert_prob(
            hit_rate(&est, &obs, 0.5)
                .map_err(|_| ModelError::DegenerateFit("hit-rate undefined"))?,
            "evaluation hit rate",
        ),
        log_rmse: debug_assert_nonneg(
            log_rmse(&est, &obs)
                .map_err(|_| ModelError::DegenerateFit("log-rmse undefined"))?,
            "evaluation log-RMSE",
        ),
        spearman: rho,
        sorensen: debug_assert_prob(
            sorensen_index(&est, &obs)
                .map_err(|_| ModelError::DegenerateFit("sorensen undefined"))?,
            "evaluation Sørensen index",
        ),
        n_pairs: est.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gravity::Gravity2Fit;

    fn obs(m: f64, n: f64, d: f64, t: f64) -> FlowObservation {
        FlowObservation {
            origin_population: m,
            dest_population: n,
            distance_km: d,
            intervening_population: 0.0,
            observed_flow: t,
        }
    }

    fn gravity_world(noise: impl Fn(usize) -> f64) -> Vec<FlowObservation> {
        let mut k = 3u64;
        let mut next = |lo: f64, hi: f64| {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            lo + (k >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
        };
        (0..200)
            .map(|i| {
                let m = next(1e3, 1e6);
                let n = next(1e3, 1e6);
                let d = next(10.0, 2_000.0);
                obs(m, n, d, 0.01 * m * n / (d * d) * noise(i))
            })
            .collect()
    }

    #[test]
    fn perfect_model_scores_perfectly() {
        let data = gravity_world(|_| 1.0);
        let fit = Gravity2Fit::fit(&data).unwrap();
        let e = evaluate(&fit, &data).unwrap();
        assert!(e.pearson > 0.999_999);
        assert_eq!(e.hit_rate_50, 1.0);
        assert!(e.log_rmse < 1e-6);
        assert!(e.sorensen > 0.999);
        assert_eq!(e.n_pairs, 200);
    }

    #[test]
    fn noise_degrades_scores_monotonically() {
        let noisy = gravity_world(|i| if i % 2 == 0 { 3.0 } else { 1.0 / 3.0 });
        let fit = Gravity2Fit::fit(&noisy).unwrap();
        let e = evaluate(&fit, &noisy).unwrap();
        // 3x multiplicative noise → hit rate collapses, correlation holds.
        assert!(e.hit_rate_50 < 0.3, "hit rate {}", e.hit_rate_50);
        assert!(e.pearson > 0.9, "pearson {}", e.pearson);
        assert!(e.log_rmse > 0.4, "log rmse {}", e.log_rmse);
    }

    #[test]
    fn zero_flow_pairs_are_excluded() {
        let mut data = gravity_world(|_| 1.0);
        let n_before = data.len();
        data.push(obs(1e4, 1e4, 100.0, 0.0));
        let fit = Gravity2Fit::fit(&data).unwrap();
        let e = evaluate(&fit, &data).unwrap();
        assert_eq!(e.n_pairs, n_before);
    }

    #[test]
    fn too_few_pairs_is_an_error() {
        let data = gravity_world(|_| 1.0);
        let fit = Gravity2Fit::fit(&data).unwrap();
        assert!(matches!(
            evaluate(&fit, &data[..2]),
            Err(ModelError::TooFewObservations { .. })
        ));
    }

    #[test]
    fn display_contains_metrics() {
        let data = gravity_world(|_| 1.0);
        let fit = Gravity2Fit::fit(&data).unwrap();
        let text = evaluate(&fit, &data).unwrap().to_string();
        assert!(text.contains("Gravity 2Param"));
        assert!(text.contains("hit@50%"));
    }
}
