//! Gravity models (paper Eqs. 1–2), fitted by log-space least squares.
//!
//! "For Gravity models, given a series of m, n and d values, the
//! parameters α, β, and γ can be estimated from least-square fitting
//! after taking logarithm of the formulas" (§IV). Observations with a
//! zero flow, population or distance cannot enter a log fit and are
//! skipped; the number used is recorded on the fit.

use crate::columns::FitColumns;
use crate::fitted::FittedModel;
use crate::traits::{FlowObservation, ModelError};
use serde::{Deserialize, Serialize};
use tweetmob_stats::check::debug_assert_finite;
use tweetmob_stats::regression::Ols;
use tweetmob_stats::StatsError;

/// Fitted 4-parameter gravity model: `P = C · mᵅ nᵝ / dᵞ` (Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gravity4Fit {
    /// Scaling constant `C`.
    pub c: f64,
    /// Origin-population exponent α.
    pub alpha: f64,
    /// Destination-population exponent β.
    pub beta: f64,
    /// Distance-decay exponent γ.
    pub gamma: f64,
    /// R² of the log-space regression.
    pub log_r_squared: f64,
    /// Observations used in the fit.
    pub n_used: usize,
}

/// Fitted 2-parameter gravity model: `P = C · m n / dᵞ` (Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gravity2Fit {
    /// Scaling constant `C`.
    pub c: f64,
    /// Distance-decay exponent γ.
    pub gamma: f64,
    /// R² of the log-space regression.
    pub log_r_squared: f64,
    /// Observations used in the fit.
    pub n_used: usize,
}

fn map_stats_err(e: StatsError) -> ModelError {
    match e {
        StatsError::TooFewSamples { needed, got } => ModelError::TooFewObservations { needed, got },
        _ => ModelError::DegenerateFit("singular log-space regression"),
    }
}

impl Gravity4Fit {
    /// Fits `log P = log C + α·log m + β·log n − γ·log d` by OLS.
    ///
    /// # Errors
    ///
    /// [`ModelError::TooFewObservations`] with fewer than 4 fittable
    /// observations; [`ModelError::DegenerateFit`] on collinear inputs
    /// (e.g. every observation sharing one origin population).
    pub fn fit(observations: &[FlowObservation]) -> Result<Self, ModelError> {
        let _span = tweetmob_obs::span!("fit/gravity4");
        let mut ols = Ols::new(3);
        for o in observations.iter().filter(|o| o.fittable()) {
            ols.add(
                &[
                    o.origin_population.log10(),
                    o.dest_population.log10(),
                    o.distance_km.log10(),
                ],
                o.observed_flow.log10(),
            )
            .map_err(map_stats_err)?;
        }
        let n_used = ols.n();
        let fit = ols.solve().map_err(map_stats_err)?;
        Ok(Self {
            c: debug_assert_finite(10f64.powf(fit.intercept()), "gravity-4 C"),
            alpha: debug_assert_finite(fit.coef(0), "gravity-4 alpha"),
            beta: debug_assert_finite(fit.coef(1), "gravity-4 beta"),
            gamma: debug_assert_finite(-fit.coef(2), "gravity-4 gamma"),
            log_r_squared: debug_assert_finite(fit.r_squared, "gravity-4 R^2"),
            n_used,
        })
    }
}

/// One linearly spaced search axis for [`GravityGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridAxis {
    /// First grid value.
    pub min: f64,
    /// Last grid value (equals `min` when `steps == 1`).
    pub max: f64,
    /// Number of grid values (≥ 1).
    pub steps: usize,
}

impl GridAxis {
    /// The `i`-th value on the axis (`i < steps`).
    #[must_use]
    pub fn value(&self, i: usize) -> f64 {
        if self.steps <= 1 {
            self.min
        } else {
            self.min + (self.max - self.min) * i as f64 / (self.steps - 1) as f64
        }
    }

    fn valid(&self) -> bool {
        self.steps >= 1 && self.min.is_finite() && self.max.is_finite() && self.min <= self.max
    }
}

/// Exponent search grid for [`Gravity4Fit::fit_grid`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GravityGrid {
    /// Origin-population exponent axis.
    pub alpha: GridAxis,
    /// Destination-population exponent axis.
    pub beta: GridAxis,
    /// Distance-decay exponent axis.
    pub gamma: GridAxis,
}

impl Default for GravityGrid {
    /// α, β ∈ [0, 2] and γ ∈ [0, 3], all at 0.05 resolution —
    /// 41 × 41 × 61 ≈ 103 k candidates, bracketing every exponent the
    /// paper or the mobility literature reports.
    fn default() -> Self {
        Self {
            alpha: GridAxis {
                min: 0.0,
                max: 2.0,
                steps: 41,
            },
            beta: GridAxis {
                min: 0.0,
                max: 2.0,
                steps: 41,
            },
            gamma: GridAxis {
                min: 0.0,
                max: 3.0,
                steps: 61,
            },
        }
    }
}

impl GravityGrid {
    /// Total candidate count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.alpha.steps * self.beta.steps * self.gamma.steps
    }

    /// Whether the grid has no candidates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes a linear candidate index into `(α, β, γ)`.
    fn decode(&self, idx: usize) -> (f64, f64, f64) {
        let ig = idx % self.gamma.steps;
        let ib = (idx / self.gamma.steps) % self.beta.steps;
        let ia = idx / (self.gamma.steps * self.beta.steps);
        (
            self.alpha.value(ia),
            self.beta.value(ib),
            self.gamma.value(ig),
        )
    }
}

/// Per-chunk best candidate: SSE with the linear index as total
/// tie-break, so the min-merge is order-independent and the grid search
/// is bit-identical at every thread count.
#[derive(Clone, Copy)]
struct BestCandidate {
    sse: f64,
    idx: usize,
}

impl BestCandidate {
    fn better_than(&self, other: &Self) -> bool {
        self.sse
            .total_cmp(&other.sse)
            .then(self.idx.cmp(&other.idx))
            == std::cmp::Ordering::Less
    }
}

impl Gravity4Fit {
    /// Fits Eq. 1 by exhaustive grid search over `(α, β, γ)` with the
    /// scale `C` solved in closed form per candidate (the log-space SSE
    /// is quadratic in `log C`, minimised at the mean residual).
    ///
    /// Unlike the OLS [`fit`](Self::fit) this is robust to collinear
    /// predictors and lets callers bound the exponents; it is also the
    /// workspace's showcase compute-bound stage, dispatched over
    /// [`tweetmob_par`] (`par/gravity-grid/*` gauges). The winning
    /// candidate is the minimum SSE with the smaller linear grid index
    /// as a total tie-break, so the result is identical at every thread
    /// count.
    ///
    /// # Errors
    ///
    /// [`ModelError::TooFewObservations`] with fewer than 2 fittable
    /// observations; [`ModelError::DegenerateFit`] on an invalid/empty
    /// grid or zero variance in log flows.
    pub fn fit_grid(
        observations: &[FlowObservation],
        grid: &GravityGrid,
    ) -> Result<Self, ModelError> {
        let _span = tweetmob_obs::span!("fit/gravity4-grid");
        if !(grid.alpha.valid() && grid.beta.valid() && grid.gamma.valid()) {
            return Err(ModelError::DegenerateFit("invalid gravity search grid"));
        }
        // Columnar log features, built once per fit: every (α, β) run
        // then collapses to five sufficient statistics and each of the
        // ~10^5 candidates is scored in closed form.
        let cols = FitColumns::from_observations(observations);
        let n_used = cols.len();
        if n_used < 2 {
            return Err(ModelError::TooFewObservations {
                needed: 2,
                got: n_used,
            });
        }
        let n = n_used as f64;
        let mean_lp = cols.ln_t().iter().sum::<f64>() / n;
        let sst: f64 = cols.ln_t().iter().map(|&lt| (lt - mean_lp).powi(2)).sum();
        if sst <= 0.0 {
            return Err(ModelError::DegenerateFit("zero variance in log flows"));
        }

        // Candidate indices vary gamma fastest (see `decode`), so every
        // contiguous chunk is a sequence of gamma runs at fixed (α, β).
        // Per run the α/β part of the residual — u_i = ln T − α·ln m −
        // β·ln n — is hoisted into a scratch buffer and reduced to the
        // five run moments (Σu, Σu², Σu·ln d, Σln d, Σln d²); each
        // candidate is then a closed-form O(1) SSE instead of an O(n)
        // sweep. Scratch and moments depend only on (α, β), so chunk
        // boundaries cannot change any candidate's value and the search
        // stays byte-identical at every thread count. The closed form
        // only *ranks* candidates — the winner's fit is recomputed with
        // the pre-columnar expression in `finish_grid_winner`.
        let cols = &cols;
        let gamma_steps = grid.gamma.steps;
        let best = tweetmob_par::par_map_reduce(
            "gravity-grid",
            grid.len(),
            4096,
            |range| {
                let mut best = BestCandidate {
                    sse: f64::INFINITY,
                    idx: usize::MAX,
                };
                let mut u = vec![0.0; n_used];
                let mut current_run = usize::MAX;
                let mut moments = cols.run_moments(&u);
                for idx in range {
                    let run = idx / gamma_steps;
                    if run != current_run {
                        let alpha = grid.alpha.value(run / grid.beta.steps);
                        let beta = grid.beta.value(run % grid.beta.steps);
                        cols.fill_partial_residuals(alpha, beta, &mut u);
                        moments = cols.run_moments(&u);
                        current_run = run;
                    }
                    // Optimal log C is mean(r), so SSE = Σr² − (Σr)²/n.
                    let gamma = grid.gamma.value(idx - run * gamma_steps);
                    let sse = moments.candidate_sse(gamma, n);
                    let cand = BestCandidate { sse, idx };
                    if cand.better_than(&best) {
                        best = cand;
                    }
                }
                best
            },
            |a, b| if b.better_than(&a) { b } else { a },
        );
        if best.idx == usize::MAX {
            return Err(ModelError::DegenerateFit("empty gravity search grid"));
        }
        Ok(Self::finish_grid_winner(cols, grid, best.idx, sst))
    }

    /// Recomputes the winning candidate's intercept and R² serially in
    /// index order, with the pre-columnar expression — the reported fit
    /// never depends on chunk-local or lane-local rounding, and the new
    /// and reference search paths report byte-identical fits whenever
    /// they agree on the argmin.
    fn finish_grid_winner(cols: &FitColumns, grid: &GravityGrid, idx: usize, sst: f64) -> Self {
        let (alpha, beta, gamma) = grid.decode(idx);
        let n = cols.len() as f64;
        let residual = |i: usize| {
            cols.ln_t()[i]
                - (alpha * cols.ln_m()[i] + beta * cols.ln_n()[i] - gamma * cols.ln_d()[i])
        };
        let log_c = (0..cols.len()).map(residual).sum::<f64>() / n;
        let sse: f64 = (0..cols.len()).map(|i| (residual(i) - log_c).powi(2)).sum();
        Self {
            c: debug_assert_finite(10f64.powf(log_c), "gravity-grid C"),
            alpha,
            beta,
            gamma,
            log_r_squared: debug_assert_finite(1.0 - sse / sst, "gravity-grid R^2"),
            n_used: cols.len(),
        }
    }

    /// The pre-columnar grid search, kept verbatim as the A/B baseline
    /// for `kernels_bench` and the equivalence suite: array-of-structs
    /// logs, full 3-multiply residual per observation per candidate.
    ///
    /// Semantics and guards are identical to [`fit_grid`](Self::fit_grid);
    /// only the per-candidate evaluation differs. Not deprecated — it is
    /// the measuring stick the committed `BENCH_kernels.json` is ranked
    /// against.
    ///
    /// # Errors
    ///
    /// As [`fit_grid`](Self::fit_grid).
    pub fn fit_grid_reference(
        observations: &[FlowObservation],
        grid: &GravityGrid,
    ) -> Result<Self, ModelError> {
        let _span = tweetmob_obs::span!("fit/gravity4-grid-reference");
        if !(grid.alpha.valid() && grid.beta.valid() && grid.gamma.valid()) {
            return Err(ModelError::DegenerateFit("invalid gravity search grid"));
        }
        let logs: Vec<[f64; 4]> = observations
            .iter()
            .filter(|o| o.fittable())
            .map(|o| {
                [
                    o.origin_population.log10(),
                    o.dest_population.log10(),
                    o.distance_km.log10(),
                    o.observed_flow.log10(),
                ]
            })
            .collect();
        let n_used = logs.len();
        if n_used < 2 {
            return Err(ModelError::TooFewObservations {
                needed: 2,
                got: n_used,
            });
        }
        let n = n_used as f64;
        let mean_lp = logs.iter().map(|l| l[3]).sum::<f64>() / n;
        let sst: f64 = logs.iter().map(|l| (l[3] - mean_lp).powi(2)).sum();
        if sst <= 0.0 {
            return Err(ModelError::DegenerateFit("zero variance in log flows"));
        }

        let logs = &logs;
        let best = tweetmob_par::par_map_reduce(
            "gravity-grid-reference",
            grid.len(),
            4096,
            |range| {
                let mut best = BestCandidate {
                    sse: f64::INFINITY,
                    idx: usize::MAX,
                };
                for idx in range {
                    let (alpha, beta, gamma) = grid.decode(idx);
                    let mut sum = 0.0;
                    let mut sumsq = 0.0;
                    for l in logs {
                        let r = l[3] - (alpha * l[0] + beta * l[1] - gamma * l[2]);
                        sum += r;
                        sumsq += r * r;
                    }
                    let sse = sumsq - sum * sum / n;
                    let cand = BestCandidate { sse, idx };
                    if cand.better_than(&best) {
                        best = cand;
                    }
                }
                best
            },
            |a, b| if b.better_than(&a) { b } else { a },
        );
        if best.idx == usize::MAX {
            return Err(ModelError::DegenerateFit("empty gravity search grid"));
        }
        let cols = FitColumns::from_observations(observations);
        Ok(Self::finish_grid_winner(&cols, grid, best.idx, sst))
    }
}

impl FittedModel for Gravity4Fit {
    fn model_name(&self) -> &'static str {
        "Gravity 4Param"
    }

    fn predict_flow(&self, obs: &FlowObservation) -> f64 {
        self.c * obs.origin_population.powf(self.alpha) * obs.dest_population.powf(self.beta)
            / obs.distance_km.powf(self.gamma)
    }
}

impl Gravity2Fit {
    /// Fits `log P − log(mn) = log C − γ·log d` by OLS (one predictor).
    ///
    /// # Errors
    ///
    /// As [`Gravity4Fit::fit`], with a 2-observation minimum.
    pub fn fit(observations: &[FlowObservation]) -> Result<Self, ModelError> {
        let _span = tweetmob_obs::span!("fit/gravity2");
        let mut ols = Ols::new(1);
        for o in observations.iter().filter(|o| o.fittable()) {
            let lhs =
                o.observed_flow.log10() - o.origin_population.log10() - o.dest_population.log10();
            ols.add(&[o.distance_km.log10()], lhs)
                .map_err(map_stats_err)?;
        }
        let n_used = ols.n();
        let fit = ols.solve().map_err(map_stats_err)?;
        Ok(Self {
            c: debug_assert_finite(10f64.powf(fit.intercept()), "gravity-2 C"),
            gamma: debug_assert_finite(-fit.coef(0), "gravity-2 gamma"),
            log_r_squared: debug_assert_finite(fit.r_squared, "gravity-2 R^2"),
            n_used,
        })
    }
}

impl FittedModel for Gravity2Fit {
    fn model_name(&self) -> &'static str {
        "Gravity 2Param"
    }

    fn predict_flow(&self, obs: &FlowObservation) -> f64 {
        self.c * obs.origin_population * obs.dest_population / obs.distance_km.powf(self.gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MobilityModel;

    fn obs(m: f64, n: f64, d: f64, t: f64) -> FlowObservation {
        FlowObservation {
            origin_population: m,
            dest_population: n,
            distance_km: d,
            intervening_population: 0.0,
            observed_flow: t,
        }
    }

    /// Deterministic pseudo-random positive value in [lo, hi).
    fn prand(k: &mut u64, lo: f64, hi: f64) -> f64 {
        *k = k
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lo + (*k >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    }

    fn synthetic(c: f64, alpha: f64, beta: f64, gamma: f64, n: usize) -> Vec<FlowObservation> {
        let mut k = 42u64;
        (0..n)
            .map(|_| {
                let m = prand(&mut k, 1e3, 1e6);
                let nn = prand(&mut k, 1e3, 1e6);
                let d = prand(&mut k, 5.0, 3_000.0);
                obs(m, nn, d, c * m.powf(alpha) * nn.powf(beta) / d.powf(gamma))
            })
            .collect()
    }

    #[test]
    fn gravity4_recovers_exact_parameters() {
        let data = synthetic(0.003, 0.85, 1.1, 1.8, 300);
        let fit = Gravity4Fit::fit(&data).unwrap();
        assert!((fit.alpha - 0.85).abs() < 1e-9, "alpha {}", fit.alpha);
        assert!((fit.beta - 1.1).abs() < 1e-9, "beta {}", fit.beta);
        assert!((fit.gamma - 1.8).abs() < 1e-9, "gamma {}", fit.gamma);
        assert!((fit.c - 0.003).abs() / 0.003 < 1e-9, "c {}", fit.c);
        assert!((fit.log_r_squared - 1.0).abs() < 1e-9);
        assert_eq!(fit.n_used, 300);
    }

    #[test]
    fn gravity2_recovers_exact_parameters() {
        let data = synthetic(0.01, 1.0, 1.0, 2.0, 200);
        let fit = Gravity2Fit::fit(&data).unwrap();
        assert!((fit.gamma - 2.0).abs() < 1e-9);
        assert!((fit.c - 0.01).abs() / 0.01 < 1e-9);
        assert_eq!(fit.n_used, 200);
    }

    #[test]
    fn gravity4_prediction_matches_generating_law() {
        let data = synthetic(0.2, 1.0, 0.9, 2.2, 100);
        let fit = Gravity4Fit::fit(&data).unwrap();
        for o in &data {
            let rel = (fit.predict(o) - o.observed_flow).abs() / o.observed_flow;
            assert!(rel < 1e-7, "relative error {rel}");
        }
    }

    #[test]
    fn gravity2_is_gravity4_with_unit_exponents() {
        let data = synthetic(0.05, 1.0, 1.0, 1.5, 150);
        let g2 = Gravity2Fit::fit(&data).unwrap();
        let g4 = Gravity4Fit::fit(&data).unwrap();
        // On data generated with α=β=1 both models coincide.
        assert!((g4.alpha - 1.0).abs() < 1e-9);
        assert!((g4.beta - 1.0).abs() < 1e-9);
        assert!((g2.gamma - g4.gamma).abs() < 1e-9);
    }

    #[test]
    fn noisy_fit_recovers_parameters_approximately() {
        let mut data = synthetic(0.01, 1.0, 1.0, 2.0, 400);
        let mut k = 7u64;
        for o in &mut data {
            // Multiplicative noise up to ±30 %.
            o.observed_flow *= prand(&mut k, 0.7, 1.3);
        }
        let fit = Gravity2Fit::fit(&data).unwrap();
        assert!((fit.gamma - 2.0).abs() < 0.05, "gamma {}", fit.gamma);
        assert!(fit.log_r_squared > 0.98);
    }

    #[test]
    fn zero_flow_observations_are_skipped() {
        let mut data = synthetic(0.01, 1.0, 1.0, 2.0, 50);
        data.push(obs(1e5, 1e5, 100.0, 0.0)); // unobserved pair
        let fit = Gravity2Fit::fit(&data).unwrap();
        assert_eq!(fit.n_used, 50);
    }

    #[test]
    fn too_few_observations_error() {
        let data = vec![obs(1e5, 1e5, 100.0, 10.0)];
        assert!(matches!(
            Gravity4Fit::fit(&data),
            Err(ModelError::TooFewObservations { .. })
        ));
        assert!(matches!(
            Gravity2Fit::fit(&[]),
            Err(ModelError::TooFewObservations { .. })
        ));
    }

    #[test]
    fn constant_distance_is_degenerate_for_g2() {
        let data: Vec<FlowObservation> = (1..20)
            .map(|i| obs(1e4 * i as f64, 1e4, 100.0, i as f64))
            .collect();
        assert!(matches!(
            Gravity2Fit::fit(&data),
            Err(ModelError::DegenerateFit(_))
        ));
    }

    #[test]
    fn grid_search_recovers_on_grid_parameters() {
        // 0.85 / 1.1 / 1.8 all sit exactly on the default 0.05 lattice.
        let data = synthetic(0.003, 0.85, 1.1, 1.8, 120);
        let fit = Gravity4Fit::fit_grid(&data, &GravityGrid::default()).unwrap();
        assert!((fit.alpha - 0.85).abs() < 1e-12, "alpha {}", fit.alpha);
        assert!((fit.beta - 1.1).abs() < 1e-12, "beta {}", fit.beta);
        assert!((fit.gamma - 1.8).abs() < 1e-12, "gamma {}", fit.gamma);
        assert!((fit.c - 0.003).abs() / 0.003 < 1e-6, "c {}", fit.c);
        assert!(fit.log_r_squared > 1.0 - 1e-9);
        assert_eq!(fit.n_used, 120);
    }

    #[test]
    fn grid_search_is_thread_count_invariant() {
        let data = synthetic(0.02, 0.6, 1.25, 2.1, 80);
        let grid = GravityGrid::default();
        let serial = tweetmob_par::with_threads(1, || Gravity4Fit::fit_grid(&data, &grid).unwrap());
        let parallel =
            tweetmob_par::with_threads(8, || Gravity4Fit::fit_grid(&data, &grid).unwrap());
        // Bit-identical, not merely close: the min-merge has a total
        // tie-break and SSEs are computed per-candidate.
        assert_eq!(serial, parallel);
    }

    #[test]
    fn grid_search_matches_reference_bit_for_bit() {
        // Noisy data so the argmin is decided by real SSE comparisons,
        // not an exact on-lattice minimum.
        let mut data = synthetic(0.02, 0.6, 1.25, 2.1, 97);
        let mut k = 11u64;
        for o in &mut data {
            o.observed_flow *= prand(&mut k, 0.8, 1.2);
        }
        let grid = GravityGrid::default();
        for threads in [1, 8] {
            let new = tweetmob_par::with_threads(threads, || {
                Gravity4Fit::fit_grid(&data, &grid).unwrap()
            });
            let old = tweetmob_par::with_threads(threads, || {
                Gravity4Fit::fit_grid_reference(&data, &grid).unwrap()
            });
            assert_eq!(new, old, "columnar vs reference at {threads} threads");
        }
    }

    #[test]
    fn grid_search_reference_shares_guards() {
        let data = synthetic(0.01, 1.0, 1.0, 2.0, 50);
        let mut grid = GravityGrid::default();
        grid.alpha.steps = 0;
        assert!(matches!(
            Gravity4Fit::fit_grid_reference(&data, &grid),
            Err(ModelError::DegenerateFit(_))
        ));
        assert!(matches!(
            Gravity4Fit::fit_grid_reference(&data[..1], &GravityGrid::default()),
            Err(ModelError::TooFewObservations { .. })
        ));
    }

    #[test]
    fn grid_axis_endpoints_and_single_step() {
        let ax = GridAxis {
            min: 0.0,
            max: 2.0,
            steps: 41,
        };
        assert_eq!(ax.value(0), 0.0);
        assert_eq!(ax.value(40), 2.0);
        assert!((ax.value(17) - 0.85).abs() < 1e-12);
        let pinned = GridAxis {
            min: 1.5,
            max: 1.5,
            steps: 1,
        };
        assert_eq!(pinned.value(0), 1.5);
    }

    #[test]
    fn grid_search_rejects_bad_inputs() {
        let data = synthetic(0.01, 1.0, 1.0, 2.0, 50);
        let mut grid = GravityGrid::default();
        grid.alpha.steps = 0;
        assert!(matches!(
            Gravity4Fit::fit_grid(&data, &grid),
            Err(ModelError::DegenerateFit(_))
        ));
        let mut inverted = GravityGrid::default();
        inverted.gamma = GridAxis {
            min: 2.0,
            max: 1.0,
            steps: 5,
        };
        assert!(matches!(
            Gravity4Fit::fit_grid(&data, &inverted),
            Err(ModelError::DegenerateFit(_))
        ));
        assert!(matches!(
            Gravity4Fit::fit_grid(&data[..1], &GravityGrid::default()),
            Err(ModelError::TooFewObservations { .. })
        ));
    }

    #[test]
    fn model_names() {
        let data = synthetic(0.01, 1.0, 1.0, 2.0, 50);
        assert_eq!(Gravity4Fit::fit(&data).unwrap().name(), "Gravity 4Param");
        assert_eq!(Gravity2Fit::fit(&data).unwrap().name(), "Gravity 2Param");
    }
}
