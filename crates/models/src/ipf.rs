//! Doubly-constrained gravity via iterative proportional fitting
//! (Furness 1965) — the production-grade member of the gravity family.
//!
//! The paper's Eq. 1–2 are *unconstrained*: predicted totals need not
//! match the observed trip productions and attractions. Transport
//! practice instead balances `T_ij = A_i · B_j · O_i · D_j · f(d_ij)`
//! so that `Σ_j T_ij = O_i` (row sums) and `Σ_i T_ij = D_j` (column
//! sums), with the balancing factors found by alternating row/column
//! scaling. With the deterrence exponent taken from a fitted
//! [`crate::Gravity2Fit`], this shows how much of the residual error in
//! Table II is just unbalanced marginals.

use serde::Serialize;
use std::fmt;

/// Errors from the IPF solver.
#[derive(Debug, Clone, PartialEq)]
pub enum IpfError {
    /// Matrix dimensions disagree with `n`.
    BadShape {
        /// Expected `n · n` entries.
        expected: usize,
        /// Entries supplied.
        got: usize,
    },
    /// A negative or non-finite flow/distance.
    BadValue(f64),
    /// A row or column with positive marginal has zero reachable mass —
    /// the constraints are unsatisfiable.
    Unsatisfiable(&'static str),
    /// The iteration did not converge within the cap.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Final worst marginal mismatch (relative).
        residual: f64,
    },
}

impl fmt::Display for IpfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpfError::BadShape { expected, got } => {
                write!(f, "matrix needs {expected} entries, got {got}")
            }
            IpfError::BadValue(v) => write!(f, "negative or non-finite value {v}"),
            IpfError::Unsatisfiable(what) => write!(f, "unsatisfiable constraints: {what}"),
            IpfError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "IPF did not converge after {iterations} iterations (residual {residual:.2e})"
            ),
        }
    }
}

impl std::error::Error for IpfError {}

/// A doubly-constrained gravity solution.
#[derive(Debug, Clone, Serialize)]
pub struct DoublyConstrainedFit {
    n: usize,
    /// Predicted flows, row-major.
    predicted: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Final worst relative marginal mismatch.
    pub residual: f64,
}

impl DoublyConstrainedFit {
    /// Balances a seed matrix `f(d_ij) = d_ij^−γ` (diagonal excluded) to
    /// the observed matrix's row and column sums.
    ///
    /// * `observed` — the extracted OD matrix, row-major `n × n`; its
    ///   marginals become the constraints.
    /// * `distances` — centre distances, row-major `n × n`.
    /// * `gamma` — deterrence exponent (e.g. from [`crate::Gravity2Fit`]).
    ///
    /// # Errors
    ///
    /// Shape/value errors, unsatisfiable constraints (a place with
    /// observed outflow but no positive-deterrence destination), or
    /// non-convergence after 1,000 sweeps at 1e-10 relative tolerance.
    pub fn fit(
        n: usize,
        observed: &[f64],
        distances: &[f64],
        gamma: f64,
    ) -> Result<Self, IpfError> {
        if observed.len() != n * n {
            return Err(IpfError::BadShape {
                expected: n * n,
                got: observed.len(),
            });
        }
        if distances.len() != n * n {
            return Err(IpfError::BadShape {
                expected: n * n,
                got: distances.len(),
            });
        }
        for &v in observed {
            if !(v >= 0.0) || !v.is_finite() {
                return Err(IpfError::BadValue(v));
            }
        }
        // Target marginals.
        let row_sums: Vec<f64> = (0..n)
            .map(|i| observed[i * n..(i + 1) * n].iter().sum())
            .collect();
        let col_sums: Vec<f64> = (0..n)
            .map(|j| (0..n).map(|i| observed[i * n + j]).sum())
            .collect();

        // Seed: pure deterrence, zero diagonal.
        let mut t = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d = distances[i * n + j];
                if !(d > 0.0) || !d.is_finite() {
                    return Err(IpfError::BadValue(d));
                }
                t[i * n + j] = d.powf(-gamma);
            }
        }
        // Rows/cols with positive targets must have positive seed mass.
        for i in 0..n {
            if row_sums[i] > 0.0 && t[i * n..(i + 1) * n].iter().sum::<f64>() == 0.0 {
                return Err(IpfError::Unsatisfiable("row with outflow but no seed mass"));
            }
        }
        for j in 0..n {
            if col_sums[j] > 0.0 && (0..n).map(|i| t[i * n + j]).sum::<f64>() == 0.0 {
                return Err(IpfError::Unsatisfiable(
                    "column with inflow but no seed mass",
                ));
            }
        }

        const MAX_SWEEPS: usize = 1_000;
        const TOL: f64 = 1e-10;
        let mut residual = f64::INFINITY;
        for sweep in 1..=MAX_SWEEPS {
            // Row scaling.
            for i in 0..n {
                let s: f64 = t[i * n..(i + 1) * n].iter().sum();
                if s > 0.0 {
                    let f = row_sums[i] / s;
                    for v in &mut t[i * n..(i + 1) * n] {
                        *v *= f;
                    }
                }
            }
            // Column scaling.
            for j in 0..n {
                let s: f64 = (0..n).map(|i| t[i * n + j]).sum();
                if s > 0.0 {
                    let f = col_sums[j] / s;
                    for i in 0..n {
                        t[i * n + j] *= f;
                    }
                }
            }
            // Convergence: worst relative row mismatch (columns are exact
            // right after column scaling).
            residual = 0.0;
            for i in 0..n {
                if row_sums[i] > 0.0 {
                    let s: f64 = t[i * n..(i + 1) * n].iter().sum();
                    residual = residual.max((s - row_sums[i]).abs() / row_sums[i]);
                }
            }
            if residual < TOL {
                return Ok(Self {
                    n,
                    predicted: t,
                    iterations: sweep,
                    residual,
                });
            }
        }
        Err(IpfError::NoConvergence {
            iterations: MAX_SWEEPS,
            residual,
        })
    }

    /// Number of areas.
    pub fn n_areas(&self) -> usize {
        self.n
    }

    /// Predicted flow for a directed pair.
    ///
    /// # Panics
    ///
    /// If an index is out of range.
    pub fn predict(&self, origin: usize, dest: usize) -> f64 {
        assert!(origin < self.n && dest < self.n, "index out of range");
        self.predicted[origin * self.n + dest]
    }

    /// The full predicted matrix, row-major.
    pub fn predicted(&self) -> &[f64] {
        &self.predicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-area world on a line with asymmetric observed flows.
    fn toy() -> (usize, Vec<f64>, Vec<f64>) {
        let n = 3;
        #[rustfmt::skip]
        let observed = vec![
            0.0, 60.0, 20.0,
            30.0, 0.0, 50.0,
            10.0, 40.0, 0.0,
        ];
        #[rustfmt::skip]
        let distances = vec![
            0.0, 100.0, 250.0,
            100.0, 0.0, 150.0,
            250.0, 150.0, 0.0,
        ];
        (n, observed, distances)
    }

    #[test]
    fn marginals_are_matched() {
        let (n, observed, distances) = toy();
        let fit = DoublyConstrainedFit::fit(n, &observed, &distances, 2.0).unwrap();
        for i in 0..n {
            let want: f64 = observed[i * n..(i + 1) * n].iter().sum();
            let got: f64 = (0..n).map(|j| fit.predict(i, j)).sum();
            assert!((want - got).abs() < 1e-6, "row {i}: {got} vs {want}");
        }
        for j in 0..n {
            let want: f64 = (0..n).map(|i| observed[i * n + j]).sum();
            let got: f64 = (0..n).map(|i| fit.predict(i, j)).sum();
            assert!((want - got).abs() < 1e-6, "col {j}: {got} vs {want}");
        }
        assert_eq!(fit.predict(0, 0), 0.0); // diagonal stays zero
    }

    #[test]
    fn deterrence_shapes_the_interior() {
        // With equal marginals, closer pairs must receive more flow.
        let n = 3;
        #[rustfmt::skip]
        let observed = vec![
            0.0, 50.0, 50.0,
            50.0, 0.0, 50.0,
            50.0, 50.0, 0.0,
        ];
        #[rustfmt::skip]
        let distances = vec![
            0.0, 10.0, 1_000.0,
            10.0, 0.0, 1_000.0,
            1_000.0, 1_000.0, 0.0,
        ];
        let fit = DoublyConstrainedFit::fit(n, &observed, &distances, 2.0).unwrap();
        // 0 ↔ 1 are close; flow between them should exceed 0 → 2 even
        // though marginals are identical.
        assert!(fit.predict(0, 1) > fit.predict(0, 2));
    }

    #[test]
    fn exactly_reproduces_gravity_consistent_data() {
        // If the observed matrix already has the form A_i B_j d^-γ, IPF
        // must reproduce it exactly (it is the unique doubly-constrained
        // solution with that seed).
        let n = 4;
        let a = [1.0, 2.0, 0.5, 1.5];
        let b = [3.0, 1.0, 2.0, 0.7];
        let mut distances = vec![0.0; n * n];
        let mut observed = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d = 50.0 + 37.0 * ((i * 3 + j * 7) % 11) as f64;
                distances[i * n + j] = d;
                observed[i * n + j] = a[i] * b[j] * d.powf(-1.7) * 1e4;
            }
        }
        let fit = DoublyConstrainedFit::fit(n, &observed, &distances, 1.7).unwrap();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let rel = (fit.predict(i, j) - observed[i * n + j]).abs() / observed[i * n + j];
                    assert!(rel < 1e-8, "({i},{j}) rel {rel}");
                }
            }
        }
    }

    #[test]
    fn empty_rows_and_columns_are_allowed() {
        let n = 3;
        #[rustfmt::skip]
        let observed = vec![
            0.0, 10.0, 0.0,
            5.0, 0.0, 0.0,
            0.0, 0.0, 0.0, // area 2 observed nothing
        ];
        let (_, _, distances) = toy();
        let fit = DoublyConstrainedFit::fit(n, &observed, &distances, 2.0).unwrap();
        for j in 0..n {
            assert_eq!(fit.predict(2, j), 0.0);
        }
        let inflow_2: f64 = (0..n).map(|i| fit.predict(i, 2)).sum();
        assert!(inflow_2.abs() < 1e-9);
    }

    #[test]
    fn error_paths() {
        let (n, observed, distances) = toy();
        assert!(matches!(
            DoublyConstrainedFit::fit(n, &observed[..4], &distances, 2.0),
            Err(IpfError::BadShape { .. })
        ));
        let mut bad = observed.clone();
        bad[1] = -3.0;
        assert!(matches!(
            DoublyConstrainedFit::fit(n, &bad, &distances, 2.0),
            Err(IpfError::BadValue(_))
        ));
        let mut zero_d = distances.clone();
        zero_d[1] = 0.0; // off-diagonal zero distance
        assert!(matches!(
            DoublyConstrainedFit::fit(n, &observed, &zero_d, 2.0),
            Err(IpfError::BadValue(_))
        ));
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn predict_bounds_checked() {
        let (n, observed, distances) = toy();
        let fit = DoublyConstrainedFit::fit(n, &observed, &distances, 2.0).unwrap();
        fit.predict(0, 5);
    }
}
