//! Intervening-opportunities model (extension beyond the paper).
//!
//! Stouffer's 1940 law holds that the number of movers over a distance is
//! proportional to the opportunities at that distance and inversely
//! proportional to the intervening opportunities. In the notation of the
//! paper's Eq. 3 quantities, we use the common flow form
//!
//! `P = C · m · n / (s + n)`
//!
//! — origin mass times the destination's share of opportunities at or
//! inside its radius. Like Radiation it needs only a scaling constant, so
//! it slots into the same comparison harness; the paper's future work
//! asks for evaluating "more metrics and at more varieties of distance
//! scales", and an extra opportunity-class model is the natural ablation
//! companion (is Radiation's misfit specific to its functional form, or
//! shared by all intervening-opportunity laws?).

use crate::columns::ScoreColumns;
use crate::fitted::FittedModel;
use crate::traits::{FlowObservation, ModelError};
use serde::{Deserialize, Serialize};

/// Fitted intervening-opportunities model: `P = C · m n / (s + n)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpportunitiesFit {
    /// Scaling constant `C`.
    pub c: f64,
    /// Observations used in the fit.
    pub n_used: usize,
}

impl OpportunitiesFit {
    /// The structural factor `m n / (s + n)`.
    pub fn structural_factor(obs: &FlowObservation) -> f64 {
        obs.origin_population * obs.dest_population
            / (obs.intervening_population + obs.dest_population)
    }

    /// Fits `C` as the log-space intercept (geometric mean of `T / φ`).
    ///
    /// # Errors
    ///
    /// [`ModelError::TooFewObservations`] when no observation is usable.
    pub fn fit(observations: &[FlowObservation]) -> Result<Self, ModelError> {
        let _span = tweetmob_obs::span!("fit/opportunities");
        let mut acc = 0.0;
        let mut n_used = 0usize;
        for o in observations.iter().filter(|o| o.fittable()) {
            let phi = Self::structural_factor(o);
            if phi > 0.0 && phi.is_finite() {
                acc += o.observed_flow.log10() - phi.log10();
                n_used += 1;
            }
        }
        if n_used == 0 {
            return Err(ModelError::TooFewObservations { needed: 1, got: 0 });
        }
        Ok(Self {
            c: 10f64.powf(acc / n_used as f64),
            n_used,
        })
    }

    /// As [`OpportunitiesFit::fit`], through a [`ScoreColumns`] built
    /// in parallel over the shared worker pool; bit-identical to the
    /// row-wise reference at every thread count because the final
    /// reduction is serial and in observation order.
    ///
    /// # Errors
    ///
    /// [`ModelError::TooFewObservations`] when no observation is usable.
    pub fn fit_columnar(observations: &[FlowObservation]) -> Result<Self, ModelError> {
        let _span = tweetmob_obs::span!("fit/opportunities");
        let cols = ScoreColumns::build(observations, Self::structural_factor);
        let Some((acc, n_used)) = cols.intercept() else {
            return Err(ModelError::TooFewObservations { needed: 1, got: 0 });
        };
        Ok(Self {
            c: 10f64.powf(acc / n_used as f64),
            n_used,
        })
    }
}

impl FittedModel for OpportunitiesFit {
    fn model_name(&self) -> &'static str {
        "Opportunities"
    }

    fn predict_flow(&self, obs: &FlowObservation) -> f64 {
        self.c * Self::structural_factor(obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MobilityModel;

    fn obs(m: f64, n: f64, s: f64, t: f64) -> FlowObservation {
        FlowObservation {
            origin_population: m,
            dest_population: n,
            distance_km: 100.0,
            intervening_population: s,
            observed_flow: t,
        }
    }

    #[test]
    fn structural_factor_limits() {
        // s = 0: φ = m (all opportunities are at the destination).
        let o = obs(500.0, 100.0, 0.0, 1.0);
        assert!((OpportunitiesFit::structural_factor(&o) - 500.0).abs() < 1e-12);
        // s >> n: φ ≈ m·n/s.
        let o = obs(500.0, 100.0, 1e6, 1.0);
        let phi = OpportunitiesFit::structural_factor(&o);
        assert!((phi - 500.0 * 100.0 / 1_000_100.0).abs() < 1e-9);
    }

    #[test]
    fn fit_recovers_constant() {
        let data: Vec<FlowObservation> = (1..30)
            .map(|i| {
                let (m, n, s) = (1e4, 1e3 * i as f64, 5e2 * i as f64);
                obs(m, n, s, 3.0 * m * n / (s + n))
            })
            .collect();
        let fit = OpportunitiesFit::fit(&data).unwrap();
        assert!((fit.c - 3.0).abs() / 3.0 < 1e-9);
        for o in &data {
            assert!((fit.predict(o) - o.observed_flow).abs() / o.observed_flow < 1e-9);
        }
    }

    #[test]
    fn fit_requires_usable_observations() {
        assert!(OpportunitiesFit::fit(&[]).is_err());
        assert!(OpportunitiesFit::fit(&[obs(1e4, 1e3, 0.0, 0.0)]).is_err());
        assert!(OpportunitiesFit::fit_columnar(&[]).is_err());
        assert!(OpportunitiesFit::fit_columnar(&[obs(1e4, 1e3, 0.0, 0.0)]).is_err());
    }

    #[test]
    fn columnar_fit_is_bit_identical_to_reference_at_any_thread_count() {
        let mut k = 29u64;
        let mut next = |lo: f64, hi: f64| {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            lo + (k >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
        };
        let data: Vec<FlowObservation> = (0..5_000)
            .map(|_| obs(next(1e3, 1e6), next(1e3, 1e6), next(0.0, 2e6), next(1.0, 1e4)))
            .collect();
        let reference = OpportunitiesFit::fit(&data).unwrap();
        let one = tweetmob_par::with_threads(1, || OpportunitiesFit::fit_columnar(&data).unwrap());
        let eight =
            tweetmob_par::with_threads(8, || OpportunitiesFit::fit_columnar(&data).unwrap());
        assert_eq!(one.c.to_bits(), reference.c.to_bits());
        assert_eq!(eight.c.to_bits(), reference.c.to_bits());
        assert_eq!(one.n_used, reference.n_used);
        assert_eq!(eight.n_used, reference.n_used);
    }

    #[test]
    fn name_is_stable() {
        let fit = OpportunitiesFit { c: 1.0, n_used: 0 };
        assert_eq!(fit.name(), "Opportunities");
    }
}
