//! Struct-of-arrays log-feature columns for the fitting hot path.
//!
//! [`Gravity4Fit::fit_grid`](crate::Gravity4Fit::fit_grid) evaluates
//! ~10⁵ lattice candidates against the same observations. Storing the
//! per-observation logs as four contiguous `f64` columns instead of an
//! array-of-structs lets each candidate reduce to a handful of scalar
//! multiplies and adds over cache-line-friendly slices, and lets the
//! gamma axis (the fastest-varying one) reuse the `α`/`β` part of the
//! residual across a whole run of candidates — all the way down to
//! O(1) per candidate via the run-level sufficient statistics of
//! [`RunMoments`].
//!
//! **Determinism contract**: every reduction here runs in a fixed
//! order — [`FitColumns::candidate_moments`] accumulates into
//! [`LANES`] independent lanes combined in a fixed tree, then folds the
//! tail serially. The result depends only on the column contents and
//! `γ`, never on thread count or chunk boundaries, so the grid search
//! stays byte-identical under any `tweetmob-par` dispatch.

use crate::traits::FlowObservation;

/// Fixed accumulator-lane count of [`FitColumns::candidate_moments`].
///
/// Independent lanes break the serial dependency chain of the running
/// sums (the bottleneck of the pre-columnar loop) and vectorize; the
/// count is part of the determinism contract — changing it changes the
/// low bits of every SSE, so it must never vary at runtime.
pub const LANES: usize = 4;

/// Log-space feature columns of the fittable observations, in input
/// order: `log₁₀ m`, `log₁₀ n`, `log₁₀ d`, `log₁₀ T`.
///
/// Built once per fit ([`FitColumns::from_observations`] filters with
/// [`FlowObservation::fittable`] exactly like the row-wise fitters), so
/// the grid search pays the `log10` cost n times instead of n × 10⁵.
#[derive(Debug, Clone, PartialEq)]
pub struct FitColumns {
    ln_m: Vec<f64>,
    ln_n: Vec<f64>,
    ln_d: Vec<f64>,
    ln_t: Vec<f64>,
}

impl FitColumns {
    /// Extracts the columns from the fittable subset of `observations`.
    #[must_use]
    pub fn from_observations(observations: &[FlowObservation]) -> Self {
        let fittable = observations.iter().filter(|o| o.fittable());
        let mut cols = Self {
            ln_m: Vec::new(),
            ln_n: Vec::new(),
            ln_d: Vec::new(),
            ln_t: Vec::new(),
        };
        for o in fittable {
            cols.ln_m.push(o.origin_population.log10());
            cols.ln_n.push(o.dest_population.log10());
            cols.ln_d.push(o.distance_km.log10());
            cols.ln_t.push(o.observed_flow.log10());
        }
        cols
    }

    /// Number of (fittable) observations in the columns.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.ln_t.len()
    }

    /// Whether no observation survived the fittable filter.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ln_t.is_empty()
    }

    /// `log₁₀` origin populations.
    #[inline]
    #[must_use]
    pub fn ln_m(&self) -> &[f64] {
        &self.ln_m
    }

    /// `log₁₀` destination populations.
    #[inline]
    #[must_use]
    pub fn ln_n(&self) -> &[f64] {
        &self.ln_n
    }

    /// `log₁₀` pair distances.
    #[inline]
    #[must_use]
    pub fn ln_d(&self) -> &[f64] {
        &self.ln_d
    }

    /// `log₁₀` observed flows.
    #[inline]
    #[must_use]
    pub fn ln_t(&self) -> &[f64] {
        &self.ln_t
    }

    /// Fills `u[i] = ln_t[i] − α·ln_m[i] − β·ln_n[i]`, the part of the
    /// pre-intercept residual that is constant along a gamma run.
    ///
    /// # Panics
    ///
    /// If `u.len() != self.len()`.
    pub fn fill_partial_residuals(&self, alpha: f64, beta: f64, u: &mut [f64]) {
        assert_eq!(u.len(), self.len(), "scratch buffer must match columns");
        for (((ui, &lt), &lm), &ln) in u.iter_mut().zip(&self.ln_t).zip(&self.ln_m).zip(&self.ln_n)
        {
            *ui = lt - alpha * lm - beta * ln;
        }
    }

    /// `(Σr, Σr²)` for the candidate residuals `r[i] = u[i] + γ·ln_d[i]`
    /// where `u` comes from [`FitColumns::fill_partial_residuals`].
    ///
    /// Accumulates into [`LANES`] lanes combined in a fixed order — the
    /// value is a pure function of `(u, ln_d, γ)`.
    ///
    /// # Panics
    ///
    /// If `u.len() != self.len()`.
    #[must_use]
    pub fn candidate_moments(&self, u: &[f64], gamma: f64) -> (f64, f64) {
        assert_eq!(u.len(), self.len(), "scratch buffer must match columns");
        let ld = &self.ln_d[..u.len()];
        let mut s = [0.0f64; LANES];
        let mut q = [0.0f64; LANES];
        let blocks = u.len() / LANES * LANES;
        let mut k = 0;
        while k < blocks {
            for lane in 0..LANES {
                let r = u[k + lane] + gamma * ld[k + lane];
                s[lane] += r;
                q[lane] += r * r;
            }
            k += LANES;
        }
        let mut sum = (s[0] + s[1]) + (s[2] + s[3]);
        let mut sumsq = (q[0] + q[1]) + (q[2] + q[3]);
        while k < u.len() {
            let r = u[k] + gamma * ld[k];
            sum += r;
            sumsq += r * r;
            k += 1;
        }
        (sum, sumsq)
    }

    /// Sufficient statistics of a whole `(α, β)` gamma run: one O(n)
    /// sweep over `u` and `ln_d`, after which every γ candidate on the
    /// run is scored in O(1) by [`RunMoments::candidate_sse`].
    ///
    /// A fixed-order pure function of `(u, ln_d)` — chunk boundaries
    /// and thread counts cannot change its value, because `u` itself
    /// only depends on `(α, β)`.
    ///
    /// # Panics
    ///
    /// If `u.len() != self.len()`.
    #[must_use]
    pub fn run_moments(&self, u: &[f64]) -> RunMoments {
        assert_eq!(u.len(), self.len(), "scratch buffer must match columns");
        let mut m = RunMoments {
            su: 0.0,
            suu: 0.0,
            sud: 0.0,
            sd: 0.0,
            sdd: 0.0,
        };
        for (&ui, &di) in u.iter().zip(&self.ln_d) {
            m.su += ui;
            m.suu += ui * ui;
            m.sud += ui * di;
            m.sd += di;
            m.sdd += di * di;
        }
        m
    }
}

/// Per-observation score column for the single-constant models
/// (Radiation, intervening Opportunities): `dlog[i] = log₁₀ T[i] −
/// log₁₀ φ[i]` over the usable observations, in input order.
///
/// Both models fit only a scaling constant `C` — the geometric mean of
/// `T / φ` — so the whole fit reduces to one serial sum over this
/// column. The expensive part, the per-observation `log10`s and the
/// structural factor `φ`, is embarrassingly parallel: each element is a
/// pure function of its own observation, so [`ScoreColumns::build`]
/// shards the observation range over the `tweetmob-par` pool and
/// concatenates the chunk outputs in chunk order. The column contents —
/// and therefore the fitted `C` — are byte-identical at every thread
/// count, and byte-identical to the row-wise reference loop, because
/// the final reduction ([`ScoreColumns::intercept`]) always runs
/// serially left-to-right in observation order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreColumns {
    dlog: Vec<f64>,
}

impl ScoreColumns {
    /// Minimum observation count before the build shards across threads.
    const MIN_PARALLEL: usize = 2_048;

    /// Extracts `log₁₀ T − log₁₀ φ` for every usable observation
    /// (fittable, with a positive finite structural factor `φ`),
    /// preserving input order.
    ///
    /// `phi` must be a pure function of the observation; the build
    /// evaluates it exactly once per observation, in parallel.
    pub fn build<F>(observations: &[FlowObservation], phi: F) -> Self
    where
        F: Fn(&FlowObservation) -> f64 + Sync,
    {
        let chunks = tweetmob_par::par_map_chunks(
            "fit/score-columns",
            observations.len(),
            Self::MIN_PARALLEL,
            |range| {
                let mut dlog = Vec::new();
                for o in &observations[range] {
                    if !o.fittable() {
                        continue;
                    }
                    let p = phi(o);
                    if p > 0.0 && p.is_finite() {
                        dlog.push(o.observed_flow.log10() - p.log10());
                    }
                }
                dlog
            },
        );
        let mut dlog = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for chunk in chunks {
            dlog.extend_from_slice(&chunk);
        }
        Self { dlog }
    }

    /// Number of usable observations in the column.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.dlog.len()
    }

    /// Whether no observation survived the usability filter.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dlog.is_empty()
    }

    /// The score column itself, in observation order.
    #[inline]
    #[must_use]
    pub fn dlog(&self) -> &[f64] {
        &self.dlog
    }

    /// `(Σ dlog, n)` — the serial left-to-right sum the geometric-mean
    /// constant derives from (`C = 10^(Σ/n)`), or `None` when the
    /// column is empty. Always reduced in observation order so the
    /// result matches the row-wise reference loop bit-for-bit.
    #[must_use]
    pub fn intercept(&self) -> Option<(f64, usize)> {
        if self.dlog.is_empty() {
            return None;
        }
        let mut acc = 0.0;
        for &d in &self.dlog {
            acc += d;
        }
        Some((acc, self.dlog.len()))
    }
}

/// Per-run sufficient statistics for the closed-form grid search: with
/// `u[i] = ln_t[i] − α·ln_m[i] − β·ln_n[i]` fixed along a gamma run and
/// residuals `r[i] = u[i] + γ·ln_d[i]`, the candidate moments expand to
///
/// ```text
/// Σr  = Σu  + γ·Σd
/// Σr² = Σu² + 2γ·Σud + γ²·Σd²
/// ```
///
/// so the SSE of every candidate on the run follows from five scalars.
///
/// The expansion reassociates the arithmetic, so an SSE from
/// [`RunMoments::candidate_sse`] differs from the row-wise sweep in the
/// low bits (~1e-12 relative) — far below the SSE gaps between lattice
/// candidates. The grid search therefore uses it only to *rank*
/// candidates; the winner's reported fit is recomputed serially with
/// the pre-columnar expression, keeping reported fits byte-identical to
/// the reference path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMoments {
    /// `Σ u`.
    pub su: f64,
    /// `Σ u²`.
    pub suu: f64,
    /// `Σ u·ln_d`.
    pub sud: f64,
    /// `Σ ln_d`.
    pub sd: f64,
    /// `Σ ln_d²`.
    pub sdd: f64,
}

impl RunMoments {
    /// `SSE = Σr² − (Σr)²/n` for the candidate with decay exponent
    /// `gamma` on this run, in O(1).
    #[inline]
    #[must_use]
    pub fn candidate_sse(&self, gamma: f64, n: f64) -> f64 {
        let sum = self.su + gamma * self.sd;
        let sumsq = self.suu + 2.0 * gamma * self.sud + gamma * gamma * self.sdd;
        sumsq - sum * sum / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(m: f64, n: f64, d: f64, t: f64) -> FlowObservation {
        FlowObservation {
            origin_population: m,
            dest_population: n,
            distance_km: d,
            intervening_population: 0.0,
            observed_flow: t,
        }
    }

    fn sample(count: usize) -> Vec<FlowObservation> {
        let mut k = 3u64;
        let mut next = |lo: f64, hi: f64| {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            lo + (k >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
        };
        (0..count)
            .map(|_| {
                obs(
                    next(1e3, 1e6),
                    next(1e3, 1e6),
                    next(5.0, 3_000.0),
                    next(1.0, 1e4),
                )
            })
            .collect()
    }

    #[test]
    fn columns_mirror_fittable_rows() {
        let mut data = sample(30);
        data.push(obs(1e4, 1e4, 100.0, 0.0)); // unfittable: zero flow
        let cols = FitColumns::from_observations(&data);
        assert_eq!(cols.len(), 30);
        assert!(!cols.is_empty());
        for (i, o) in data.iter().take(30).enumerate() {
            assert_eq!(cols.ln_m()[i], o.origin_population.log10());
            assert_eq!(cols.ln_n()[i], o.dest_population.log10());
            assert_eq!(cols.ln_d()[i], o.distance_km.log10());
            assert_eq!(cols.ln_t()[i], o.observed_flow.log10());
        }
    }

    #[test]
    fn moments_match_row_wise_reference_closely() {
        let data = sample(57); // deliberately not a multiple of LANES
        let cols = FitColumns::from_observations(&data);
        let (alpha, beta, gamma) = (0.85, 1.1, 1.8);
        let mut u = vec![0.0; cols.len()];
        cols.fill_partial_residuals(alpha, beta, &mut u);
        let (sum, sumsq) = cols.candidate_moments(&u, gamma);
        // Serial row-wise reference (different summation order, so only
        // close, not bit-equal — the grid search never mixes the two).
        let (mut rs, mut rq) = (0.0, 0.0);
        for o in &data {
            let r = o.observed_flow.log10()
                - (alpha * o.origin_population.log10() + beta * o.dest_population.log10()
                    - gamma * o.distance_km.log10());
            rs += r;
            rq += r * r;
        }
        assert!((sum - rs).abs() < 1e-9 * rs.abs().max(1.0), "{sum} vs {rs}");
        assert!((sumsq - rq).abs() < 1e-9 * rq.max(1.0), "{sumsq} vs {rq}");
    }

    #[test]
    fn moments_are_a_pure_function_of_inputs() {
        let data = sample(41);
        let cols = FitColumns::from_observations(&data);
        let mut u = vec![0.0; cols.len()];
        cols.fill_partial_residuals(0.3, 0.7, &mut u);
        let a = cols.candidate_moments(&u, 2.05);
        let b = cols.candidate_moments(&u, 2.05);
        assert_eq!(a.0.to_bits(), b.0.to_bits());
        assert_eq!(a.1.to_bits(), b.1.to_bits());
    }

    #[test]
    #[should_panic(expected = "scratch buffer must match columns")]
    fn mismatched_scratch_panics() {
        let cols = FitColumns::from_observations(&sample(8));
        let _ = cols.candidate_moments(&[0.0; 4], 1.0);
    }

    #[test]
    fn closed_form_sse_matches_direct_sweep_closely() {
        let data = sample(57);
        let cols = FitColumns::from_observations(&data);
        let n = cols.len() as f64;
        let mut u = vec![0.0; cols.len()];
        for (alpha, beta) in [(0.0, 0.0), (0.85, 1.1), (2.0, 2.0)] {
            cols.fill_partial_residuals(alpha, beta, &mut u);
            let moments = cols.run_moments(&u);
            for gamma in [0.0, 0.05, 1.8, 3.0] {
                let (sum, sumsq) = cols.candidate_moments(&u, gamma);
                let direct = sumsq - sum * sum / n;
                let closed = moments.candidate_sse(gamma, n);
                assert!(
                    (closed - direct).abs() < 1e-9 * direct.abs().max(1.0),
                    "α={alpha} β={beta} γ={gamma}: {closed} vs {direct}"
                );
            }
        }
    }

    #[test]
    fn run_moments_are_a_pure_function_of_inputs() {
        let data = sample(23);
        let cols = FitColumns::from_observations(&data);
        let mut u = vec![0.0; cols.len()];
        cols.fill_partial_residuals(0.3, 0.7, &mut u);
        let a = cols.run_moments(&u);
        let b = cols.run_moments(&u);
        assert_eq!(a, b);
        assert_eq!(
            a.candidate_sse(2.05, 23.0).to_bits(),
            b.candidate_sse(2.05, 23.0).to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "scratch buffer must match columns")]
    fn run_moments_mismatched_scratch_panics() {
        let cols = FitColumns::from_observations(&sample(8));
        let _ = cols.run_moments(&[0.0; 4]);
    }

    #[test]
    fn score_columns_mirror_the_reference_loop() {
        let mut data = sample(40);
        data.push(obs(1e4, 1e4, 100.0, 0.0)); // unfittable: zero flow
        let phi = |o: &FlowObservation| o.origin_population * o.dest_population;
        let cols = ScoreColumns::build(&data, phi);
        assert_eq!(cols.len(), 40);
        assert!(!cols.is_empty());
        let mut acc = 0.0;
        let mut n = 0usize;
        for o in data.iter().filter(|o| o.fittable()) {
            let p = phi(o);
            if p > 0.0 && p.is_finite() {
                assert_eq!(
                    cols.dlog()[n].to_bits(),
                    (o.observed_flow.log10() - p.log10()).to_bits()
                );
                acc += o.observed_flow.log10() - p.log10();
                n += 1;
            }
        }
        let (sum, used) = cols.intercept().unwrap();
        assert_eq!(sum.to_bits(), acc.to_bits());
        assert_eq!(used, n);
    }

    #[test]
    fn score_columns_are_thread_invariant() {
        // Over the MIN_PARALLEL threshold so the 8-thread run actually
        // shards; the column and intercept must not change.
        let data = sample(ScoreColumns::MIN_PARALLEL + 101);
        let phi = |o: &FlowObservation| o.origin_population / o.distance_km;
        let one = tweetmob_par::with_threads(1, || ScoreColumns::build(&data, phi));
        let eight = tweetmob_par::with_threads(8, || ScoreColumns::build(&data, phi));
        assert_eq!(one, eight);
        let (s1, n1) = one.intercept().unwrap();
        let (s8, n8) = eight.intercept().unwrap();
        assert_eq!(s1.to_bits(), s8.to_bits());
        assert_eq!(n1, n8);
    }

    #[test]
    fn score_columns_empty_when_nothing_usable() {
        let cols = ScoreColumns::build(&[obs(1e4, 1e4, 100.0, 0.0)], |_| 1.0);
        assert!(cols.is_empty());
        assert_eq!(cols.intercept(), None);
        // Usable flow but a non-finite structural factor is skipped too.
        let cols = ScoreColumns::build(&sample(5), |_| f64::NAN);
        assert!(cols.is_empty());
    }
}
