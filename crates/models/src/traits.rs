//! The model interface and shared observation type.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One origin–destination observation, ready for fitting or prediction.
///
/// Populations may come from any source — the paper fits against
/// Twitter-derived populations and proposes census populations as a
/// drop-in replacement (§IV closing paragraph); both are just values
/// here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowObservation {
    /// Population `m` of the origin area.
    pub origin_population: f64,
    /// Population `n` of the destination area.
    pub dest_population: f64,
    /// Great-circle distance `d` between the area centres, km.
    pub distance_km: f64,
    /// Population `s` within radius `d` of the origin, excluding origin
    /// and destination (used by Radiation and Opportunities; Gravity
    /// ignores it).
    pub intervening_population: f64,
    /// The observed flow `T` (e.g. consecutive-tweet transitions). Only
    /// used by fitting; prediction ignores it.
    pub observed_flow: f64,
}

impl FlowObservation {
    /// Whether the observation can enter a log-space fit: positive `m`,
    /// `n`, `d` and flow.
    pub fn fittable(&self) -> bool {
        self.origin_population > 0.0
            && self.dest_population > 0.0
            && self.distance_km > 0.0
            && self.observed_flow > 0.0
            && self.origin_population.is_finite()
            && self.dest_population.is_finite()
            && self.distance_km.is_finite()
            && self.observed_flow.is_finite()
            && self.intervening_population >= 0.0
    }
}

/// Errors from model fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Fewer usable (positive, finite) observations than parameters.
    TooFewObservations {
        /// Observations required.
        needed: usize,
        /// Usable observations supplied.
        got: usize,
    },
    /// The underlying least-squares problem was singular (e.g. all
    /// observations share one distance).
    DegenerateFit(&'static str),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::TooFewObservations { needed, got } => {
                write!(f, "need at least {needed} fittable observations, got {got}")
            }
            ModelError::DegenerateFit(what) => write!(f, "degenerate fit: {what}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// A fitted mobility model that can predict a flow for an observation.
///
/// This is the historical entry point the evaluation harness and the
/// examples consume. Since the fit/predict split it is a thin wrapper:
/// every fitted artifact implements [`FittedModel`](crate::FittedModel),
/// and the blanket impl below forwards `name`/`predict` to it, so both
/// spellings stay available and bit-identical.
pub trait MobilityModel {
    /// Short display name ("Gravity 4Param", …) used in report tables.
    fn name(&self) -> &'static str;

    /// Predicted flow for the observation's `(m, n, d, s)`; the
    /// observation's `observed_flow` is ignored.
    fn predict(&self, obs: &FlowObservation) -> f64;
}

impl<T: crate::FittedModel> MobilityModel for T {
    fn name(&self) -> &'static str {
        self.model_name()
    }

    fn predict(&self, obs: &FlowObservation) -> f64 {
        self.predict_flow(obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(m: f64, n: f64, d: f64, s: f64, t: f64) -> FlowObservation {
        FlowObservation {
            origin_population: m,
            dest_population: n,
            distance_km: d,
            intervening_population: s,
            observed_flow: t,
        }
    }

    #[test]
    fn fittable_requires_all_positive() {
        assert!(obs(1.0, 1.0, 1.0, 0.0, 1.0).fittable());
        assert!(!obs(0.0, 1.0, 1.0, 0.0, 1.0).fittable());
        assert!(!obs(1.0, 0.0, 1.0, 0.0, 1.0).fittable());
        assert!(!obs(1.0, 1.0, 0.0, 0.0, 1.0).fittable());
        assert!(!obs(1.0, 1.0, 1.0, 0.0, 0.0).fittable());
        assert!(!obs(1.0, 1.0, 1.0, -1.0, 1.0).fittable());
        assert!(!obs(f64::NAN, 1.0, 1.0, 0.0, 1.0).fittable());
        assert!(!obs(1.0, 1.0, f64::INFINITY, 0.0, 1.0).fittable());
    }

    #[test]
    fn error_display() {
        let e = ModelError::TooFewObservations { needed: 4, got: 1 };
        assert!(e.to_string().contains("4"));
        let e = ModelError::DegenerateFit("collinear");
        assert!(e.to_string().contains("collinear"));
    }

    #[test]
    fn serde_roundtrip() {
        let o = obs(10.0, 20.0, 5.0, 3.0, 7.0);
        let json = serde_json::to_string(&o).unwrap();
        let back: FlowObservation = serde_json::from_str(&json).unwrap();
        assert_eq!(o, back);
    }
}
