//! Deterrence-function ablations for the gravity model.
//!
//! The paper's Eq. 1–2 assume a *power-law* distance deterrence `d^−γ`.
//! The transport literature also uses an *exponential* deterrence
//! `exp(−d/κ)` (short-range, cost-dominated travel) and the *Tanner*
//! function `d^−γ·exp(−d/κ)` combining both. Fitting all three on the
//! same flows answers a question the paper leaves open ("evaluate model
//! performances … at more varieties of distances scales"): which decay
//! family does tweet-extracted mobility actually follow, and at which
//! scale does the crossover sit? All fits remain linear least squares in
//! log space — the exponential term contributes `−d·log₁₀e/κ`, linear in
//! raw distance.

use crate::fitted::FittedModel;
use crate::traits::{FlowObservation, ModelError};
use serde::{Deserialize, Serialize};
use tweetmob_stats::regression::Ols;
use tweetmob_stats::StatsError;

const LOG10_E: f64 = std::f64::consts::LOG10_E;

fn map_stats_err(e: StatsError) -> ModelError {
    match e {
        StatsError::TooFewSamples { needed, got } => ModelError::TooFewObservations { needed, got },
        _ => ModelError::DegenerateFit("singular log-space regression"),
    }
}

/// Gravity with pure exponential deterrence: `P = C·m·n·exp(−d/κ)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GravityExpFit {
    /// Scaling constant `C`.
    pub c: f64,
    /// Deterrence length scale κ, km.
    pub kappa_km: f64,
    /// R² of the log-space regression.
    pub log_r_squared: f64,
    /// Observations used.
    pub n_used: usize,
}

impl GravityExpFit {
    /// Fits `log P − log(mn) = log C − (log₁₀e/κ)·d`.
    ///
    /// # Errors
    ///
    /// As the other gravity fits; additionally
    /// [`ModelError::DegenerateFit`] when the fitted slope is
    /// non-negative (flows *growing* with distance — no deterrence
    /// length exists).
    pub fn fit(observations: &[FlowObservation]) -> Result<Self, ModelError> {
        let mut ols = Ols::new(1);
        for o in observations.iter().filter(|o| o.fittable()) {
            let lhs =
                o.observed_flow.log10() - o.origin_population.log10() - o.dest_population.log10();
            ols.add(&[o.distance_km], lhs).map_err(map_stats_err)?;
        }
        let n_used = ols.n();
        let fit = ols.solve().map_err(map_stats_err)?;
        let slope = fit.coef(0);
        if slope >= 0.0 {
            return Err(ModelError::DegenerateFit(
                "non-negative distance slope: no exponential deterrence",
            ));
        }
        Ok(Self {
            c: 10f64.powf(fit.intercept()),
            kappa_km: -LOG10_E / slope,
            log_r_squared: fit.r_squared,
            n_used,
        })
    }
}

impl FittedModel for GravityExpFit {
    fn model_name(&self) -> &'static str {
        "Gravity Exp"
    }

    fn predict_flow(&self, obs: &FlowObservation) -> f64 {
        self.c
            * obs.origin_population
            * obs.dest_population
            * (-obs.distance_km / self.kappa_km).exp()
    }
}

/// Gravity with the Tanner deterrence: `P = C·m·n·d^−γ·exp(−d/κ)`.
///
/// The sign of `1/κ` is unconstrained: a fitted negative `inv_kappa`
/// means the power law alone over-suppresses long-range flows and the
/// exponential term corrects upward. `γ` likewise may come out of the
/// regression with either sign on degenerate data; both are reported as
/// fitted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TannerFit {
    /// Scaling constant `C`.
    pub c: f64,
    /// Power-law exponent γ.
    pub gamma: f64,
    /// Inverse deterrence length 1/κ (per km; may be negative, see type
    /// docs).
    pub inv_kappa: f64,
    /// R² of the log-space regression.
    pub log_r_squared: f64,
    /// Observations used.
    pub n_used: usize,
}

impl TannerFit {
    /// Fits `log P − log(mn) = log C − γ·log d − (log₁₀e·(1/κ))·d`.
    ///
    /// # Errors
    ///
    /// As the other gravity fits (degenerate when `d` and `log d` are
    /// collinear over the sample, e.g. all distances equal).
    pub fn fit(observations: &[FlowObservation]) -> Result<Self, ModelError> {
        let mut ols = Ols::new(2);
        for o in observations.iter().filter(|o| o.fittable()) {
            let lhs =
                o.observed_flow.log10() - o.origin_population.log10() - o.dest_population.log10();
            ols.add(&[o.distance_km.log10(), o.distance_km], lhs)
                .map_err(map_stats_err)?;
        }
        let n_used = ols.n();
        let fit = ols.solve().map_err(map_stats_err)?;
        Ok(Self {
            c: 10f64.powf(fit.intercept()),
            gamma: -fit.coef(0),
            inv_kappa: -fit.coef(1) / LOG10_E,
            log_r_squared: fit.r_squared,
            n_used,
        })
    }
}

impl FittedModel for TannerFit {
    fn model_name(&self) -> &'static str {
        "Gravity Tanner"
    }

    fn predict_flow(&self, obs: &FlowObservation) -> f64 {
        self.c
            * obs.origin_population
            * obs.dest_population
            * obs.distance_km.powf(-self.gamma)
            * (-obs.distance_km * self.inv_kappa).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MobilityModel;

    fn obs(m: f64, n: f64, d: f64, t: f64) -> FlowObservation {
        FlowObservation {
            origin_population: m,
            dest_population: n,
            distance_km: d,
            intervening_population: 0.0,
            observed_flow: t,
        }
    }

    fn prand(k: &mut u64, lo: f64, hi: f64) -> f64 {
        *k = k
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lo + (*k >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    }

    #[test]
    fn exponential_fit_recovers_kappa() {
        let mut k = 1u64;
        let data: Vec<FlowObservation> = (0..200)
            .map(|_| {
                let m = prand(&mut k, 1e3, 1e6);
                let n = prand(&mut k, 1e3, 1e6);
                let d = prand(&mut k, 5.0, 800.0);
                obs(m, n, d, 0.001 * m * n * (-d / 150.0).exp())
            })
            .collect();
        let fit = GravityExpFit::fit(&data).unwrap();
        assert!(
            (fit.kappa_km - 150.0).abs() < 1e-6,
            "kappa {}",
            fit.kappa_km
        );
        assert!((fit.c - 0.001).abs() / 0.001 < 1e-9);
        for o in &data {
            assert!((fit.predict(o) - o.observed_flow).abs() / o.observed_flow < 1e-9);
        }
    }

    #[test]
    fn exponential_fit_rejects_increasing_flows() {
        let data: Vec<FlowObservation> = (1..30)
            .map(|i| obs(1e4, 1e4, 10.0 * i as f64, (i * i) as f64))
            .collect();
        assert!(matches!(
            GravityExpFit::fit(&data),
            Err(ModelError::DegenerateFit(_))
        ));
    }

    #[test]
    fn tanner_fit_recovers_both_parameters() {
        let mut k = 3u64;
        let data: Vec<FlowObservation> = (0..400)
            .map(|_| {
                let m = prand(&mut k, 1e3, 1e6);
                let n = prand(&mut k, 1e3, 1e6);
                let d = prand(&mut k, 5.0, 2_000.0);
                obs(m, n, d, 0.5 * m * n * d.powf(-1.2) * (-d / 900.0).exp())
            })
            .collect();
        let fit = TannerFit::fit(&data).unwrap();
        assert!((fit.gamma - 1.2).abs() < 1e-6, "gamma {}", fit.gamma);
        assert!(
            (fit.inv_kappa - 1.0 / 900.0).abs() < 1e-9,
            "1/kappa {}",
            fit.inv_kappa
        );
        assert!((fit.log_r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tanner_degrades_gracefully_to_pure_power_law() {
        // Data with no exponential component: inv_kappa must come out ≈ 0.
        let mut k = 5u64;
        let data: Vec<FlowObservation> = (0..300)
            .map(|_| {
                let m = prand(&mut k, 1e3, 1e6);
                let n = prand(&mut k, 1e3, 1e6);
                let d = prand(&mut k, 5.0, 2_000.0);
                obs(m, n, d, 0.01 * m * n / (d * d))
            })
            .collect();
        let fit = TannerFit::fit(&data).unwrap();
        assert!((fit.gamma - 2.0).abs() < 1e-6, "gamma {}", fit.gamma);
        assert!(fit.inv_kappa.abs() < 1e-9, "1/kappa {}", fit.inv_kappa);
    }

    #[test]
    fn tanner_collinear_distances_degenerate() {
        let data: Vec<FlowObservation> = (1..30)
            .map(|i| obs(1e3 * i as f64, 1e4, 100.0, i as f64))
            .collect();
        assert!(matches!(
            TannerFit::fit(&data),
            Err(ModelError::DegenerateFit(_))
        ));
    }

    #[test]
    fn model_names() {
        let g = GravityExpFit {
            c: 1.0,
            kappa_km: 100.0,
            log_r_squared: 1.0,
            n_used: 0,
        };
        assert_eq!(g.name(), "Gravity Exp");
        let t = TannerFit {
            c: 1.0,
            gamma: 2.0,
            inv_kappa: 0.001,
            log_r_squared: 1.0,
            n_used: 0,
        };
        assert_eq!(t.name(), "Gravity Tanner");
    }
}
