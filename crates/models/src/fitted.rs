//! The fit → artifact → predict split: immutable fitted artifacts.
//!
//! Fitting and prediction used to be one lifecycle — a model was fitted
//! and consumed inside a single `mobility` invocation. The serving and
//! streaming work both need the other shape: fit once, persist the
//! result, and let any number of later processes (or threads) predict
//! from the same immutable artifact. This module is the model-layer
//! half of that split:
//!
//! * [`FittedModel`] — the prediction-only trait every fitted-artifact
//!   struct implements. It is object-safe, carries no training state,
//!   and is what a server holds behind an `Arc`.
//! * [`ModelKind`] — the closed set of the four paper models an
//!   artifact container stores and a query addresses by name.
//! * [`FittedModelSet`] — all four fitted artifacts together: the unit
//!   the `tweetmob fit` command produces and `ModelBundle` serialises.
//!
//! The pre-existing [`MobilityModel`](crate::MobilityModel) trait is now
//! a thin blanket wrapper over [`FittedModel`] (see `traits.rs`), so the
//! evaluation harness, the examples and every existing test keep
//! working unchanged.

use crate::gravity::{Gravity2Fit, Gravity4Fit};
use crate::opportunities::OpportunitiesFit;
use crate::radiation::RadiationFit;
use crate::traits::{FlowObservation, ModelError};
use serde::{Deserialize, Serialize};

/// A fitted, immutable mobility-model artifact: everything needed to
/// predict a flow, nothing needed to fit one.
///
/// Implementors are plain parameter structs (`Copy`, `Serialize`,
/// `Deserialize`) — loading one from an artifact file and predicting
/// with it is bit-identical to predicting with the freshly fitted
/// value, because prediction touches only the stored parameters.
pub trait FittedModel {
    /// Short display name ("Gravity 4Param", …) used in report tables
    /// and artifact queries.
    fn model_name(&self) -> &'static str;

    /// Predicted flow for the observation's `(m, n, d, s)`; the
    /// observation's `observed_flow` is ignored.
    fn predict_flow(&self, obs: &FlowObservation) -> f64;

    /// Predicted flows for a batch of observations, in order.
    fn predict_batch(&self, observations: &[FlowObservation]) -> Vec<f64> {
        observations.iter().map(|o| self.predict_flow(o)).collect()
    }
}

/// The four models of the paper's comparison, as a closed enum — the
/// dispatch key for artifact queries (`tweetmob predict --model …`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// 4-parameter gravity (Eq. 1).
    Gravity4,
    /// 2-parameter gravity (Eq. 2).
    Gravity2,
    /// Radiation (Eq. 3).
    Radiation,
    /// Intervening opportunities (extension).
    Opportunities,
}

impl ModelKind {
    /// All four kinds, in the paper's comparison order.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::Gravity4,
        ModelKind::Gravity2,
        ModelKind::Radiation,
        ModelKind::Opportunities,
    ];

    /// The CLI/flag spelling of the kind.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            ModelKind::Gravity4 => "gravity4",
            ModelKind::Gravity2 => "gravity2",
            ModelKind::Radiation => "radiation",
            ModelKind::Opportunities => "opportunities",
        }
    }

    /// Parses the CLI spelling ([`ModelKind::key`]); `None` on anything
    /// else.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.key() == s)
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// The four fitted artifacts of one mobility experiment, together.
///
/// This is the payload the artifact container persists: fitting
/// happens once (through [`FittedModelSet::fit`] or the experiment
/// runner), and the resulting set is immutable and cheap to copy or
/// share. Field order is the paper's comparison order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedModelSet {
    /// Fitted 4-parameter gravity model (Eq. 1).
    pub gravity4: Gravity4Fit,
    /// Fitted 2-parameter gravity model (Eq. 2).
    pub gravity2: Gravity2Fit,
    /// Fitted radiation model (Eq. 3).
    pub radiation: RadiationFit,
    /// Fitted intervening-opportunities model (extension).
    pub opportunities: OpportunitiesFit,
}

impl FittedModelSet {
    /// Fits all four models on one observation set — the single fitting
    /// routine behind `tweetmob fit`, `tweetmob mobility` and the
    /// artifact container.
    ///
    /// # Errors
    ///
    /// The first fit failure, as the individual fitters report it
    /// ([`ModelError::TooFewObservations`] /
    /// [`ModelError::DegenerateFit`]).
    pub fn fit(observations: &[FlowObservation]) -> Result<Self, ModelError> {
        Ok(Self {
            gravity4: Gravity4Fit::fit(observations)?,
            gravity2: Gravity2Fit::fit(observations)?,
            radiation: RadiationFit::fit_columnar(observations)?,
            opportunities: OpportunitiesFit::fit_columnar(observations)?,
        })
    }

    /// The fitted artifact of one kind, as a trait object.
    #[must_use]
    pub fn model(&self, kind: ModelKind) -> &dyn FittedModel {
        match kind {
            ModelKind::Gravity4 => &self.gravity4,
            ModelKind::Gravity2 => &self.gravity2,
            ModelKind::Radiation => &self.radiation,
            ModelKind::Opportunities => &self.opportunities,
        }
    }

    /// Predicted flow of one kind for one observation.
    #[must_use]
    pub fn predict(&self, kind: ModelKind, obs: &FlowObservation) -> f64 {
        self.model(kind).predict_flow(obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MobilityModel;

    fn obs(m: f64, n: f64, d: f64, s: f64, t: f64) -> FlowObservation {
        FlowObservation {
            origin_population: m,
            dest_population: n,
            distance_km: d,
            intervening_population: s,
            observed_flow: t,
        }
    }

    fn synthetic() -> Vec<FlowObservation> {
        let mut k = 17u64;
        let mut next = |lo: f64, hi: f64| {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            lo + (k >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
        };
        (0..80)
            .map(|_| {
                let m = next(1e3, 1e6);
                let n = next(1e3, 1e6);
                let d = next(5.0, 3_000.0);
                let s = next(0.0, 1e6);
                obs(m, n, d, s, 0.01 * m * n / (d * d))
            })
            .collect()
    }

    #[test]
    fn kind_key_round_trips() {
        for kind in ModelKind::ALL {
            assert_eq!(ModelKind::parse(kind.key()), Some(kind));
            assert_eq!(kind.to_string(), kind.key());
        }
        assert_eq!(ModelKind::parse("bogus"), None);
    }

    #[test]
    fn fit_all_matches_individual_fits() {
        let data = synthetic();
        let set = FittedModelSet::fit(&data).unwrap();
        assert_eq!(set.gravity4, Gravity4Fit::fit(&data).unwrap());
        assert_eq!(set.gravity2, Gravity2Fit::fit(&data).unwrap());
        assert_eq!(set.radiation, RadiationFit::fit(&data).unwrap());
        assert_eq!(set.opportunities, OpportunitiesFit::fit(&data).unwrap());
    }

    #[test]
    fn dispatch_matches_direct_prediction_bit_for_bit() {
        let data = synthetic();
        let set = FittedModelSet::fit(&data).unwrap();
        for o in &data {
            assert_eq!(
                set.predict(ModelKind::Gravity4, o).to_bits(),
                set.gravity4.predict(o).to_bits()
            );
            assert_eq!(
                set.predict(ModelKind::Gravity2, o).to_bits(),
                set.gravity2.predict(o).to_bits()
            );
            assert_eq!(
                set.predict(ModelKind::Radiation, o).to_bits(),
                set.radiation.predict(o).to_bits()
            );
            assert_eq!(
                set.predict(ModelKind::Opportunities, o).to_bits(),
                set.opportunities.predict(o).to_bits()
            );
        }
    }

    #[test]
    fn batch_prediction_matches_scalar() {
        let data = synthetic();
        let set = FittedModelSet::fit(&data).unwrap();
        for kind in ModelKind::ALL {
            let batch = set.model(kind).predict_batch(&data);
            assert_eq!(batch.len(), data.len());
            for (o, b) in data.iter().zip(&batch) {
                assert_eq!(set.predict(kind, o).to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn model_names_stay_stable() {
        let data = synthetic();
        let set = FittedModelSet::fit(&data).unwrap();
        assert_eq!(
            set.model(ModelKind::Gravity4).model_name(),
            "Gravity 4Param"
        );
        assert_eq!(
            set.model(ModelKind::Gravity2).model_name(),
            "Gravity 2Param"
        );
        assert_eq!(set.model(ModelKind::Radiation).model_name(), "Radiation");
        assert_eq!(
            set.model(ModelKind::Opportunities).model_name(),
            "Opportunities"
        );
    }

    #[test]
    fn fit_failure_propagates() {
        assert!(FittedModelSet::fit(&[]).is_err());
    }

    #[test]
    fn serde_round_trip_is_exact() {
        let data = synthetic();
        let set = FittedModelSet::fit(&data).unwrap();
        let json = serde_json::to_string(&set).unwrap();
        let back: FittedModelSet = serde_json::from_str(&json).unwrap();
        assert_eq!(set, back);
    }
}
