//! Outbreak scenarios and timelines: the user-facing simulation API.

use crate::deterministic::{rk4_step, Rates as DetRates, State};
use crate::network::MobilityNetwork;
use crate::stochastic::{step as stochastic_step, DiscreteState, Rates as StochRates};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::fmt;

/// SEIR extension parameters.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SeirParams {
    /// Incubation rate σ (per day); mean incubation period is `1/σ`.
    pub sigma: f64,
}

/// Errors configuring or running a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A rate parameter was non-positive or non-finite.
    BadRate(&'static str, f64),
    /// Bad time-stepping parameters.
    BadTimestep(&'static str),
    /// Seed patch out of range.
    BadSeedPatch(usize),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::BadRate(name, v) => write!(f, "rate {name} = {v} must be > 0"),
            ScenarioError::BadTimestep(what) => write!(f, "bad timestep: {what}"),
            ScenarioError::BadSeedPatch(p) => write!(f, "seed patch {p} out of range"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A travel restriction: from `start_day` onward every migration rate
/// is multiplied by `rate_factor` (0 = full border closure).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TravelRestriction {
    /// Day the restriction takes effect.
    pub start_day: f64,
    /// Multiplier applied to all migration rates, in `[0, 1]`.
    pub rate_factor: f64,
}

/// An outbreak configuration over a mobility network.
#[derive(Debug, Clone)]
pub struct OutbreakScenario {
    network: MobilityNetwork,
    beta: f64,
    gamma: f64,
    seir: Option<SeirParams>,
    seeds: Vec<(usize, f64)>,
    restriction: Option<TravelRestriction>,
    initial_immunity: f64,
}

impl OutbreakScenario {
    /// An SIR scenario with transmission rate `beta` and recovery rate
    /// `gamma` (per day). `R0 = beta / gamma` in a single well-mixed
    /// patch.
    pub fn new(network: MobilityNetwork, beta: f64, gamma: f64) -> Self {
        Self {
            network,
            beta,
            gamma,
            seir: None,
            seeds: Vec::new(),
            restriction: None,
            initial_immunity: 0.0,
        }
    }

    /// Switches to SEIR dynamics with the given incubation rate.
    pub fn with_seir(mut self, params: SeirParams) -> Self {
        self.seir = Some(params);
        self
    }

    /// Adds `count` initial infections in `patch` (builder style;
    /// repeated calls accumulate).
    pub fn seed(mut self, patch: usize, count: f64) -> Self {
        self.seeds.push((patch, count));
        self
    }

    /// Starts every patch with `fraction` of its population already
    /// immune (vaccination / prior exposure). The classic threshold
    /// result: an outbreak with basic number R₀ dies out when the
    /// immune fraction exceeds `1 − 1/R₀`.
    pub fn with_initial_immunity(mut self, fraction: f64) -> Self {
        self.initial_immunity = fraction;
        self
    }

    /// Imposes a travel restriction: from `start_day` every migration
    /// rate is multiplied by `rate_factor` — the classic containment
    /// intervention a responsive Twitter-derived model would inform.
    pub fn with_travel_restriction(mut self, start_day: f64, rate_factor: f64) -> Self {
        self.restriction = Some(TravelRestriction {
            start_day,
            rate_factor,
        });
        self
    }

    /// The underlying network.
    pub fn network(&self) -> &MobilityNetwork {
        &self.network
    }

    fn validate(&self, days: f64, dt: f64) -> Result<(), ScenarioError> {
        if !(self.beta > 0.0) || !self.beta.is_finite() {
            return Err(ScenarioError::BadRate("beta", self.beta));
        }
        if !(self.gamma > 0.0) || !self.gamma.is_finite() {
            return Err(ScenarioError::BadRate("gamma", self.gamma));
        }
        if let Some(s) = self.seir {
            if !(s.sigma > 0.0) || !s.sigma.is_finite() {
                return Err(ScenarioError::BadRate("sigma", s.sigma));
            }
        }
        if !(dt > 0.0) || !dt.is_finite() {
            return Err(ScenarioError::BadTimestep("dt must be > 0"));
        }
        if !(days > 0.0) || days < dt {
            return Err(ScenarioError::BadTimestep(
                "days must cover at least one step",
            ));
        }
        for &(p, _) in &self.seeds {
            if p >= self.network.n_patches() {
                return Err(ScenarioError::BadSeedPatch(p));
            }
        }
        if !(0.0..1.0).contains(&self.initial_immunity) {
            return Err(ScenarioError::BadRate(
                "initial_immunity",
                self.initial_immunity,
            ));
        }
        if let Some(r) = self.restriction {
            if !(0.0..=1.0).contains(&r.rate_factor) || !r.rate_factor.is_finite() {
                return Err(ScenarioError::BadRate("rate_factor", r.rate_factor));
            }
            if !r.start_day.is_finite() || r.start_day < 0.0 {
                return Err(ScenarioError::BadTimestep(
                    "restriction start_day must be ≥ 0",
                ));
            }
        }
        Ok(())
    }

    /// Runs the deterministic RK4 engine, recording one snapshot per
    /// step.
    ///
    /// # Errors
    ///
    /// [`ScenarioError`] for invalid rates, timestep or seed patches.
    pub fn run_deterministic(&self, days: f64, dt: f64) -> Result<EpidemicTimeline, ScenarioError> {
        let _span = tweetmob_obs::span!("epidemic/run_deterministic");
        self.validate(days, dt)?;
        let rates = DetRates {
            beta: self.beta,
            gamma: self.gamma,
            sigma: self.seir.map(|s| s.sigma),
        };
        let mut state = State::susceptible(&self.network, self.seir.is_some());
        if self.initial_immunity > 0.0 {
            for p in 0..self.network.n_patches() {
                let immune = state.s[p] * self.initial_immunity;
                state.s[p] -= immune;
                state.r[p] += immune;
            }
        }
        for &(p, c) in &self.seeds {
            state.seed_infection(p, c);
        }
        let steps = (days / dt).round() as usize;
        let restricted = self
            .restriction
            .map(|r| (r.start_day, self.network.scaled(r.rate_factor)));
        let mut timeline = EpidemicTimeline::new(self.network.n_patches());
        timeline.push(0.0, &state);
        for k in 1..=steps {
            let t = k as f64 * dt;
            let net = match &restricted {
                Some((start, scaled)) if t > *start => scaled,
                _ => &self.network,
            };
            state = rk4_step(net, &rates, &state, dt);
            timeline.push(t, &state);
        }
        Ok(timeline)
    }

    /// Runs the stochastic binomial-chain engine with the given RNG
    /// seed.
    ///
    /// # Errors
    ///
    /// As [`OutbreakScenario::run_deterministic`].
    pub fn run_stochastic(
        &self,
        days: f64,
        dt: f64,
        rng_seed: u64,
    ) -> Result<EpidemicTimeline, ScenarioError> {
        let _span = tweetmob_obs::span!("epidemic/run_stochastic");
        self.validate(days, dt)?;
        let rates = StochRates {
            beta: self.beta,
            gamma: self.gamma,
            sigma: self.seir.map(|s| s.sigma),
        };
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let mut state = DiscreteState::susceptible(&self.network, self.seir.is_some());
        if self.initial_immunity > 0.0 {
            for p in 0..self.network.n_patches() {
                let immune = (state.s[p] as f64 * self.initial_immunity).round() as u64;
                let immune = immune.min(state.s[p]);
                state.s[p] -= immune;
                state.r[p] += immune;
            }
        }
        for &(p, c) in &self.seeds {
            state.seed_infection(p, c.round() as u64);
        }
        let steps = (days / dt).round() as usize;
        let restricted = self
            .restriction
            .map(|r| (r.start_day, self.network.scaled(r.rate_factor)));
        let mut timeline = EpidemicTimeline::new(self.network.n_patches());
        timeline.push(0.0, &state.to_state());
        for k in 1..=steps {
            let t = k as f64 * dt;
            let net = match &restricted {
                Some((start, scaled)) if t > *start => scaled,
                _ => &self.network,
            };
            stochastic_step(net, &rates, &mut state, dt, &mut rng);
            timeline.push(t, &state.to_state());
        }
        Ok(timeline)
    }

    /// Runs `n_replicates` stochastic simulations on the shared
    /// [`tweetmob_par`] pool, one independent RNG stream per replicate.
    ///
    /// Replicate `k`'s seed is derived from `(base_seed, k)` alone (a
    /// SplitMix64 mix, matching the synth generator's per-user seeding),
    /// so the returned timelines — in replicate order — are identical at
    /// every thread count.
    ///
    /// # Errors
    ///
    /// As [`OutbreakScenario::run_deterministic`]; validation runs once
    /// up front so the workers cannot fail.
    pub fn run_stochastic_replicates(
        &self,
        days: f64,
        dt: f64,
        base_seed: u64,
        n_replicates: usize,
    ) -> Result<Vec<EpidemicTimeline>, ScenarioError> {
        let _span = tweetmob_obs::span!("epidemic/run_stochastic_replicates");
        self.validate(days, dt)?;
        let timelines = tweetmob_par::par_map_reduce(
            "epidemic/replicates",
            n_replicates,
            2,
            |range| {
                let mut out = Vec::with_capacity(range.len());
                for k in range {
                    let seed = replicate_seed(base_seed, k as u64);
                    out.push(
                        self.run_stochastic(days, dt, seed)
                            // lint: allow(no-panic) — validate() succeeded above and
                            // run_stochastic re-validates the same immutable inputs, so
                            // per-replicate failure is unreachable
                            .expect("validated scenario cannot fail"),
                    );
                }
                out
            },
            |mut acc: Vec<EpidemicTimeline>, chunk| {
                acc.extend(chunk);
                acc
            },
        );
        Ok(timelines)
    }
}

/// Derives replicate `k`'s RNG seed from the base seed alone, mirroring
/// the synth generator's per-user scheme: mix through SplitMix64 so
/// consecutive replicate indices land in unrelated parts of the stream.
fn replicate_seed(base_seed: u64, k: u64) -> u64 {
    tweetmob_stats::rng::SplitMix64::new(base_seed ^ ((k << 1) | 1)).next_u64()
}

/// Recorded infection curves per patch.
#[derive(Debug, Clone, Serialize)]
pub struct EpidemicTimeline {
    /// Snapshot times, days.
    pub times: Vec<f64>,
    /// `infected[p][k]` = infectious count in patch `p` at `times[k]`.
    pub infected: Vec<Vec<f64>>,
    /// `recovered[p][k]` = cumulative recovered in patch `p`.
    pub recovered: Vec<Vec<f64>>,
}

impl EpidemicTimeline {
    fn new(n_patches: usize) -> Self {
        Self {
            times: Vec::new(),
            infected: vec![Vec::new(); n_patches],
            recovered: vec![Vec::new(); n_patches],
        }
    }

    fn push(&mut self, t: f64, state: &State) {
        self.times.push(t);
        for (p, v) in state.i.iter().enumerate() {
            self.infected[p].push(*v);
        }
        for (p, v) in state.r.iter().enumerate() {
            self.recovered[p].push(*v);
        }
    }

    /// Number of patches.
    pub fn n_patches(&self) -> usize {
        self.infected.len()
    }

    /// Maximum simultaneous infections in `patch`.
    ///
    /// # Panics
    ///
    /// If `patch` is out of range.
    pub fn peak_infected(&self, patch: usize) -> f64 {
        self.infected[patch].iter().copied().fold(0.0, f64::max)
    }

    /// Day the infection count in `patch` first reaches `threshold`, or
    /// `None` if it never does — the arrival-time observable used to rank
    /// how quickly an outbreak reaches each city.
    ///
    /// # Panics
    ///
    /// If `patch` is out of range.
    pub fn arrival_time(&self, patch: usize, threshold: f64) -> Option<f64> {
        self.infected[patch]
            .iter()
            .position(|&v| v >= threshold)
            .map(|k| self.times[k])
    }

    /// Final cumulative recovered (attack size) in `patch`.
    ///
    /// # Panics
    ///
    /// If `patch` is out of range.
    pub fn final_size(&self, patch: usize) -> f64 {
        *self.recovered[patch].last().unwrap_or(&0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_network() -> MobilityNetwork {
        // Three patches in a line: 0 ↔ 1 ↔ 2.
        MobilityNetwork::from_flows(
            vec![100_000.0, 50_000.0, 80_000.0],
            &[(0, 1, 10.0), (1, 0, 10.0), (1, 2, 10.0), (2, 1, 10.0)],
            0.04,
        )
        .unwrap()
    }

    #[test]
    fn arrival_order_follows_network_topology() {
        let scenario = OutbreakScenario::new(chain_network(), 0.5, 0.2).seed(0, 50.0);
        let tl = scenario.run_deterministic(200.0, 0.2).unwrap();
        let t0 = tl.arrival_time(0, 100.0).unwrap();
        let t1 = tl.arrival_time(1, 100.0).unwrap();
        let t2 = tl.arrival_time(2, 100.0).unwrap();
        assert!(t0 < t1, "t0 {t0} t1 {t1}");
        assert!(t1 < t2, "t1 {t1} t2 {t2}");
    }

    #[test]
    fn seir_scenario_runs_and_spreads() {
        let scenario = OutbreakScenario::new(chain_network(), 0.5, 0.2)
            .with_seir(SeirParams { sigma: 0.25 })
            .seed(0, 100.0);
        let tl = scenario.run_deterministic(300.0, 0.2).unwrap();
        assert!(
            tl.final_size(2) > 10_000.0,
            "final size {}",
            tl.final_size(2)
        );
    }

    #[test]
    fn stochastic_mean_tracks_deterministic() {
        let scenario = OutbreakScenario::new(chain_network(), 0.5, 0.2).seed(0, 200.0);
        let det = scenario.run_deterministic(150.0, 0.25).unwrap();
        let mut stoch_final = 0.0;
        let runs = 5;
        for seed in 0..runs {
            let tl = scenario.run_stochastic(150.0, 0.25, seed).unwrap();
            stoch_final += tl.final_size(0);
        }
        stoch_final /= runs as f64;
        let det_final = det.final_size(0);
        assert!(
            (stoch_final - det_final).abs() / det_final < 0.1,
            "stochastic {stoch_final} vs deterministic {det_final}"
        );
    }

    #[test]
    fn timeline_observables_consistent() {
        let scenario = OutbreakScenario::new(chain_network(), 0.6, 0.2).seed(0, 10.0);
        let tl = scenario.run_deterministic(100.0, 0.5).unwrap();
        assert_eq!(tl.n_patches(), 3);
        assert_eq!(tl.times.len(), tl.infected[0].len());
        assert!(tl.peak_infected(0) > 10.0);
        assert!(tl.arrival_time(0, 1e12).is_none());
        // Total recovered across patches is monotone (per patch it is
        // not: migration moves recovered individuals between patches).
        let total_recovered: Vec<f64> = (0..tl.times.len())
            .map(|k| (0..tl.n_patches()).map(|p| tl.recovered[p][k]).sum())
            .collect();
        for w in total_recovered.windows(2) {
            assert!(w[1] >= w[0] - 1e-9);
        }
    }

    #[test]
    fn validation_errors() {
        let net = chain_network();
        assert!(matches!(
            OutbreakScenario::new(net.clone(), 0.0, 0.2).run_deterministic(10.0, 0.1),
            Err(ScenarioError::BadRate("beta", _))
        ));
        assert!(matches!(
            OutbreakScenario::new(net.clone(), 0.5, -1.0).run_deterministic(10.0, 0.1),
            Err(ScenarioError::BadRate("gamma", _))
        ));
        assert!(matches!(
            OutbreakScenario::new(net.clone(), 0.5, 0.2)
                .with_seir(SeirParams { sigma: 0.0 })
                .run_deterministic(10.0, 0.1),
            Err(ScenarioError::BadRate("sigma", _))
        ));
        assert!(matches!(
            OutbreakScenario::new(net.clone(), 0.5, 0.2).run_deterministic(10.0, 0.0),
            Err(ScenarioError::BadTimestep(_))
        ));
        assert!(matches!(
            OutbreakScenario::new(net, 0.5, 0.2)
                .seed(99, 1.0)
                .run_deterministic(10.0, 0.1),
            Err(ScenarioError::BadSeedPatch(99))
        ));
    }

    #[test]
    fn travel_restriction_delays_spread() {
        let base = OutbreakScenario::new(chain_network(), 0.5, 0.2).seed(0, 50.0);
        let unrestricted = base.clone().run_deterministic(250.0, 0.25).unwrap();
        // Closing 99 % of travel on day 5 delays arrival in patch 2.
        let restricted = base
            .clone()
            .with_travel_restriction(5.0, 0.01)
            .run_deterministic(250.0, 0.25)
            .unwrap();
        let t_free = unrestricted.arrival_time(2, 100.0).unwrap();
        let t_shut = restricted.arrival_time(2, 100.0).unwrap();
        assert!(
            t_shut > t_free + 5.0,
            "restriction should delay: free {t_free}, restricted {t_shut}"
        );
        // Full closure before any export keeps patch 2 clean.
        let sealed = base
            .clone()
            .with_travel_restriction(0.0, 0.0)
            .run_deterministic(250.0, 0.25)
            .unwrap();
        assert!(
            sealed.final_size(2) < 1.0,
            "sealed {}",
            sealed.final_size(2)
        );
    }

    #[test]
    fn restriction_validation() {
        let base = OutbreakScenario::new(chain_network(), 0.5, 0.2).seed(0, 10.0);
        assert!(matches!(
            base.clone()
                .with_travel_restriction(5.0, 1.5)
                .run_deterministic(10.0, 0.25),
            Err(ScenarioError::BadRate("rate_factor", _))
        ));
        assert!(matches!(
            base.clone()
                .with_travel_restriction(-1.0, 0.5)
                .run_deterministic(10.0, 0.25),
            Err(ScenarioError::BadTimestep(_))
        ));
    }

    #[test]
    fn herd_immunity_threshold_respected() {
        // R0 = 2.5 → threshold 1 − 1/2.5 = 0.6.
        let base = OutbreakScenario::new(chain_network(), 0.5, 0.2).seed(0, 100.0);
        let below = base
            .clone()
            .with_initial_immunity(0.3)
            .run_deterministic(400.0, 0.25)
            .unwrap();
        let above = base
            .clone()
            .with_initial_immunity(0.75)
            .run_deterministic(400.0, 0.25)
            .unwrap();
        // Attack size beyond the pre-immune pool: below threshold it is
        // substantial, above it is negligible.
        let pop0 = 100_000.0;
        let below_attack = below.final_size(0) - 0.3 * pop0;
        let above_attack = above.final_size(0) - 0.75 * pop0;
        assert!(
            below_attack > 10_000.0,
            "below-threshold attack {below_attack}"
        );
        assert!(
            above_attack < 2_000.0,
            "above-threshold attack {above_attack}"
        );
        // Stochastic engine honours it too.
        let stoch = base
            .clone()
            .with_initial_immunity(0.75)
            .run_stochastic(200.0, 0.25, 1)
            .unwrap();
        assert!(stoch.final_size(0) < 0.76 * pop0 + 2_000.0);
    }

    #[test]
    fn immunity_fraction_validated() {
        let base = OutbreakScenario::new(chain_network(), 0.5, 0.2).seed(0, 10.0);
        assert!(matches!(
            base.clone()
                .with_initial_immunity(1.0)
                .run_deterministic(10.0, 0.25),
            Err(ScenarioError::BadRate("initial_immunity", _))
        ));
        assert!(base
            .clone()
            .with_initial_immunity(0.0)
            .run_deterministic(10.0, 0.25)
            .is_ok());
    }

    #[test]
    fn replicates_match_one_by_one_runs_at_any_thread_count() {
        let scenario = OutbreakScenario::new(chain_network(), 0.5, 0.2).seed(0, 200.0);
        let serial = tweetmob_par::with_threads(1, || {
            scenario
                .run_stochastic_replicates(30.0, 0.25, 99, 6)
                .unwrap()
        });
        let parallel = tweetmob_par::with_threads(8, || {
            scenario
                .run_stochastic_replicates(30.0, 0.25, 99, 6)
                .unwrap()
        });
        assert_eq!(serial.len(), 6);
        for (k, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(a.infected, b.infected, "replicate {k}");
            assert_eq!(a.recovered, b.recovered, "replicate {k}");
            // And each matches a direct run with the derived seed.
            let direct = scenario
                .run_stochastic(30.0, 0.25, super::replicate_seed(99, k as u64))
                .unwrap();
            assert_eq!(a.infected, direct.infected, "replicate {k} vs direct");
        }
    }

    #[test]
    fn replicates_validate_before_spawning() {
        let bad = OutbreakScenario::new(chain_network(), 0.0, 0.2).seed(0, 10.0);
        assert!(matches!(
            bad.run_stochastic_replicates(10.0, 0.25, 1, 4),
            Err(ScenarioError::BadRate("beta", _))
        ));
    }

    #[test]
    fn replicate_seeds_are_distinct() {
        let seeds: std::collections::BTreeSet<u64> =
            (0..64).map(|k| super::replicate_seed(7, k)).collect();
        assert_eq!(seeds.len(), 64);
    }

    #[test]
    fn multiple_seeds_accumulate() {
        let scenario = OutbreakScenario::new(chain_network(), 0.5, 0.2)
            .seed(0, 10.0)
            .seed(2, 10.0);
        let tl = scenario.run_deterministic(50.0, 0.25).unwrap();
        // Both end patches are infected from day 0.
        assert!(tl.infected[0][0] > 0.0);
        assert!(tl.infected[2][0] > 0.0);
        assert_eq!(tl.infected[1][0], 0.0);
    }
}
