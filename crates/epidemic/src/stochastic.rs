//! Stochastic metapopulation SEIR: discrete-time binomial chains.
//!
//! For small outbreaks the deterministic ODE is wrong in kind — it cannot
//! go extinct. The stochastic engine steps whole individuals:
//!
//! * infections per patch ~ `Binomial(S, 1 − exp(−β I/N · dt))`
//! * incubations ~ `Binomial(E, 1 − exp(−σ dt))` (SEIR mode)
//! * recoveries ~ `Binomial(I, 1 − exp(−γ dt))`
//! * migration: each compartment loses `Binomial(X, 1 − exp(−mᵢⱼ dt))`
//!   to each destination, sequentially (an adequate multinomial
//!   approximation at the small per-step rates used here).
//!
//! Binomial sampling is implemented from scratch on top of `rand`:
//! Bernoulli summation for small `n·p`, normal approximation for large.

use crate::deterministic::State;
use crate::network::MobilityNetwork;
use rand::{Rng, RngExt};

/// Draws `Binomial(n, p)`.
///
/// Exact Bernoulli summation when `n ≤ 64` or the expected count is
/// small; otherwise a clamped normal approximation (error far below the
/// demographic noise being modelled).
pub fn binomial<R: Rng>(rng: &mut R, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mean = n as f64 * p;
    if n <= 64 || mean < 16.0 || n as f64 - mean < 16.0 {
        // Exact via inversion on a geometric-skip (fast when p is small)
        // or plain Bernoulli loop.
        if p < 0.1 {
            // Skip-ahead sampling: count successes by jumping over
            // failures with geometric gaps.
            let mut count = 0u64;
            let mut i = 0u64;
            let log_q = (1.0 - p).ln();
            loop {
                let u: f64 = rng.random::<f64>().max(1e-300);
                let skip = (u.ln() / log_q).floor() as u64;
                i = i.saturating_add(skip).saturating_add(1);
                if i > n {
                    return count;
                }
                count += 1;
            }
        }
        let mut count = 0u64;
        for _ in 0..n {
            if rng.random::<f64>() < p {
                count += 1;
            }
        }
        count
    } else {
        // Normal approximation with continuity correction.
        let sd = (mean * (1.0 - p)).sqrt();
        let u1: f64 = rng.random::<f64>().max(1e-300);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + sd * z + 0.5).clamp(0.0, n as f64) as u64
    }
}

/// Integer compartment state per patch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscreteState {
    /// Susceptible per patch.
    pub s: Vec<u64>,
    /// Exposed per patch (empty in SIR mode).
    pub e: Vec<u64>,
    /// Infectious per patch.
    pub i: Vec<u64>,
    /// Recovered per patch.
    pub r: Vec<u64>,
}

impl DiscreteState {
    /// All-susceptible state (populations rounded to whole people).
    pub fn susceptible(net: &MobilityNetwork, seir: bool) -> Self {
        let n = net.n_patches();
        Self {
            s: net.populations().iter().map(|&p| p.round() as u64).collect(),
            e: if seir { vec![0; n] } else { Vec::new() },
            i: vec![0; n],
            r: vec![0; n],
        }
    }

    /// Moves up to `count` people from S to I in `patch`.
    pub fn seed_infection(&mut self, patch: usize, count: u64) {
        let c = count.min(self.s[patch]);
        self.s[patch] -= c;
        self.i[patch] += c;
    }

    /// Total individuals.
    pub fn total(&self) -> u64 {
        self.s.iter().sum::<u64>()
            + self.e.iter().sum::<u64>()
            + self.i.iter().sum::<u64>()
            + self.r.iter().sum::<u64>()
    }

    /// Total infectious individuals.
    pub fn total_infected(&self) -> u64 {
        self.i.iter().sum()
    }

    /// Converts to the dense float state (for shared reporting).
    pub fn to_state(&self) -> State {
        State {
            s: self.s.iter().map(|&v| v as f64).collect(),
            e: self.e.iter().map(|&v| v as f64).collect(),
            i: self.i.iter().map(|&v| v as f64).collect(),
            r: self.r.iter().map(|&v| v as f64).collect(),
        }
    }
}

/// Rate parameters (same semantics as the deterministic engine).
#[derive(Debug, Clone, Copy)]
pub struct Rates {
    /// Transmission rate β per day.
    pub beta: f64,
    /// Recovery rate γ per day.
    pub gamma: f64,
    /// Incubation rate σ per day; `None` selects SIR.
    pub sigma: Option<f64>,
}

/// Advances the chain by one step of `dt` days.
pub fn step<R: Rng>(
    net: &MobilityNetwork,
    rates: &Rates,
    state: &mut DiscreteState,
    dt: f64,
    rng: &mut R,
) {
    let n = net.n_patches();
    let seir = rates.sigma.is_some();
    // Epidemic transitions first (per patch, using start-of-step counts).
    for p in 0..n {
        let pop = state.s[p]
            + state.i[p]
            + state.r[p]
            + if seir { state.e[p] } else { 0 };
        if pop == 0 {
            continue;
        }
        let lambda = rates.beta * state.i[p] as f64 / pop as f64;
        let p_inf = 1.0 - (-lambda * dt).exp();
        let infections = binomial(rng, state.s[p], p_inf);
        let p_rec = 1.0 - (-rates.gamma * dt).exp();
        let recoveries = binomial(rng, state.i[p], p_rec);
        state.s[p] -= infections;
        if let Some(sigma) = rates.sigma {
            let p_inc = 1.0 - (-sigma * dt).exp();
            let incubations = binomial(rng, state.e[p], p_inc);
            state.e[p] += infections;
            state.e[p] -= incubations;
            state.i[p] += incubations;
        } else {
            state.i[p] += infections;
        }
        state.i[p] -= recoveries;
        state.r[p] += recoveries;
    }
    // Migration.
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let m = net.rate(i, j);
            if m == 0.0 {
                continue;
            }
            let p_move = 1.0 - (-m * dt).exp();
            let ms = binomial(rng, state.s[i], p_move);
            state.s[i] -= ms;
            state.s[j] += ms;
            let mi = binomial(rng, state.i[i], p_move);
            state.i[i] -= mi;
            state.i[j] += mi;
            let mr = binomial(rng, state.r[i], p_move);
            state.r[i] -= mr;
            state.r[j] += mr;
            if seir {
                let me = binomial(rng, state.e[i], p_move);
                state.e[i] -= me;
                state.e[j] += me;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn binomial_matches_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        for (n, p) in [(10u64, 0.5), (1_000, 0.01), (1_000_000, 0.3), (50, 0.9)] {
            let trials = 3_000;
            let mut sum = 0.0;
            for _ in 0..trials {
                sum += binomial(&mut rng, n, p) as f64;
            }
            let mean = sum / trials as f64;
            let expect = n as f64 * p;
            let sd = (n as f64 * p * (1.0 - p)).sqrt();
            assert!(
                (mean - expect).abs() < 4.0 * sd / (trials as f64).sqrt() + 0.5,
                "n={n} p={p}: mean {mean}, expect {expect}"
            );
        }
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(binomial(&mut rng, 100, 1.0), 100);
        for _ in 0..100 {
            let v = binomial(&mut rng, 10, 0.3);
            assert!(v <= 10);
        }
    }

    fn net_two() -> MobilityNetwork {
        MobilityNetwork::from_flows(
            vec![50_000.0, 50_000.0],
            &[(0, 1, 1.0), (1, 0, 1.0)],
            0.05,
        )
        .unwrap()
    }

    #[test]
    fn population_conserved_exactly() {
        let net = net_two();
        let rates = Rates {
            beta: 0.5,
            gamma: 0.2,
            sigma: Some(0.3),
        };
        let mut state = DiscreteState::susceptible(&net, true);
        state.seed_infection(0, 10);
        let before = state.total();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            step(&net, &rates, &mut state, 0.25, &mut rng);
        }
        assert_eq!(state.total(), before);
    }

    #[test]
    fn large_outbreak_approaches_deterministic_final_size() {
        // R0 = 2 in one big patch: attack rate ≈ 0.7968.
        let net = MobilityNetwork::from_flows(vec![200_000.0], &[], 0.0).unwrap();
        let rates = Rates {
            beta: 0.4,
            gamma: 0.2,
            sigma: None,
        };
        let mut state = DiscreteState::susceptible(&net, false);
        state.seed_infection(0, 50);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..4_000 {
            step(&net, &rates, &mut state, 0.1, &mut rng);
        }
        let attack = state.r[0] as f64 / 200_000.0;
        assert!((attack - 0.7968).abs() < 0.03, "attack {attack}");
    }

    #[test]
    fn small_seeds_sometimes_go_extinct() {
        // With R0 = 1.5 and a single index case, extinction probability
        // is ~1/R0 ≈ 0.67 — across 40 runs we must see both outcomes.
        let net = MobilityNetwork::from_flows(vec![10_000.0], &[], 0.0).unwrap();
        let rates = Rates {
            beta: 0.3,
            gamma: 0.2,
            sigma: None,
        };
        let mut extinct = 0;
        let mut took_off = 0;
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut state = DiscreteState::susceptible(&net, false);
            state.seed_infection(0, 1);
            for _ in 0..2_000 {
                step(&net, &rates, &mut state, 0.2, &mut rng);
                if state.total_infected() == 0 {
                    break;
                }
            }
            if state.r[0] < 100 {
                extinct += 1;
            } else {
                took_off += 1;
            }
        }
        assert!(extinct > 5, "extinct {extinct}");
        assert!(took_off > 5, "took off {took_off}");
    }

    #[test]
    fn migration_carries_outbreak_across_patches() {
        let net = net_two();
        let rates = Rates {
            beta: 0.6,
            gamma: 0.2,
            sigma: None,
        };
        let mut state = DiscreteState::susceptible(&net, false);
        state.seed_infection(0, 100);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_500 {
            step(&net, &rates, &mut state, 0.2, &mut rng);
        }
        assert!(state.r[1] > 5_000, "patch 1 recovered {}", state.r[1]);
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn binomial_never_exceeds_n(n in 0u64..2_000_000, p in 0.0..=1.0f64, seed in 0u64..1_000) {
                let mut rng = StdRng::seed_from_u64(seed);
                let v = binomial(&mut rng, n, p);
                prop_assert!(v <= n);
            }

            #[test]
            fn step_conserves_individuals(
                pops in prop::collection::vec(100u32..50_000, 2..6),
                beta in 0.05..1.5f64,
                gamma in 0.05..1.0f64,
                seed in 0u64..100,
            ) {
                let populations: Vec<f64> = pops.iter().map(|&p| p as f64).collect();
                let n = populations.len();
                let flows: Vec<(usize, usize, f64)> = (0..n)
                    .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j, 1.0)))
                    .collect();
                let net = MobilityNetwork::from_flows(populations, &flows, 0.05).unwrap();
                let rates = Rates { beta, gamma, sigma: None };
                let mut state = DiscreteState::susceptible(&net, false);
                state.seed_infection(0, 10);
                let before = state.total();
                let mut rng = StdRng::seed_from_u64(seed);
                for _ in 0..50 {
                    step(&net, &rates, &mut state, 0.25, &mut rng);
                }
                prop_assert_eq!(state.total(), before);
            }
        }
    }

    #[test]
    fn deterministic_seeding_is_reproducible() {
        let net = net_two();
        let rates = Rates {
            beta: 0.5,
            gamma: 0.2,
            sigma: None,
        };
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut state = DiscreteState::susceptible(&net, false);
            state.seed_infection(0, 10);
            for _ in 0..500 {
                step(&net, &rates, &mut state, 0.25, &mut rng);
            }
            state
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
