//! Patch populations and per-capita migration rates.

use serde::Serialize;
use std::fmt;
use std::sync::Arc;
use tweetmob_data::ModelBundle;
use tweetmob_geo::PairGeometry;
use tweetmob_models::{FlowObservation, InterveningPopulation, MobilityModel, ModelKind};

/// Errors building a mobility network.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// A population was zero, negative or non-finite.
    BadPopulation {
        /// Patch index.
        patch: usize,
        /// Offending value.
        value: f64,
    },
    /// A flow referenced an out-of-range patch or was negative.
    BadFlow(&'static str),
    /// The leave-rate must be in `[0, 1)` per unit time step scale.
    BadLeaveRate(f64),
    /// The network needs at least one patch.
    Empty,
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::BadPopulation { patch, value } => {
                write!(f, "patch {patch} has invalid population {value}")
            }
            NetworkError::BadFlow(what) => write!(f, "invalid flow: {what}"),
            NetworkError::BadLeaveRate(v) => {
                write!(f, "leave rate {v} outside [0, 1)")
            }
            NetworkError::Empty => write!(f, "network needs at least one patch"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// A metapopulation network: patch populations plus per-capita daily
/// migration rates `m[i→j]`.
///
/// Rates are derived from relative flows: each patch's total daily
/// leave-rate is `leave_rate`, split across destinations in proportion to
/// the supplied (or model-predicted) flows. This matches the standard
/// metapopulation reading of an OD matrix — the *shape* of the flows
/// matters; the overall mobility level is one interpretable knob.
#[derive(Debug, Clone, Serialize)]
pub struct MobilityNetwork {
    populations: Vec<f64>,
    /// Row-major `rates[i·n + j]`: per-capita rate of moving i → j per
    /// day. Diagonal entries are zero.
    rates: Vec<f64>,
}

impl MobilityNetwork {
    /// Builds a network from explicit directed flows
    /// `(origin, dest, flow)`.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::Empty`] — no patches.
    /// * [`NetworkError::BadPopulation`] — non-positive population.
    /// * [`NetworkError::BadFlow`] — negative flow or index out of range.
    /// * [`NetworkError::BadLeaveRate`] — `leave_rate` outside `[0, 1)`.
    pub fn from_flows(
        populations: Vec<f64>,
        flows: &[(usize, usize, f64)],
        leave_rate: f64,
    ) -> Result<Self, NetworkError> {
        if populations.is_empty() {
            return Err(NetworkError::Empty);
        }
        for (i, &p) in populations.iter().enumerate() {
            if !(p > 0.0) || !p.is_finite() {
                return Err(NetworkError::BadPopulation { patch: i, value: p });
            }
        }
        if !(0.0..1.0).contains(&leave_rate) {
            return Err(NetworkError::BadLeaveRate(leave_rate));
        }
        let n = populations.len();
        let mut weights = vec![0.0; n * n];
        for &(i, j, w) in flows {
            if i >= n || j >= n {
                return Err(NetworkError::BadFlow("patch index out of range"));
            }
            if i == j {
                return Err(NetworkError::BadFlow("self-flow"));
            }
            if !(w >= 0.0) || !w.is_finite() {
                return Err(NetworkError::BadFlow("negative or non-finite flow"));
            }
            weights[i * n + j] += w;
        }
        // Normalise each row to the leave rate.
        let mut rates = vec![0.0; n * n];
        for i in 0..n {
            let row_sum: f64 = weights[i * n..(i + 1) * n].iter().sum();
            if row_sum > 0.0 {
                for j in 0..n {
                    rates[i * n + j] = leave_rate * weights[i * n + j] / row_sum;
                }
            }
        }
        Ok(Self { populations, rates })
    }

    /// Builds a network by predicting every pairwise flow with a fitted
    /// mobility model over patch centres/populations/distances.
    ///
    /// `distances[i][j]` and `intervening[i][j]` supply the model's `d`
    /// and `s`; diagonal entries are ignored.
    ///
    /// # Errors
    ///
    /// As [`MobilityNetwork::from_flows`].
    pub fn from_model<M: MobilityModel>(
        model: &M,
        populations: Vec<f64>,
        distances: &[Vec<f64>],
        intervening: &[Vec<f64>],
        leave_rate: f64,
    ) -> Result<Self, NetworkError> {
        let n = populations.len();
        let mut flows = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let obs = FlowObservation {
                    origin_population: populations[i],
                    dest_population: populations[j],
                    distance_km: distances[i][j],
                    intervening_population: intervening[i][j],
                    observed_flow: 0.0,
                };
                let p = model.predict(&obs);
                if p.is_finite() && p > 0.0 {
                    flows.push((i, j, p));
                }
            }
        }
        Self::from_flows(populations, &flows, leave_rate)
    }

    /// As [`MobilityNetwork::from_model`], but with pair distances drawn
    /// from a shared [`PairGeometry`] cache instead of caller-assembled
    /// dense rows — the epidemic pipeline reuses the geometry the
    /// mobility fit already built rather than recomputing n² haversines.
    ///
    /// # Errors
    ///
    /// As [`MobilityNetwork::from_flows`], plus [`NetworkError::BadFlow`]
    /// when the geometry does not cover every patch.
    pub fn from_model_geometry<M: MobilityModel>(
        model: &M,
        populations: Vec<f64>,
        geometry: &PairGeometry,
        intervening: &[Vec<f64>],
        leave_rate: f64,
    ) -> Result<Self, NetworkError> {
        let n = populations.len();
        if geometry.len() != n || intervening.len() != n {
            return Err(NetworkError::BadFlow("geometry does not cover all patches"));
        }
        let mut flows = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let obs = FlowObservation {
                    origin_population: populations[i],
                    dest_population: populations[j],
                    distance_km: geometry.distance(i, j),
                    intervening_population: intervening[i][j],
                    observed_flow: 0.0,
                };
                let p = model.predict(&obs);
                if p.is_finite() && p > 0.0 {
                    flows.push((i, j, p));
                }
            }
        }
        Self::from_flows(populations, &flows, leave_rate)
    }

    /// Builds the network straight from a loaded model-artifact bundle:
    /// census populations and the shared geometry come from the bundle,
    /// the intervening-population structure is rebuilt over the census
    /// vector (the bundle's own rankings cover its *fitting*
    /// populations), and every pairwise flow is predicted with the
    /// chosen fitted model. Output is bit-identical to assembling the
    /// same inputs by hand through
    /// [`MobilityNetwork::from_model_geometry`] — the epidemic pipeline
    /// no longer needs a dataset or a refit once an artifact exists.
    ///
    /// # Errors
    ///
    /// As [`MobilityNetwork::from_flows`].
    pub fn from_artifact(
        bundle: &ModelBundle,
        kind: ModelKind,
        leave_rate: f64,
    ) -> Result<Self, NetworkError> {
        let populations: Vec<f64> = bundle.areas().iter().map(|a| a.census_population).collect();
        let geometry = bundle.geometry();
        let n = populations.len();
        if geometry.len() != n {
            return Err(NetworkError::BadFlow("geometry does not cover all patches"));
        }
        let calc = InterveningPopulation::from_geometry(Arc::clone(geometry), &populations);
        let mut flows = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let obs = FlowObservation {
                    origin_population: populations[i],
                    dest_population: populations[j],
                    distance_km: geometry.distance(i, j),
                    intervening_population: calc.s(i, j),
                    observed_flow: 0.0,
                };
                let p = bundle.models().predict(kind, &obs);
                if p.is_finite() && p > 0.0 {
                    flows.push((i, j, p));
                }
            }
        }
        Self::from_flows(populations, &flows, leave_rate)
    }

    /// Number of patches.
    #[inline]
    pub fn n_patches(&self) -> usize {
        self.populations.len()
    }

    /// Patch populations.
    #[inline]
    pub fn populations(&self) -> &[f64] {
        &self.populations
    }

    /// Per-capita daily migration rate i → j.
    ///
    /// # Panics
    ///
    /// If an index is out of range.
    #[inline]
    pub fn rate(&self, i: usize, j: usize) -> f64 {
        let n = self.n_patches();
        assert!(i < n && j < n, "patch index out of range");
        self.rates[i * n + j]
    }

    /// A copy of the network with every migration rate multiplied by
    /// `factor` (populations unchanged). `factor` in `[0, 1]` models a
    /// travel restriction; the total leave rate scales accordingly.
    ///
    /// # Panics
    ///
    /// If `factor` is negative or non-finite.
    pub fn scaled(&self, factor: f64) -> MobilityNetwork {
        assert!(factor >= 0.0 && factor.is_finite(), "bad rate factor");
        MobilityNetwork {
            populations: self.populations.clone(),
            rates: self.rates.iter().map(|r| r * factor).collect(),
        }
    }

    /// Total per-capita leave rate of patch `i`.
    pub fn leave_rate(&self, i: usize) -> f64 {
        let n = self.n_patches();
        assert!(i < n, "patch index out of range");
        self.rates[i * n..(i + 1) * n].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_normalised_to_leave_rate() {
        let net = MobilityNetwork::from_flows(
            vec![1_000.0, 2_000.0, 500.0],
            &[(0, 1, 30.0), (0, 2, 10.0), (1, 0, 5.0)],
            0.08,
        )
        .unwrap();
        assert!((net.leave_rate(0) - 0.08).abs() < 1e-12);
        assert!((net.rate(0, 1) - 0.06).abs() < 1e-12); // 30/40 of 0.08
        assert!((net.rate(0, 2) - 0.02).abs() < 1e-12);
        assert!((net.leave_rate(1) - 0.08).abs() < 1e-12);
        assert_eq!(net.leave_rate(2), 0.0); // no outgoing flows
        assert_eq!(net.rate(1, 2), 0.0);
    }

    #[test]
    fn duplicate_flows_accumulate() {
        let net = MobilityNetwork::from_flows(
            vec![100.0, 100.0, 100.0],
            &[(0, 1, 1.0), (0, 1, 1.0), (0, 2, 2.0)],
            0.1,
        )
        .unwrap();
        assert!((net.rate(0, 1) - 0.05).abs() < 1e-12);
        assert!((net.rate(0, 2) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn construction_errors() {
        assert!(matches!(
            MobilityNetwork::from_flows(vec![], &[], 0.1),
            Err(NetworkError::Empty)
        ));
        assert!(matches!(
            MobilityNetwork::from_flows(vec![0.0], &[], 0.1),
            Err(NetworkError::BadPopulation { patch: 0, .. })
        ));
        assert!(matches!(
            MobilityNetwork::from_flows(vec![1.0, 1.0], &[(0, 5, 1.0)], 0.1),
            Err(NetworkError::BadFlow(_))
        ));
        assert!(matches!(
            MobilityNetwork::from_flows(vec![1.0, 1.0], &[(0, 0, 1.0)], 0.1),
            Err(NetworkError::BadFlow(_))
        ));
        assert!(matches!(
            MobilityNetwork::from_flows(vec![1.0, 1.0], &[(0, 1, -1.0)], 0.1),
            Err(NetworkError::BadFlow(_))
        ));
        assert!(matches!(
            MobilityNetwork::from_flows(vec![1.0, 1.0], &[(0, 1, 1.0)], 1.0),
            Err(NetworkError::BadLeaveRate(_))
        ));
    }

    #[test]
    fn scaled_network_multiplies_rates() {
        let net =
            MobilityNetwork::from_flows(vec![1_000.0, 2_000.0], &[(0, 1, 1.0), (1, 0, 3.0)], 0.1)
                .unwrap();
        let half = net.scaled(0.5);
        assert!((half.rate(0, 1) - net.rate(0, 1) * 0.5).abs() < 1e-15);
        assert!((half.leave_rate(1) - 0.05).abs() < 1e-12);
        assert_eq!(half.populations(), net.populations());
        let shut = net.scaled(0.0);
        assert_eq!(shut.leave_rate(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "bad rate factor")]
    fn scaled_rejects_negative_factor() {
        let net = MobilityNetwork::from_flows(vec![1.0], &[], 0.0).unwrap();
        net.scaled(-1.0);
    }

    #[test]
    fn from_model_uses_predictions() {
        use tweetmob_models::Gravity2Fit;
        // A hand-specified gravity model: flows ∝ mn/d².
        let model = Gravity2Fit {
            c: 1.0,
            gamma: 2.0,
            log_r_squared: 1.0,
            n_used: 0,
        };
        let populations = vec![1_000.0, 1_000.0, 1_000.0];
        // Patch 1 close to 0 (10 km), patch 2 far (100 km).
        let d = vec![
            vec![0.0, 10.0, 100.0],
            vec![10.0, 0.0, 90.0],
            vec![100.0, 90.0, 0.0],
        ];
        let s = vec![vec![0.0; 3]; 3];
        let net = MobilityNetwork::from_model(&model, populations, &d, &s, 0.1).unwrap();
        // From patch 0: rate to 1 should dominate 100:1.
        assert!(net.rate(0, 1) / net.rate(0, 2) > 50.0);
        assert!((net.leave_rate(0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn from_model_geometry_matches_dense_rows() {
        use tweetmob_geo::Point;
        use tweetmob_models::Gravity2Fit;
        let model = Gravity2Fit {
            c: 1.0,
            gamma: 2.0,
            log_r_squared: 1.0,
            n_used: 0,
        };
        let centers = vec![
            Point::new_unchecked(-33.8688, 151.2093),
            Point::new_unchecked(-37.8136, 144.9631),
            Point::new_unchecked(-27.4698, 153.0251),
        ];
        let geo = PairGeometry::build(&centers);
        let pops = vec![1_000.0, 2_000.0, 3_000.0];
        let s = vec![vec![0.0; 3]; 3];
        let dense = geo.dense_rows();
        let a = MobilityNetwork::from_model(&model, pops.clone(), &dense, &s, 0.1).unwrap();
        let b = MobilityNetwork::from_model_geometry(&model, pops, &geo, &s, 0.1).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(a.rate(i, j).to_bits(), b.rate(i, j).to_bits());
            }
        }
    }

    #[test]
    fn from_model_geometry_rejects_size_mismatch() {
        use tweetmob_geo::Point;
        use tweetmob_models::Gravity2Fit;
        let model = Gravity2Fit {
            c: 1.0,
            gamma: 2.0,
            log_r_squared: 1.0,
            n_used: 0,
        };
        let geo = PairGeometry::build(&[
            Point::new_unchecked(0.0, 100.0),
            Point::new_unchecked(0.0, 101.0),
        ]);
        let s = vec![vec![0.0; 3]; 3];
        assert!(matches!(
            MobilityNetwork::from_model_geometry(&model, vec![1.0, 1.0, 1.0], &geo, &s, 0.1),
            Err(NetworkError::BadFlow(_))
        ));
    }
}
