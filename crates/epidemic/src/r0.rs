//! R₀ estimation from an observed epidemic curve.
//!
//! A responsive surveillance pipeline needs to *read* parameters off an
//! unfolding outbreak, not just simulate forward. During the early
//! exponential phase the total infectious count grows as
//! `I(t) ∝ e^{rt}`; for SIR dynamics the growth rate relates to the
//! reproduction number as `R₀ = 1 + r/γ`, and for SEIR (Wallinga &
//! Lipsitch 2007) as `R₀ = (1 + r/γ)(1 + r/σ)`. The growth rate is a
//! linear regression of `ln I(t)` over the chosen early window.

use crate::scenario::EpidemicTimeline;
use serde::Serialize;
use tweetmob_stats::regression::simple_linear;
use tweetmob_stats::StatsError;

/// An R₀ estimate with its intermediate quantities.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct R0Estimate {
    /// Fitted exponential growth rate `r` (per day).
    pub growth_rate: f64,
    /// Estimated basic reproduction number.
    pub r0: f64,
    /// R² of the log-linear fit (≈ 1 inside a clean exponential phase).
    pub fit_r_squared: f64,
    /// Time points used.
    pub n_points: usize,
}

/// Estimates R₀ from the early growth of `timeline`.
///
/// * `window` — `(t_start, t_end)` in days; pick a range after stochastic
///   burn-in but well before the susceptible pool depletes (e.g. when
///   total infections are between ~10 and ~1 % of the population).
/// * `gamma` — the recovery rate used in (or believed to govern) the
///   process.
/// * `sigma` — incubation rate for SEIR curves; `None` for SIR.
///
/// # Errors
///
/// [`StatsError`] when the window holds fewer than 3 snapshots with a
/// positive infectious count, or the fit is degenerate.
pub fn estimate_r0(
    timeline: &EpidemicTimeline,
    window: (f64, f64),
    gamma: f64,
    sigma: Option<f64>,
) -> Result<R0Estimate, StatsError> {
    let mut ts = Vec::new();
    let mut log_i = Vec::new();
    for (k, &t) in timeline.times.iter().enumerate() {
        if t < window.0 || t > window.1 {
            continue;
        }
        let total: f64 = (0..timeline.n_patches())
            .map(|p| timeline.infected[p][k])
            .sum();
        if total > 0.0 {
            ts.push(t);
            log_i.push(total.ln());
        }
    }
    let (_, r, r2) = simple_linear(&ts, &log_i)?;
    let r0 = match sigma {
        None => 1.0 + r / gamma,
        Some(s) => (1.0 + r / gamma) * (1.0 + r / s),
    };
    Ok(R0Estimate {
        growth_rate: r,
        r0,
        fit_r_squared: r2,
        n_points: ts.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::MobilityNetwork;
    use crate::scenario::{OutbreakScenario, SeirParams};

    fn big_patch() -> MobilityNetwork {
        MobilityNetwork::from_flows(vec![5_000_000.0], &[], 0.0).unwrap()
    }

    #[test]
    fn recovers_r0_of_simulated_sir() {
        // True R0 = 0.5 / 0.2 = 2.5.
        let tl = OutbreakScenario::new(big_patch(), 0.5, 0.2)
            .seed(0, 20.0)
            .run_deterministic(120.0, 0.1)
            .unwrap();
        let est = estimate_r0(&tl, (5.0, 30.0), 0.2, None).unwrap();
        assert!((est.r0 - 2.5).abs() < 0.1, "R0 = {}", est.r0);
        assert!(est.fit_r_squared > 0.999, "R² = {}", est.fit_r_squared);
        assert!(est.growth_rate > 0.0);
    }

    #[test]
    fn recovers_r0_of_simulated_seir() {
        let tl = OutbreakScenario::new(big_patch(), 0.5, 0.2)
            .with_seir(SeirParams { sigma: 0.3 })
            .seed(0, 50.0)
            .run_deterministic(200.0, 0.1)
            .unwrap();
        // Let the E/I ratio equilibrate before fitting.
        let est = estimate_r0(&tl, (30.0, 60.0), 0.2, Some(0.3)).unwrap();
        assert!((est.r0 - 2.5).abs() < 0.2, "R0 = {}", est.r0);
    }

    #[test]
    fn subcritical_outbreak_estimates_below_one() {
        // True R0 = 0.15/0.2 = 0.75 — infections decay.
        let tl = OutbreakScenario::new(big_patch(), 0.15, 0.2)
            .seed(0, 10_000.0)
            .run_deterministic(60.0, 0.1)
            .unwrap();
        let est = estimate_r0(&tl, (5.0, 40.0), 0.2, None).unwrap();
        assert!(est.growth_rate < 0.0);
        assert!(est.r0 < 1.0, "R0 = {}", est.r0);
        assert!(est.r0 > 0.4, "R0 = {}", est.r0);
    }

    #[test]
    fn window_outside_timeline_errors() {
        let tl = OutbreakScenario::new(big_patch(), 0.5, 0.2)
            .seed(0, 20.0)
            .run_deterministic(30.0, 0.5)
            .unwrap();
        assert!(estimate_r0(&tl, (100.0, 200.0), 0.2, None).is_err());
    }

    #[test]
    fn late_window_underestimates_r0() {
        // Fitting after the peak (susceptible depletion) must give a
        // lower estimate than the early window — a documented pitfall
        // the r_squared field lets callers detect.
        let tl = OutbreakScenario::new(big_patch(), 0.5, 0.2)
            .seed(0, 20.0)
            .run_deterministic(200.0, 0.1)
            .unwrap();
        let early = estimate_r0(&tl, (5.0, 30.0), 0.2, None).unwrap();
        let late = estimate_r0(&tl, (80.0, 120.0), 0.2, None).unwrap();
        assert!(late.r0 < early.r0, "early {} late {}", early.r0, late.r0);
    }
}
