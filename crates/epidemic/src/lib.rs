//! # tweetmob-epidemic
//!
//! Metapopulation disease-spread simulation over mobility networks — the
//! application the paper is building towards ("the outcomes of the study
//! form the cornerstones for future work towards a model-based,
//! responsive prediction method from Twitter data for disease spread").
//!
//! The pipeline: fit a mobility model on Twitter-extracted flows
//! (`tweetmob-core`), convert the predicted flows into per-capita
//! migration rates ([`MobilityNetwork`]), then simulate SIR/SEIR dynamics
//! across the patches with either a deterministic RK4 integrator
//! ([`deterministic`]) or a stochastic binomial chain ([`stochastic`]).
//!
//! ## Example
//!
//! ```
//! use tweetmob_epidemic::{MobilityNetwork, OutbreakScenario};
//!
//! // Two towns, strongly coupled.
//! let net = MobilityNetwork::from_flows(
//!     vec![10_000.0, 5_000.0],
//!     &[(0, 1, 30.0), (1, 0, 30.0)],
//!     0.05,
//! ).unwrap();
//! let scenario = OutbreakScenario::new(net, 0.4, 0.2).seed(0, 10.0);
//! let timeline = scenario.run_deterministic(120.0, 0.25).unwrap();
//! // The outbreak reaches the second town.
//! assert!(timeline.peak_infected(1) > 1.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
// `!(x > 0.0)` guards are deliberate: they also reject NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod deterministic;
pub mod effective;
pub mod network;
pub mod r0;
pub mod scenario;
pub mod stochastic;

pub use network::{MobilityNetwork, NetworkError};
pub use effective::{arrival_time_correlation, effective_distance_from, effective_distance_matrix, ArrivalCorrelation};
pub use r0::{estimate_r0, R0Estimate};
pub use scenario::{EpidemicTimeline, OutbreakScenario, ScenarioError, SeirParams, TravelRestriction};
