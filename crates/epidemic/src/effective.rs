//! Effective distance (Brockmann & Helbing, Science 2013).
//!
//! Epidemic arrival times are poorly predicted by geographic distance
//! and well predicted by the *effective distance* of the mobility
//! network: for a one-step transition probability `p(i → j)` the edge
//! length is `d_eff = 1 − ln p` (always ≥ 1; rare connections are long),
//! and the effective distance between any two patches is the shortest
//! path under those lengths. This module computes it with Dijkstra and
//! provides the arrival-time correlation analysis that demonstrates the
//! payoff of the paper's Twitter-derived mobility networks for disease
//! prediction.

use crate::network::MobilityNetwork;
use crate::scenario::EpidemicTimeline;
use tweetmob_stats::correlation::{pearson, Correlation};
use tweetmob_stats::StatsError;

/// Effective distances from `source` to every patch (0 for the source
/// itself, `f64::INFINITY` for unreachable patches).
///
/// Edge lengths are `1 − ln p(i→j)` with
/// `p(i→j) = rate(i,j) / leave_rate(i)` — the probability that a given
/// departure from `i` heads to `j`.
///
/// # Panics
///
/// If `source` is out of range.
pub fn effective_distance_from(net: &MobilityNetwork, source: usize) -> Vec<f64> {
    let n = net.n_patches();
    assert!(source < n, "source patch out of range");
    // Dijkstra over the dense rate matrix; n is small (tens of patches),
    // so the O(n²) array implementation beats a heap.
    let mut dist = vec![f64::INFINITY; n];
    let mut done = vec![false; n];
    dist[source] = 0.0;
    for _ in 0..n {
        // Extract the unfinished node with the smallest distance.
        let mut u = usize::MAX;
        let mut best = f64::INFINITY;
        for (i, (&d, &fin)) in dist.iter().zip(&done).enumerate() {
            if !fin && d < best {
                best = d;
                u = i;
            }
        }
        if u == usize::MAX {
            break; // remaining nodes unreachable
        }
        done[u] = true;
        let leave = net.leave_rate(u);
        if leave <= 0.0 {
            continue;
        }
        for v in 0..n {
            if v == u || done[v] {
                continue;
            }
            let p = net.rate(u, v) / leave;
            if p <= 0.0 {
                continue;
            }
            let edge = 1.0 - p.ln();
            if dist[u] + edge < dist[v] {
                dist[v] = dist[u] + edge;
            }
        }
    }
    dist
}

/// Full effective-distance matrix (`out[i][j]` = effective distance
/// i → j).
pub fn effective_distance_matrix(net: &MobilityNetwork) -> Vec<Vec<f64>> {
    (0..net.n_patches())
        .map(|i| effective_distance_from(net, i))
        .collect()
}

/// Correlation between a distance vector and epidemic arrival times.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalCorrelation {
    /// Pearson correlation of (distance, arrival day) over the patches
    /// that were both reached and at finite distance.
    pub correlation: Correlation,
    /// Patches excluded (never reached, or unreachable in the network).
    pub excluded: usize,
}

/// Correlates `distances[p]` (any notion of distance from the outbreak
/// seed) against the day the outbreak reached patch `p` (first time
/// infections ≥ `threshold`). The seed patch itself (distance 0,
/// arrival 0) is excluded so it cannot anchor the fit.
///
/// # Errors
///
/// Propagates correlation failures (fewer than 3 usable patches).
pub fn arrival_time_correlation(
    distances: &[f64],
    timeline: &EpidemicTimeline,
    seed_patch: usize,
    threshold: f64,
) -> Result<ArrivalCorrelation, StatsError> {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut excluded = 0usize;
    for p in 0..timeline.n_patches() {
        if p == seed_patch {
            continue;
        }
        match (
            distances.get(p).copied(),
            timeline.arrival_time(p, threshold),
        ) {
            (Some(d), Some(t)) if d.is_finite() => {
                xs.push(d);
                ys.push(t);
            }
            _ => excluded += 1,
        }
    }
    Ok(ArrivalCorrelation {
        correlation: pearson(&xs, &ys)?,
        excluded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::OutbreakScenario;

    /// A line network 0 – 1 – 2 – 3 with strong nearest-neighbour
    /// coupling and one weak long-range shortcut 0 → 3.
    fn line_with_shortcut() -> MobilityNetwork {
        MobilityNetwork::from_flows(
            vec![100_000.0; 4],
            &[
                (0, 1, 100.0),
                (1, 0, 100.0),
                (1, 2, 100.0),
                (2, 1, 100.0),
                (2, 3, 100.0),
                (3, 2, 100.0),
                (0, 3, 1.0), // rare direct flight
            ],
            0.05,
        )
        .unwrap()
    }

    #[test]
    fn effective_distance_zero_at_source_and_monotone_on_chain() {
        let net = line_with_shortcut();
        let d = effective_distance_from(&net, 0);
        assert_eq!(d[0], 0.0);
        assert!(d[1] < d[2], "chain order: {d:?}");
        // Patch 3 is reachable both via the chain and the weak shortcut;
        // either way it is the farthest or tied.
        assert!(d[3] >= d[1]);
        assert!(d.iter().all(|&v| v.is_finite()));
    }

    #[test]
    fn rare_edges_are_long() {
        let net = line_with_shortcut();
        let d = effective_distance_from(&net, 0);
        // Direct shortcut length: p = 1/201 of departures → 1 − ln p ≈ 6.3.
        // Chain length: 3 hops, each p ≈ 100/201 → ≈ 3 × 1.7 = 5.1.
        // So the chain should win and d[3] ≈ 5.1 < 6.3.
        assert!(d[3] < 6.3, "d3 = {}", d[3]);
        assert!(d[3] > 4.0, "d3 = {}", d[3]);
    }

    #[test]
    fn unreachable_patch_is_infinite() {
        let net = MobilityNetwork::from_flows(
            vec![1_000.0, 1_000.0, 1_000.0],
            &[(0, 1, 1.0)], // patch 2 isolated
            0.05,
        )
        .unwrap();
        let d = effective_distance_from(&net, 0);
        assert!(d[1].is_finite());
        assert!(d[2].is_infinite());
    }

    #[test]
    fn matrix_is_row_consistent() {
        let net = line_with_shortcut();
        let m = effective_distance_matrix(&net);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row, &effective_distance_from(&net, i));
            assert_eq!(row[i], 0.0);
        }
    }

    #[test]
    fn effective_distance_predicts_arrival_order() {
        // Hub-and-spoke with very different coupling strengths: patch 1
        // strongly coupled to the seed, patch 2 weakly, patch 3 only via
        // patch 2. Arrival order must match effective distance order.
        let net = MobilityNetwork::from_flows(
            vec![500_000.0, 100_000.0, 100_000.0, 100_000.0],
            &[
                (0, 1, 500.0),
                (1, 0, 500.0),
                (0, 2, 5.0),
                (2, 0, 5.0),
                (2, 3, 50.0),
                (3, 2, 50.0),
            ],
            0.04,
        )
        .unwrap();
        let d = effective_distance_from(&net, 0);
        let tl = OutbreakScenario::new(net, 0.5, 0.2)
            .seed(0, 100.0)
            .run_deterministic(400.0, 0.25)
            .unwrap();
        let arrivals: Vec<f64> = (1..4)
            .map(|p| tl.arrival_time(p, 50.0).expect("reached"))
            .collect();
        // d order: 1 < 2 < 3 → arrival order must match.
        assert!(d[1] < d[2] && d[2] < d[3], "{d:?}");
        assert!(
            arrivals[0] < arrivals[1] && arrivals[1] < arrivals[2],
            "{arrivals:?}"
        );
        let corr = arrival_time_correlation(&d, &tl, 0, 50.0).unwrap();
        assert!(corr.correlation.r > 0.9, "r = {}", corr.correlation.r);
        assert_eq!(corr.excluded, 0);
    }

    #[test]
    fn arrival_correlation_excludes_unreached_patches() {
        let net = MobilityNetwork::from_flows(
            vec![100_000.0, 100_000.0, 100_000.0],
            &[(0, 1, 10.0), (1, 0, 10.0)], // patch 2 isolated
            0.05,
        )
        .unwrap();
        let d = effective_distance_from(&net, 0);
        let tl = OutbreakScenario::new(net, 0.5, 0.2)
            .seed(0, 100.0)
            .run_deterministic(100.0, 0.25)
            .unwrap();
        // Only patches 1 and 2 are candidates; 2 is excluded → a single
        // point is below Pearson's minimum, which must surface as an
        // error rather than a bogus correlation.
        let result = arrival_time_correlation(&d, &tl, 0, 50.0);
        assert!(result.is_err());
    }
}
