//! Deterministic metapopulation SEIR dynamics (RK4).
//!
//! Per patch `i` with force of infection `λᵢ = β Iᵢ / Nᵢ`:
//!
//! ```text
//! dSᵢ/dt = −λᵢ Sᵢ + Σⱼ (mⱼᵢ Sⱼ − mᵢⱼ Sᵢ)
//! dEᵢ/dt =  λᵢ Sᵢ − σ Eᵢ + Σⱼ (mⱼᵢ Eⱼ − mᵢⱼ Eᵢ)
//! dIᵢ/dt =  σ Eᵢ − γ Iᵢ + Σⱼ (mⱼᵢ Iⱼ − mᵢⱼ Iᵢ)
//! dRᵢ/dt =  γ Iᵢ + Σⱼ (mⱼᵢ Rⱼ − mᵢⱼ Rᵢ)
//! ```
//!
//! SIR is the σ → ∞ special case, implemented by skipping the E
//! compartment entirely (`sigma = None`). Integration is classic
//! fixed-step RK4 — plenty for the smooth, stiff-free dynamics here, and
//! dependency-free.

use crate::network::MobilityNetwork;

/// Full system state: compartment values per patch, flattened as
/// `[S..., E..., I..., R...]` (E block absent in SIR mode).
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    /// Susceptible per patch.
    pub s: Vec<f64>,
    /// Exposed per patch (empty in SIR mode).
    pub e: Vec<f64>,
    /// Infectious per patch.
    pub i: Vec<f64>,
    /// Recovered per patch.
    pub r: Vec<f64>,
}

impl State {
    /// All-susceptible state over the network's populations.
    pub fn susceptible(net: &MobilityNetwork, seir: bool) -> Self {
        let n = net.n_patches();
        Self {
            s: net.populations().to_vec(),
            e: if seir { vec![0.0; n] } else { Vec::new() },
            i: vec![0.0; n],
            r: vec![0.0; n],
        }
    }

    /// Moves `count` people from S to I in `patch` (clamped to available
    /// susceptibles).
    pub fn seed_infection(&mut self, patch: usize, count: f64) {
        let c = count.min(self.s[patch]);
        self.s[patch] -= c;
        self.i[patch] += c;
    }

    /// Total population across compartments and patches.
    pub fn total(&self) -> f64 {
        self.s.iter().sum::<f64>()
            + self.e.iter().sum::<f64>()
            + self.i.iter().sum::<f64>()
            + self.r.iter().sum::<f64>()
    }

    fn zeros_like(&self) -> State {
        State {
            s: vec![0.0; self.s.len()],
            e: vec![0.0; self.e.len()],
            i: vec![0.0; self.i.len()],
            r: vec![0.0; self.r.len()],
        }
    }

    fn axpy(&mut self, a: f64, other: &State) {
        for (x, y) in self.s.iter_mut().zip(&other.s) {
            *x += a * y;
        }
        for (x, y) in self.e.iter_mut().zip(&other.e) {
            *x += a * y;
        }
        for (x, y) in self.i.iter_mut().zip(&other.i) {
            *x += a * y;
        }
        for (x, y) in self.r.iter_mut().zip(&other.r) {
            *x += a * y;
        }
    }
}

/// Epidemic rate parameters for the deterministic engine.
#[derive(Debug, Clone, Copy)]
pub struct Rates {
    /// Transmission rate β (per day).
    pub beta: f64,
    /// Recovery rate γ (per day).
    pub gamma: f64,
    /// Incubation rate σ (per day); `None` selects SIR.
    pub sigma: Option<f64>,
}

/// Computes the time derivative of `state`.
fn derivative(net: &MobilityNetwork, rates: &Rates, state: &State, out: &mut State) {
    let n = net.n_patches();
    let seir = rates.sigma.is_some();
    // Current patch populations (conserved by migration, but recompute
    // for force-of-infection correctness during transients).
    for p in 0..n {
        let n_p = state.s[p]
            + state.i[p]
            + state.r[p]
            + if seir { state.e[p] } else { 0.0 };
        let lambda = if n_p > 0.0 {
            rates.beta * state.i[p] / n_p
        } else {
            0.0
        };
        let infections = lambda * state.s[p];
        let recoveries = rates.gamma * state.i[p];
        if let Some(sigma) = rates.sigma {
            let incubations = sigma * state.e[p];
            out.s[p] = -infections;
            out.e[p] = infections - incubations;
            out.i[p] = incubations - recoveries;
            out.r[p] = recoveries;
        } else {
            out.s[p] = -infections;
            out.i[p] = infections - recoveries;
            out.r[p] = recoveries;
        }
    }
    // Migration fluxes.
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let m = net.rate(i, j);
            if m == 0.0 {
                continue;
            }
            out.s[i] -= m * state.s[i];
            out.s[j] += m * state.s[i];
            out.i[i] -= m * state.i[i];
            out.i[j] += m * state.i[i];
            out.r[i] -= m * state.r[i];
            out.r[j] += m * state.r[i];
            if seir {
                out.e[i] -= m * state.e[i];
                out.e[j] += m * state.e[i];
            }
        }
    }
}

/// One RK4 step of size `dt` days.
pub fn rk4_step(net: &MobilityNetwork, rates: &Rates, state: &State, dt: f64) -> State {
    let mut k1 = state.zeros_like();
    derivative(net, rates, state, &mut k1);

    let mut mid = state.clone();
    mid.axpy(dt / 2.0, &k1);
    let mut k2 = state.zeros_like();
    derivative(net, rates, &mid, &mut k2);

    let mut mid2 = state.clone();
    mid2.axpy(dt / 2.0, &k2);
    let mut k3 = state.zeros_like();
    derivative(net, rates, &mid2, &mut k3);

    let mut end = state.clone();
    end.axpy(dt, &k3);
    let mut k4 = state.zeros_like();
    derivative(net, rates, &end, &mut k4);

    let mut next = state.clone();
    next.axpy(dt / 6.0, &k1);
    next.axpy(dt / 3.0, &k2);
    next.axpy(dt / 3.0, &k3);
    next.axpy(dt / 6.0, &k4);
    // Clamp tiny negative values arising from floating-point error.
    for v in next
        .s
        .iter_mut()
        .chain(next.e.iter_mut())
        .chain(next.i.iter_mut())
        .chain(next.r.iter_mut())
    {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_patch(pop: f64) -> MobilityNetwork {
        MobilityNetwork::from_flows(vec![pop], &[], 0.0).unwrap()
    }

    fn two_patches(leave: f64) -> MobilityNetwork {
        MobilityNetwork::from_flows(
            vec![10_000.0, 10_000.0],
            &[(0, 1, 1.0), (1, 0, 1.0)],
            leave,
        )
        .unwrap()
    }

    fn run(
        net: &MobilityNetwork,
        rates: &Rates,
        mut state: State,
        days: f64,
        dt: f64,
    ) -> State {
        let steps = (days / dt).round() as usize;
        for _ in 0..steps {
            state = rk4_step(net, rates, &state, dt);
        }
        state
    }

    #[test]
    fn population_is_conserved() {
        let net = two_patches(0.1);
        let rates = Rates {
            beta: 0.5,
            gamma: 0.2,
            sigma: None,
        };
        let mut state = State::susceptible(&net, false);
        state.seed_infection(0, 50.0);
        let before = state.total();
        let after = run(&net, &rates, state, 100.0, 0.1).total();
        assert!((before - after).abs() / before < 1e-9, "Δ = {}", before - after);
    }

    #[test]
    fn sir_final_size_matches_analytic() {
        // Single patch SIR with R0 = 2: the final-size equation gives
        // z = 1 − exp(−R0 z) → z ≈ 0.7968.
        let net = single_patch(1e6);
        let rates = Rates {
            beta: 0.4,
            gamma: 0.2,
            sigma: None,
        };
        let mut state = State::susceptible(&net, false);
        state.seed_infection(0, 10.0);
        let end = run(&net, &rates, state, 400.0, 0.05);
        let attack = end.r[0] / 1e6;
        assert!((attack - 0.7968).abs() < 0.01, "attack rate {attack}");
    }

    #[test]
    fn below_threshold_epidemic_dies_out() {
        // R0 = 0.5: no outbreak.
        let net = single_patch(1e6);
        let rates = Rates {
            beta: 0.1,
            gamma: 0.2,
            sigma: None,
        };
        let mut state = State::susceptible(&net, false);
        state.seed_infection(0, 100.0);
        let end = run(&net, &rates, state, 200.0, 0.1);
        assert!(end.r[0] < 300.0, "final recovered {}", end.r[0]);
        assert!(end.i[0] < 1.0);
    }

    #[test]
    fn seir_delays_the_peak() {
        let net = single_patch(1e5);
        let mut sir = State::susceptible(&net, false);
        sir.seed_infection(0, 10.0);
        let mut seir = State::susceptible(&net, true);
        seir.seed_infection(0, 10.0);
        let rates_sir = Rates {
            beta: 0.5,
            gamma: 0.2,
            sigma: None,
        };
        let rates_seir = Rates {
            beta: 0.5,
            gamma: 0.2,
            sigma: Some(0.3),
        };
        // Track the peak day of I.
        let peak_day = |rates: &Rates, mut st: State, seir_mode: bool| {
            let _ = seir_mode;
            let mut best = (0.0, 0.0);
            let dt = 0.1;
            for step in 0..3_000 {
                st = rk4_step(&net, rates, &st, dt);
                if st.i[0] > best.1 {
                    best = (step as f64 * dt, st.i[0]);
                }
            }
            best.0
        };
        let sir_peak = peak_day(&rates_sir, sir, false);
        let seir_peak = peak_day(&rates_seir, seir, true);
        assert!(
            seir_peak > sir_peak + 5.0,
            "sir peak {sir_peak}, seir peak {seir_peak}"
        );
    }

    #[test]
    fn migration_spreads_infection_to_coupled_patch() {
        let net = two_patches(0.05);
        let rates = Rates {
            beta: 0.5,
            gamma: 0.2,
            sigma: None,
        };
        let mut state = State::susceptible(&net, false);
        state.seed_infection(0, 20.0);
        let end = run(&net, &rates, state, 150.0, 0.1);
        assert!(end.r[1] > 1_000.0, "patch 1 recovered {}", end.r[1]);
    }

    #[test]
    fn no_migration_keeps_uninfected_patch_clean() {
        let net = MobilityNetwork::from_flows(vec![1e4, 1e4], &[], 0.0).unwrap();
        let rates = Rates {
            beta: 0.5,
            gamma: 0.2,
            sigma: None,
        };
        let mut state = State::susceptible(&net, false);
        state.seed_infection(0, 20.0);
        let end = run(&net, &rates, state, 150.0, 0.1);
        assert_eq!(end.i[1], 0.0);
        assert_eq!(end.r[1], 0.0);
        assert!(end.r[0] > 100.0);
    }

    #[test]
    fn seed_clamps_to_population() {
        let net = single_patch(100.0);
        let mut state = State::susceptible(&net, false);
        state.seed_infection(0, 1e9);
        assert_eq!(state.i[0], 100.0);
        assert_eq!(state.s[0], 0.0);
    }
}
