//! # tweetmob-par
//!
//! The workspace's shared parallel-execution layer: a deterministic
//! chunked worker pool that every hot pipeline stage (trip extraction,
//! population estimation, tweet synthesis, gravity grid search,
//! stochastic epidemic replicates) runs on. It replaces the bespoke
//! per-stage `crossbeam::thread::scope` blocks the seed grew — the
//! `tweetmob-lint` `par-layer` rule now rejects raw thread spawns
//! anywhere else in the workspace.
//!
//! ## The determinism contract
//!
//! [`par_map_chunks`] splits the index range `0..n_items` into at most
//! `threads` contiguous chunks and returns one mapped value **per chunk,
//! in chunk order** (ascending index). Callers get bit-identical output
//! at every thread count provided they hold up their end:
//!
//! 1. the map closure's result for an index range depends only on the
//!    items in that range (no shared mutable state, no chunk-boundary
//!    coupling — per-item RNG streams must be seeded per item, not per
//!    chunk), and
//! 2. the merge they fold chunk results with is either a concatenation
//!    (chunk order ≡ item order, so the concatenation is
//!    chunking-invariant) or an order-independent reduction
//!    (commutative + associative on the values produced, e.g. integer
//!    cell-count addition, or a minimum with a total tie-break).
//!
//! Floating-point addition is *not* associative; stages that sum floats
//! across items must either keep the sum inside one chunk's range or
//! reduce per-item values in a fixed order after collection.
//!
//! ## Thread-count resolution
//!
//! Highest priority first:
//!
//! 1. a process-local override installed by [`set_threads_override`] or
//!    scoped by [`with_threads`] (the CLI's `--threads` flag and the
//!    determinism tests use these),
//! 2. the `TWEETMOB_THREADS` environment variable (a positive integer),
//! 3. [`std::thread::available_parallelism`].
//!
//! Below a stage-chosen work threshold (`min_parallel` items) the pool
//! runs the map inline on the calling thread — one chunk, no spawns —
//! so tiny inputs never pay thread startup.
//!
//! Every dispatch publishes its shape to the global
//! [`tweetmob_obs`] registry as `par/<stage>/threads` and
//! `par/<stage>/chunks` gauges. These gauges describe *execution*, not
//! results, and are expected to differ between runs at different thread
//! counts; determinism comparisons must ignore the `par/` gauge subtree
//! (alongside the `*_ns` duration fields).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "TWEETMOB_THREADS";

/// Process-local thread-count override; `0` means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Serializes [`with_threads`] scopes so concurrent tests cannot observe
/// each other's override.
static SCOPE_LOCK: Mutex<()> = Mutex::new(());

/// Installs (or clears, with `None`) the process-wide thread-count
/// override. `Some(0)` is treated as `None`. Long-lived callers (the
/// CLI's `--threads` flag) set this once at startup; tests should prefer
/// the scoped [`with_threads`].
pub fn set_threads_override(threads: Option<usize>) {
    OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// Runs `f` with the thread count pinned to `threads` (minimum 1),
/// restoring the previous override afterwards — even on panic. Scopes
/// are serialized process-wide, so concurrent tests cannot bleed
/// overrides into each other; do not nest calls (the inner one would
/// deadlock on the scope lock).
pub fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    let _scope = SCOPE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let prev = OVERRIDE.swap(threads.max(1), Ordering::SeqCst);
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.store(self.0, Ordering::SeqCst);
        }
    }
    let _restore = Restore(prev);
    f()
}

/// The worker-thread count a dispatch would use right now: override,
/// then [`THREADS_ENV`], then [`std::thread::available_parallelism`].
#[must_use]
pub fn resolved_threads() -> usize {
    let forced = OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = std::env::var(THREADS_ENV).ok().and_then(|v| parse_threads(&v)) {
        return n;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Parses a positive thread count; rejects `0`, junk and empty strings.
fn parse_threads(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Publishes a dispatch's execution shape as `par/<stage>/*` gauges.
fn publish_shape(stage: &str, threads: usize, chunks: usize) {
    // Gauge values are execution shape, not results; clamping a >2^63
    // thread count is not a case that can arise.
    tweetmob_obs::global()
        .gauge(&format!("par/{stage}/threads"))
        .set(threads.min(i64::MAX as usize) as i64);
    tweetmob_obs::global()
        .gauge(&format!("par/{stage}/chunks"))
        .set(chunks.min(i64::MAX as usize) as i64);
}

/// Maps contiguous index chunks of `0..n_items` across the worker pool,
/// returning one result per chunk **in chunk (ascending index) order**.
///
/// Runs inline on the calling thread — a single chunk covering the whole
/// range — when the resolved thread count is 1 or `n_items <
/// min_parallel`. `n_items == 0` yields one call over the empty range,
/// so callers always get at least one element back.
///
/// See the crate docs for the determinism contract the map closure must
/// satisfy.
pub fn par_map_chunks<T, F>(stage: &str, n_items: usize, min_parallel: usize, map: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let threads = resolved_threads().min(n_items.max(1));
    if threads <= 1 || n_items < min_parallel {
        publish_shape(stage, 1, 1);
        return vec![map(0..n_items)];
    }
    let chunk = n_items.div_ceil(threads);
    let ranges: Vec<Range<usize>> = (0..threads)
        .map(|t| (t * chunk).min(n_items)..((t + 1) * chunk).min(n_items))
        .filter(|r| !r.is_empty())
        .collect();
    publish_shape(stage, threads, ranges.len());
    let map = &map;
    let mut out = Vec::with_capacity(ranges.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(move || map(r)))
            .collect();
        for h in handles {
            // lint: allow(no-panic) — join() errs only when the worker itself
            // panicked; propagating that panic is the contract (no half-merged
            // chunk may ever reach a caller)
            out.push(h.join().expect("tweetmob-par worker panicked"));
        }
    });
    out
}

/// [`par_map_chunks`] folded with `merge` in chunk order.
///
/// The merge must be chunking-invariant (concatenation over contiguous
/// ranges, or an order-independent reduction — see the crate docs) for
/// the result to be identical at every thread count.
pub fn par_map_reduce<T, F, M>(
    stage: &str,
    n_items: usize,
    min_parallel: usize,
    map: F,
    merge: M,
) -> T
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
    M: FnMut(T, T) -> T,
{
    let chunks = par_map_chunks(stage, n_items, min_parallel, map);
    // lint: allow(no-panic) — par_map_chunks always returns ≥ 1 chunk
    chunks.into_iter().reduce(merge).expect("at least one chunk")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_partition_the_range_in_order() {
        for n in [0usize, 1, 7, 64, 1000] {
            for threads in [1usize, 2, 3, 8, 17] {
                let ranges = with_threads(threads, || {
                    par_map_chunks("test/partition", n, 0, |r| r)
                });
                let flat: Vec<usize> = ranges.into_iter().flatten().collect();
                let want: Vec<usize> = (0..n).collect();
                assert_eq!(flat, want, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn reduce_matches_serial_fold() {
        let serial: u64 = (0..10_000u64).map(|i| i * i).sum();
        for threads in [1usize, 2, 5, 16] {
            let parallel = with_threads(threads, || {
                par_map_reduce(
                    "test/reduce",
                    10_000,
                    0,
                    |r| r.map(|i| (i as u64) * (i as u64)).sum::<u64>(),
                    |a, b| a + b,
                )
            });
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn below_threshold_runs_one_chunk() {
        let chunks = with_threads(8, || par_map_chunks("test/threshold", 10, 64, |r| r));
        assert_eq!(chunks, vec![0..10]);
    }

    #[test]
    fn empty_input_still_calls_map_once() {
        let chunks = with_threads(4, || par_map_chunks("test/empty", 0, 0, |r| r));
        assert_eq!(chunks, vec![0..0]);
    }

    #[test]
    fn with_threads_pins_and_restores() {
        set_threads_override(None);
        let seen = with_threads(3, resolved_threads);
        assert_eq!(seen, 3);
        assert_eq!(OVERRIDE.load(Ordering::SeqCst), 0, "override restored");
        let nested = with_threads(2, || with_threads_free_probe());
        assert_eq!(nested, 2);
    }

    /// Reads the resolved count without opening another scope.
    fn with_threads_free_probe() -> usize {
        resolved_threads()
    }

    #[test]
    fn override_setter_round_trips() {
        set_threads_override(Some(5));
        assert_eq!(OVERRIDE.load(Ordering::SeqCst), 5);
        set_threads_override(Some(0));
        assert_eq!(OVERRIDE.load(Ordering::SeqCst), 0);
        set_threads_override(None);
        assert_eq!(OVERRIDE.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn parse_threads_rejects_junk() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 12 "), Some(12));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-3"), None);
        assert_eq!(parse_threads("eight"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn shape_gauges_are_published() {
        with_threads(4, || {
            par_map_chunks("test/gauges", 100, 0, |r| r.len());
        });
        let reg = tweetmob_obs::global();
        assert_eq!(reg.gauge_value("par/test/gauges/threads"), Some(4));
        assert_eq!(reg.gauge_value("par/test/gauges/chunks"), Some(4));
    }
}
