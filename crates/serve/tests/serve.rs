//! End-to-end tests of the serving layer against an in-process server:
//! golden parity with the artifact query API (the same documents
//! `tweetmob predict --json` prints), the 4xx contract for every shape
//! of bad input, and byte-determinism under concurrent load.

use serde_json::{json, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use tweetmob_data::{BundleArea, BundleMeta, ModelBundle};
use tweetmob_geo::{PairGeometry, Point};
use tweetmob_models::{FittedModelSet, FlowObservation, InterveningPopulation, ModelKind};
use tweetmob_serve::{serve, AppState, ServerHandle};

// --- fixture -----------------------------------------------------------

fn scatter(count: usize, seed: u64) -> Vec<Point> {
    let mut k = seed;
    let mut next = |lo: f64, hi: f64| {
        k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
        lo + (k >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    };
    (0..count)
        .map(|_| Point::new_unchecked(next(-44.0, -10.0), next(113.0, 154.0)))
        .collect()
}

/// A small fitted bundle over synthetic cities, mirroring the fixture
/// the artifact layer's own tests use.
fn bundle(n: usize, seed: u64) -> ModelBundle {
    let centers = scatter(n, seed);
    let geometry = PairGeometry::shared(&centers);
    let mut k = seed.wrapping_mul(31).wrapping_add(7);
    let mut next = |lo: f64, hi: f64| {
        k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
        lo + (k >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    };
    let populations: Vec<f64> = (0..n).map(|_| next(1e3, 1e6)).collect();
    let intervening = InterveningPopulation::from_geometry(Arc::clone(&geometry), &populations);
    let mut obs = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            obs.push(FlowObservation {
                origin_population: populations[i],
                dest_population: populations[j],
                distance_km: geometry.distance(i, j),
                intervening_population: intervening.s(i, j),
                observed_flow: 0.01 * populations[i] * populations[j]
                    / (geometry.distance(i, j) * geometry.distance(i, j)),
            });
        }
    }
    let models = FittedModelSet::fit(&obs).unwrap();
    let areas: Vec<BundleArea> = centers
        .iter()
        .enumerate()
        .map(|(i, &center)| BundleArea {
            name: format!("City {i}"),
            center,
            census_population: populations[i] * 1.5,
        })
        .collect();
    ModelBundle::new(
        BundleMeta {
            label: "serve-test".into(),
            population_source: "twitter".into(),
            radius_km: 50.0,
        },
        areas,
        populations,
        models,
        geometry,
    )
}

fn start(bundle: ModelBundle, workers: usize) -> ServerHandle {
    serve("127.0.0.1:0", AppState::new(Arc::new(bundle)), workers).expect("bind test server")
}

// --- a tiny HTTP client ------------------------------------------------

fn exchange(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    read_response(&mut BufReader::new(stream))
}

fn read_response<R: BufRead>(reader: &mut R) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8 body"))
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    exchange(addr, "GET", target, "")
}

// --- golden parity with the artifact query API -------------------------

#[test]
fn predict_matches_the_cli_json_document_byte_for_byte() {
    let b = bundle(6, 41);
    let server = start(b.clone(), 2);
    let addr = server.addr();

    // The CLI's pairwise --json document, assembled the same way
    // `commands::predict` does, straight from the bundle.
    let map: serde_json::Map<String, Value> = ModelKind::ALL
        .iter()
        .map(|&k| (k.key().to_string(), json!(b.predict(k, 1, 4).unwrap())))
        .collect();
    let expected = json!({
        "origin": "City 1",
        "dest": "City 4",
        "distance_km": b.geometry().distance(1, 4),
        "predictions": map,
    })
    .to_string();

    // By name (with an escaped space), and by bare index.
    let (status, body) = get(addr, "/predict?origin=City+1&dest=City%204");
    assert_eq!(status, 200);
    assert_eq!(body, expected);
    let (status, by_index) = get(addr, "/predict?origin=1&dest=4");
    assert_eq!(status, 200);
    assert_eq!(by_index, expected);

    server.stop();
}

#[test]
fn top_k_matches_the_cli_json_document_and_defaults_k_to_5() {
    let b = bundle(8, 9);
    let server = start(b.clone(), 2);
    let addr = server.addr();

    let ranked: Vec<Value> = b
        .top_k(ModelKind::Gravity2, 2, 5)
        .unwrap()
        .into_iter()
        .map(|(dest, flow)| json!({ "dest": b.areas()[dest].name, "flow": flow }))
        .collect();
    let expected = json!({
        "origin": "City 2",
        "k": 5,
        "models": { "gravity2": ranked },
    })
    .to_string();

    let (status, body) = get(addr, "/top_k?model=gravity2&origin=city+2");
    assert_eq!(status, 200);
    assert_eq!(body, expected);

    server.stop();
}

// --- the 4xx contract --------------------------------------------------

#[test]
fn every_shape_of_bad_input_is_a_typed_4xx() {
    let server = start(bundle(5, 3), 2);
    let addr = server.addr();

    // Unknown area name: the resource does not exist.
    let (status, body) = get(addr, "/predict?origin=Atlantis&dest=City+1");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("no area named"), "{body}");

    // Out-of-range numeric index: bad request, message names the range.
    let (status, body) = get(addr, "/predict?origin=9&dest=1");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("valid indices 0..=4"), "{body}");

    // Unknown model: bad request, message lists the spellings.
    let (status, body) = get(addr, "/predict?model=newton&origin=0&dest=1");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("gravity4|gravity2|radiation|opportunities"), "{body}");

    // Self pair.
    let (status, body) = get(addr, "/predict?origin=2&dest=2");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("self-pair"), "{body}");

    // Missing parameter.
    let (status, body) = get(addr, "/predict?dest=1");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("missing query parameter"), "{body}");
    assert!(body.contains("origin"), "{body}");

    // k = 0.
    let (status, body) = get(addr, "/top_k?origin=0&k=0");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("k must be at least 1"), "{body}");

    // Non-numeric k.
    let (status, body) = get(addr, "/top_k?origin=0&k=many");
    assert_eq!(status, 400, "{body}");

    // Unknown path.
    let (status, body) = get(addr, "/no-such-endpoint");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("no such endpoint"), "{body}");

    // Wrong method on a GET endpoint, and on the POST endpoint.
    let (status, _) = exchange(addr, "POST", "/predict?origin=0&dest=1", "");
    assert_eq!(status, 405);
    let (status, _) = get(addr, "/epidemic");
    assert_eq!(status, 405);

    // Malformed scenario body.
    let (status, body) = exchange(addr, "POST", "/epidemic", "{not json");
    assert_eq!(status, 400, "{body}");
    let (status, body) = exchange(addr, "POST", "/epidemic", "[]");
    assert_eq!(status, 400, "{body}");
    let (status, body) = exchange(addr, "POST", "/epidemic", "{}");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("seed_city"), "{body}");
    let (status, body) = exchange(
        addr,
        "POST",
        "/epidemic",
        "{\"seed_city\": \"City 0\", \"beta\": -1}",
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("beta"), "{body}");

    // A declared body over the limit is refused from the headers alone.
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST /epidemic HTTP/1.1\r\nHost: t\r\nContent-Length: 99999999\r\n\r\n"
    )
    .expect("send");
    let (status, body) = read_response(&mut BufReader::new(stream));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("exceeds"), "{body}");

    server.stop();
}

// --- determinism under concurrency ------------------------------------

#[test]
fn concurrent_identical_requests_return_byte_identical_bodies() {
    let server = start(bundle(7, 23), 4);
    let addr = server.addr();
    let target = "/predict?origin=0&dest=3";

    let (status, reference) = get(addr, target);
    assert_eq!(status, 200);

    let threads: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut bodies = Vec::new();
                for _ in 0..16 {
                    let (status, body) = get(addr, target);
                    assert_eq!(status, 200);
                    bodies.push(body);
                }
                bodies
            })
        })
        .collect();
    for t in threads {
        for body in t.join().expect("client thread") {
            assert_eq!(body, reference);
        }
    }

    server.stop();
}

// --- the scenario endpoint ---------------------------------------------

#[test]
fn epidemic_scenarios_run_deterministically_over_the_artifact() {
    let server = start(bundle(5, 17), 2);
    let addr = server.addr();
    let body = "{\"seed_city\": \"City 0\", \"days\": 30}";

    let (status, first) = exchange(addr, "POST", "/epidemic", body);
    assert_eq!(status, 200, "{first}");
    let doc: Value = serde_json::from_str(&first).expect("valid json");
    assert_eq!(doc["seed_city"], "City 0");
    assert_eq!(doc["model"], "gravity2");
    assert_eq!(doc["r0"].as_f64(), Some(2.5));
    assert_eq!(doc["days"].as_f64(), Some(30.0));
    let cities = doc["cities"].as_array().expect("cities array");
    assert_eq!(cities.len(), 5);
    for city in cities {
        assert!(city["peak_infected"].as_f64().is_some());
        assert!(city["final_size"].as_f64().is_some());
    }

    // Identical scenario, identical bytes.
    let (status, second) = exchange(addr, "POST", "/epidemic", body);
    assert_eq!(status, 200);
    assert_eq!(second, first);

    server.stop();
}

// --- provenance, health, population, metrics ---------------------------

#[test]
fn provenance_is_served_verbatim_or_404_when_absent() {
    let bare = start(bundle(4, 5), 1);
    let (status, body) = get(bare.addr(), "/provenance");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("no provenance"), "{body}");
    bare.stop();

    let manifest = r#"{"schema_version": 1, "seed": 42, "subcommand": "fit"}"#;
    let mut b = bundle(4, 5);
    b.set_provenance(manifest.to_string());
    let server = start(b, 1);
    let (status, body) = get(server.addr(), "/provenance");
    assert_eq!(status, 200);
    assert_eq!(body, manifest);
    server.stop();
}

#[test]
fn health_population_and_metrics_answer_from_the_bundle() {
    let b = bundle(6, 31);
    let server = start(b.clone(), 2);
    let addr = server.addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let doc: Value = serde_json::from_str(&body).expect("healthz json");
    assert_eq!(doc["status"], "ok");
    assert_eq!(doc["areas"].as_u64(), Some(6));

    let (status, body) = get(addr, "/population");
    assert_eq!(status, 200);
    let doc: Value = serde_json::from_str(&body).expect("population json");
    assert_eq!(doc["label"], "serve-test");
    assert_eq!(doc["population_source"], "twitter");
    let areas = doc["areas"].as_array().expect("areas array");
    assert_eq!(areas.len(), 6);
    assert_eq!(areas[0]["name"], "City 0");
    assert_eq!(
        areas[2]["census_population"].as_f64(),
        Some(b.areas()[2].census_population)
    );

    // Metrics render the per-endpoint counters and latency histograms
    // this very test populated (the registry is process-global).
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("serve/healthz/requests"), "metrics missing healthz counter");
    assert!(body.contains("serve/population/latency_ns"), "metrics missing latency histogram");
    assert!(body.contains("\"overflow\""), "latency histograms must render overflow");

    server.stop();
}
