//! The serving layer must be format-blind: a bundle fitted from a
//! dataset that round-tripped the `TWC0` columnar encoding answers
//! every HTTP query byte-identically to a bundle fitted through the
//! row-struct pipeline (`Tweet` vec → `from_tweets` re-sort). This is
//! the end-to-end guarantee behind `tweetmob convert` + `fit` + `serve`:
//! the on-disk format a dataset travelled through leaves no trace in
//! the predictions.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use tweetmob_core::{Experiment, Scale};
use tweetmob_data::{columnar, ModelBundle, TweetDataset};
use tweetmob_serve::{serve, AppState, ServerHandle};
use tweetmob_synth::{GeneratorConfig, TweetGenerator};

fn start(bundle: ModelBundle, workers: usize) -> ServerHandle {
    serve("127.0.0.1:0", AppState::new(Arc::new(bundle)), workers).expect("bind test server")
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    )
    .expect("send");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8 body"))
}

fn fitted_bundle(ds: &TweetDataset) -> ModelBundle {
    Experiment::new(ds)
        .fit(Scale::National)
        .expect("fit national models")
        .1
}

#[test]
fn bundle_fitted_from_twc0_serves_byte_identical_predictions() {
    let ds = TweetGenerator::new(GeneratorConfig::small()).generate();

    // Row-struct pipeline: materialise Tweet rows and rebuild through
    // the sorting constructor — the pre-columnar load path.
    let row_ds = TweetDataset::from_tweets(ds.iter_tweets().collect());

    // Columnar pipeline: round-trip the TWC0 encoding.
    let mut encoded = Vec::new();
    columnar::write_columnar(&ds, &mut encoded).expect("encode TWC0");
    let col_ds = columnar::decode_columnar(&encoded).expect("decode TWC0");
    assert_eq!(col_ds, row_ds, "decoded dataset differs from the row path");

    let row_server = start(fitted_bundle(&row_ds), 2);
    let col_server = start(fitted_bundle(&col_ds), 2);

    // Every query class the read API exposes, byte for byte.
    for target in [
        "/predict?origin=0&dest=1",
        "/predict?origin=Sydney&dest=Melbourne",
        "/predict?model=radiation&origin=2&dest=7",
        "/predict?model=opportunities&origin=3&dest=5",
        "/top_k?origin=0&k=5",
        "/top_k?model=gravity2&origin=1&k=3",
        "/population",
    ] {
        let (row_status, row_body) = get(row_server.addr(), target);
        let (col_status, col_body) = get(col_server.addr(), target);
        assert_eq!(row_status, 200, "{target}: {row_body}");
        assert_eq!(col_status, 200, "{target}: {col_body}");
        assert_eq!(row_body, col_body, "{target} diverged across formats");
    }

    row_server.stop();
    col_server.stop();
}
