//! Request routing and the endpoint handlers.
//!
//! Every handler is a pure read over the shared, immutable
//! [`ModelBundle`] — no locks, no mutation — so responses are
//! byte-deterministic regardless of request interleaving. All input
//! validation funnels through [`ApiError`]; the only `5xx` the layer
//! can produce is for states a client cannot cause.

use crate::http::{Request, Response};
use serde_json::{json, Value};
use std::sync::Arc;
use tweetmob_data::{ModelBundle, QueryError};
use tweetmob_epidemic::{MobilityNetwork, OutbreakScenario, SeirParams};
use tweetmob_models::ModelKind;
use tweetmob_obs::{Timer, SERVE_LATENCY_BOUNDS_NS};

/// Hard ceiling on scenario length, days. RK4 at `dt = 0.25` makes a
/// day four steps over an `n²` network; a decade bounds worst-case CPU
/// per request without constraining any realistic outbreak question.
const MAX_SCENARIO_DAYS: f64 = 3650.0;

/// Fixed RK4 step, days — the same step the CLI `epidemic` command
/// uses, so the two answer identically.
const SCENARIO_DT: f64 = 0.25;

/// Shared server state: the artifact, loaded once, shared read-only.
#[derive(Clone)]
pub struct AppState {
    bundle: Arc<ModelBundle>,
}

impl AppState {
    /// Wraps a loaded bundle for sharing across worker threads.
    #[must_use]
    pub fn new(bundle: Arc<ModelBundle>) -> Self {
        AppState { bundle }
    }

    /// The artifact this server answers from.
    #[must_use]
    pub fn bundle(&self) -> &ModelBundle {
        &self.bundle
    }
}

/// A client-visible failure: an HTTP status plus a message rendered as
/// `{"error": ...}`. Constructors exist for each status the API emits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// The HTTP status (400, 404, 405).
    pub status: u16,
    /// Human-readable cause, echoed into the JSON body.
    pub message: String,
}

impl ApiError {
    /// `400 Bad Request`.
    #[must_use]
    pub fn bad_request(message: String) -> Self {
        ApiError { status: 400, message }
    }

    /// `404 Not Found`.
    #[must_use]
    pub fn not_found(message: String) -> Self {
        ApiError { status: 404, message }
    }

    /// `405 Method Not Allowed`.
    #[must_use]
    pub fn method_not_allowed(method: &str, path: &str, allowed: &str) -> Self {
        ApiError {
            status: 405,
            message: format!("{method} is not supported on {path}; use {allowed}"),
        }
    }

    /// Renders the error as its JSON response.
    #[must_use]
    pub fn into_response(self) -> Response {
        Response {
            status: self.status,
            content_type: "application/json",
            body: json!({ "error": self.message }).to_string(),
        }
    }
}

impl From<QueryError> for ApiError {
    /// Query errors carry their own precise messages (including the
    /// valid index range); the mapping only picks the status: a name
    /// that resolves to nothing is a missing resource (`404`), every
    /// other shape of bad input is a `400`.
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::UnknownArea { .. } => ApiError::not_found(e.to_string()),
            _ => ApiError::bad_request(e.to_string()),
        }
    }
}

/// Routes one request and records per-endpoint observability: a
/// `serve/<endpoint>/requests` counter, a `serve/<endpoint>/errors`
/// counter for 4xx/5xx, and a `serve/<endpoint>/latency_ns` histogram
/// over [`SERVE_LATENCY_BOUNDS_NS`] — wide enough that even a
/// cold-start request lands in a finite bucket (`GET /metrics` renders
/// the `overflow` count that would betray saturation).
#[must_use]
pub fn handle(state: &AppState, req: &Request) -> Response {
    let timer = Timer::start();
    let endpoint = endpoint_label(&req.path);
    let response = route(state, req).unwrap_or_else(ApiError::into_response);
    let registry = tweetmob_obs::global();
    registry.counter(&format!("serve/{endpoint}/requests")).add(1);
    if response.status >= 400 {
        registry.counter(&format!("serve/{endpoint}/errors")).add(1);
    }
    registry
        .histogram(&format!("serve/{endpoint}/latency_ns"), &SERVE_LATENCY_BOUNDS_NS)
        .record(timer.elapsed_ns());
    response
}

/// Metric label for a request path: the known endpoint name, or
/// `"other"` so unknown paths cannot mint unbounded metric names.
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "healthz",
        "/population" => "population",
        "/predict" => "predict",
        "/top_k" => "top_k",
        "/epidemic" => "epidemic",
        "/provenance" => "provenance",
        "/metrics" => "metrics",
        _ => "other",
    }
}

fn route(state: &AppState, req: &Request) -> Result<Response, ApiError> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Ok(healthz(state)),
        ("GET", "/population") => Ok(population(state)),
        ("GET", "/predict") => predict(state, req),
        ("GET", "/top_k") => top_k(state, req),
        ("POST", "/epidemic") => epidemic(state, req),
        ("GET", "/provenance") => provenance(state),
        ("GET", "/metrics") => Ok(Response::json(tweetmob_obs::global().to_json())),
        (_, "/healthz" | "/population" | "/predict" | "/top_k" | "/provenance" | "/metrics") => {
            Err(ApiError::method_not_allowed(&req.method, &req.path, "GET"))
        }
        (_, "/epidemic") => Err(ApiError::method_not_allowed(&req.method, &req.path, "POST")),
        _ => Err(ApiError::not_found(format!(
            "no such endpoint {:?}; try /healthz, /population, /predict, /top_k, /epidemic, \
             /provenance or /metrics",
            req.path
        ))),
    }
}

fn healthz(state: &AppState) -> Response {
    Response::json(
        json!({
            "status": "ok",
            "areas": state.bundle().len(),
            "label": state.bundle().meta().label,
        })
        .to_string(),
    )
}

fn population(state: &AppState) -> Response {
    let bundle = state.bundle();
    let areas: Vec<Value> = bundle
        .areas()
        .iter()
        .zip(bundle.populations())
        .map(|(area, &model_pop)| {
            json!({
                "name": area.name,
                "lat": area.center.lat,
                "lon": area.center.lon,
                "census_population": area.census_population,
                "model_population": model_pop,
            })
        })
        .collect();
    Response::json(
        json!({
            "label": bundle.meta().label,
            "population_source": bundle.meta().population_source,
            "radius_km": bundle.meta().radius_km,
            "areas": areas,
        })
        .to_string(),
    )
}

/// The model kinds a `model=` parameter names: one kind, or all four
/// for the CLI-compatible `all` (also the default when absent).
fn model_param(req: &Request) -> Result<Vec<ModelKind>, ApiError> {
    match req.query.get("model").map(String::as_str) {
        None => Ok(ModelKind::ALL.to_vec()),
        Some(m) if m.eq_ignore_ascii_case("all") => Ok(ModelKind::ALL.to_vec()),
        Some(m) => Ok(vec![
            ModelBundle::resolve_model(m).map_err(|e| ApiError::bad_request(format!("{e}, or all")))?,
        ]),
    }
}

/// Resolves a `origin=` / `dest=` parameter: an area name (the CLI's
/// case-insensitive lookup) or a bare numeric index into the bundle.
fn area_param(bundle: &ModelBundle, req: &Request, key: &str) -> Result<usize, ApiError> {
    let raw = req
        .query
        .get(key)
        .ok_or_else(|| ApiError::bad_request(format!("missing query parameter {key:?}")))?;
    if !raw.is_empty() && raw.bytes().all(|b| b.is_ascii_digit()) {
        let idx: usize = raw
            .parse()
            .map_err(|_| ApiError::bad_request(format!("{key}={raw:?} is not a valid index")))?;
        if idx >= bundle.len() {
            return Err(ApiError::bad_request(format!(
                "{key} index {idx} is out of range: the bundle covers {} areas \
                 (valid indices 0..={})",
                bundle.len(),
                bundle.len().saturating_sub(1)
            )));
        }
        return Ok(idx);
    }
    Ok(bundle.resolve_area(raw)?)
}

/// The canonical name of a resolved area index.
fn area_name(bundle: &ModelBundle, index: usize) -> Result<String, ApiError> {
    bundle
        .areas()
        .get(index)
        .map(|a| a.name.clone())
        .ok_or_else(|| ApiError::bad_request(format!("area index {index} is out of range")))
}

/// `GET /predict?model=&origin=&dest=` — the same JSON document
/// `tweetmob predict --json` prints for a pairwise query, byte for
/// byte (both emit through `serde_json` with identical key sets).
fn predict(state: &AppState, req: &Request) -> Result<Response, ApiError> {
    let bundle = state.bundle();
    let kinds = model_param(req)?;
    let origin = area_param(bundle, req, "origin")?;
    let dest = area_param(bundle, req, "dest")?;
    let map: serde_json::Map<String, Value> = kinds
        .iter()
        .map(|&k| Ok((k.key().to_string(), json!(bundle.predict(k, origin, dest)?))))
        .collect::<Result<_, QueryError>>()?;
    let doc = json!({
        "origin": area_name(bundle, origin)?,
        "dest": area_name(bundle, dest)?,
        "distance_km": bundle.geometry().distance(origin, dest),
        "predictions": map,
    });
    Ok(Response::json(doc.to_string()))
}

/// `GET /top_k?model=&origin=&k=` — the same JSON document `tweetmob
/// predict --json --top K` prints.
fn top_k(state: &AppState, req: &Request) -> Result<Response, ApiError> {
    let bundle = state.bundle();
    let kinds = model_param(req)?;
    let origin = area_param(bundle, req, "origin")?;
    let k: usize = match req.query.get("k") {
        None => 5,
        Some(raw) => raw
            .parse()
            .map_err(|_| ApiError::bad_request(format!("k={raw:?} is not a non-negative integer")))?,
    };
    let models: serde_json::Map<String, Value> = kinds
        .iter()
        .map(|&kind| {
            let ranked: Vec<Value> = bundle
                .top_k(kind, origin, k)?
                .into_iter()
                .map(|(dest, flow)| {
                    Ok(json!({
                        "dest": area_name(bundle, dest).map_err(|_| QueryError::DestOutOfRange {
                            dest,
                            len: bundle.len(),
                        })?,
                        "flow": flow,
                    }))
                })
                .collect::<Result<_, QueryError>>()?;
            Ok((kind.key().to_string(), json!(ranked)))
        })
        .collect::<Result<_, QueryError>>()?;
    let doc = json!({
        "origin": area_name(bundle, origin)?,
        "k": k,
        "models": models,
    });
    Ok(Response::json(doc.to_string()))
}

/// An optional finite number field of a JSON object, with a default
/// when absent or `null`. A present non-numeric value is a `400`, not
/// a silent default.
fn f64_field(obj: &Value, key: &str, default: f64) -> Result<f64, ApiError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) if v.is_null() => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| ApiError::bad_request(format!("field {key:?} must be a number"))),
    }
}

/// A positive, finite rate parameter.
fn positive_rate(name: &str, value: f64) -> Result<f64, ApiError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(ApiError::bad_request(format!(
            "field {name:?} must be a finite rate > 0, got {value}"
        )))
    }
}

/// `POST /epidemic` — runs a deterministic SIR/SEIR outbreak over the
/// artifact's fitted flows, exactly as `tweetmob epidemic
/// --artifact-in` would.
///
/// Body (all fields optional except `seed_city`):
///
/// ```json
/// {"seed_city": "Sydney", "model": "gravity2", "beta": 0.5,
///  "gamma": 0.2, "sigma": null, "days": 365, "leave_rate": 0.02,
///  "immune": 0.0}
/// ```
fn epidemic(state: &AppState, req: &Request) -> Result<Response, ApiError> {
    let bundle = state.bundle();
    let body: Value = if req.body.trim().is_empty() {
        json!({})
    } else {
        serde_json::from_str(&req.body)
            .map_err(|e| ApiError::bad_request(format!("request body is not valid JSON: {e}")))?
    };
    if body.as_object().is_none() {
        return Err(ApiError::bad_request(
            "request body must be a JSON object".into(),
        ));
    }

    let seed_city = body
        .get("seed_city")
        .and_then(Value::as_str)
        .ok_or_else(|| ApiError::bad_request("field \"seed_city\" (an area name) is required".into()))?;
    let seed_patch = bundle.resolve_area(seed_city)?;
    let kind = match body.get("model").and_then(Value::as_str) {
        None => ModelKind::Gravity2,
        Some(m) => ModelBundle::resolve_model(m)?,
    };
    let beta = positive_rate("beta", f64_field(&body, "beta", 0.5)?)?;
    let gamma = positive_rate("gamma", f64_field(&body, "gamma", 0.2)?)?;
    let days = f64_field(&body, "days", 365.0)?;
    if !days.is_finite() || days <= 0.0 || days > MAX_SCENARIO_DAYS {
        return Err(ApiError::bad_request(format!(
            "field \"days\" must be in (0, {MAX_SCENARIO_DAYS}], got {days}"
        )));
    }
    let leave_rate = positive_rate("leave_rate", f64_field(&body, "leave_rate", 0.02)?)?;
    let immune = f64_field(&body, "immune", 0.0)?;

    let network = MobilityNetwork::from_artifact(bundle, kind, leave_rate)
        .map_err(|e| ApiError::bad_request(e.to_string()))?;
    let mut scenario = OutbreakScenario::new(network, beta, gamma).seed(seed_patch, 20.0);
    if immune > 0.0 {
        scenario = scenario.with_initial_immunity(immune);
    }
    match body.get("sigma") {
        None => {}
        Some(v) if v.is_null() => {}
        Some(v) => {
            let sigma = v
                .as_f64()
                .ok_or_else(|| ApiError::bad_request("field \"sigma\" must be a number".into()))?;
            scenario = scenario.with_seir(SeirParams { sigma });
        }
    }
    let timeline = scenario
        .run_deterministic(days, SCENARIO_DT)
        .map_err(|e| ApiError::bad_request(e.to_string()))?;

    let cities: Vec<Value> = bundle
        .areas()
        .iter()
        .enumerate()
        .map(|(p, area)| {
            json!({
                "name": area.name,
                "arrival_day": timeline.arrival_time(p, 100.0),
                "peak_infected": timeline.peak_infected(p),
                "final_size": timeline.final_size(p),
            })
        })
        .collect();
    let doc = json!({
        "seed_city": area_name(bundle, seed_patch)?,
        "model": kind.key(),
        "beta": beta,
        "gamma": gamma,
        "r0": beta / gamma,
        "days": days,
        "cities": cities,
    });
    Ok(Response::json(doc.to_string()))
}

/// `GET /provenance` — the run manifest embedded at fit time, verbatim.
fn provenance(state: &AppState) -> Result<Response, ApiError> {
    match state.bundle().provenance() {
        Some(manifest) => Ok(Response::json(manifest.to_string())),
        None => Err(ApiError::not_found(
            "the artifact carries no provenance section (written by `tweetmob fit`)".into(),
        )),
    }
}
