//! The TCP front end: a bound listener fanned out over a fixed pool of
//! worker threads, each running a keep-alive accept/serve loop.
//!
//! This is the one sanctioned `thread::spawn` site outside
//! `tweetmob-par` (see the lint's par-layer rule): request fan-out is
//! I/O concurrency over immutable shared state — there is no chunk
//! order to keep deterministic and no compute to route through the
//! shared pool. Each worker owns a `try_clone` of the listener and
//! blocks in `accept`, so the kernel load-balances connections without
//! any queue of our own.

use crate::handlers::{handle, AppState};
use crate::http::{read_request, HttpError, Response};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-socket read/write timeout. A stalled or half-open client ties
/// up one worker for at most this long.
pub(crate) const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);

/// A running server: its resolved address and the means to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    listener: TcpListener,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound — with port `0` this is
    /// where the kernel put us.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the pool and joins every worker. The stop flag is raised,
    /// the shared listener is flipped non-blocking (all clones share
    /// the file description, so every *future* `accept` returns
    /// immediately), and one wake-up connection per worker unblocks
    /// anyone already parked in `accept`.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.listener.set_nonblocking(true);
        for _ in &self.workers {
            let _ = TcpStream::connect_timeout(&self.addr, SOCKET_TIMEOUT);
        }
        for worker in self.workers {
            let _ = worker.join();
        }
    }

    /// Blocks until every worker exits — for a foreground server this
    /// is "forever, or until the process is killed".
    pub fn join(self) {
        for worker in self.workers {
            let _ = worker.join();
        }
    }

    /// How many worker threads the pool is running.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

/// Binds `addr` and starts `workers` accept/serve threads (at least
/// one) over the shared state.
///
/// # Errors
///
/// Propagates bind/clone failures from the OS (address in use,
/// permission, exhausted descriptors).
pub fn serve<A: ToSocketAddrs>(
    addr: A,
    state: AppState,
    workers: usize,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let workers = workers.max(1);
    let mut handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let listener = listener.try_clone()?;
        let state = state.clone();
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || worker_loop(&listener, &state, &stop)));
    }
    Ok(ServerHandle {
        addr,
        stop,
        listener,
        workers: handles,
    })
}

fn worker_loop(listener: &TcpListener, state: &AppState, stop: &AtomicBool) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                // Stopping flips the listener non-blocking, so every
                // worker lands here; otherwise back off briefly so a
                // transient accept error (aborted handshake, fd
                // pressure) cannot hot-spin the worker.
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        serve_connection(stream, state, stop);
    }
}

/// Runs one connection's keep-alive loop until the client closes, asks
/// to close, errors, or the server is stopping.
fn serve_connection(stream: TcpStream, state: &AppState, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    // Responses go out in one write; disable Nagle so that write is a
    // segment on the wire immediately instead of parking behind the
    // peer's delayed ACK.
    let _ = stream.set_nodelay(true);
    let Ok(mut write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(Some(request)) => {
                let close = request.close || stop.load(Ordering::SeqCst);
                let response = handle(state, &request);
                if response.write_to(&mut write_half, close).is_err() || close {
                    return;
                }
            }
            Ok(None) => return,
            Err(e) => {
                // A malformed stream cannot be re-synchronised: answer
                // 400 once and drop the connection.
                let _ = bad_request_response(&e).write_to(&mut write_half, true);
                return;
            }
        }
    }
}

fn bad_request_response(e: &HttpError) -> Response {
    crate::handlers::ApiError::bad_request(e.to_string()).into_response()
}
