//! A small closed-loop load generator for the serving layer.
//!
//! Each client thread drives one keep-alive connection as fast as the
//! server answers, timing every exchange with [`tweetmob_obs::Timer`]
//! (the workspace's sanctioned clock). The committed `BENCH_serve.json`
//! is produced by the `serve_load` binary in `tweetmob-bench` running
//! this against an in-process server at 1–8 clients.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use tweetmob_obs::Timer;

/// Aggregated result of one load run at a fixed client count.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Concurrent client connections driving the server.
    pub clients: usize,
    /// Requests that completed with a `200`.
    pub ok: u64,
    /// Requests that completed with any other status, or failed at the
    /// socket level.
    pub errors: u64,
    /// Median request latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile request latency, nanoseconds.
    pub p99_ns: u64,
    /// Completed requests per second of wall time across all clients.
    pub requests_per_sec: f64,
}

/// One keep-alive HTTP client connection.
pub(crate) struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Wraps a connected stream.
    pub(crate) fn from_stream(stream: TcpStream) -> std::io::Result<Client> {
        let _ = stream.set_read_timeout(Some(crate::server::SOCKET_TIMEOUT));
        let _ = stream.set_write_timeout(Some(crate::server::SOCKET_TIMEOUT));
        // Requests are single-write; without TCP_NODELAY each exchange
        // eats a Nagle/delayed-ACK round (~40 ms) on loopback.
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Connects to `addr`.
    pub(crate) fn connect(addr: &SocketAddr) -> std::io::Result<Client> {
        Client::from_stream(TcpStream::connect_timeout(
            addr,
            crate::server::SOCKET_TIMEOUT,
        )?)
    }

    /// Sends one request and reads the response, returning the status
    /// code and body.
    pub(crate) fn exchange(
        &mut self,
        method: &str,
        target: &str,
        body: &str,
    ) -> std::io::Result<(u16, String)> {
        let wire = format!(
            "{method} {target} HTTP/1.1\r\nHost: tweetmob\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(wire.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<(u16, String)> {
        let bad = |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(bad("server closed the connection"));
        }
        let status: u16 = status_line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut content_length: usize = 0;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(bad("connection closed inside headers"));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad("malformed Content-Length"))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok((status, String::from_utf8_lossy(&body).into_owned()))
    }
}

/// Runs `requests_per_client` `GET target` requests on each of
/// `clients` concurrent connections against `addr`, and aggregates
/// latency quantiles and throughput.
///
/// # Errors
///
/// Fails only when a client cannot *connect*; per-request failures are
/// counted into [`LoadReport::errors`] instead.
pub fn run_load(
    addr: &SocketAddr,
    target: &str,
    clients: usize,
    requests_per_client: usize,
) -> std::io::Result<LoadReport> {
    let clients = clients.max(1);
    let wall = Timer::start();
    let mut joins = Vec::with_capacity(clients);
    for _ in 0..clients {
        let mut client = Client::connect(addr)?;
        let target = target.to_string();
        joins.push(std::thread::spawn(move || {
            let mut latencies = Vec::with_capacity(requests_per_client);
            let mut ok = 0u64;
            let mut errors = 0u64;
            for _ in 0..requests_per_client {
                let timer = Timer::start();
                match client.exchange("GET", &target, "") {
                    Ok((200, _)) => {
                        latencies.push(timer.elapsed_ns());
                        ok += 1;
                    }
                    Ok(_) => errors += 1,
                    Err(_) => {
                        errors += 1;
                        // The connection is dead; reconnect or stop.
                        match Client::connect_from_spawned(&client) {
                            Some(next) => client = next,
                            None => break,
                        }
                    }
                }
            }
            (latencies, ok, errors)
        }));
    }
    let mut latencies = Vec::new();
    let mut ok = 0u64;
    let mut errors = 0u64;
    for join in joins {
        if let Ok((lat, o, e)) = join.join() {
            latencies.extend(lat);
            ok += o;
            errors += e;
        } else {
            errors += 1;
        }
    }
    let elapsed_ns = wall.elapsed_ns().max(1);
    latencies.sort_unstable();
    Ok(LoadReport {
        clients,
        ok,
        errors,
        p50_ns: quantile(&latencies, 0.50),
        p99_ns: quantile(&latencies, 0.99),
        requests_per_sec: ok as f64 / (elapsed_ns as f64 / 1e9),
    })
}

impl Client {
    /// Reconnects to wherever an existing client points, best-effort.
    fn connect_from_spawned(previous: &Client) -> Option<Client> {
        let addr = previous.writer.peer_addr().ok()?;
        Client::connect(&addr).ok()
    }
}

/// Nearest-rank quantile of an ascending-sorted sample; `0` when empty.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted.get(rank.min(sorted.len() - 1)).copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::quantile;

    #[test]
    fn quantiles_use_nearest_rank_on_the_sorted_sample() {
        let sample: Vec<u64> = (1..=100).collect();
        // (len-1) * 0.5 = 49.5 rounds up to index 50, value 51.
        assert_eq!(quantile(&sample, 0.50), 51);
        assert_eq!(quantile(&sample, 0.99), 99);
        assert_eq!(quantile(&sample, 1.0), 100);
        assert_eq!(quantile(&[], 0.5), 0);
    }
}
