//! A deliberately small HTTP/1.1 subset: enough to parse the requests
//! the serving layer answers and to write well-formed responses, with
//! hard byte limits so no client can balloon server memory. Anything
//! outside the subset is a typed [`HttpError`] that the connection loop
//! turns into a `400` — never a panic.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};

/// Longest accepted request line (method + target + version), bytes.
const MAX_REQUEST_LINE_BYTES: usize = 8 * 1024;

/// Most headers accepted on one request.
const MAX_HEADERS: usize = 64;

/// Largest accepted request body, bytes. Scenario requests are a few
/// hundred bytes of JSON; a megabyte is already generous.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Why a request could not be parsed. Every variant maps to a `400`
/// (the connection is closed afterwards — a malformed stream cannot be
/// re-synchronised).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The request line was missing, overlong, or not `METHOD TARGET
    /// HTTP/1.x`.
    BadRequestLine,
    /// More than [`MAX_HEADERS`] header lines, or a header without `:`.
    BadHeader,
    /// `Content-Length` was present but not a base-10 integer.
    BadContentLength,
    /// The declared body length exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
    /// The underlying socket failed mid-request.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequestLine => write!(f, "malformed HTTP request line"),
            HttpError::BadHeader => write!(f, "malformed or too many HTTP headers"),
            HttpError::BadContentLength => write!(f, "Content-Length is not an integer"),
            HttpError::BodyTooLarge(n) => {
                write!(f, "request body of {n} bytes exceeds the {MAX_BODY_BYTES}-byte limit")
            }
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed request: method, decoded path, decoded query parameters
/// and the raw body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, ...).
    pub method: String,
    /// Percent-decoded path, query string stripped (e.g. `/predict`).
    pub path: String,
    /// Percent-decoded query parameters. Last occurrence of a repeated
    /// key wins; `BTreeMap` keeps iteration deterministic.
    pub query: BTreeMap<String, String>,
    /// Raw request body (empty unless `Content-Length` said otherwise).
    pub body: String,
    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`).
    pub close: bool,
}

/// Reads one request off a buffered stream. `Ok(None)` is a clean
/// end-of-stream before any bytes (the keep-alive loop's exit);
/// anything malformed is an [`HttpError`].
pub fn read_request<R: BufRead>(stream: &mut R) -> Result<Option<Request>, HttpError> {
    let Some(line) = read_line(stream, MAX_REQUEST_LINE_BYTES)? else {
        return Ok(None);
    };
    if line.is_empty() {
        return Err(HttpError::BadRequestLine);
    }
    let mut parts = line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(HttpError::BadRequestLine),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequestLine);
    }

    let mut content_length: usize = 0;
    let mut close = false;
    for n in 0..=MAX_HEADERS {
        let header = read_line(stream, MAX_REQUEST_LINE_BYTES)?.ok_or(HttpError::BadHeader)?;
        if header.is_empty() {
            break;
        }
        if n == MAX_HEADERS {
            return Err(HttpError::BadHeader);
        }
        let (name, value) = header.split_once(':').ok_or(HttpError::BadHeader)?;
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().map_err(|_| HttpError::BadContentLength)?;
        } else if name.eq_ignore_ascii_case("connection") {
            close = value.eq_ignore_ascii_case("close");
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge(content_length));
    }
    let mut body_bytes = vec![0u8; content_length];
    if content_length > 0 {
        std::io::Read::read_exact(stream, &mut body_bytes)
            .map_err(|e| HttpError::Io(e.to_string()))?;
    }
    let body = String::from_utf8_lossy(&body_bytes).into_owned();

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut query = BTreeMap::new();
    for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(percent_decode(k), percent_decode(v));
    }

    Ok(Some(Request {
        method: method.to_ascii_uppercase(),
        path: percent_decode(raw_path),
        query,
        body,
        close,
    }))
}

/// Reads one CRLF- (or LF-)terminated line, rejecting lines over
/// `limit` bytes. `Ok(None)` on immediate end-of-stream.
fn read_line<R: BufRead>(stream: &mut R, limit: usize) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match std::io::Read::read(stream, &mut byte) {
            Ok(0) => {
                return if buf.is_empty() {
                    Ok(None)
                } else {
                    Err(HttpError::Io("connection closed mid-line".into()))
                };
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return Ok(Some(String::from_utf8_lossy(&buf).into_owned()));
                }
                buf.push(byte[0]);
                if buf.len() > limit {
                    return Err(HttpError::BadRequestLine);
                }
            }
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }
}

/// Decodes `%XX` escapes and `+`-as-space. Invalid escapes pass through
/// literally — lenient by design, since the decoded text only ever
/// feeds name lookups and number parsing that reject garbage anyway.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            // Index on raw bytes, never slice `s`: an escape butting up
            // against multi-byte UTF-8 must not hit a char boundary.
            b'%' if i + 2 < bytes.len()
                && bytes[i + 1].is_ascii_hexdigit()
                && bytes[i + 2].is_ascii_hexdigit() =>
            {
                let hi = (bytes[i + 1] as char).to_digit(16).unwrap_or(0) as u8;
                let lo = (bytes[i + 2] as char).to_digit(16).unwrap_or(0) as u8;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// One response: status, reason, content type and body. Writing adds
/// `Content-Length` and a `Connection` header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code (200, 400, 404, 405, 500).
    pub status: u16,
    /// `Content-Type` of the body; handlers emit `application/json`.
    pub content_type: &'static str,
    /// The response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` JSON response.
    #[must_use]
    pub fn json(body: String) -> Self {
        Response {
            status: 200,
            content_type: "application/json",
            body,
        }
    }

    /// The standard reason phrase for this status code.
    #[must_use]
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Internal Server Error",
        }
    }

    /// Serializes the response onto a socket. `close` controls the
    /// `Connection` header, mirroring the request's wish.
    ///
    /// The whole response is assembled in memory and written with a
    /// single `write_all`: piecewise `write!` fragments on a raw socket
    /// become separate small segments, and Nagle's algorithm crossed
    /// with delayed ACKs turns each of those into a ~40 ms stall.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn write_to<W: Write>(&self, w: &mut W, close: bool) -> std::io::Result<()> {
        let connection = if close { "close" } else { "keep-alive" };
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        let mut wire = Vec::with_capacity(head.len() + self.body.len());
        wire.extend_from_slice(head.as_bytes());
        wire.extend_from_slice(self.body.as_bytes());
        w.write_all(&wire)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_get_with_query_and_escapes() {
        let req = parse("GET /predict?origin=New%20South+Wales&k=3 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.query.get("origin").map(String::as_str), Some("New South Wales"));
        assert_eq!(req.query.get("k").map(String::as_str), Some("3"));
        assert!(!req.close);
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let req = parse(
            "POST /epidemic HTTP/1.1\r\nContent-Length: 13\r\nConnection: close\r\n\r\n{\"beta\": 0.5}",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, "{\"beta\": 0.5}");
        assert!(req.close);
    }

    #[test]
    fn clean_eof_is_none_not_an_error() {
        assert_eq!(parse(""), Ok(None));
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        assert_eq!(parse("garbage\r\n\r\n"), Err(HttpError::BadRequestLine));
        assert_eq!(
            parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::BadHeader)
        );
        assert_eq!(
            parse("GET / HTTP/1.1\r\nContent-Length: many\r\n\r\n"),
            Err(HttpError::BadContentLength)
        );
        assert_eq!(
            parse(&format!(
                "GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            )),
            Err(HttpError::BodyTooLarge(MAX_BODY_BYTES + 1))
        );
    }

    #[test]
    fn invalid_percent_escapes_pass_through() {
        assert_eq!(percent_decode("a%zzb%2"), "a%zzb%2");
        assert_eq!(percent_decode("%41+%42"), "A B");
    }

    #[test]
    fn responses_carry_length_and_connection_headers() {
        let mut out = Vec::new();
        Response::json("{}".into()).write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
