//! # tweetmob-serve
//!
//! An HTTP layer over fitted model artifacts: load a `.tma` bundle
//! **once**, share it read-only across worker threads behind an
//! [`Arc<ModelBundle>`](tweetmob_data::ModelBundle), and answer flow
//! queries without ever refitting. This is the serving half of the
//! fit-once / predict-many split (`DESIGN.md` §13): `tweetmob fit`
//! produces the artifact, `tweetmob serve` turns it into a query
//! endpoint.
//!
//! ## Endpoints
//!
//! | route                                    | answer |
//! |------------------------------------------|--------|
//! | `GET /healthz`                           | liveness + area count |
//! | `GET /population`                        | the bundle's areas and populations |
//! | `GET /predict?model=&origin=&dest=`      | pairwise flow, same JSON as `tweetmob predict --json` |
//! | `GET /top_k?model=&origin=&k=`           | ranked destinations, same JSON as `tweetmob predict --json --top` |
//! | `POST /epidemic`                         | a deterministic outbreak scenario over the artifact's flows |
//! | `GET /provenance`                        | the run manifest embedded in the artifact (404 when absent) |
//! | `GET /metrics`                           | the process metrics registry, including per-endpoint latency |
//!
//! ## Design constraints
//!
//! * **No HTTP-reachable input may panic a handler.** Every query
//!   string, body and path is funnelled through typed errors
//!   ([`ApiError`], [`tweetmob_data::QueryError`]) into 4xx responses;
//!   the workspace lint's no-panic and panic-path rules hold over this
//!   crate's library code like any other.
//! * **Byte-deterministic responses.** Handlers are pure reads over an
//!   immutable bundle and serialize through the same `serde_json`
//!   emission the CLI uses, so N identical concurrent requests return
//!   byte-identical bodies and `GET /predict` output is `diff`-equal to
//!   `tweetmob predict --json` against the same artifact.
//! * **Std-only transport.** The listener is `std::net::TcpListener`
//!   with a small fixed pool of accept/worker threads — the one
//!   sanctioned `thread::spawn` site outside `tweetmob-par`, because
//!   request fan-out is I/O concurrency over immutable state, not
//!   data-parallel compute (no chunk-order determinism contract to
//!   uphold). Latency is sampled through [`tweetmob_obs::Timer`] so no
//!   clock is read outside `tweetmob-obs`.
//!
//! ## Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use tweetmob_data::ModelBundle;
//!
//! let bundle = ModelBundle::load_file("models.tma")?;
//! let state = tweetmob_serve::AppState::new(Arc::new(bundle));
//! let handle = tweetmob_serve::serve("127.0.0.1:0", state, 4)?;
//! println!("listening on {}", handle.addr());
//! handle.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod handlers;
mod http;
mod loadgen;
mod server;

pub use handlers::{handle, AppState, ApiError};
pub use http::{read_request, HttpError, Request, Response, MAX_BODY_BYTES};
pub use loadgen::{run_load, LoadReport};
pub use server::{serve, ServerHandle};
