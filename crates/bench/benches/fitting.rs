//! Ablation (DESIGN.md §6.4): log-space OLS fit cost vs observation
//! count, plus the statistics kernels the experiments lean on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use tweetmob_models::{FlowObservation, Gravity2Fit, Gravity4Fit, RadiationFit};
use tweetmob_stats::correlation::{log_pearson, pearson, spearman};
use tweetmob_stats::powerlaw::fit_alpha;

fn synthetic_observations(n: usize, seed: u64) -> Vec<FlowObservation> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let m = rng.random_range(1e3..1e6);
            let nn = rng.random_range(1e3..1e6);
            let d = rng.random_range(5.0..3_000.0);
            let s = rng.random_range(0.0..2e6);
            FlowObservation {
                origin_population: m,
                dest_population: nn,
                distance_km: d,
                intervening_population: s,
                observed_flow: 0.01 * m * nn / (d * d) * rng.random_range(0.5..2.0),
            }
        })
        .collect()
}

fn bench_fitting(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_fit");
    for n in [380usize, 10_000] {
        let obs = synthetic_observations(n, 5);
        group.bench_with_input(BenchmarkId::new("gravity4", n), &obs, |b, obs| {
            b.iter(|| Gravity4Fit::fit(black_box(obs)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("gravity2", n), &obs, |b, obs| {
            b.iter(|| Gravity2Fit::fit(black_box(obs)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("radiation", n), &obs, |b, obs| {
            b.iter(|| RadiationFit::fit(black_box(obs)).unwrap())
        });
    }
    group.finish();

    let mut rng = StdRng::seed_from_u64(9);
    let x: Vec<f64> = (0..10_000).map(|_| rng.random_range(1.0..1e6)).collect();
    let y: Vec<f64> = x.iter().map(|v| v * rng.random_range(0.5..2.0)).collect();
    let mut group = c.benchmark_group("stats_kernels");
    group.bench_function("pearson_10k", |b| {
        b.iter(|| pearson(black_box(&x), black_box(&y)).unwrap())
    });
    group.bench_function("log_pearson_10k", |b| {
        b.iter(|| log_pearson(black_box(&x), black_box(&y)).unwrap())
    });
    group.bench_function("spearman_10k", |b| {
        b.iter(|| spearman(black_box(&x), black_box(&y)).unwrap())
    });
    group.bench_function("powerlaw_mle_10k", |b| {
        b.iter(|| fit_alpha(black_box(&x), 1.0).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fitting
}
criterion_main!(benches);
