//! Ablation (DESIGN.md §6.5): Radiation's intervening-population term
//! `s(i, j)` — naive O(n) scan per pair vs the distance-sorted prefix-sum
//! structure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use tweetmob_geo::Point;
use tweetmob_models::InterveningPopulation;

fn random_areas(n: usize, seed: u64) -> (Vec<Point>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers = (0..n)
        .map(|_| {
            Point::new_unchecked(
                rng.random_range(-44.0..-10.0),
                rng.random_range(113.0..154.0),
            )
        })
        .collect();
    let pops = (0..n).map(|_| rng.random_range(1e3..1e6)).collect();
    (centers, pops)
}

fn bench_radiation(c: &mut Criterion) {
    let mut group = c.benchmark_group("intervening_population");
    for n in [20usize, 100, 400] {
        let (centers, pops) = random_areas(n, 11);
        let structure = InterveningPopulation::build(&centers, &pops);
        // All ordered pairs via the prefix-sum structure.
        group.bench_with_input(BenchmarkId::new("prefix_all_pairs", n), &n, |b, &n| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..n {
                    for j in 0..n {
                        if i != j {
                            acc += structure.s(black_box(i), black_box(j));
                        }
                    }
                }
                acc
            })
        });
        // Naive O(n) scan per pair.
        group.bench_with_input(BenchmarkId::new("naive_all_pairs", n), &n, |b, &n| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..n {
                    for j in 0..n {
                        if i != j {
                            acc += structure.s_naive(black_box(i), black_box(j));
                        }
                    }
                }
                acc
            })
        });
        // Build cost amortised over queries.
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| InterveningPopulation::build(black_box(&centers), black_box(&pops)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_radiation
}
criterion_main!(benches);
