//! Ablation (DESIGN.md §6.1): spatial-grid cell size vs radius-query
//! latency, plus index build cost.
//!
//! The paper's extraction runs thousands of radius queries (ε = 0.5 … 50
//! km) over millions of points; cell size trades bucket-scan width
//! against cells touched.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use tweetmob_geo::{GridIndex, Point};

fn australian_cloud(n: usize, seed: u64) -> Vec<Point> {
    // Clustered around a few "cities" plus sparse background — mirrors
    // the real density skew the index has to serve.
    let centers = [
        (-33.87, 151.21),
        (-37.81, 144.96),
        (-27.47, 153.03),
        (-31.95, 115.86),
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if i % 10 == 0 {
                Point::new_unchecked(
                    rng.random_range(-44.0..-10.0),
                    rng.random_range(113.0..154.0),
                )
            } else {
                let (clat, clon) = centers[i % centers.len()];
                Point::new_unchecked(
                    clat + rng.random_range(-0.5..0.5),
                    clon + rng.random_range(-0.5..0.5),
                )
            }
        })
        .collect()
}

fn bench_grid(c: &mut Criterion) {
    let points = australian_cloud(200_000, 3);
    let sydney = Point::new_unchecked(-33.8688, 151.2093);

    let mut group = c.benchmark_group("grid_build");
    for cell in [0.05, 0.2, 1.0] {
        group.bench_with_input(BenchmarkId::from_parameter(cell), &cell, |b, &cell| {
            b.iter(|| GridIndex::build(black_box(points.clone()), cell))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("grid_radius_query");
    for cell in [0.05, 0.2, 1.0, 5.0] {
        let index = GridIndex::build(points.clone(), cell);
        for radius in [2.0, 50.0] {
            group.bench_with_input(
                BenchmarkId::new(format!("cell_{cell}"), radius),
                &radius,
                |b, &radius| b.iter(|| index.count_within_radius(black_box(sydney), radius)),
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("grid_knn");
    let index = GridIndex::build(points.clone(), 0.2);
    for k in [1usize, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| index.k_nearest(black_box(sydney), k))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_grid
}
criterion_main!(benches);
