//! Ablation (DESIGN.md §6.3): struct-of-arrays dataset layout vs a naive
//! record vector for the scan-heavy statistics passes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tweetmob_data::{DatasetSummary, Tweet, TweetDataset};
use tweetmob_synth::{GeneratorConfig, TweetGenerator};

fn bench_dataset(c: &mut Criterion) {
    let mut cfg = GeneratorConfig::small();
    cfg.n_users = 5_000;
    let ds = TweetGenerator::new(cfg).generate();
    let records: Vec<Tweet> = ds.iter_tweets().collect();
    let n = ds.n_tweets() as u64;

    let mut group = c.benchmark_group("dataset_scan");
    group.throughput(Throughput::Elements(n));
    // SoA: sequential scan over the timestamp column only.
    group.bench_function("waiting_times_soa", |b| {
        b.iter(|| black_box(&ds).waiting_times_secs())
    });
    // AoS baseline: same computation walking full records.
    group.bench_function("waiting_times_aos", |b| {
        b.iter(|| {
            let recs = black_box(&records);
            let mut out = Vec::new();
            let mut prev: Option<&Tweet> = None;
            for t in recs {
                if let Some(p) = prev {
                    if p.user == t.user {
                        out.push(t.time.seconds_since(p.time));
                    }
                }
                prev = Some(t);
            }
            out
        })
    });
    group.bench_function("summary_table1", |b| {
        b.iter(|| DatasetSummary::of(black_box(&ds)))
    });
    group.bench_function("tweets_per_user", |b| {
        b.iter(|| black_box(&ds).tweets_per_user())
    });
    group.finish();

    let mut group = c.benchmark_group("dataset_build");
    group.throughput(Throughput::Elements(n));
    group.bench_function("from_tweets_sort", |b| {
        b.iter(|| TweetDataset::from_tweets(black_box(records.clone())))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_dataset
}
criterion_main!(benches);
