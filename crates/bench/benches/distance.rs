//! Ablation (DESIGN.md §6.2): haversine vs equirectangular distance in
//! the extraction hot loop, plus the `TrigPoint` batch pairwise kernel
//! (DESIGN.md §11) against its scalar per-pair reference.
//!
//! The area-assignment pre-filter uses the equirectangular
//! approximation; this bench quantifies what that buys per call.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use tweetmob_geo::{
    bearing_deg, destination, equirectangular_km, haversine_km, pairwise_km, pairwise_km_direct,
    Point, TrigPoint,
};

fn random_points(n: usize, seed: u64) -> Vec<(Point, Point)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let a = Point::new_unchecked(
                rng.random_range(-44.0..-10.0),
                rng.random_range(113.0..154.0),
            );
            let b = Point::new_unchecked(
                rng.random_range(-44.0..-10.0),
                rng.random_range(113.0..154.0),
            );
            (a, b)
        })
        .collect()
}

fn bench_distance(c: &mut Criterion) {
    let pairs = random_points(1024, 7);
    let mut group = c.benchmark_group("distance");
    group.bench_function("haversine_1024", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(p, q) in &pairs {
                acc += haversine_km(black_box(p), black_box(q));
            }
            acc
        })
    });
    group.bench_function("equirectangular_1024", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(p, q) in &pairs {
                acc += equirectangular_km(black_box(p), black_box(q));
            }
            acc
        })
    });
    group.bench_function("bearing_1024", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(p, q) in &pairs {
                acc += bearing_deg(black_box(p), black_box(q));
            }
            acc
        })
    });
    group.bench_function("destination_1024", |b| {
        b.iter_batched(
            || pairs.clone(),
            |pairs| {
                let mut acc = 0.0;
                for (p, _) in pairs {
                    let d = destination(black_box(p), 45.0, 10.0);
                    acc += d.lat;
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// The geometry-cache construction kernel: the upper triangle over a
/// fixed point set through `TrigPoint` (per-point trig hoisted) vs the
/// scalar per-pair haversine reference — outputs are bit-identical, so
/// the delta is pure transcendental savings.
fn bench_pairwise(c: &mut Criterion) {
    let points: Vec<Point> = random_points(128, 11).into_iter().map(|(a, _)| a).collect();
    let mut group = c.benchmark_group("pairwise");
    group.bench_function("scalar_128", |b| {
        b.iter(|| pairwise_km_direct(black_box(&points)))
    });
    group.bench_function("trigpoint_128", |b| {
        b.iter(|| pairwise_km(black_box(&points)))
    });
    // The per-pair inner kernel alone, trig precomputed outside the loop
    // — the steady-state cost once a cache row is being filled.
    let trig: Vec<TrigPoint> = points.iter().copied().map(TrigPoint::new).collect();
    group.bench_function("trigpoint_inner_128", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (i, a) in trig.iter().enumerate() {
                for q in &trig[i + 1..] {
                    acc += black_box(a).distance_km(black_box(q));
                }
            }
            acc
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_distance, bench_pairwise
}
criterion_main!(benches);
