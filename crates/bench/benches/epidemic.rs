//! Ablation (DESIGN.md §6.6): deterministic RK4 vs stochastic binomial
//! stepping of the metapopulation model, per simulated day.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use tweetmob_epidemic::deterministic::{rk4_step, Rates as DetRates, State};
use tweetmob_epidemic::stochastic::{binomial, step as stoch_step, DiscreteState, Rates as StochRates};
use tweetmob_epidemic::MobilityNetwork;

fn dense_network(n: usize) -> MobilityNetwork {
    let populations: Vec<f64> = (0..n).map(|i| 50_000.0 + 1_000.0 * i as f64).collect();
    let mut flows = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                flows.push((i, j, 1.0 + ((i * 31 + j * 17) % 97) as f64));
            }
        }
    }
    MobilityNetwork::from_flows(populations, &flows, 0.05).unwrap()
}

fn bench_epidemic(c: &mut Criterion) {
    let mut group = c.benchmark_group("epidemic_step");
    for n in [20usize, 100] {
        let net = dense_network(n);
        let det_rates = DetRates {
            beta: 0.5,
            gamma: 0.2,
            sigma: Some(0.3),
        };
        let stoch_rates = StochRates {
            beta: 0.5,
            gamma: 0.2,
            sigma: Some(0.3),
        };
        let mut det_state = State::susceptible(&net, true);
        det_state.seed_infection(0, 100.0);
        group.bench_with_input(BenchmarkId::new("rk4", n), &n, |b, _| {
            b.iter(|| rk4_step(black_box(&net), &det_rates, black_box(&det_state), 0.25))
        });
        group.bench_with_input(BenchmarkId::new("stochastic", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut st = DiscreteState::susceptible(&net, true);
                st.seed_infection(0, 100);
                stoch_step(black_box(&net), &stoch_rates, &mut st, 0.25, &mut rng);
                st
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("binomial_sampler");
    let mut rng = StdRng::seed_from_u64(2);
    for (n, p) in [(50u64, 0.3), (100_000, 0.001), (1_000_000, 0.4)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_p{p}")),
            &(n, p),
            |b, &(n, p)| b.iter(|| binomial(&mut rng, black_box(n), black_box(p))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_epidemic
}
criterion_main!(benches);
