//! End-to-end pipeline benches: generator throughput, trip extraction,
//! population estimation — the costs that dominate a full paper
//! reproduction run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tweetmob_core::{extract_trips, AreaSet, Experiment, Scale};
use tweetmob_synth::{GeneratorConfig, TweetGenerator};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");
    for users in [1_000u32, 5_000] {
        let mut cfg = GeneratorConfig::small();
        cfg.n_users = users;
        group.throughput(Throughput::Elements(users as u64));
        group.bench_with_input(BenchmarkId::from_parameter(users), &cfg, |b, cfg| {
            b.iter(|| TweetGenerator::new(black_box(cfg.clone())).generate())
        });
    }
    group.finish();

    let mut cfg = GeneratorConfig::small();
    cfg.n_users = 5_000;
    let ds = TweetGenerator::new(cfg).generate();

    let mut group = c.benchmark_group("extraction");
    group.throughput(Throughput::Elements(ds.n_tweets() as u64));
    for scale in Scale::ALL {
        let areas = AreaSet::of_scale(scale);
        group.bench_with_input(
            BenchmarkId::new("trips", scale.name()),
            &areas,
            |b, areas| b.iter(|| extract_trips(black_box(&ds), areas)),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("experiment");
    group.bench_function("index_build", |b| b.iter(|| Experiment::new(black_box(&ds))));
    let exp = Experiment::new(&ds);
    group.bench_function("population_national", |b| {
        b.iter(|| exp.population_correlation(Scale::National).unwrap())
    });
    group.bench_function("mobility_national", |b| {
        b.iter(|| exp.mobility(Scale::National).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pipeline
}
criterion_main!(benches);
