//! Machine-normalized perf-regression harness.
//!
//! The `perf_regress` binary times every pipeline stage plus the hot
//! kernels, normalizes each timing by a fixed single-threaded
//! calibration workload run on the same machine, and merges the result
//! into the committed [`crate::BENCH_METRICS_PATH`] baseline under the
//! [`REGRESSION_KEY`] key. CI re-runs the same measurement and fails
//! when any stage's normalized ratio grew by more than the tolerance
//! (default [`DEFAULT_TOLERANCE`], overridable via [`TOLERANCE_ENV`]).
//!
//! Normalizing by the calibration workload makes the committed numbers
//! portable: a uniformly slower CI runner slows the calibration loop by
//! the same factor as the stages, leaving the ratios unchanged. What
//! the ratios *do* move on is a real per-stage slowdown — the thing the
//! harness exists to catch. All stages are timed at one worker thread
//! so scheduling noise cannot masquerade as (or hide) an algorithmic
//! regression; parallel-scaling health is the existing
//! `pipeline_bench` CI job's business.

use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::Arc;

use tweetmob_core::{extract_trips, AreaSet, Experiment, Scale};
use tweetmob_epidemic::{MobilityNetwork, OutbreakScenario};
use tweetmob_geo::{PairGeometry, Point};
use tweetmob_models::{Gravity4Fit, GravityGrid};
use tweetmob_obs::MetricsRegistry;

/// Top-level key the baseline lives under in
/// [`crate::BENCH_METRICS_PATH`].
pub const REGRESSION_KEY: &str = "regression";

/// Report document `perf_regress --check` writes next to the baseline.
pub const REGRESSION_CURRENT_PATH: &str = "BENCH_regression_current.json";

/// Baseline document schema version.
pub const REGRESSION_SCHEMA: u64 = 1;

/// Default per-stage tolerance: fail when a stage's normalized ratio
/// exceeds the baseline's by more than this fraction.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Environment variable overriding [`DEFAULT_TOLERANCE`] (a fraction,
/// e.g. `0.4` for 40%).
pub const TOLERANCE_ENV: &str = "TWEETMOB_PERF_TOLERANCE";

/// Absolute noise floor for the per-stage comparison, in calibration
/// units: a stage only *fails* when its ratio grew by more than this on
/// top of exceeding the relative tolerance. The stage ratios span three
/// orders of magnitude (sub-millisecond micro-stages next to
/// second-scale kernels), so a purely relative gate turns scheduler
/// jitter on the smallest stages into spurious failures while a
/// big-stage regression of the same *absolute* size sails under it —
/// one stage's scale must not set the sensitivity for another's. At the
/// reference calibration (~31 ms) this floor is ~0.6 ms.
pub const NOISE_FLOOR_RATIO: f64 = 0.02;

/// Timed passes per stage; the best (minimum) is kept, which is the
/// standard defence against one pass eating a scheduler hiccup.
pub const PASSES: u32 = 3;

const CALIBRATION_ROUNDS: u64 = 25_000_000;

/// Resolves the per-stage tolerance: [`TOLERANCE_ENV`] when set to a
/// finite non-negative number, [`DEFAULT_TOLERANCE`] otherwise.
pub fn tolerance() -> f64 {
    std::env::var(TOLERANCE_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t >= 0.0)
        .unwrap_or(DEFAULT_TOLERANCE)
}

/// The calibration workload: a serial FNV-1a-style mixing chain whose
/// loop-carried dependency defeats vectorization, so its wall time
/// tracks scalar core speed — the same resource the pipeline stages
/// spend most of their time on.
fn calibration_pass() -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for i in 0..CALIBRATION_ROUNDS {
        h ^= i;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// One stage's measurement: best-of-[`PASSES`] wall time and its ratio
/// to the calibration workload on the same machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StageSample {
    /// Best-of-passes wall time, nanoseconds.
    pub ns: u64,
    /// `ns / calibration_ns` — the machine-normalized number the
    /// baseline comparison runs on.
    pub ratio: f64,
}

/// A full measurement run: the calibration reading plus every stage.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Calibration workload wall time, nanoseconds (best of passes).
    pub calibration_ns: u64,
    /// Synthetic-dataset user count the stages ran over.
    pub n_users: u64,
    /// Generator seed the stages ran over.
    pub seed: u64,
    /// Per-stage samples, keyed by stage name.
    pub stages: BTreeMap<String, StageSample>,
}

/// Times `f` [`PASSES`] times (after one warm-up call) and returns the
/// fastest pass in nanoseconds, clamped to at least 1 so downstream
/// ratios stay finite. Span names are derived from `name`, which must
/// be unique per call.
fn best_of(stopwatch: &MetricsRegistry, name: &str, f: &mut dyn FnMut()) -> u64 {
    f(); // warm-up: fault in caches and lazy init outside the timing
    let mut best = u64::MAX;
    for pass in 0..PASSES {
        let span = format!("{name}/pass{pass}");
        {
            let _timer = stopwatch.span(&span);
            f();
        }
        let ns = stopwatch.span_stat(&span).map_or(0, |s| s.total_ns);
        best = best.min(ns.max(1));
    }
    best
}

/// Runs the calibration workload and every stage at one worker thread,
/// returning the machine-normalized measurement. Honours the
/// `TWEETMOB_USERS` / `TWEETMOB_SEED` knobs through
/// [`crate::standard_dataset`]; the baseline records both so `--check`
/// can refuse to compare measurements of different workloads.
pub fn measure() -> Measurement {
    let stopwatch = MetricsRegistry::new();
    let calibration_ns = best_of(&stopwatch, "calibration", &mut || {
        black_box(calibration_pass());
    });

    let (cfg, ds) = crate::standard_dataset();
    let mut stages: BTreeMap<String, StageSample> = BTreeMap::new();
    let mut stage = |name: &str, f: &mut dyn FnMut()| {
        let ns = best_of(&stopwatch, name, &mut || tweetmob_par::with_threads(1, &mut *f));
        let sample = StageSample {
            ns,
            ratio: ns as f64 / calibration_ns.max(1) as f64,
        };
        println!("  {name:<24} {ns:>12} ns   ratio {:.4}", sample.ratio);
        stages.insert(name.to_string(), sample);
    };

    let gen_cfg = cfg.clone();
    stage("synth/generate", &mut || {
        let ds = tweetmob_synth::TweetGenerator::new(gen_cfg.clone()).generate();
        black_box(ds.n_tweets());
    });

    // Both load paths over in-memory images of the same dataset: the
    // row format re-parses and re-sorts, the columnar format decodes
    // flat sections — the rows-vs-columnar gap is the paperscale bench's
    // headline, and baselining both keeps either from regressing alone.
    let mut rows_image = Vec::new();
    tweetmob_data::binary::write_binary(&ds, &mut rows_image)
        // lint: allow(no-panic) — Vec writer cannot fail
        .expect("encode rows image");
    stage("data/load-rows", &mut || {
        let ds = tweetmob_data::binary::read_binary(&rows_image[..])
            // lint: allow(no-panic) — decoding bytes this process encoded
            .expect("decode rows image");
        black_box(ds.n_tweets());
    });
    let mut col_image = Vec::new();
    tweetmob_data::columnar::write_columnar(&ds, &mut col_image)
        // lint: allow(no-panic) — Vec writer cannot fail
        .expect("encode columnar image");
    stage("data/load-columnar", &mut || {
        let ds = tweetmob_data::columnar::decode_columnar(&col_image)
            // lint: allow(no-panic) — decoding bytes this process encoded
            .expect("decode columnar image");
        black_box(ds.n_tweets());
    });

    let areas = AreaSet::of_scale(Scale::National);
    stage("trips", &mut || {
        let od = extract_trips(&ds, &areas);
        black_box(od.iter_pairs().count());
    });

    let exp = Experiment::new(&ds);
    stage("population", &mut || {
        black_box(
            exp.population_correlation(Scale::National)
                // lint: allow(no-panic) — bench harness over the standard
                // dataset, which always yields a correlation
                .expect("population correlation on the standard dataset"),
        );
    });

    let report = exp
        .mobility(Scale::National)
        // lint: allow(no-panic) — bench harness over the standard dataset,
        // which always yields national trips
        .expect("mobility report on the standard dataset");
    let grid = GravityGrid::default();
    stage("gravity-grid", &mut || {
        black_box(
            Gravity4Fit::fit_grid(&report.observations, &grid)
                // lint: allow(no-panic) — the default lattice is non-empty
                .expect("grid search over the default lattice"),
        );
    });

    let od = extract_trips(&ds, &areas);
    let flows: Vec<(usize, usize, f64)> = od
        .iter_pairs()
        .map(|(i, j, count)| (i, j, count as f64))
        .collect();
    let network = MobilityNetwork::from_flows(areas.census_populations(), &flows, 0.05)
        // lint: allow(no-panic) — national areas and extracted flows are
        // well-formed by construction
        .expect("national network");
    let scenario = OutbreakScenario::new(network, 0.5, 0.2).seed(0, 100.0);
    stage("epidemic/replicates", &mut || {
        black_box(
            scenario
                .run_stochastic_replicates(60.0, 0.5, 0xC0FFEE, 8)
                // lint: allow(no-panic) — horizon, step and replicate count
                // are fixed valid constants
                .expect("validated scenario"),
        );
    });

    // 2,000 points (down from 4,000): the O(n²) build made this one
    // stage's ratio dwarf every other's, which let its noise budget
    // dominate the whole baseline. Quartering the work keeps the kernel
    // covered while the ratios stay within an order of magnitude of the
    // pipeline stages.
    let points: Vec<Point> = ds.iter_points().take(2_000).collect();
    stage("kernels/pair-geometry", &mut || {
        let geometry: Arc<PairGeometry> = PairGeometry::shared(&points);
        let mut acc = 0.0;
        for i in 0..points.len() {
            acc += geometry.distance(i, (i + 17) % points.len());
        }
        black_box(acc);
    });

    Measurement {
        calibration_ns,
        n_users: u64::from(cfg.n_users),
        seed: cfg.seed,
        stages,
    }
}

impl Measurement {
    /// Renders the baseline document stored under [`REGRESSION_KEY`].
    pub fn to_value(&self) -> serde_json::Value {
        let mut stages = serde_json::Map::new();
        for (name, sample) in &self.stages {
            let mut entry = serde_json::Map::new();
            entry.insert("ns".into(), serde_json::Value::from(sample.ns));
            entry.insert("ratio".into(), serde_json::Value::from(sample.ratio));
            stages.insert(name.clone(), serde_json::Value::Object(entry));
        }
        let mut doc = serde_json::Map::new();
        doc.insert(
            "schema".into(),
            serde_json::Value::from(REGRESSION_SCHEMA),
        );
        doc.insert(
            "calibration_ns".into(),
            serde_json::Value::from(self.calibration_ns),
        );
        doc.insert("threads".into(), serde_json::Value::from(1u64));
        doc.insert("n_users".into(), serde_json::Value::from(self.n_users));
        doc.insert("seed".into(), serde_json::Value::from(self.seed));
        doc.insert(
            "tolerance_default".into(),
            serde_json::Value::from(DEFAULT_TOLERANCE),
        );
        doc.insert("stages".into(), serde_json::Value::Object(stages));
        serde_json::Value::Object(doc)
    }
}

/// Extracts `stage name → normalized ratio` from a baseline document
/// (the value stored under [`REGRESSION_KEY`]). Returns `None` when the
/// document has no `stages` object.
pub fn stage_ratios(baseline: &serde_json::Value) -> Option<BTreeMap<String, f64>> {
    let stages = baseline.get("stages")?.as_object()?;
    Some(
        stages
            .iter()
            .filter_map(|(name, entry)| Some((name.clone(), entry.get("ratio")?.as_f64()?)))
            .collect(),
    )
}

/// Outcome of comparing one stage against the baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance of the baseline (or faster).
    Pass,
    /// Slower than the baseline by more than the tolerance.
    Regressed,
    /// Measured now but absent from the baseline — passes, and flags
    /// that the baseline wants a refresh.
    New,
    /// In the baseline but not measured now — fails, because a silently
    /// vanished stage would otherwise hide a regression forever.
    Missing,
}

impl Verdict {
    /// Lower-case name used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Regressed => "regressed",
            Verdict::New => "new",
            Verdict::Missing => "missing",
        }
    }

    /// Whether this verdict fails the comparison as a whole.
    pub fn is_failure(self) -> bool {
        matches!(self, Verdict::Regressed | Verdict::Missing)
    }
}

/// One stage's row in a baseline comparison.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Stage name.
    pub stage: String,
    /// Baseline normalized ratio, when the baseline has this stage.
    pub baseline_ratio: Option<f64>,
    /// Current normalized ratio, when this run measured the stage.
    pub current_ratio: Option<f64>,
    /// Fractional change, `current / baseline - 1`, when both exist.
    pub change: Option<f64>,
    /// The verdict under the tolerance the comparison ran with.
    pub verdict: Verdict,
}

/// Compares current stage ratios against the baseline's. A stage fails
/// only when its change is *strictly* greater than `tolerance` AND its
/// absolute ratio growth is strictly greater than [`NOISE_FLOOR_RATIO`]
/// — the relative gate catches real slowdowns on substantial stages, the
/// absolute floor keeps sub-millisecond stages from flapping on jitter
/// (and keeps their scale from forcing a looser tolerance on everything
/// else). A change of exactly the tolerance passes. A non-positive
/// baseline ratio is unusable for a relative comparison and is treated
/// as [`Verdict::New`]. Rows come back in stage-name order.
pub fn compare(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    tolerance: f64,
) -> Vec<Comparison> {
    let names: std::collections::BTreeSet<&String> =
        baseline.keys().chain(current.keys()).collect();
    names
        .into_iter()
        .map(|name| {
            let b = baseline.get(name).copied();
            let c = current.get(name).copied();
            let (change, verdict) = match (b, c) {
                (Some(b), Some(c)) if b > 0.0 => {
                    let change = c / b - 1.0;
                    let verdict = if change > tolerance && c - b > NOISE_FLOOR_RATIO {
                        Verdict::Regressed
                    } else {
                        Verdict::Pass
                    };
                    (Some(change), verdict)
                }
                (_, Some(_)) => (None, Verdict::New),
                // Covers (Some, None); (None, None) cannot reach here —
                // every name came from one of the two maps — and Missing
                // is the conservative verdict if it somehow did.
                _ => (None, Verdict::Missing),
            };
            Comparison {
                stage: name.clone(),
                baseline_ratio: b,
                current_ratio: c,
                change,
                verdict,
            }
        })
        .collect()
}

/// Whether a whole comparison passes: no row carries a failing verdict.
pub fn passes(rows: &[Comparison]) -> bool {
    rows.iter().all(|row| !row.verdict.is_failure())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratios(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn change_at_exactly_the_tolerance_passes() {
        let rows = compare(&ratios(&[("a", 2.0)]), &ratios(&[("a", 2.5)]), 0.25);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].verdict, Verdict::Pass);
        assert!((rows[0].change.unwrap() - 0.25).abs() < 1e-12);
        assert!(passes(&rows));
    }

    #[test]
    fn change_above_the_tolerance_regresses() {
        let rows = compare(&ratios(&[("a", 2.0)]), &ratios(&[("a", 2.51)]), 0.25);
        assert_eq!(rows[0].verdict, Verdict::Regressed);
        assert!(!passes(&rows));
    }

    #[test]
    fn tiny_stage_jitter_stays_under_the_noise_floor() {
        // +100% relative, but only +0.01 absolute — below the floor.
        let rows = compare(&ratios(&[("micro", 0.01)]), &ratios(&[("micro", 0.02)]), 0.25);
        assert_eq!(rows[0].verdict, Verdict::Pass);
        // The same absolute growth pushed past the floor regresses.
        let rows = compare(&ratios(&[("micro", 0.01)]), &ratios(&[("micro", 0.04)]), 0.25);
        assert_eq!(rows[0].verdict, Verdict::Regressed);
    }

    #[test]
    fn speedups_pass() {
        let rows = compare(&ratios(&[("a", 2.0)]), &ratios(&[("a", 0.5)]), 0.25);
        assert_eq!(rows[0].verdict, Verdict::Pass);
        assert!(rows[0].change.unwrap() < 0.0);
    }

    #[test]
    fn new_stage_passes_and_missing_stage_fails() {
        let rows = compare(
            &ratios(&[("gone", 1.0)]),
            &ratios(&[("fresh", 1.0)]),
            0.25,
        );
        let by_name = |n: &str| rows.iter().find(|r| r.stage == n).unwrap();
        assert_eq!(by_name("fresh").verdict, Verdict::New);
        assert_eq!(by_name("gone").verdict, Verdict::Missing);
        assert!(!passes(&rows));
    }

    #[test]
    fn non_positive_baseline_is_treated_as_new() {
        let rows = compare(&ratios(&[("a", 0.0)]), &ratios(&[("a", 1.0)]), 0.25);
        assert_eq!(rows[0].verdict, Verdict::New);
        assert!(passes(&rows));
    }

    #[test]
    fn measurement_value_round_trips_through_stage_ratios() {
        let mut stages = BTreeMap::new();
        stages.insert(
            "a".to_string(),
            StageSample {
                ns: 500,
                ratio: 0.5,
            },
        );
        stages.insert(
            "b".to_string(),
            StageSample {
                ns: 2_000,
                ratio: 2.0,
            },
        );
        let m = Measurement {
            calibration_ns: 1_000,
            n_users: 5_000,
            seed: 42,
            stages,
        };
        let value = m.to_value();
        assert_eq!(value["schema"].as_u64(), Some(REGRESSION_SCHEMA));
        assert_eq!(value["n_users"].as_u64(), Some(5_000));
        let ratios = stage_ratios(&value).expect("stages object present");
        assert_eq!(ratios.len(), 2);
        assert!((ratios["a"] - 0.5).abs() < 1e-12);
        assert!((ratios["b"] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tolerance_env_overrides_and_rejects_garbage() {
        std::env::remove_var(TOLERANCE_ENV);
        assert!((tolerance() - DEFAULT_TOLERANCE).abs() < 1e-12);
        std::env::set_var(TOLERANCE_ENV, "0.4");
        assert!((tolerance() - 0.4).abs() < 1e-12);
        std::env::set_var(TOLERANCE_ENV, "not-a-number");
        assert!((tolerance() - DEFAULT_TOLERANCE).abs() < 1e-12);
        std::env::set_var(TOLERANCE_ENV, "-1");
        assert!((tolerance() - DEFAULT_TOLERANCE).abs() < 1e-12);
        std::env::remove_var(TOLERANCE_ENV);
    }
}
