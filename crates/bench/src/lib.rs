//! # tweetmob-bench
//!
//! Paper-regeneration binaries and Criterion performance benches.
//!
//! One binary per paper artifact (run with
//! `cargo run --release -p tweetmob-bench --bin <name>`):
//!
//! | binary   | regenerates                                             |
//! |----------|---------------------------------------------------------|
//! | `table1` | Table I — dataset statistics                            |
//! | `fig1`   | Fig. 1 — tweet-density map of Australia                 |
//! | `fig2`   | Fig. 2 — tweets/user and waiting-time distributions     |
//! | `fig3`   | Fig. 3 — population correlation at three scales + ε sweep |
//! | `fig4`   | Fig. 4 — estimated-vs-extracted mobility scatters       |
//! | `table2` | Table II — Pearson + HitRate@50% per scale × model      |
//! | `all`    | everything above in sequence                            |
//!
//! Environment knobs (all optional):
//!
//! * `TWEETMOB_USERS` — synthetic user count (default 20,000; the paper's
//!   own scale is 473,956 — pass it for a full-scale run).
//! * `TWEETMOB_SEED` — generator seed (default the calibrated preset).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod regress;

use tweetmob_data::TweetDataset;
use tweetmob_synth::{GeneratorConfig, TweetGenerator};

/// The rolling bench-metrics document the regeneration binaries append
/// to: one top-level key per binary, each holding that run's pipeline
/// metrics (spans, counters, histograms) from the global registry.
pub const BENCH_METRICS_PATH: &str = "BENCH_pipeline.json";

/// The kernel-benchmark document `kernels_bench` writes: old-vs-new
/// timings for the pairwise-distance construction and the gravity grid
/// search at several thread counts, plus byte-equality verdicts.
pub const BENCH_KERNELS_PATH: &str = "BENCH_kernels.json";

/// The serving-latency document `serve_load` writes: p50/p99 request
/// latency and sustained req/s against an in-process `tweetmob-serve`
/// server at 1–8 concurrent clients.
pub const BENCH_SERVE_PATH: &str = "BENCH_serve.json";

/// The paper-scale document `paperscale_bench` writes: per-stage
/// timings of a full 6.3M-tweet / 474k-user end-to-end run (generate →
/// encode → load → population → trips → model fits) at 1–8 threads,
/// with row-struct-vs-columnar speedups and byte-identity verdicts.
pub const BENCH_PAPERSCALE_PATH: &str = "BENCH_paperscale.json";

/// Builds the standard experiment dataset, honouring the
/// `TWEETMOB_USERS` / `TWEETMOB_SEED` environment knobs.
pub fn standard_dataset() -> (GeneratorConfig, TweetDataset) {
    let mut cfg = GeneratorConfig::default();
    if let Some(n) = env_u64("TWEETMOB_USERS") {
        cfg.n_users = n.clamp(1, u32::MAX as u64) as u32;
    }
    if let Some(seed) = env_u64("TWEETMOB_SEED") {
        cfg.seed = seed;
    }
    let ds = TweetGenerator::new(cfg.clone()).generate();
    (cfg, ds)
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Merges this process's global metrics registry into
/// [`BENCH_METRICS_PATH`] under `bin_name`, creating the file when
/// absent. `extra` (skipped when `null`) lands next to the metrics as
/// `notes` — e.g. the overhead measurement below. A malformed existing
/// document is replaced rather than treated as an error, so a broken
/// bench run can never wedge all future ones.
///
/// # Errors
///
/// Propagates file-system failures.
pub fn emit_bench_metrics(bin_name: &str, extra: serde_json::Value) -> std::io::Result<()> {
    emit_bench_metrics_to(BENCH_METRICS_PATH, bin_name, extra)
}

/// As [`emit_bench_metrics`] but into an explicit document path, for
/// benches with their own artifact (e.g. `kernels_bench` →
/// [`BENCH_KERNELS_PATH`]).
///
/// # Errors
///
/// Propagates file-system failures.
pub fn emit_bench_metrics_to(
    path: &str,
    bin_name: &str,
    extra: serde_json::Value,
) -> std::io::Result<()> {
    let mut doc: serde_json::Value = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .filter(serde_json::Value::is_object)
        .unwrap_or_else(|| serde_json::json!({}));
    let metrics: serde_json::Value =
        serde_json::from_str(&tweetmob_obs::global().to_json()).unwrap_or(serde_json::Value::Null);
    let mut entry = serde_json::json!({ "metrics": metrics });
    if !extra.is_null() {
        entry["notes"] = extra;
    }
    doc[bin_name] = entry;
    let mut text = serde_json::to_string_pretty(&doc)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    text.push('\n');
    std::fs::write(path, text)
}

/// Times `workload` once with the global registry enabled and once
/// disabled (the no-op baseline), returning `(enabled_ns, disabled_ns)`.
/// A warm-up pass runs first so caches don't bias the enabled pass. The
/// stopwatch is a private always-on registry — the global one can't time
/// its own disabled pass.
pub fn measure_instrumentation_overhead<F: FnMut()>(mut workload: F) -> (u64, u64) {
    let stopwatch = tweetmob_obs::MetricsRegistry::new();
    let global = tweetmob_obs::global();
    workload();
    {
        let _timer = stopwatch.span("enabled");
        workload();
    }
    global.set_enabled(false);
    {
        let _timer = stopwatch.span("disabled");
        workload();
    }
    global.set_enabled(true);
    let ns = |name: &str| stopwatch.span_stat(name).map_or(0, |s| s.total_ns);
    (ns("enabled"), ns("disabled"))
}

/// Prints the standard run header (dataset provenance) every regeneration
/// binary starts with.
pub fn print_header(title: &str, cfg: &GeneratorConfig, ds: &TweetDataset) {
    println!("================================================================");
    println!("{title}");
    println!(
        "synthetic dataset: {} users, {} tweets (seed 0x{:X})",
        ds.n_users(),
        ds.n_tweets(),
        cfg.seed
    );
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_dataset_is_deterministic() {
        // Only exercise the plumbing with a tiny run; the env override
        // path is covered by setting the vars inside this process.
        std::env::set_var("TWEETMOB_USERS", "300");
        std::env::set_var("TWEETMOB_SEED", "12345");
        let (cfg, ds) = standard_dataset();
        assert_eq!(cfg.n_users, 300);
        assert_eq!(cfg.seed, 12345);
        assert_eq!(ds.n_users(), 300);
        std::env::remove_var("TWEETMOB_USERS");
        std::env::remove_var("TWEETMOB_SEED");
    }

    #[test]
    fn overhead_measurement_times_both_passes() {
        let (on, off) = measure_instrumentation_overhead(|| {
            tweetmob_obs::counter!("bench-test/work").add(1);
            std::hint::black_box((0..10_000u64).sum::<u64>());
        });
        assert!(on > 0, "enabled pass was timed");
        assert!(off > 0, "disabled pass was timed");
        // Three workload calls ran (warm-up, enabled, disabled) but the
        // disabled pass must not have recorded into the global registry.
        assert_eq!(
            tweetmob_obs::global().counter_value("bench-test/work"),
            Some(2)
        );
        assert!(tweetmob_obs::global().is_enabled(), "re-enabled afterwards");
    }
}
