//! # tweetmob-bench
//!
//! Paper-regeneration binaries and Criterion performance benches.
//!
//! One binary per paper artifact (run with
//! `cargo run --release -p tweetmob-bench --bin <name>`):
//!
//! | binary   | regenerates                                             |
//! |----------|---------------------------------------------------------|
//! | `table1` | Table I — dataset statistics                            |
//! | `fig1`   | Fig. 1 — tweet-density map of Australia                 |
//! | `fig2`   | Fig. 2 — tweets/user and waiting-time distributions     |
//! | `fig3`   | Fig. 3 — population correlation at three scales + ε sweep |
//! | `fig4`   | Fig. 4 — estimated-vs-extracted mobility scatters       |
//! | `table2` | Table II — Pearson + HitRate@50% per scale × model      |
//! | `all`    | everything above in sequence                            |
//!
//! Environment knobs (all optional):
//!
//! * `TWEETMOB_USERS` — synthetic user count (default 20,000; the paper's
//!   own scale is 473,956 — pass it for a full-scale run).
//! * `TWEETMOB_SEED` — generator seed (default the calibrated preset).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use tweetmob_data::TweetDataset;
use tweetmob_synth::{GeneratorConfig, TweetGenerator};

/// Builds the standard experiment dataset, honouring the
/// `TWEETMOB_USERS` / `TWEETMOB_SEED` environment knobs.
pub fn standard_dataset() -> (GeneratorConfig, TweetDataset) {
    let mut cfg = GeneratorConfig::default();
    if let Some(n) = env_u64("TWEETMOB_USERS") {
        cfg.n_users = n.clamp(1, u32::MAX as u64) as u32;
    }
    if let Some(seed) = env_u64("TWEETMOB_SEED") {
        cfg.seed = seed;
    }
    let ds = TweetGenerator::new(cfg.clone()).generate();
    (cfg, ds)
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Prints the standard run header (dataset provenance) every regeneration
/// binary starts with.
pub fn print_header(title: &str, cfg: &GeneratorConfig, ds: &TweetDataset) {
    println!("================================================================");
    println!("{title}");
    println!(
        "synthetic dataset: {} users, {} tweets (seed 0x{:X})",
        ds.n_users(),
        ds.n_tweets(),
        cfg.seed
    );
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_dataset_is_deterministic() {
        // Only exercise the plumbing with a tiny run; the env override
        // path is covered by setting the vars inside this process.
        std::env::set_var("TWEETMOB_USERS", "300");
        std::env::set_var("TWEETMOB_SEED", "12345");
        let (cfg, ds) = standard_dataset();
        assert_eq!(cfg.n_users, 300);
        assert_eq!(cfg.seed, 12345);
        assert_eq!(ds.n_users(), 300);
        std::env::remove_var("TWEETMOB_USERS");
        std::env::remove_var("TWEETMOB_SEED");
    }
}
