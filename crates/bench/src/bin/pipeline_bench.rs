//! Serial-vs-parallel pipeline benchmark.
//!
//! Runs every parallel stage of the pipeline twice — pinned to one
//! worker thread and at the resolved thread count — checks the results
//! are byte-identical, and records timings into `BENCH_pipeline.json`
//! under the `"pipeline"` key:
//!
//! ```text
//! cargo run --release -p tweetmob-bench --bin pipeline_bench
//! ```
//!
//! `Instant` lives behind tweetmob-obs, so the stopwatch is a private
//! always-on `MetricsRegistry`: each pass runs inside a uniquely named
//! span and the reading is that span's `total_ns`. On a single-core
//! host the parallel pass degrades to the serial path by design; the
//! honest `host_parallelism` is recorded next to the timings so the
//! numbers can be judged in context.

use tweetmob_bench::{emit_bench_metrics, print_header, standard_dataset, BENCH_METRICS_PATH};
use tweetmob_core::{extract_trips, AreaSet, Experiment, Scale};
use tweetmob_epidemic::{MobilityNetwork, OutbreakScenario};
use tweetmob_models::{Gravity4Fit, GravityGrid};
use tweetmob_obs::MetricsRegistry;
use tweetmob_synth::TweetGenerator;

/// Times one pass of `run` under a pinned thread count and returns
/// `(total_ns, result)`. The span name must be unique per call.
fn timed(
    stopwatch: &MetricsRegistry,
    name: &str,
    threads: usize,
    run: &dyn Fn() -> String,
) -> (u64, String) {
    let result = {
        let _timer = stopwatch.span(name);
        tweetmob_par::with_threads(threads, run)
    };
    let ns = stopwatch.span_stat(name).map_or(0, |s| s.total_ns);
    (ns, result)
}

/// Benchmarks one stage serial-vs-parallel: a warm-up pass, a pass at
/// one thread, a pass at `threads`, and a byte-equality check between
/// the two results.
fn bench_stage(
    stopwatch: &MetricsRegistry,
    name: &str,
    threads: usize,
    run: &dyn Fn() -> String,
) -> serde_json::Value {
    let _ = tweetmob_par::with_threads(1, run); // warm-up
    let (serial_ns, serial_out) = timed(stopwatch, &format!("{name}/serial"), 1, run);
    let (parallel_ns, parallel_out) = timed(stopwatch, &format!("{name}/parallel"), threads, run);
    let identical = serial_out == parallel_out;
    let speedup = if parallel_ns > 0 {
        serial_ns as f64 / parallel_ns as f64
    } else {
        0.0
    };
    println!(
        "  {name:<20} serial {:>10} ns   parallel {:>10} ns   speedup {speedup:>5.2}x   identical: {identical}",
        serial_ns, parallel_ns
    );
    serde_json::json!({
        "serial_ns": serial_ns,
        "parallel_ns": parallel_ns,
        "speedup": speedup,
        "identical": identical,
    })
}

fn main() {
    let (cfg, ds) = standard_dataset();
    print_header(
        "PIPELINE BENCH — serial vs parallel stage timings",
        &cfg,
        &ds,
    );

    let threads = tweetmob_par::resolved_threads().max(2);
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("timing at 1 vs {threads} threads (host parallelism: {host})");
    println!();

    let stopwatch = MetricsRegistry::new();
    let mut stages = serde_json::Map::new();

    // Stage 1: synthetic tweet generation (per-user fan-out).
    let gen_cfg = cfg.clone();
    stages.insert(
        "synth/generate".into(),
        bench_stage(&stopwatch, "synth/generate", threads, &move || {
            let ds = TweetGenerator::new(gen_cfg.clone()).generate();
            format!("{:?}|{:?}|{:?}|{:?}", ds.users(), ds.times(), ds.lats(), ds.lons())
        }),
    );

    // Stage 2: trip extraction (per-user consecutive-pair scan).
    let areas = AreaSet::of_scale(Scale::National);
    stages.insert(
        "trips".into(),
        bench_stage(&stopwatch, "trips", threads, &|| {
            serde_json::to_string(&extract_trips(&ds, &areas)).expect("OD matrix serializes")
        }),
    );

    // Stage 3: population estimation (per-area radius queries).
    let exp = Experiment::new(&ds);
    stages.insert(
        "population".into(),
        bench_stage(&stopwatch, "population", threads, &|| {
            let pop = exp
                .population_correlation(Scale::National)
                .expect("population correlation on the standard dataset");
            serde_json::to_string(&pop).expect("correlation serializes")
        }),
    );

    // Stage 4: gravity 4-parameter grid search (per-candidate fan-out).
    // The observations are assembled once, outside the timed region.
    let report = exp
        .mobility(Scale::National)
        .expect("mobility report on the standard dataset");
    let grid = GravityGrid::default();
    stages.insert(
        "gravity-grid".into(),
        bench_stage(&stopwatch, "gravity-grid", threads, &|| {
            let fit = Gravity4Fit::fit_grid(&report.observations, &grid)
                .expect("grid search over the default lattice");
            serde_json::to_string(&fit).expect("fit serializes")
        }),
    );

    // Stage 5: stochastic epidemic replicates (per-replicate fan-out)
    // over a gravity network on the national OD flows.
    let od = extract_trips(&ds, &areas);
    let flows: Vec<(usize, usize, f64)> = od
        .iter_pairs()
        .map(|(i, j, count)| (i, j, count as f64))
        .collect();
    let populations = areas.census_populations();
    let network = MobilityNetwork::from_flows(populations, &flows, 0.05).expect("national network");
    let scenario = OutbreakScenario::new(network, 0.5, 0.2).seed(0, 100.0);
    stages.insert(
        "epidemic/replicates".into(),
        bench_stage(&stopwatch, "epidemic/replicates", threads, &|| {
            let timelines = scenario
                .run_stochastic_replicates(60.0, 0.5, 0xC0FFEE, 8)
                .expect("validated scenario");
            serde_json::to_string(&timelines).expect("timelines serialize")
        }),
    );

    let all_identical = stages
        .values()
        .all(|s| s["identical"] == serde_json::Value::Bool(true));
    println!();
    println!(
        "{} stages, all identical across thread counts: {all_identical}",
        stages.len()
    );

    let notes = serde_json::json!({
        "stages": stages,
        "threads": threads,
        "host_parallelism": host,
        "n_users": ds.n_users(),
        "n_tweets": ds.n_tweets(),
    });
    if let Err(e) = emit_bench_metrics("pipeline", notes) {
        eprintln!("failed to write {BENCH_METRICS_PATH}: {e}");
        std::process::exit(1);
    }
    println!("wrote {BENCH_METRICS_PATH}");
    if !all_identical {
        eprintln!("error: a stage produced different results at different thread counts");
        std::process::exit(1);
    }
}
