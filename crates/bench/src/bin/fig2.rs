//! Regenerates **Figure 2** — tweeting-dynamics distributions.
//!
//! (a) P(number of tweets per user): heavy-tailed, "essentially follows a
//! power-law distribution".
//! (b) P(ΔT) waiting time between consecutive tweets: heavy-tailed over
//! at least eight decades, with "substantial heterogeneity".
//!
//! Prints the log-binned PDFs (the figure's series) plus a power-law MLE
//! for the tweets-per-user tail.

use tweetmob_bench::{print_header, standard_dataset};
use tweetmob_stats::binning::LogBins;
use tweetmob_stats::powerlaw::fit_scan_xmin;

fn main() {
    let (cfg, ds) = standard_dataset();
    print_header("FIGURE 2 — tweeting dynamics", &cfg, &ds);

    // ---- (a) tweets per user --------------------------------------
    let counts: Vec<f64> = ds.tweets_per_user().iter().map(|&c| c as f64).collect();
    println!("(a) P(no. tweets per user) — log-binned PDF");
    print_pdf(&counts, 4);
    match fit_scan_xmin(&counts) {
        Ok(fit) => println!(
            "power-law MLE: alpha = {:.2} (xmin = {:.0}, tail n = {}, KS = {:.3})",
            fit.alpha, fit.xmin, fit.n_tail, fit.ks_distance
        ),
        Err(e) => println!("power-law fit unavailable: {e}"),
    }
    println!();

    // ---- (b) waiting times ----------------------------------------
    let waits: Vec<f64> = ds
        .waiting_times_secs()
        .iter()
        .map(|&s| s as f64)
        .filter(|&s| s > 0.0)
        .collect();
    println!("(b) P(DT) — waiting time between consecutive tweets, seconds");
    print_pdf(&waits, 2);
    let decades = decades_spanned(&waits);
    println!("span: {decades:.1} decades (paper: at least eight)");
}

/// Prints a log-binned PDF as the `(x, p)` series the figure plots.
fn print_pdf(xs: &[f64], bins_per_decade: usize) {
    match LogBins::covering(xs, bins_per_decade) {
        Ok(bins) => {
            println!("{:>14} {:>14} {:>10}", "bin center", "density", "count");
            for b in bins.pdf(xs).iter().filter(|b| b.count > 0) {
                println!("{:>14.3e} {:>14.3e} {:>10}", b.center, b.density, b.count);
            }
        }
        Err(e) => println!("binning unavailable: {e}"),
    }
}

fn decades_spanned(xs: &[f64]) -> f64 {
    let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
    for &x in xs {
        if x > 0.0 {
            lo = lo.min(x);
            hi = hi.max(x);
        }
    }
    if hi > lo {
        (hi / lo).log10()
    } else {
        0.0
    }
}
