//! Extended model-family comparison (DESIGN.md §6 + paper future work).
//!
//! Adds to the paper's three models: intervening opportunities,
//! exponential-deterrence gravity, the Tanner combination, and
//! doubly-constrained gravity (IPF). Prints one table per scale.

use tweetmob_bench::{print_header, standard_dataset};
use tweetmob_core::{deterrence_ablation, Experiment, Scale};

fn main() {
    let (cfg, ds) = standard_dataset();
    print_header("extended model ablation (7 models × 3 scales)", &cfg, &ds);
    let exp = Experiment::new(&ds);

    for scale in Scale::ALL {
        let report = match exp.mobility(scale) {
            Ok(r) => r,
            Err(e) => {
                println!("{}: {e}", scale.name());
                continue;
            }
        };
        println!(
            "=== {} ({} trips) ===",
            scale.name(),
            report.od_total
        );
        println!(
            "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "model", "Pearson", "hit@50%", "logRMSE", "rank-ρ", "SSI"
        );
        let mut rows: Vec<&tweetmob_models::ModelEvaluation> =
            report.evaluations.iter().collect();
        let ablation = deterrence_ablation(&report);
        rows.extend(ablation.evaluations());
        for e in rows {
            println!(
                "{:<16} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
                e.model, e.pearson, e.hit_rate_50, e.log_rmse, e.spearman, e.sorensen
            );
        }
        if let Ok((tanner, _)) = &ablation.tanner {
            println!(
                "deterrence read-out: γ = {:.2}, 1/κ = {:+.2e}/km (κ ≈ {:.0} km)",
                tanner.gamma,
                tanner.inv_kappa,
                1.0 / tanner.inv_kappa.abs().max(1e-12)
            );
        }
        if let Ok((iters, _)) = &ablation.ipf {
            println!("IPF converged in {iters} sweeps");
        }
        println!();
    }
    println!("expected shape: the gravity family tops every scale; IPF wins the");
    println!("Sørensen index by construction (matched marginals); Radiation trails.");
}
